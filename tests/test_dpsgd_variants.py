"""Tests for the eager DP-SGD family: B == R == F and DP semantics."""

import numpy as np
import pytest

from repro import configs
from repro.nn import DLRM
from repro.train import DPConfig

from repro.testing import max_param_diff, train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=48, dim=8, lookups=2)


class TestVariantEquivalence:
    """Section 2.5: R and F are performance rewrites of B, not new algorithms."""

    def test_b_equals_r(self, config):
        model_b, _, _ = train_algorithm("dpsgd_b", config, num_batches=6)
        model_r, _, _ = train_algorithm("dpsgd_r", config, num_batches=6)
        assert max_param_diff(model_b, model_r) < 1e-10

    def test_b_equals_f(self, config):
        model_b, _, _ = train_algorithm("dpsgd_b", config, num_batches=6)
        model_f, _, _ = train_algorithm("dpsgd_f", config, num_batches=6)
        assert max_param_diff(model_b, model_f) < 1e-10

    def test_equivalence_with_pooling(self):
        config = configs.tiny_dlrm(num_tables=2, rows=32, dim=4, lookups=5)
        model_b, _, _ = train_algorithm("dpsgd_b", config, num_batches=4)
        model_f, _, _ = train_algorithm("dpsgd_f", config, num_batches=4)
        assert max_param_diff(model_b, model_f) < 1e-10

    def test_equivalence_under_poisson_sampling(self, config):
        model_b, _, _ = train_algorithm(
            "dpsgd_b", config, num_batches=5, sampling="poisson"
        )
        model_f, _, _ = train_algorithm(
            "dpsgd_f", config, num_batches=5, sampling="poisson"
        )
        assert max_param_diff(model_b, model_f) < 1e-10


class TestDPSemantics:
    def test_every_embedding_row_gets_noise(self, config):
        """The dense noisy update touches rows no example accessed."""
        model, _, _ = train_algorithm("dpsgd_f", config, num_batches=1)
        reference = DLRM(config, seed=7)
        for t, bag in enumerate(model.embeddings):
            moved = ~np.all(
                bag.table.data == reference.embeddings[t].table.data, axis=1
            )
            assert np.all(moved)

    def test_zero_noise_matches_clipped_sgd_direction(self, config):
        """With sigma=0 the update is pure clipped averaged gradient."""
        dp = DPConfig(noise_multiplier=0.0, max_grad_norm=1e9,
                      learning_rate=0.05)
        model_dp, _, _ = train_algorithm(
            "dpsgd_f", config, num_batches=3, dp=dp
        )
        model_sgd, _, _ = train_algorithm(
            "sgd", config, num_batches=3, dp=dp
        )
        # Huge clipping bound + zero noise: DP-SGD degenerates to SGD.
        assert max_param_diff(model_dp, model_sgd) < 1e-10

    def test_clipping_bounds_example_influence(self, config):
        """Swap one example; with clipping the parameter shift is bounded.

        The per-iteration update difference from one example is at most
        2*lr*C/B in L2 over the whole parameter vector (plus noise, which
        is identical under the same noise stream).
        """
        dp = DPConfig(noise_multiplier=1.0, max_grad_norm=0.5,
                      learning_rate=0.1)
        from repro.data import SyntheticClickDataset
        from repro.bench.experiments import make_trainer

        dataset = SyntheticClickDataset(config, seed=3)
        batch_a = dataset.batch(np.arange(16))
        ids_b = np.arange(16).copy()
        ids_b[0] = 999  # replace one example
        batch_b = dataset.batch(ids_b)

        shifts = []
        for batch in (batch_a, batch_b):
            model = DLRM(config, seed=7)
            trainer = make_trainer("dpsgd_f", model, dp, noise_seed=99)
            trainer.expected_batch_size = 16
            trainer.train_step(1, batch, None)
            shifts.append({
                name: param.data.copy()
                for name, param in model.parameters().items()
            })
        total_sq = 0.0
        for name in shifts[0]:
            total_sq += float(((shifts[0][name] - shifts[1][name]) ** 2).sum())
        sensitivity = np.sqrt(total_sq)
        bound = 2 * 0.1 * 0.5 / 16
        assert sensitivity <= bound + 1e-12

    def test_epsilon_reported(self, config):
        _, result, _ = train_algorithm("dpsgd_f", config, num_batches=4)
        assert result.epsilon is not None
        assert result.epsilon > 0

    def test_epsilon_grows_with_iterations(self, config):
        _, short, _ = train_algorithm("dpsgd_f", config, num_batches=2)
        _, long, _ = train_algorithm("dpsgd_f", config, num_batches=8)
        assert long.epsilon > short.epsilon


class TestStageProfiles:
    def test_b_charges_per_example_stage(self, config):
        _, _, trainer = train_algorithm("dpsgd_b", config, num_batches=2)
        stages = trainer.timer.as_dict()
        assert stages["bwd_per_example"] > 0
        assert stages["noise_sampling"] > 0
        assert stages["noisy_grad_generation"] > 0
        assert stages["noisy_grad_update"] > 0

    def test_f_has_all_model_update_stages(self, config):
        _, _, trainer = train_algorithm("dpsgd_f", config, num_batches=2)
        stages = trainer.timer.as_dict()
        for stage in ("fwd", "bwd_per_example", "bwd_per_batch",
                      "noise_sampling", "noisy_grad_update"):
            assert stages[stage] > 0

    def test_noise_std_uses_expected_batch_size(self, config):
        _, _, trainer = train_algorithm(
            "dpsgd_f", config, batch_size=16, num_batches=1
        )
        assert trainer.expected_batch_size == 16
