"""Tests for pluggable dense-side optimizers in the trainers.

MLP parameters receive their noise eagerly every iteration, so any update
rule is legal for them — only the *embedding* path must stay linear for
LazyDP's deferral.  These tests exercise momentum on the dense side across
algorithms and confirm it leaves the equivalence story intact.
"""

import numpy as np
import pytest

from repro import configs
from repro.testing import trainer_for
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.train import DenseMomentum, DenseSGD, DPConfig

from repro.testing import max_param_diff


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=48, dim=8, lookups=2)


def run(algorithm, config, dense_optimizer=None, noise_seed=99):
    model = DLRM(config, seed=7)
    dataset = SyntheticClickDataset(config, seed=3, num_examples=1 << 12)
    loader = DataLoader(dataset, batch_size=16, num_batches=6, seed=5)
    trainer = trainer_for(algorithm, model, DPConfig(),
                           noise_seed=noise_seed)
    if dense_optimizer is not None:
        trainer.dense_optimizer = dense_optimizer
    trainer.fit(loader)
    return model, trainer


class TestDenseOptimizerPlumbing:
    def test_default_is_plain_sgd(self, config):
        _, trainer = run("lazydp", config)
        assert isinstance(trainer.dense_optimizer, DenseSGD)
        assert trainer.dense_optimizer.learning_rate == pytest.approx(0.05)

    def test_momentum_changes_dense_but_respects_embeddings(self, config):
        plain_model, _ = run("lazydp_no_ans", config)
        momentum_model, _ = run(
            "lazydp_no_ans", config,
            dense_optimizer=DenseMomentum(0.05, momentum=0.9),
        )
        # Dense parameters diverge (momentum changes the trajectory) ...
        dense_diff = max(
            float(np.max(np.abs(
                plain_model.dense_parameters()[name].data
                - momentum_model.dense_parameters()[name].data
            )))
            for name in plain_model.dense_parameters()
        )
        assert dense_diff > 1e-8

    def test_lazydp_equivalence_holds_with_momentum(self, config):
        """Equivalence is an embedding-path property: it must survive any
        dense-side rule as long as both runs share it."""
        eager_model, _ = run(
            "dpsgd_f", config, dense_optimizer=DenseMomentum(0.05)
        )
        lazy_model, _ = run(
            "lazydp_no_ans", config, dense_optimizer=DenseMomentum(0.05)
        )
        assert max_param_diff(eager_model, lazy_model) < 1e-9

    def test_sgd_trainer_accepts_momentum(self, config):
        model, trainer = run(
            "sgd", config, dense_optimizer=DenseMomentum(0.05)
        )
        assert trainer.dense_optimizer.state_bytes() > 0

    def test_momentum_state_sized_to_dense_params(self, config):
        _, trainer = run(
            "dpsgd_f", config, dense_optimizer=DenseMomentum(0.05)
        )
        dense_bytes = sum(
            p.data.nbytes for p in trainer.model.dense_parameters().values()
        )
        assert trainer.dense_optimizer.state_bytes() == dense_bytes
