"""Tests for the Gaussian mechanism noise conventions."""

import numpy as np
import pytest

from repro.privacy import aggregated_noise_std, gradient_noise_std


class TestGradientNoiseStd:
    def test_formula(self):
        assert gradient_noise_std(1.1, 2.0, 4) == pytest.approx(1.1 * 2.0 / 4)

    def test_zero_multiplier_allowed(self):
        assert gradient_noise_std(0.0, 1.0, 8) == 0.0

    def test_rejects_negative_multiplier(self):
        with pytest.raises(ValueError):
            gradient_noise_std(-1.0, 1.0, 8)

    def test_rejects_nonpositive_norm(self):
        with pytest.raises(ValueError):
            gradient_noise_std(1.0, 0.0, 8)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            gradient_noise_std(1.0, 1.0, 0)

    def test_scales_inversely_with_batch(self):
        assert gradient_noise_std(1.0, 1.0, 2048) == pytest.approx(
            gradient_noise_std(1.0, 1.0, 1024) / 2
        )


class TestAggregatedNoiseStd:
    def test_sqrt_scaling(self):
        base = gradient_noise_std(1.1, 1.0, 16)
        stds = aggregated_noise_std(1.1, 1.0, 16, np.array([0, 1, 4, 9]))
        np.testing.assert_allclose(stds, base * np.array([0.0, 1.0, 2.0, 3.0]))

    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError):
            aggregated_noise_std(1.0, 1.0, 4, np.array([-1]))
