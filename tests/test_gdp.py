"""Tests for the analytic Gaussian mechanism (Balle & Wang)."""

import pytest

from repro.privacy import compute_rdp, rdp_to_epsilon
from repro.privacy.gdp import (
    analytic_gaussian_delta,
    analytic_gaussian_epsilon,
    analytic_gaussian_sigma,
    classical_gaussian_sigma,
)


class TestDeltaProfile:
    def test_delta_decreases_with_epsilon(self):
        deltas = [analytic_gaussian_delta(1.0, eps) for eps in
                  (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert all(a > b for a, b in zip(deltas, deltas[1:]))

    def test_delta_decreases_with_sigma(self):
        deltas = [analytic_gaussian_delta(s, 1.0) for s in
                  (0.5, 1.0, 2.0, 4.0)]
        assert all(a > b for a, b in zip(deltas, deltas[1:]))

    def test_delta_in_unit_interval(self):
        for sigma in (0.3, 1.0, 5.0):
            for epsilon in (0.0, 1.0, 10.0):
                delta = analytic_gaussian_delta(sigma, epsilon)
                assert 0.0 <= delta <= 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            analytic_gaussian_delta(0.0, 1.0)
        with pytest.raises(ValueError):
            analytic_gaussian_delta(1.0, -1.0)


class TestCalibration:
    def test_epsilon_sigma_roundtrip(self):
        for target_epsilon in (0.5, 1.0, 3.0):
            sigma = analytic_gaussian_sigma(target_epsilon, 1e-5)
            achieved = analytic_gaussian_epsilon(sigma, 1e-5)
            assert achieved == pytest.approx(target_epsilon, rel=1e-4)

    def test_delta_consistency(self):
        sigma = analytic_gaussian_sigma(1.0, 1e-6)
        assert analytic_gaussian_delta(sigma, 1.0) == pytest.approx(
            1e-6, rel=1e-3
        )

    def test_analytic_beats_classical(self):
        """Balle & Wang's headline: strictly less noise than the textbook
        bound at the same (epsilon, delta)."""
        for epsilon in (0.2, 0.5, 0.9):
            analytic = analytic_gaussian_sigma(epsilon, 1e-5)
            classical = classical_gaussian_sigma(epsilon, 1e-5)
            assert analytic < classical

    def test_classical_bound_domain(self):
        with pytest.raises(ValueError):
            classical_gaussian_sigma(1.5, 1e-5)
        with pytest.raises(ValueError):
            classical_gaussian_sigma(0.5, 0.0)

    def test_huge_sigma_gives_zero_epsilon(self):
        assert analytic_gaussian_epsilon(1e5, 0.5) == pytest.approx(
            0.0, abs=1e-6
        )


class TestAgainstRDPAccountant:
    def test_rdp_upper_bounds_analytic_single_step(self):
        """RDP composition is a bound: for one full-batch Gaussian step
        the accountant's epsilon must dominate the exact value."""
        for sigma in (0.8, 1.0, 2.0, 4.0):
            exact = analytic_gaussian_epsilon(sigma, 1e-5)
            rdp = compute_rdp(q=1.0, noise_multiplier=sigma, steps=1)
            bound, _ = rdp_to_epsilon(rdp, 1e-5)
            assert bound >= exact * 0.999

    def test_rdp_bound_is_not_wildly_loose(self):
        """...but should stay within ~2x of exact for moderate sigma."""
        sigma = 2.0
        exact = analytic_gaussian_epsilon(sigma, 1e-5)
        rdp = compute_rdp(q=1.0, noise_multiplier=sigma, steps=1)
        bound, _ = rdp_to_epsilon(rdp, 1e-5)
        assert bound < 2.0 * exact
