"""Unit tests for the benchmark JSON reports and the regression gate.

The CI ``bench-regression`` job rests on ``benchmarks/_jsonreport.py``:
artifacts must be written where the job uploads them, and the baseline
check must fail loudly — on regressions beyond tolerance *and* on
silently missing metrics — instead of printing and returning 0.
"""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_jsonreport",
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "_jsonreport.py",
)
jsonreport = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(jsonreport)


BASELINE = {
    "tolerance": 0.25,
    "metrics": {
        "demo/throughput_ratio": {"value": 1.0, "direction": "higher"},
        "demo/exposed_seconds": {"value": 2.0, "direction": "lower"},
        "other/unrelated": {"value": 5.0, "direction": "higher"},
    },
}


class TestCheckAgainstBaseline:
    def test_within_tolerance_passes(self):
        failures = jsonreport.check_against_baseline(
            "demo", {"throughput_ratio": 0.8, "exposed_seconds": 2.4},
            BASELINE,
        )
        assert failures == []

    def test_regression_beyond_tolerance_fails(self):
        failures = jsonreport.check_against_baseline(
            "demo", {"throughput_ratio": 0.74, "exposed_seconds": 1.0},
            BASELINE,
        )
        assert len(failures) == 1
        assert "throughput_ratio" in failures[0]
        assert "regressed below" in failures[0]

    def test_lower_is_better_direction(self):
        failures = jsonreport.check_against_baseline(
            "demo", {"throughput_ratio": 1.2, "exposed_seconds": 2.6},
            BASELINE,
        )
        assert len(failures) == 1
        assert "exposed_seconds" in failures[0]
        assert "regressed above" in failures[0]

    def test_missing_pinned_metric_fails(self):
        failures = jsonreport.check_against_baseline(
            "demo", {"throughput_ratio": 1.0}, BASELINE
        )
        assert any("missing" in failure for failure in failures)

    def test_unpinned_metrics_are_informational(self):
        failures = jsonreport.check_against_baseline(
            "demo",
            {"throughput_ratio": 1.0, "exposed_seconds": 2.0,
             "wall_seconds": 1e9},
            BASELINE,
        )
        assert failures == []

    def test_other_benchmarks_not_gated(self):
        failures = jsonreport.check_against_baseline(
            "demo", {"throughput_ratio": 1.0, "exposed_seconds": 2.0},
            BASELINE,
        )
        assert failures == []        # other/unrelated never consulted

    def test_unknown_direction_fails(self):
        baseline = {"metrics": {"demo/x": {"value": 1, "direction": "up"}}}
        failures = jsonreport.check_against_baseline(
            "demo", {"x": 1.0}, baseline
        )
        assert any("unknown direction" in failure for failure in failures)


class TestWriteReport:
    def test_writes_artifact_with_prefix(self, tmp_path):
        path = jsonreport.write_report(
            "demo", {"ratio": 1.5}, meta={"rows": 10}, directory=tmp_path
        )
        assert path.name == "BENCH_demo.json"
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "demo"
        assert payload["metrics"] == {"ratio": 1.5}
        assert payload["meta"] == {"rows": 10}

    def test_rejects_non_numeric_metrics(self, tmp_path):
        with pytest.raises(TypeError, match="numeric"):
            jsonreport.write_report(
                "demo", {"verdict": "exact"}, directory=tmp_path
            )
        with pytest.raises(TypeError, match="numeric"):
            jsonreport.write_report(
                "demo", {"passed": True}, directory=tmp_path
            )


class TestVerifyArtifacts:
    def test_verify_passes_and_fails(self, tmp_path, monkeypatch, capsys):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(BASELINE))
        monkeypatch.setattr(jsonreport, "BASELINE_PATH", baseline_path)
        jsonreport.write_report(
            "demo", {"throughput_ratio": 1.0, "exposed_seconds": 2.0},
            directory=tmp_path,
        )
        assert jsonreport.verify_artifacts(tmp_path) == 0
        jsonreport.write_report(
            "demo", {"throughput_ratio": 0.1, "exposed_seconds": 2.0},
            directory=tmp_path,
        )
        assert jsonreport.verify_artifacts(tmp_path) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_verify_empty_directory_fails(self, tmp_path):
        assert jsonreport.verify_artifacts(tmp_path) == 1


class TestCommittedBaseline:
    """The in-repo baseline must stay loadable and well-formed."""

    def test_baseline_shape(self):
        baseline = jsonreport.load_baseline()
        assert 0.0 < float(baseline["tolerance"]) < 1.0
        assert baseline["metrics"]
        for key, spec in baseline["metrics"].items():
            benchmark, _, metric = key.partition("/")
            assert benchmark and metric, key
            assert spec["direction"] in ("higher", "lower")
            assert float(spec["value"]) > 0.0

    def test_baseline_covers_all_smoke_benches(self):
        baseline = jsonreport.load_baseline()
        benches = {key.partition("/")[0] for key in baseline["metrics"]}
        assert benches == {"shard_scaling", "pipeline_overlap",
                           "async_inflight", "apply_fusion",
                           "apply_fusion_numba", "serve_load"}
