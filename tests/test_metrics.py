"""Tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import configs
from repro.data import SyntheticClickDataset
from repro.nn import DLRM
from repro.train.metrics import (
    calibration_bins,
    evaluate_model,
    expected_calibration_error,
    log_loss,
    roc_auc,
)


class TestROCAUC:
    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1], dtype=float)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.array([0, 0, 1, 1], dtype=float)
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000).astype(float)
        scores = rng.random(5000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_known_value_by_hand(self):
        # positives at scores 0.8, 0.4; negatives at 0.6, 0.2.
        # Pairs won: (0.8>0.6),(0.8>0.2),(0.4<0.6 lose),(0.4>0.2) -> 3/4.
        labels = np.array([1, 0, 1, 0], dtype=float)
        scores = np.array([0.8, 0.6, 0.4, 0.2])
        assert roc_auc(labels, scores) == pytest.approx(0.75)

    def test_tie_handling(self):
        # One positive ties one negative: that pair counts 0.5.
        labels = np.array([1, 0], dtype=float)
        scores = np.array([0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_all_tied_scores(self):
        labels = np.array([1, 0, 1, 0], dtype=float)
        scores = np.full(4, 0.3)
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(4), np.random.rand(4))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.0, 0.5]), np.array([0.1, 0.2]))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=0, max_value=1000))
    def test_matches_naive_pair_counting(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=n).astype(float)
        if labels.min() == labels.max():
            labels[0] = 1.0 - labels[0]
        scores = rng.integers(0, 5, size=n) / 4.0  # force ties
        pos = scores[labels == 1.0]
        neg = scores[labels == 0.0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        naive = (wins + 0.5 * ties) / (pos.size * neg.size)
        assert roc_auc(labels, scores) == pytest.approx(naive)

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, size=200).astype(float)
        labels[0], labels[1] = 0.0, 1.0
        scores = rng.random(200)
        assert roc_auc(labels, scores) == pytest.approx(
            roc_auc(labels, np.exp(3 * scores))
        )


class TestLogLoss:
    def test_perfect_predictions(self):
        assert log_loss(np.array([1.0, 0.0]),
                        np.array([1.0, 0.0])) < 1e-10

    def test_uninformative_is_ln2(self):
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        assert log_loss(labels, np.full(4, 0.5)) == pytest.approx(np.log(2))

    def test_clipping_keeps_finite(self):
        assert np.isfinite(log_loss(np.array([1.0]), np.array([0.0])))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            log_loss(np.zeros(3), np.zeros(2))


class TestCalibration:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(1)
        probabilities = rng.random(20000)
        labels = (rng.random(20000) < probabilities).astype(float)
        assert expected_calibration_error(labels, probabilities) < 0.03

    def test_badly_calibrated(self):
        labels = np.zeros(1000)
        probabilities = np.full(1000, 0.9)
        assert expected_calibration_error(labels, probabilities) > 0.8

    def test_bins_partition_all_examples(self):
        rng = np.random.default_rng(2)
        probabilities = rng.random(500)
        labels = rng.integers(0, 2, size=500).astype(float)
        bins = calibration_bins(labels, probabilities, num_bins=7)
        assert sum(b.count for b in bins) == 500

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            calibration_bins(np.zeros(2), np.zeros(2), num_bins=0)


class TestEvaluateModel:
    def test_end_to_end(self):
        config = configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=2)
        model = DLRM(config, seed=0)
        dataset = SyntheticClickDataset(config, seed=1)
        batches = [dataset.batch(np.arange(i * 64, (i + 1) * 64))
                   for i in range(4)]
        metrics = evaluate_model(model, batches)
        assert 0.0 <= metrics["auc"] <= 1.0
        assert metrics["log_loss"] > 0
        assert metrics["examples"] == 256

    def test_trained_model_beats_untrained(self):
        """Training must improve held-out AUC on the learnable signal."""
        from repro.testing import train_algorithm
        from repro.train import DPConfig

        config = configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=1)
        dataset = SyntheticClickDataset(config, seed=3, num_examples=1 << 12)
        held_out = [dataset.batch(np.arange(2048, 2048 + 512))]

        untrained = DLRM(config, seed=7)
        before = evaluate_model(untrained, held_out)["auc"]

        trained, _, _ = train_algorithm(
            "sgd", config, batch_size=128, num_batches=40,
            dp=DPConfig(learning_rate=0.1),
        )
        after = evaluate_model(trained, held_out)["auc"]
        assert after > before + 0.05
