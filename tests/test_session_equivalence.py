"""The session builder's acceptance bar: plan-built == legacy class.

For every legacy algorithm string, ``TrainSession.build`` with the
mapped :class:`ExecutionPlan` must release *bitwise identical*
embedding tables (and dense parameters) to the hand-written legacy
trainer class over the equivalence-test workload — fixed and Poisson
sampling, ANS on/off, 1/2/7 shards, prefetch depths 1/2/4, in-flight
1/2/4.  This is the re-parameterization of the historical equivalence
matrix over plans: the composed capability stacks and the legacy
classes must be the same execution, constructed two ways.

``bounded:k`` staleness is excluded from bitwise comparison (its reads
are schedule-dependent by design); for it the ledger audit is the bar,
as in ``tests/test_async_equivalence.py``.
"""

import pytest

from repro import configs
from repro.async_ import AsyncLazyDPTrainer, AsyncShardedLazyDPTrainer
from repro.lazydp import LazyDPTrainer
from repro.nn import DLRM
from repro.pipeline import (
    PipelinedLazyDPTrainer,
    PipelinedShardedLazyDPTrainer,
)
from repro.session import ExecutionPlan, TrainSession, plan_for_algorithm
from repro.shard import ShardedLazyDPTrainer
from repro.testing import make_loader, max_param_diff
from repro.train import DPConfig

LEGACY_CLASSES = {
    "lazydp": LazyDPTrainer,
    "sharded_lazydp": ShardedLazyDPTrainer,
    "pipelined_lazydp": PipelinedLazyDPTrainer,
    "pipelined_sharded_lazydp": PipelinedShardedLazyDPTrainer,
    "async_lazydp": AsyncLazyDPTrainer,
    "async_sharded_lazydp": AsyncShardedLazyDPTrainer,
}

#: The historical matrix, one row per (algorithm, trainer kwargs,
#: sampling) combination.  Kwargs are exactly what the legacy class
#: constructor takes; the plan mapping must translate them loss-free.
MATRIX = [
    ("lazydp", {}, "fixed"),
    ("lazydp", {}, "poisson"),
    ("lazydp_no_ans", {}, "fixed"),
    ("sharded_lazydp", {"num_shards": 1}, "fixed"),
    ("sharded_lazydp", {"num_shards": 2}, "poisson"),
    (
        "sharded_lazydp",
        {"num_shards": 7, "partition": "hash", "executor": "threads"},
        "fixed",
    ),
    ("sharded_lazydp_no_ans", {"num_shards": 2, "partition": "frequency"}, "fixed"),
    ("pipelined_lazydp", {"prefetch_depth": 1}, "fixed"),
    ("pipelined_lazydp", {"prefetch_depth": 2}, "poisson"),
    ("pipelined_lazydp", {"prefetch_depth": 4}, "fixed"),
    ("pipelined_lazydp_no_ans", {"prefetch_depth": 2}, "fixed"),
    ("pipelined_sharded_lazydp", {"num_shards": 2, "prefetch_depth": 2}, "fixed"),
    (
        "pipelined_sharded_lazydp",
        {"num_shards": 7, "executor": "threads", "prefetch_depth": 4},
        "poisson",
    ),
    (
        "pipelined_sharded_lazydp_no_ans",
        {"num_shards": 2, "partition": "hash"},
        "fixed",
    ),
    ("async_lazydp", {"max_in_flight": 1}, "fixed"),
    ("async_lazydp", {"max_in_flight": 2}, "poisson"),
    ("async_lazydp", {"max_in_flight": 4, "prefetch_depth": 4}, "fixed"),
    ("async_lazydp_no_ans", {"max_in_flight": 2}, "fixed"),
    ("async_sharded_lazydp", {"num_shards": 2, "max_in_flight": 2}, "fixed"),
    (
        "async_sharded_lazydp",
        {"num_shards": 7, "executor": "threads", "max_in_flight": 4},
        "poisson",
    ),
    ("async_sharded_lazydp_no_ans", {"num_shards": 2, "max_in_flight": 2}, "fixed"),
]


def matrix_id(case):
    algorithm, kwargs, sampling = case
    details = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    return f"{algorithm}[{details}]-{sampling}"


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


def train(config, trainer_factory, sampling):
    """Fresh model + the shared deterministic workload; returns model."""
    model = DLRM(config, seed=7)
    trainer = trainer_factory(model)
    loader = make_loader(config, batch_size=16, num_batches=6, sampling=sampling)
    trainer.fit(loader)
    close = getattr(trainer, "close", None)
    if close is not None:
        close()
    return model, trainer


@pytest.mark.parametrize("case", MATRIX, ids=matrix_id)
def test_plan_matches_legacy_class_bitwise(config, case):
    algorithm, kwargs, sampling = case
    dp = DPConfig(noise_multiplier=1.1, max_grad_norm=1.0, learning_rate=0.05)
    base_name = algorithm.removesuffix("_no_ans")
    use_ans = not algorithm.endswith("_no_ans")

    legacy_model, legacy_trainer = train(
        config,
        lambda model: LEGACY_CLASSES[base_name](
            model, dp, noise_seed=99, use_ans=use_ans, **kwargs
        ),
        sampling,
    )

    plan, extras = plan_for_algorithm(algorithm, dict(kwargs))
    assert extras == {}
    assert ExecutionPlan.from_dict(plan.to_dict()) == plan
    assert ExecutionPlan.from_spec(plan.to_spec()) == plan

    def build(model):
        return TrainSession.build(model, dp, plan, noise_seed=99).trainer

    plan_model, plan_trainer = train(config, build, sampling)

    assert max_param_diff(legacy_model, plan_model) == 0.0
    assert plan_trainer.name == legacy_trainer.name


def test_bounded_staleness_plan_keeps_ledger_exact(config):
    """bounded:k may reorder reads (no bitwise bar); the plan-built
    trainer must still account every noise value exactly once."""
    dp = DPConfig(noise_multiplier=1.1, max_grad_norm=1.0, learning_rate=0.05)
    plan, _ = plan_for_algorithm(
        "async_lazydp", {"max_in_flight": 4, "staleness": "bounded:2"}
    )
    _, trainer = train(
        config,
        lambda model: TrainSession.build(model, dp, plan, noise_seed=99).trainer,
        "fixed",
    )
    trainer.audit_noise_ledger(6)


def test_plan_built_histories_match_legacy(config):
    """Beyond parameters: the deferred-noise bookkeeping agrees too."""
    import numpy as np

    dp = DPConfig(noise_multiplier=1.1, max_grad_norm=1.0, learning_rate=0.05)
    _, legacy_trainer = train(
        config,
        lambda model: PipelinedShardedLazyDPTrainer(
            model, dp, noise_seed=99, num_shards=3, prefetch_depth=2
        ),
        "fixed",
    )
    plan, _ = plan_for_algorithm(
        "pipelined_sharded_lazydp", {"num_shards": 3, "prefetch_depth": 2}
    )
    _, plan_trainer = train(
        config,
        lambda model: TrainSession.build(model, dp, plan, noise_seed=99).trainer,
        "fixed",
    )
    for legacy, built in zip(
        legacy_trainer.engine.histories, plan_trainer.engine.histories
    ):
        np.testing.assert_array_equal(legacy.snapshot(), built.snapshot())
