"""Tests for the per-operation cost primitives."""

import pytest

from repro import configs
from repro.perfmodel import paper_system
from repro.perfmodel import ops


@pytest.fixture
def hw():
    return paper_system()


@pytest.fixture
def config():
    return configs.mlperf_dlrm()


class TestPrimitives:
    def test_stream_linear_in_bytes(self, hw):
        assert ops.cpu_stream_seconds(2e9, hw) == pytest.approx(
            2 * ops.cpu_stream_seconds(1e9, hw)
        )

    def test_avx_linear_in_flops(self, hw):
        assert ops.cpu_avx_seconds(2e12, hw) == pytest.approx(
            2 * ops.cpu_avx_seconds(1e12, hw)
        )

    def test_noise_sampling_101_ops_per_element(self, hw):
        one_element = ops.noise_sampling_seconds(1, hw)
        assert one_element == pytest.approx(
            101 / (0.81 * 265e9), rel=1e-6
        )

    def test_noise_sampling_96gb_is_about_11s(self, hw):
        """The anchor the whole reproduction hangs on: 24e9 elements of
        Box-Muller at 215 GFLOPS is ~11.3 seconds."""
        elements = 96e9 / 4
        assert ops.noise_sampling_seconds(elements, hw) == pytest.approx(
            11.3, rel=0.02
        )

    def test_noisy_update_bandwidth_bound(self, hw):
        elements = 96e9 / 4
        expected = 3 * 96e9 / (0.855 * 68e9)
        assert ops.noisy_grad_update_seconds(elements, hw) == pytest.approx(
            expected
        )

    def test_random_touch_latency_floor(self, hw):
        """Small rows pay the access latency, not the streaming time."""
        per_row = ops.random_row_touch_seconds(1, 128, 1.0, hw)
        assert per_row == pytest.approx(hw.cpu.row_access_latency)

    def test_random_touch_streaming_ceiling(self, hw):
        """Huge rows are bandwidth-limited."""
        dim = 1 << 16
        per_row = ops.random_row_touch_seconds(1, dim, 1.0, hw)
        assert per_row == pytest.approx(
            dim * 4 / hw.cpu.effective_bandwidth
        )


class TestModelCosts:
    def test_gather_scales_with_pooling(self, hw):
        one = ops.embedding_gather_seconds(
            2048, configs.mlperf_dlrm(lookups_per_table=1), hw
        )
        thirty = ops.embedding_gather_seconds(
            2048, configs.mlperf_dlrm(lookups_per_table=30), hw
        )
        assert thirty > 10 * one

    def test_mlp_multiplies_positive(self, config, hw):
        assert ops.mlp_multiplies(config) > 1e6
        assert ops.mlp_forward_seconds(2048, config, hw) > 0

    def test_backward_twice_forward(self, config, hw):
        fwd = ops.mlp_forward_seconds(2048, config, hw)
        assert ops.mlp_backward_seconds(2048, config, hw) == pytest.approx(
            2 * fwd
        )

    def test_per_example_traffic_scales_with_batch(self, config, hw):
        small = ops.per_example_grad_traffic_seconds(1024, config, hw)
        large = ops.per_example_grad_traffic_seconds(4096, config, hw)
        assert large == pytest.approx(4 * small)

    def test_pcie_transfer(self, config, hw):
        seconds = ops.embeddings_pcie_seconds(2048, config, hw)
        expected = 2048 * 26 * 128 * 4 / 16e9
        assert seconds == pytest.approx(expected)
