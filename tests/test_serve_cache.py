"""The hot-row cache: skewed hit rates, bitwise transparency, invalidation.

Three contracts:

1. Under fig13d-skewed traffic a cache sized by
   :meth:`HotRowCache.for_skew` (capacity = the hot set carrying 90%
   of the mass) reaches a hit rate commensurate with that mass.
2. Cache-on and cache-off serve the *same bits* — entries are copies
   of memoized rows tagged with the engine generation, so a hit can
   never diverge from the slow path.
3. When the attached trainer advances, the refresh invalidates the
   cache; entries from the superseded generation are unreturnable
   either way (the tag mismatch catches stragglers).
"""

import numpy as np
import pytest

from repro import configs
from repro.data import LookaheadLoader
from repro.data.skew import PAPER_SKEW_TOP_FRACTIONS
from repro.lazydp import LazyDPTrainer, export_private_model
from repro.nn import DLRM
from repro.serve import HotRowCache, PrivateServingEngine, generate_traffic
from repro.testing import make_loader
from repro.train import DPConfig

ROWS = 256


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=ROWS, dim=8, lookups=2)


@pytest.fixture
def trainer(config):
    model = DLRM(config, seed=7)
    trainer = LazyDPTrainer(model, DPConfig(), noise_seed=99)
    trainer.expected_batch_size = 16
    loader = make_loader(config, batch_size=16, num_batches=4)
    for index, batch, upcoming in LookaheadLoader(loader):
        trainer.train_step(index + 1, batch, upcoming)
    return trainer


def drive_point_lookups(engine, requests=3000, skew="medium", seed=0):
    """Hammer single-row lookups drawn from the fig13d traffic model."""
    traffic = generate_traffic(
        ROWS, requests, batch_size=1, skew=skew, seed=seed, perm_seed=seed
    )
    for rows in traffic:
        engine.lookup(0, rows)


class TestCacheUnit:
    def test_for_skew_sizes_to_paper_hot_set(self):
        for level, fraction in PAPER_SKEW_TOP_FRACTIONS.items():
            cache = HotRowCache.for_skew(level, 10_000)
            assert cache.capacity == int(np.ceil(fraction * 10_000))
        assert HotRowCache.for_skew("high", 10).capacity == 1
        with pytest.raises(ValueError, match="unknown skew level"):
            HotRowCache.for_skew("extreme", 100)

    def test_admission_threshold_filters_one_off_rows(self):
        cache = HotRowCache(capacity=4, admission_threshold=2)
        rows = np.array([1, 2])
        values = np.ones((2, 3))
        assert cache.offer(0, rows, values, generation=0) == 0
        assert len(cache) == 0          # first sighting: not admitted
        assert cache.offer(0, rows, values, generation=0) == 2
        assert len(cache) == 2          # second sighting clears the bar
        assert cache.get_rows(0, rows, generation=0) is not None

    def test_eviction_requires_beating_coldest_resident(self):
        cache = HotRowCache(capacity=2, admission_threshold=1,
                            decay_interval=10_000)
        hot = np.array([1, 2])
        cache.offer(0, hot, np.ones((2, 3)), generation=0)
        cache.offer(0, hot, np.ones((2, 3)), generation=0)   # freq 2 each
        cold = np.array([3])
        cache.offer(0, cold, np.ones((1, 3)), generation=0)  # freq 1: loses
        assert cache.get_rows(0, cold, generation=0) is None
        assert cache.evictions == 0
        # A genuinely hotter row displaces the coldest resident.
        for _ in range(3):
            cache.offer(0, cold, np.ones((1, 3)), generation=0)
        assert cache.get_rows(0, cold, generation=0) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_probe_is_all_or_nothing(self):
        cache = HotRowCache(capacity=4, admission_threshold=1)
        cache.offer(0, np.array([1]), np.ones((1, 3)), generation=0)
        assert cache.get_rows(0, np.array([1, 2]), generation=0) is None
        hit = cache.get_rows(0, np.array([1, 1]), generation=0)
        assert hit is not None and hit.shape == (2, 3)

    def test_stale_generation_never_served(self):
        cache = HotRowCache(capacity=4, admission_threshold=1)
        rows = np.array([1])
        cache.offer(0, rows, np.ones((1, 3)), generation=0)
        assert cache.get_rows(0, rows, generation=1) is None
        # A fresh-generation offer replaces the stale entry in place.
        cache.offer(0, rows, np.full((1, 3), 2.0), generation=1)
        hit = cache.get_rows(0, rows, generation=1)
        np.testing.assert_array_equal(hit, np.full((1, 3), 2.0))

    def test_invalidate_drops_entries_keeps_frequencies(self):
        cache = HotRowCache(capacity=4, admission_threshold=2)
        rows = np.array([1, 2])
        cache.offer(0, rows, np.ones((2, 3)), generation=0)
        cache.offer(0, rows, np.ones((2, 3)), generation=0)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        # Popularity survives: one more offer readmits immediately.
        assert cache.offer(0, rows, np.ones((2, 3)), generation=1) == 2

    def test_frequency_decay_lets_hot_set_drift(self):
        cache = HotRowCache(capacity=1, admission_threshold=1,
                            decay_interval=4)
        old = np.array([1])
        for _ in range(8):
            cache.offer(0, old, np.ones((1, 3)), generation=0)
        new = np.array([2])
        # Without decay the old row's count would be unbeatable for 8
        # offers; decay halves it so fresh traffic wins in a few.
        for _ in range(8):
            cache.offer(0, new, np.ones((1, 3)), generation=0)
        assert cache.get_rows(0, new, generation=0) is not None

    def test_entries_are_private_copies(self):
        cache = HotRowCache(capacity=2, admission_threshold=1)
        values = np.ones((1, 3))
        cache.offer(0, np.array([1]), values, generation=0)
        values[:] = 99.0
        hit = cache.get_rows(0, np.array([1]), generation=0)
        np.testing.assert_array_equal(hit, np.ones((1, 3)))
        hit[:] = 77.0
        again = cache.get_rows(0, np.array([1]), generation=0)
        np.testing.assert_array_equal(again, np.ones((1, 3)))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            HotRowCache(0)
        with pytest.raises(ValueError, match="admission_threshold"):
            HotRowCache(4, admission_threshold=0)
        with pytest.raises(ValueError, match="decay_interval"):
            HotRowCache(4, decay_interval=0)


class TestCacheServing:
    def test_skewed_traffic_hit_rate_bound(self, config, trainer):
        """A for_skew-sized cache must catch most of the 90% hot mass.

        The bound is deliberately below the asymptotic rate: admission
        needs two sightings, so early traffic misses while the filter
        learns the hot set.
        """
        for level, floor in (("medium", 0.60), ("high", 0.75)):
            cache = HotRowCache.for_skew(level, ROWS)
            engine = PrivateServingEngine.from_trainer(
                trainer, iteration=4, cache=cache
            )
            drive_point_lookups(engine, skew=level, seed=3)
            assert cache.stats()["hit_rate"] > floor, level

    def test_cache_on_equals_cache_off_bitwise(self, config, trainer):
        cached = PrivateServingEngine.from_trainer(
            trainer, iteration=4,
            cache=HotRowCache(capacity=64, admission_threshold=1),
        )
        plain = PrivateServingEngine.from_trainer(trainer, iteration=4)
        traffic = generate_traffic(ROWS, 400, batch_size=1, skew="medium",
                                   seed=11, perm_seed=11)
        for rows in traffic:
            np.testing.assert_array_equal(
                cached.lookup(0, rows), plain.lookup(0, rows)
            )
        assert cached.cache.stats()["hits"] > 0   # the fast path ran

    def test_cache_hits_count_as_served_memo_hits(self, config, trainer):
        cache = HotRowCache(capacity=8, admission_threshold=1)
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, cache=cache
        )
        row = np.array([5])
        engine.lookup(0, row)           # slow path; offered to cache
        assert cache.stats()["hits"] == 0
        served_before = engine.rows_served
        engine.lookup(0, row)           # cache fast path
        assert cache.stats()["hits"] == 1
        assert engine.rows_served == served_before + 1
        assert engine.memo_hits >= 1

    def test_trainer_advance_invalidates_cache(self, config, trainer):
        cache = HotRowCache(capacity=32, admission_threshold=1)
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, snapshot=True, cache=cache
        )
        engine.attach(trainer)
        rows = np.arange(8)
        engine.lookup(0, rows)
        engine.lookup(0, rows)          # admitted + hitting
        assert cache.stats()["hits"] > 0
        assert len(cache) > 0

        loader = make_loader(config, batch_size=16, num_batches=1, seed=35)
        for index, batch, upcoming in LookaheadLoader(loader):
            with engine.quiesce():
                trainer.train_step(5, batch, upcoming)
        # The next lookup refreshes: entries drop, served bits are the
        # new iteration's — bitwise against the flush.
        reference = export_private_model(trainer, iteration=5)
        name = engine.embedding_names[0]
        np.testing.assert_array_equal(
            engine.lookup(0, rows), reference[name][rows]
        )
        assert cache.stats()["invalidations"] == 1
        assert engine.generation == 1
        # Re-admitted entries carry the new generation and serve the
        # new bits.
        np.testing.assert_array_equal(
            engine.lookup(0, rows), reference[name][rows]
        )

    def test_cache_stats_surface_in_engine_stats(self, config, trainer):
        cache = HotRowCache(capacity=8, admission_threshold=1)
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, cache=cache
        )
        engine.lookup(0, np.array([1]))
        engine.lookup(0, np.array([1]))
        stats = engine.stats()
        assert stats["cache"]["capacity"] == 8
        assert stats["cache"]["hits"] == 1
        uncached = PrivateServingEngine.from_trainer(trainer, iteration=4)
        assert "cache" not in uncached.stats()

    def test_batched_lookups_bypass_cache_but_stay_exact(self, config,
                                                         trainer):
        """lookup_batch trades the cache for cross-table iteration
        consistency; the bits still match the flush."""
        cache = HotRowCache(capacity=64, admission_threshold=1)
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, cache=cache
        )
        reference = export_private_model(trainer, iteration=4)
        rows = [np.array([1, 2, 2]), np.array([7])]
        for _ in range(3):
            outputs = engine.lookup_batch(rows)
            for table_index, name in enumerate(engine.embedding_names):
                np.testing.assert_array_equal(
                    outputs[table_index],
                    reference[name][rows[table_index]],
                )
        assert cache.stats()["hits"] == 0
