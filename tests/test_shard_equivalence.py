"""The sharded engine's headline guarantee: bitwise equivalence.

``ShardedLazyDPTrainer`` must release exactly the parameters the flat
``LazyDPTrainer`` releases — same seed, same trace, same bits — for
every shard count, partition strategy, executor backend, ANS mode and
sampling scheme.  The per-row Philox noise keying makes this testable as
strict equality rather than a tolerance check.
"""

import numpy as np
import pytest

from repro import configs
from repro.shard import (
    ShardedLazyDPTrainer,
    ShardedLazyNoiseEngine,
    build_partition_plan,
)
from repro.testing import max_param_diff, train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


def train_sharded(config, *, sampling="fixed", use_ans=True, num_batches=6,
                  **kwargs):
    algorithm = "sharded_lazydp" if use_ans else "sharded_lazydp_no_ans"
    model, result, trainer = train_algorithm(
        algorithm, config, num_batches=num_batches, sampling=sampling,
        trainer_kwargs=kwargs,
    )
    trainer.close()
    return model, result, trainer


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_released_params_identical(self, config, num_shards, sampling):
        flat_model, _, _ = train_algorithm(
            "lazydp", config, num_batches=6, sampling=sampling
        )
        sharded_model, _, _ = train_sharded(
            config, sampling=sampling, num_shards=num_shards
        )
        assert max_param_diff(flat_model, sharded_model) == 0.0

    @pytest.mark.parametrize("partition", ["row_range", "frequency", "hash"])
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_identical_across_partitions_and_executors(self, config,
                                                       partition, executor):
        flat_model, _, _ = train_algorithm("lazydp", config, num_batches=6)
        sharded_model, _, _ = train_sharded(
            config, num_shards=4, partition=partition, executor=executor
        )
        assert max_param_diff(flat_model, sharded_model) == 0.0

    def test_identical_without_ans(self, config):
        """No-ANS mode replays *eager DP-SGD's own draws* — still exact."""
        flat_model, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=5
        )
        sharded_model, _, _ = train_sharded(
            config, use_ans=False, num_batches=5, num_shards=7,
            partition="hash", executor="threads",
        )
        assert max_param_diff(flat_model, sharded_model) == 0.0

    def test_histories_match_flat_after_fit(self, config):
        _, _, flat_trainer = train_algorithm("lazydp", config, num_batches=6)
        _, _, sharded_trainer = train_sharded(config, num_shards=7)
        for flat, sharded in zip(flat_trainer.engine.histories,
                                 sharded_trainer.engine.histories):
            np.testing.assert_array_equal(
                flat.snapshot(), sharded.snapshot()
            )

    def test_flush_equivalence_per_shard(self, config):
        """The terminal flush catches up the same rows to the same bits."""
        _, _, flat_trainer = train_algorithm("lazydp", config, num_batches=4)
        _, _, sharded_trainer = train_sharded(
            config, num_batches=4, num_shards=7
        )
        assert sharded_trainer.engine.flushed_through == \
            flat_trainer.engine.flushed_through == 4
        for history in sharded_trainer.engine.histories:
            assert history.pending_rows(4).size == 0
            for s in range(history.num_shards):
                assert history.shard_pending_rows(s, 4).size == 0


class TestTrainerBehaviour:
    def test_algorithm_name(self, config):
        _, result, _ = train_sharded(config, num_shards=2)
        assert result.algorithm == "sharded_lazydp"
        _, result, _ = train_sharded(config, num_shards=2, use_ans=False)
        assert result.algorithm == "sharded_lazydp_no_ans"

    def test_shard_stage_times_recorded(self, config):
        _, result, trainer = train_sharded(
            config, num_shards=3, executor="threads"
        )
        assert result.stage_times["shard_routing"] > 0.0
        assert result.stage_times["shard_model_update"] > 0.0
        breakdown = trainer.per_shard_breakdown()
        assert len(breakdown) == 3
        for stages in breakdown:
            assert stages["noise_sampling"] >= 0.0
            assert stages["noisy_grad_update"] >= 0.0
        assert len(trainer.shard_update_seconds()) == 3

    def test_prebuilt_plan_accepted(self, config):
        plan = build_partition_plan(config, 2, strategy="hash")
        flat_model, _, _ = train_algorithm("lazydp", config, num_batches=4)
        sharded_model, _, _ = train_algorithm(
            "sharded_lazydp", config, num_batches=4,
            trainer_kwargs={"plan": plan},
        )
        assert max_param_diff(flat_model, sharded_model) == 0.0

    def test_rebuilding_trainer_readopts_bags(self, config):
        """A second trainer with a different plan must replace the first
        trainer's slabs, not write through stale shard windows."""
        from repro.data import LookaheadLoader
        from repro.nn import DLRM
        from repro.train import DPConfig
        from repro.testing import make_loader

        model = DLRM(config, seed=7)
        first = ShardedLazyDPTrainer(
            model, DPConfig(), noise_seed=99, num_shards=2,
            partition="row_range",
        )
        second = ShardedLazyDPTrainer(
            model, DPConfig(), noise_seed=99, num_shards=7,
            partition="hash",
        )
        for t, bag in enumerate(model.embeddings):
            assert bag.partition is second.plan.table(t)
        second.expected_batch_size = 16
        loader = make_loader(config, batch_size=16, num_batches=4)
        for index, batch, upcoming in LookaheadLoader(loader):
            second.train_step(index + 1, batch, upcoming)
        second.finalize(4)

        flat_model, _, _ = train_algorithm("lazydp", config, num_batches=4)
        assert max_param_diff(flat_model, model) == 0.0
        first.close()
        second.close()

    def test_mismatched_plan_rejected(self, config):
        from repro.nn import DLRM
        from repro.train import DPConfig

        other = configs.tiny_dlrm(num_tables=3, rows=32, dim=8, lookups=2)
        plan = build_partition_plan(other, 2)
        with pytest.raises(ValueError, match="rows"):
            ShardedLazyDPTrainer(DLRM(config, seed=7), DPConfig(), plan=plan)
        small_plan = build_partition_plan(
            configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=2), 2
        )
        with pytest.raises(ValueError, match="tables"):
            ShardedLazyDPTrainer(
                DLRM(config, seed=7), DPConfig(), plan=small_plan
            )

    def test_engine_draw_accounting(self, config):
        """ANS draws one Gaussian row per caught-up row, across shards."""
        _, _, ans_trainer = train_sharded(config, num_shards=3)
        _, _, no_ans_trainer = train_sharded(
            config, num_shards=3, use_ans=False
        )
        assert isinstance(ans_trainer.engine, ShardedLazyNoiseEngine)
        assert 0 < ans_trainer.engine.samples_drawn < \
            no_ans_trainer.engine.samples_drawn

    def test_history_bytes_independent_of_sharding(self, config):
        _, _, flat_trainer = train_algorithm("lazydp", config, num_batches=2)
        _, _, sharded_trainer = train_sharded(config, num_shards=7)
        assert sharded_trainer.engine.history_bytes() == \
            flat_trainer.engine.history_bytes()


class TestReleaseAndCheckpoint:
    def test_export_private_model_works_sharded(self, config):
        """Mid-training release from a sharded trainer == flat release."""
        from repro.data import LookaheadLoader
        from repro.lazydp import export_private_model
        from repro.nn import DLRM
        from repro.train import DPConfig
        from repro.testing import make_loader

        def drive(trainer, steps):
            loader = make_loader(config, batch_size=16, num_batches=steps)
            for index, batch, upcoming in LookaheadLoader(loader):
                trainer.train_step(index + 1, batch, upcoming)

        from repro.lazydp import LazyDPTrainer

        flat_model = DLRM(config, seed=7)
        flat_trainer = LazyDPTrainer(flat_model, DPConfig(), noise_seed=99)
        flat_trainer.expected_batch_size = 16
        drive(flat_trainer, 4)
        flat_release = export_private_model(flat_trainer, iteration=4)

        sharded_model = DLRM(config, seed=7)
        sharded_trainer = ShardedLazyDPTrainer(
            sharded_model, DPConfig(), noise_seed=99, num_shards=7,
            partition="hash",
        )
        sharded_trainer.expected_batch_size = 16
        drive(sharded_trainer, 4)
        sharded_release = export_private_model(sharded_trainer, iteration=4)
        sharded_trainer.close()

        assert flat_release.keys() == sharded_release.keys()
        for name in flat_release:
            np.testing.assert_array_equal(
                flat_release[name], sharded_release[name]
            )

    def test_checkpoint_roundtrip_sharded(self, config, tmp_path):
        from repro.lazydp import load_checkpoint, save_checkpoint
        from repro.nn import DLRM
        from repro.train import DPConfig

        model = DLRM(config, seed=7)
        trainer = ShardedLazyDPTrainer(
            model, DPConfig(), noise_seed=99, num_shards=2
        )
        trainer.engine.histories[0].mark_updated(np.array([1, 5, 40]), 2)
        path = tmp_path / "sharded.npz"
        save_checkpoint(path, trainer, iteration=2)

        fresh_model = DLRM(config, seed=7)
        fresh = ShardedLazyDPTrainer(
            fresh_model, DPConfig(), noise_seed=99, num_shards=7,
            partition="hash",
        )
        assert load_checkpoint(path, fresh) == 2
        assert max_param_diff(model, fresh_model) == 0.0
        for original, restored in zip(trainer.engine.histories,
                                      fresh.engine.histories):
            np.testing.assert_array_equal(
                original.snapshot(), restored.snapshot()
            )
        trainer.close()
        fresh.close()
