"""The serving engine's guarantee: read-through catch-up == full flush.

``PrivateServingEngine`` serves privatized embeddings by applying each
row's pending deferred noise at first lookup (memoized) instead of the
stop-the-world flush ``export_private_model`` performs.  Because noise
bits are keyed by ``(seed, table, row, iteration)``, *when* a row is
caught up cannot change its released value — so any mix of lookups
followed by :meth:`export` must produce, row for row, the same arrays
as the one-shot flush at the same iteration.
"""

import threading
import time

import numpy as np
import pytest

from repro import configs
from repro.data import LookaheadLoader
from repro.lazydp import LazyDPTrainer, export_private_model, save_checkpoint
from repro.nn import DLRM
from repro.serve import PrivateServingEngine
from repro.testing import make_loader
from repro.train import DPConfig


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


def drive(trainer, config, steps, batch_size=16):
    """Manually step a trainer ``steps`` iterations (no terminal flush),
    leaving rows genuinely behind on noise — the serving scenario."""
    trainer.expected_batch_size = batch_size
    loader = make_loader(config, batch_size=batch_size, num_batches=steps)
    for index, batch, upcoming in LookaheadLoader(loader):
        trainer.train_step(index + 1, batch, upcoming)
    return trainer


@pytest.fixture
def trainer(config):
    model = DLRM(config, seed=7)
    return drive(LazyDPTrainer(model, DPConfig(), noise_seed=99), config, 4)


class TestExportEquivalence:
    def test_export_matches_flush_row_for_row(self, config, trainer):
        flushed = export_private_model(trainer, iteration=4)
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        served = engine.export()
        assert flushed.keys() == served.keys()
        for name in flushed:
            np.testing.assert_array_equal(flushed[name], served[name])

    def test_partial_lookups_then_export(self, config, trainer):
        """Rows caught up lazily at lookup time and rows caught up by
        the final export land on identical bits."""
        flushed = export_private_model(trainer, iteration=4)
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        engine.lookup(0, np.arange(10))
        engine.lookup(1, np.array([3, 3, 5]))
        served = engine.export()
        for name in flushed:
            np.testing.assert_array_equal(flushed[name], served[name])

    def test_lookup_serves_flushed_bits(self, config, trainer):
        flushed = export_private_model(trainer, iteration=4)
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        rows = np.array([0, 5, 17, 5])
        for table_index, name in enumerate(engine.embedding_names):
            np.testing.assert_array_equal(
                engine.lookup(table_index, rows), flushed[name][rows]
            )

    def test_live_trainer_unaffected(self, config, trainer):
        """Serving must not mutate the live model or its histories."""
        before = {
            name: param.data.copy()
            for name, param in trainer.model.parameters().items()
        }
        histories_before = [
            history.snapshot().copy()
            for history in trainer.engine.histories
        ]
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, snapshot=True
        )
        engine.lookup(0, np.arange(20))
        engine.export()
        for name, param in trainer.model.parameters().items():
            np.testing.assert_array_equal(before[name], param.data)
        for snap, history in zip(histories_before,
                                 trainer.engine.histories):
            np.testing.assert_array_equal(snap, history.snapshot())

    def test_serve_finalized_trainer(self, config):
        """After fit() + terminal flush nothing is pending; serving is a
        plain (but still exact) read."""
        from repro.testing import train_algorithm

        _, _, trainer = train_algorithm("lazydp", config, num_batches=4)
        engine = PrivateServingEngine.from_trainer(trainer)
        assert engine.iteration == 4
        flushed = export_private_model(trainer, iteration=4)
        served = engine.export()
        for name in flushed:
            np.testing.assert_array_equal(flushed[name], served[name])
        assert engine.rows_caught_up == 0   # flush left nothing pending

    def test_sharded_trainer_served_identically(self, config):
        """The sharded engine exposes the flat history/parameter API, so
        serving it matches serving the flat trainer bit for bit."""
        from repro.shard import ShardedLazyDPTrainer

        flat = drive(
            LazyDPTrainer(DLRM(config, seed=7), DPConfig(), noise_seed=99),
            config, 4,
        )
        sharded = drive(
            ShardedLazyDPTrainer(
                DLRM(config, seed=7), DPConfig(), noise_seed=99,
                num_shards=3,
            ),
            config, 4,
        )
        flat_served = PrivateServingEngine.from_trainer(
            flat, iteration=4
        ).export()
        sharded_served = PrivateServingEngine.from_trainer(
            sharded, iteration=4
        ).export()
        for name in flat_served:
            np.testing.assert_array_equal(
                flat_served[name], sharded_served[name]
            )


class TestReadThroughSemantics:
    def test_memoization_counters(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        rows = np.array([1, 2, 3])
        engine.lookup(0, rows)
        first = engine.rows_caught_up
        engine.lookup(0, rows)          # pure memo read
        stats = engine.stats()
        assert engine.rows_caught_up == first
        assert stats["memo_hits"] == 3
        assert stats["rows_served"] == 6

    def test_served_memo_allocated_per_touched_table(self, config, trainer):
        """An engine over a many-table model must not pay a dense copy
        for tables nobody queries."""
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        assert all(served is None for served in engine._served)
        engine.lookup(0, np.array([1, 2]))
        assert engine._served[0] is not None
        assert all(served is None for served in engine._served[1:])
        engine.export()
        assert all(served is not None for served in engine._served)

    def test_duplicate_rows_caught_up_once(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        pending = engine.pending_rows(0)
        row = int(pending[0])
        engine.lookup(0, np.array([row, row, row]))
        assert engine.rows_caught_up == 1

    def test_pending_rows_shrink_as_served(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        before = engine.pending_rows(0)
        assert before.size > 0          # manual stepping left rows behind
        engine.lookup(0, before[:4])
        after = engine.pending_rows(0)
        assert after.size == before.size - 4
        engine.export()
        assert engine.pending_rows(0).size == 0
        assert engine.stats()["rows_still_pending"] == 0

    def test_lookup_batch_covers_all_tables(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        loader = make_loader(config, batch_size=8, num_batches=1)
        batch = loader.batch_for(0)
        outputs = engine.lookup_batch(batch)
        assert len(outputs) == engine.num_tables
        for table_index, values in enumerate(outputs):
            rows = batch.accessed_rows(table_index)
            assert values.shape == (rows.size, config.embedding_dim)

    def test_concurrent_lookups_consistent(self, config, trainer):
        """Racing readers of overlapping rows must all see the same
        (exactly-once caught up) bits."""
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        reference = export_private_model(trainer, iteration=4)
        name = engine.embedding_names[0]
        rows = np.arange(32)
        errors = []

        def reader():
            try:
                for _ in range(10):
                    np.testing.assert_array_equal(
                        engine.lookup(0, rows), reference[name][rows]
                    )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert engine.rows_caught_up <= rows.size


class TestAttachedServing:
    """The staleness fix: an attached engine tracks the live trainer.

    Train -> serve -> train -> serve must agree row-for-row with
    ``export_private_model`` at each point; a frozen (detached) engine
    keeps the old behaviour.
    """

    def continue_drive(self, trainer, config, start, steps, batch_size=16):
        """Step ``steps`` more iterations, numbered after ``start``."""
        loader = make_loader(config, batch_size=batch_size,
                             num_batches=steps, seed=start + 31)
        for index, batch, upcoming in LookaheadLoader(loader):
            trainer.train_step(start + index + 1, batch, upcoming)

    def test_train_serve_train_serve_row_for_row(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        engine.attach(trainer)

        reference = export_private_model(trainer, iteration=4)
        rows = np.arange(16)
        for table_index, name in enumerate(engine.embedding_names):
            np.testing.assert_array_equal(
                engine.lookup(table_index, rows), reference[name][rows]
            )
        assert engine.stats()["iteration"] == 4

        # Training resumes: the memo must invalidate, not go stale.
        self.continue_drive(trainer, config, start=4, steps=2)
        reference = export_private_model(trainer, iteration=6)
        for table_index, name in enumerate(engine.embedding_names):
            np.testing.assert_array_equal(
                engine.lookup(table_index, rows), reference[name][rows]
            )
        stats = engine.stats()
        assert stats["iteration"] == 6
        assert stats["refreshes"] == 1
        assert stats["attached"]

        served = engine.export()
        for name in reference:
            np.testing.assert_array_equal(served[name], reference[name])

    def test_refresh_covers_dense_parameters(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        engine.attach(trainer)
        engine.lookup(0, np.arange(4))
        self.continue_drive(trainer, config, start=4, steps=1)
        served = engine.export()
        reference = export_private_model(trainer, iteration=5)
        dense = [name for name in reference
                 if name not in engine.embedding_names]
        assert dense
        for name in dense:
            np.testing.assert_array_equal(served[name], reference[name])

    def test_detached_engine_stays_frozen(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, snapshot=True
        )
        engine.attach(trainer)
        engine.detach()
        frozen = export_private_model(trainer, iteration=4)
        self.continue_drive(trainer, config, start=4, steps=1)
        served = engine.export()
        for name in frozen:
            np.testing.assert_array_equal(served[name], frozen[name])
        assert engine.stats()["refreshes"] == 0
        assert not engine.stats()["attached"]

    def test_attach_requires_matching_trainer(self, config, trainer):
        other_config = configs.tiny_dlrm(num_tables=2, rows=32, dim=8)
        other = LazyDPTrainer(DLRM(other_config, seed=3), DPConfig(),
                              noise_seed=5)
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        with pytest.raises(ValueError, match="attach"):
            engine.attach(other)

    def test_pending_rows_reflect_refresh(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        engine.attach(trainer)
        engine.lookup(0, engine.pending_rows(0))
        assert engine.pending_rows(0).size == 0
        self.continue_drive(trainer, config, start=4, steps=1)
        # New deferred noise accrued; the refreshed memo owes it again.
        assert engine.pending_rows(0).size > 0

    def test_session_serve_attaches_and_detaches(self, config):
        """TrainSession.serve hands out attached handles; close detaches."""
        from repro.session import ExecutionPlan, TrainSession

        model = DLRM(config, seed=7)
        session = TrainSession.build(model, DPConfig(), ExecutionPlan(),
                                     noise_seed=99)
        drive(session.trainer, config, 3)
        engine = session.serve()
        assert engine.stats()["attached"]
        reference = session.export_private_model()
        served = engine.export()
        for name in reference:
            np.testing.assert_array_equal(served[name], reference[name])
        session.close()
        assert not engine.stats()["attached"]

    def test_session_serve_unfollowed_freezes(self, config):
        from repro.session import ExecutionPlan, TrainSession

        session = TrainSession.build(DLRM(config, seed=7), DPConfig(),
                                     ExecutionPlan(), noise_seed=99)
        drive(session.trainer, config, 3)
        engine = session.serve(follow=False)
        assert not engine.stats()["attached"]
        session.close()


class TestConsistentExport:
    """The torn-snapshot regression: one export, one iteration.

    ``export()`` used to re-acquire the engine lock per table, so a
    trainer stepping mid-export could leave tables caught up at
    different iterations.  The whole export now runs under a single
    write-lock acquisition: a concurrent training step (inside its
    ``quiesce`` window) waits, and every exported table stands at the
    same iteration.
    """

    def test_export_not_torn_by_concurrent_training(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, snapshot=True
        )
        engine.attach(trainer)
        reference = export_private_model(trainer, iteration=4)

        first_table_done = threading.Event()
        original = engine._catch_up

        def paused_catch_up(table_index, rows):
            original(table_index, rows)
            if table_index == 0:
                # Signal the stepper, then dawdle between tables — the
                # window the old per-table locking exposed.
                first_table_done.set()
                time.sleep(0.05)

        engine._catch_up = paused_catch_up
        stepped = threading.Event()

        def stepper():
            first_table_done.wait(timeout=10.0)
            loader = make_loader(config, batch_size=16, num_batches=1,
                                 seed=77)
            for index, batch, upcoming in LookaheadLoader(loader):
                with engine.quiesce():
                    trainer.train_step(5, batch, upcoming)
            stepped.set()

        thread = threading.Thread(target=stepper)
        thread.start()
        served = engine.export()
        thread.join(timeout=10.0)
        engine._catch_up = original
        assert stepped.wait(timeout=10.0)
        # All-or-nothing: every table (and the dense parameters) must
        # come from iteration 4 — the step snuck in after the export,
        # never between its tables.
        for name in reference:
            np.testing.assert_array_equal(served[name], reference[name])
        # And the engine moves on cleanly: the next export serves 5.
        after = engine.export()
        reference5 = export_private_model(trainer, iteration=5)
        for name in reference5:
            np.testing.assert_array_equal(after[name], reference5[name])

    def test_export_audits_exactly_once(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        engine.lookup(0, np.array([1, 5, 5, 9]))
        engine.lookup(2, np.arange(30))
        engine.export()
        engine.audit_exactly_once()

    def test_lookup_versioned_pairs_values_with_iteration(self, config,
                                                          trainer):
        engine = PrivateServingEngine.from_trainer(
            trainer, iteration=4, snapshot=True
        )
        engine.attach(trainer)
        rows = np.array([2, 7, 7, 11])
        name = engine.embedding_names[0]
        values, iteration = engine.lookup_versioned(0, rows)
        assert iteration == 4
        reference = export_private_model(trainer, iteration=4)
        np.testing.assert_array_equal(values, reference[name][rows])
        loader = make_loader(config, batch_size=16, num_batches=1, seed=41)
        for index, batch, upcoming in LookaheadLoader(loader):
            with engine.quiesce():
                trainer.train_step(5, batch, upcoming)
        values, iteration = engine.lookup_versioned(0, rows)
        assert iteration == 5
        reference = export_private_model(trainer, iteration=5)
        np.testing.assert_array_equal(values, reference[name][rows])

    def test_lookup_batch_serves_one_iteration(self, config, trainer):
        """The batch API's cross-table consistency: one read section,
        one iteration for every table in the batch."""
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        reference = export_private_model(trainer, iteration=4)
        rows = [np.array([1, 3, 3]), np.array([], dtype=np.int64),
                np.arange(16)]
        outputs, iteration = engine.lookup_batch_versioned(rows)
        assert iteration == 4
        for table_index, name in enumerate(engine.embedding_names):
            np.testing.assert_array_equal(
                outputs[table_index], reference[name][rows[table_index]]
            )

    def test_lookup_batch_rejects_wrong_arity(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        with pytest.raises(ValueError, match="one row array per table"):
            engine.lookup_batch([np.array([0])])


class TestMultiTenantServing:
    """Several (model, epsilon) snapshots over one set of base slabs."""

    def test_tenants_share_base_slabs_zero_copy(self, config, trainer):
        from repro.serve import MultiTenantServer

        server = MultiTenantServer(trainer)
        low = server.add("low-noise", iteration=4)
        high = server.add("high-noise", iteration=4, noise_std=5.0)
        for table_index in range(low.num_tables):
            assert np.shares_memory(
                low._tables[table_index], high._tables[table_index]
            )
        stats = server.stats()
        assert stats["num_tenants"] == 2
        assert stats["shared_slab_bytes"] == sum(
            t.nbytes for t in low._tables
        )
        server.close()

    def test_epsilon_axis_changes_served_bits(self, config, trainer):
        from repro.serve import MultiTenantServer

        server = MultiTenantServer(trainer)
        faithful = server.add("faithful", iteration=4)
        private = server.add("private", iteration=4, noise_std=5.0)
        rows = np.arange(12)
        name = faithful.embedding_names[0]
        reference = export_private_model(trainer, iteration=4)
        np.testing.assert_array_equal(
            faithful.lookup(0, rows), reference[name][rows]
        )
        assert not np.array_equal(
            private.lookup(0, rows), reference[name][rows]
        )
        assert server.stats()["tenants"]["private"]["noise_std"] == 5.0
        server.close()

    def test_tenant_registry_lifecycle(self, config, trainer):
        from repro.serve import MultiTenantServer

        server = MultiTenantServer(trainer)
        server.add("a", iteration=4)
        server.add("b", iteration=4)
        with pytest.raises(ValueError, match="already registered"):
            server.add("a", iteration=4)
        assert server.names() == ["a", "b"]
        assert server.get("a").stats()["attached"]
        server.remove("a")
        with pytest.raises(KeyError):
            server.get("a")
        assert len(server) == 1
        server.close()
        assert server.names() == []

    def test_session_serve_tenants_closes_with_session(self, config):
        from repro.session import ExecutionPlan, TrainSession

        session = TrainSession.build(DLRM(config, seed=7), DPConfig(),
                                     ExecutionPlan(), noise_seed=99)
        drive(session.trainer, config, 3)
        server = session.serve_tenants()
        engine = server.add("t", iteration=3)
        assert engine.stats()["attached"]
        session.close()
        assert server.names() == []
        assert not engine.stats()["attached"]


class TestServePlanAxis:
    """The ``serve=`` plan axis sizes the hot-row cache per handle."""

    def test_spec_round_trip(self):
        from repro.configs import ServeConfig
        from repro.session import ExecutionPlan

        plan = ExecutionPlan.from_spec("serve=256,admission=3")
        assert plan.serve == ServeConfig(cache_rows=256, admission=3)
        assert ExecutionPlan.from_spec(plan.to_spec()) == plan
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan
        assert ExecutionPlan.from_spec("serve=off").serve is None
        assert ExecutionPlan.from_spec("serve=0").serve is None
        assert "serve" not in ExecutionPlan().to_spec()

    def test_admission_requires_serve_axis(self):
        from repro.session import ExecutionPlan

        with pytest.raises(ValueError, match="admission requires"):
            ExecutionPlan.from_spec("admission=3")
        with pytest.raises(ValueError, match="admission requires"):
            ExecutionPlan.from_spec("serve=0,admission=3")

    def test_session_serve_honours_axis(self, config):
        from repro.session import ExecutionPlan, TrainSession

        plan = ExecutionPlan.from_spec("serve=128,admission=1")
        session = TrainSession.build(DLRM(config, seed=7), DPConfig(),
                                     plan, noise_seed=99)
        drive(session.trainer, config, 3)
        cached = session.serve()
        assert cached.cache is not None
        assert cached.cache.capacity == 128
        assert cached.cache.admission_threshold == 1
        # Handles get their own cache — cached bits are per-engine.
        assert session.serve().cache is not cached.cache
        assert session.serve(cache=False).cache is None
        session.close()


class TestConstructionAndErrors:
    def test_from_checkpoint_round_trip(self, config, trainer, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, trainer, iteration=4)
        noise_std = trainer._last_noise_std
        flushed = export_private_model(trainer, iteration=4)
        engine = PrivateServingEngine.from_checkpoint(
            path, config, noise_std=noise_std
        )
        served = engine.export()
        for name in flushed:
            np.testing.assert_array_equal(flushed[name], served[name])

    def test_requires_iteration_for_unfinalized(self, config, trainer):
        with pytest.raises(ValueError, match="iteration"):
            PrivateServingEngine.from_trainer(trainer)

    def test_requires_noise_std(self, config):
        untrained = LazyDPTrainer(
            DLRM(config, seed=7), DPConfig(), noise_seed=99
        )
        with pytest.raises(ValueError, match="noise_std"):
            PrivateServingEngine.from_trainer(untrained, iteration=0)

    def test_rejects_history_ahead_of_iteration(self, config, trainer):
        with pytest.raises(ValueError, match="ahead"):
            PrivateServingEngine.from_trainer(trainer, iteration=1)

    def test_rejects_out_of_range_rows(self, config, trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        with pytest.raises(IndexError):
            engine.lookup(0, np.array([config.table_rows[0]]))
        with pytest.raises(ValueError, match="1-D"):
            engine.lookup(0, np.zeros((2, 2)))

    def test_rejects_mismatched_snapshots(self, config, trainer):
        parameters = {
            name: param.data
            for name, param in trainer.model.parameters().items()
        }
        names = trainer.model.embedding_param_names
        snapshots = [h.snapshot() for h in trainer.engine.histories]
        with pytest.raises(ValueError, match="one history snapshot"):
            PrivateServingEngine(
                parameters, names, snapshots[:-1], trainer.noise_stream,
                4, 0.05, 1.0,
            )
        with pytest.raises(ValueError, match="covers"):
            PrivateServingEngine(
                parameters, names,
                [snapshots[0][:-1]] + snapshots[1:], trainer.noise_stream,
                4, 0.05, 1.0,
            )


class TestServingObservability:
    """Serving counters must advance exactly per the staleness model.

    ``serve.rows_caught_up`` counts catch-up draws actually performed —
    unique looked-up rows whose history trails the serving iteration;
    ``serve.memo_hits`` counts rows answered without a fresh catch-up
    (duplicates in one lookup, repeats across lookups);
    ``serve.memo_invalidations`` counts refreshes after training
    resumes.  The Observability counters must mirror the engine's own
    attributes bit for bit.
    """

    def continue_drive(self, trainer, config, start, steps, batch_size=16):
        loader = make_loader(config, batch_size=batch_size,
                             num_batches=steps, seed=start + 31)
        for index, batch, upcoming in LookaheadLoader(loader):
            trainer.train_step(start + index + 1, batch, upcoming)

    def _session(self, config):
        from repro.configs import ObservabilityConfig
        from repro.session import ExecutionPlan, TrainSession

        plan = ExecutionPlan(obs=ObservabilityConfig(metrics=True))
        session = TrainSession.build(DLRM(config, seed=7), DPConfig(), plan,
                                     noise_seed=99)
        drive(session.trainer, config, 4)
        return session

    def _serve_counters(self, session):
        counters = session.observability.metrics.snapshot()["counters"]
        return {key: value for key, value in counters.items()
                if key.startswith("serve.")}

    def test_counters_follow_staleness_model(self, config):
        session = self._session(config)
        engine = session.serve(iteration=4)
        rows = np.array([0, 1, 2, 1, 1])   # 3 unique rows, 2 duplicates
        stale = np.intersect1d(np.unique(rows), engine.pending_rows(0))

        engine.lookup(0, rows)
        counters = self._serve_counters(session)
        assert counters["serve.rows_served"] == rows.size
        # Catch-up draws happen only for rows whose history trails the
        # serving iteration; up-to-date rows are marked served for free.
        assert counters["serve.rows_caught_up"] == stale.size
        # Duplicates within the lookup never re-privatize.
        assert counters["serve.memo_hits"] == rows.size - np.unique(rows).size

        # A repeat lookup is pure memo reads: served advances by the
        # row count, memo hits by the same, catch-up not at all.
        engine.lookup(0, rows)
        counters = self._serve_counters(session)
        assert counters["serve.rows_served"] == 2 * rows.size
        assert counters["serve.rows_caught_up"] == stale.size
        assert counters["serve.memo_hits"] == \
            2 * rows.size - np.unique(rows).size
        assert "serve.memo_invalidations" not in counters
        session.close()

    def test_refresh_counts_invalidation_and_new_catchup(self, config):
        session = self._session(config)
        engine = session.serve(iteration=4)
        rows = np.arange(8)
        engine.lookup(0, rows)
        first_caught = self._serve_counters(session)["serve.rows_caught_up"]

        # Training resumes: the next lookup invalidates the memo once
        # and re-privatizes exactly the rows that accrued new noise.
        self.continue_drive(session.trainer, config, start=4, steps=2)
        engine.lookup(0, rows)
        counters = self._serve_counters(session)
        assert counters["serve.memo_invalidations"] == 1
        assert engine.refreshes == 1
        second_caught = counters["serve.rows_caught_up"] - first_caught
        history = session.trainer.engine.histories[0].snapshot()
        expected = int(np.count_nonzero(history[rows] < engine.iteration))
        assert second_caught == expected

        # Serving again without new training must not invalidate again.
        engine.lookup(0, rows)
        assert self._serve_counters(session)[
            "serve.memo_invalidations"] == 1
        session.close()

    def test_counters_mirror_engine_attributes(self, config):
        session = self._session(config)
        engine = session.serve(iteration=4)
        engine.lookup(0, np.array([0, 3, 3, 9]))
        engine.lookup(1, np.arange(12))
        self.continue_drive(session.trainer, config, start=4, steps=1)
        engine.lookup(2, np.array([5, 5]))
        counters = self._serve_counters(session)
        assert counters["serve.rows_served"] == engine.rows_served
        assert counters["serve.rows_caught_up"] == engine.rows_caught_up
        assert counters["serve.memo_hits"] == engine.memo_hits
        assert counters["serve.memo_invalidations"] == engine.refreshes
        stats = session.stats()
        assert stats["metrics"]["counters"] == counters | {
            key: value
            for key, value in stats["metrics"]["counters"].items()
            if not key.startswith("serve.")
        }
        session.close()

    def test_uninstrumented_engine_keeps_attribute_counters(self, config,
                                                            trainer):
        engine = PrivateServingEngine.from_trainer(trainer, iteration=4)
        engine.lookup(0, np.array([1, 1, 2]))
        assert engine.rows_served == 3
        assert engine.memo_hits == 1
        assert engine.obs is not None and not engine.obs.enabled
