"""Async shutdown edge cases: failures must propagate, never deadlock.

Three moving parts can die mid-training — the noise-prefetch worker
(plan/sample), the staging buffer between it and the trainer, and the
async apply worker — and each failure mode must surface as an exception
on the trainer thread's next step rather than leaving a producer or
consumer parked on a condition variable forever.  These are regression
tests with injected failures (a sampler that raises mid-prefetch, an
apply task that raises mid-write); every ``fit`` here is wrapped in a
timeout-free assertion precisely because the historical failure mode is
a hang, not a wrong answer.
"""

import threading
import time

import numpy as np
import pytest

from repro import configs
from repro.async_ import AsyncLazyDPTrainer, AsyncShardedLazyDPTrainer
from repro.async_.apply import ApplyWorker
from repro.nn import DLRM
from repro.pipeline import PipelinedLazyDPTrainer
from repro.testing import make_loader
from repro.train import DPConfig


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=32, dim=8, lookups=2)


def make_trainer(cls, config, **kwargs):
    return cls(
        DLRM(config, seed=7),
        DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                 learning_rate=0.05),
        noise_seed=99, **kwargs,
    )


class TestFailingSamplerPropagates:
    """The satellite regression: a sampler exploding mid-prefetch must
    reach ``train_step`` as an exception, not deadlock the pipeline."""

    def _install_failing_sampler(self, trainer, fail_at_iteration=2):
        original = trainer._sample_catchup

        def failing(plan, dim, noise_std, timer=None):
            if plan.iteration >= fail_at_iteration:
                raise RuntimeError("injected sampler failure")
            return original(plan, dim, noise_std, timer)

        trainer._sample_catchup = failing

    def test_pipelined_trainer_raises(self, config):
        trainer = make_trainer(PipelinedLazyDPTrainer, config)
        self._install_failing_sampler(trainer)
        with pytest.raises(RuntimeError, match="noise-prefetch worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=6))
        assert not trainer._pipeline_running
        trainer.close()

    def test_async_trainer_raises(self, config):
        trainer = make_trainer(AsyncLazyDPTrainer, config, max_in_flight=2)
        self._install_failing_sampler(trainer)
        with pytest.raises(RuntimeError, match="noise-prefetch worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=6))
        assert not trainer._pipeline_running
        trainer.close()

    def test_async_trainer_survives_failure_on_first_plan(self, config):
        trainer = make_trainer(AsyncLazyDPTrainer, config, max_in_flight=4)
        self._install_failing_sampler(trainer, fail_at_iteration=1)
        with pytest.raises(RuntimeError, match="noise-prefetch worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=6))
        trainer.close()


class TestFailingApplyPropagates:
    def _install_failing_apply(self, trainer, fail_at_iteration=2):
        original = trainer._apply_iteration

        def failing(iteration, payloads):
            if iteration >= fail_at_iteration:
                raise RuntimeError("injected apply failure")
            return original(iteration, payloads)

        trainer._apply_iteration = failing

    @pytest.mark.parametrize("staleness", ["strict", "bounded:2"])
    def test_flat_apply_failure_raises(self, config, staleness):
        trainer = make_trainer(
            AsyncLazyDPTrainer, config, max_in_flight=2, staleness=staleness,
        )
        self._install_failing_apply(trainer)
        with pytest.raises(RuntimeError, match="apply worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=8))
        trainer.close()

    def test_sharded_apply_failure_raises(self, config):
        trainer = make_trainer(
            AsyncShardedLazyDPTrainer, config, num_shards=2,
            executor="threads", max_in_flight=2,
        )
        self._install_failing_apply(trainer)
        with pytest.raises(RuntimeError, match="apply worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=8))
        trainer.close()

    def test_failure_with_deep_in_flight_window_no_deadlock(self, config):
        """With the cap far above the iteration count, the failing apply
        must still unblock every later submit (the semaphore-release
        regression)."""
        trainer = make_trainer(
            AsyncLazyDPTrainer, config, max_in_flight=1,
            staleness="bounded:4",
        )
        self._install_failing_apply(trainer, fail_at_iteration=1)
        with pytest.raises(RuntimeError, match="apply worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=8))
        trainer.close()


class TestApplyWorkerUnit:
    def test_fifo_watermark(self):
        worker = ApplyWorker(max_in_flight=2)
        worker.start()
        landed = []
        for iteration in (1, 2, 3):
            worker.submit(iteration, lambda i=iteration: landed.append(i))
        worker.wait_for(3)
        assert landed == [1, 2, 3]
        assert worker.applied_through == 3
        assert worker.applies_completed == 3
        worker.close()

    def test_failure_reraised_on_submit_and_wait(self):
        worker = ApplyWorker(max_in_flight=2)
        worker.start()

        def boom():
            raise ValueError("task exploded")

        worker.submit(1, boom)
        with pytest.raises(RuntimeError, match="apply worker failed"):
            worker.wait_for(1)
        with pytest.raises(RuntimeError, match="apply worker failed"):
            worker.submit(2, lambda: None)
        worker.close()

    def test_failure_frees_blocked_producer(self):
        """A producer blocked on the in-flight cap must wake (and raise)
        after a task failure instead of deadlocking on the semaphore."""
        worker = ApplyWorker(max_in_flight=1)
        worker.start()
        release = threading.Event()

        def slow_boom():
            release.wait(5.0)
            raise ValueError("late explosion")

        worker.submit(1, slow_boom)
        outcome = {}

        def producer():
            try:
                # Blocks on the cap until the failing task finishes.
                worker.submit(2, lambda: None)
                # The error may land after this submit slipped through;
                # the next interaction must still raise.
                worker.wait_for(2)
                outcome["error"] = None
            except RuntimeError as error:
                outcome["error"] = error

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        release.set()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert outcome["error"] is not None
        worker.close()

    def test_wait_for_timeout(self):
        worker = ApplyWorker(max_in_flight=1)
        worker.start()
        gate = threading.Event()
        worker.submit(1, lambda: gate.wait(10.0))
        with pytest.raises(RuntimeError, match="did not reach"):
            worker.wait_for(1, timeout=0.1)
        gate.set()
        worker.close()

    def test_close_idempotent_and_drains_pending(self):
        worker = ApplyWorker(max_in_flight=4)
        worker.start()
        ran = []
        worker.submit(1, lambda: ran.append(1))
        worker.wait_for(1)
        worker.close()
        worker.close()
        assert ran == [1]
        assert not worker.is_alive

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            ApplyWorker(max_in_flight=0)


class TestShutdownLeavesNoThreads:
    def test_fit_failure_leaves_no_stray_threads(self, config):
        baseline = threading.active_count()
        trainer = make_trainer(AsyncLazyDPTrainer, config, max_in_flight=2)

        def boom(iteration, payloads):
            raise RuntimeError("injected apply failure")

        trainer._apply_iteration = boom
        with pytest.raises(RuntimeError):
            trainer.fit(make_loader(config, batch_size=16, num_batches=6))
        trainer.close()
        deadline = time.time() + 5.0
        while threading.active_count() > baseline and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= baseline

    def test_ledger_not_advanced_when_write_itself_fails(self, config):
        """The ledger records a span only after its slab write landed;
        a write that explodes mid-apply must leave the ledger behind so
        the audit reports the lost noise instead of vouching for it."""
        trainer = make_trainer(AsyncLazyDPTrainer, config, max_in_flight=2)
        original = trainer._apply_staged_noise

        def failing_write(bag, sparse_grad, rows, values, timer=None):
            raise RuntimeError("injected write failure")

        trainer._apply_staged_noise = failing_write
        with pytest.raises(RuntimeError, match="apply worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=6))
        trainer.close()
        trainer._apply_staged_noise = original
        for vector in trainer.ledger:
            assert np.all(vector.snapshot() == 0)

    def test_ledger_untouched_after_apply_failure(self, config):
        """A failed apply never advances the ledger for its iteration —
        the audit correctly reports the gap instead of lying."""
        from repro.lazydp import LedgerError

        trainer = make_trainer(AsyncLazyDPTrainer, config, max_in_flight=2)
        original = trainer._apply_iteration

        def failing(iteration, payloads):
            if iteration >= 3:
                raise RuntimeError("injected apply failure")
            return original(iteration, payloads)

        trainer._apply_iteration = failing
        with pytest.raises(RuntimeError):
            trainer.fit(make_loader(config, batch_size=16, num_batches=6))
        trainer.close()
        with pytest.raises(LedgerError):
            trainer.audit_noise_ledger(6)
        for vector in trainer.ledger:
            assert np.all(vector.snapshot() <= 2)
