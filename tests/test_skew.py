"""Tests for Zipf skew calibration and unique-row expectations."""

import numpy as np
import pytest

from repro.data import (
    PAPER_SKEW_TOP_FRACTIONS,
    SkewSpec,
    calibrate_zipf_exponent,
    mass_of_top_fraction,
    paper_skew_spec,
    zipf_weights,
)
from repro.data.skew import expected_unique_rows


class TestZipfWeights:
    def test_descending(self):
        weights = zipf_weights(100, 1.0)
        assert np.all(np.diff(weights) < 0)

    def test_exponent_zero_uniform(self):
        weights = zipf_weights(50, 0.0)
        assert np.all(weights == 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestMassOfTopFraction:
    def test_monotone_in_exponent(self):
        masses = [mass_of_top_fraction(s, 10000, 0.1) for s in (0.1, 0.5, 1.0, 2.0)]
        assert all(a < b for a, b in zip(masses, masses[1:]))

    def test_uniform_limit(self):
        assert mass_of_top_fraction(1e-9, 10000, 0.25) == pytest.approx(0.25, abs=1e-3)

    def test_full_fraction_is_total(self):
        assert mass_of_top_fraction(1.2, 500, 1.0) == pytest.approx(1.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            mass_of_top_fraction(1.0, 100, 0.0)


class TestCalibration:
    @pytest.mark.parametrize("level", ["low", "medium", "high"])
    def test_hits_paper_operating_points(self, level):
        """90% of mass on 36% / 10% / 0.6% of rows (Section 7.3)."""
        rows = 100000
        spec = paper_skew_spec(level, rows)
        assert spec.kind == "zipf"
        achieved = mass_of_top_fraction(
            spec.exponent, rows, PAPER_SKEW_TOP_FRACTIONS[level]
        )
        assert achieved == pytest.approx(0.90, abs=0.002)

    def test_skew_ordering(self):
        rows = 50000
        exponents = [
            paper_skew_spec(level, rows).exponent
            for level in ("low", "medium", "high")
        ]
        assert exponents[0] < exponents[1] < exponents[2]

    def test_random_level_is_uniform(self):
        assert paper_skew_spec("random", 1000).kind == "uniform"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            paper_skew_spec("extreme", 1000)

    def test_calibrate_direct(self):
        exponent = calibrate_zipf_exponent(10000, 0.2, target_mass=0.8)
        assert mass_of_top_fraction(exponent, 10000, 0.2) == pytest.approx(
            0.8, abs=1e-3
        )

    def test_impossible_target_rejected(self):
        # Uniform access already gives 50% mass to the top 50%.
        with pytest.raises(ValueError):
            calibrate_zipf_exponent(1000, 0.5, target_mass=0.3)


class TestSkewSpec:
    def test_uniform_default(self):
        assert SkewSpec().kind == "uniform"

    def test_zipf_requires_exponent(self):
        with pytest.raises(ValueError):
            SkewSpec(kind="zipf", exponent=0.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SkewSpec(kind="pareto")


class TestExpectedUniqueRows:
    def test_zero_draws(self):
        assert expected_unique_rows(100, 0) == 0.0

    def test_single_draw(self):
        assert expected_unique_rows(100, 1) == pytest.approx(1.0)

    def test_bounded_by_rows_and_draws(self):
        value = expected_unique_rows(50, 200)
        assert value <= 50.0
        assert expected_unique_rows(1000000, 200) <= 200.0

    def test_uniform_closed_form(self):
        rows, draws = 1000, 500
        expected = rows * (1 - (1 - 1 / rows) ** draws)
        assert expected_unique_rows(rows, draws) == pytest.approx(expected)

    def test_matches_empirical_uniform(self):
        rows, draws = 500, 800
        rng = np.random.default_rng(0)
        empirical = np.mean([
            np.unique(rng.integers(0, rows, size=draws)).size
            for _ in range(200)
        ])
        assert expected_unique_rows(rows, draws) == pytest.approx(
            empirical, rel=0.02
        )

    def test_matches_empirical_zipf(self):
        rows, draws = 400, 600
        spec = SkewSpec(kind="zipf", exponent=1.1)
        weights = zipf_weights(rows, spec.exponent)
        probabilities = weights / weights.sum()
        rng = np.random.default_rng(1)
        empirical = np.mean([
            np.unique(rng.choice(rows, size=draws, p=probabilities)).size
            for _ in range(200)
        ])
        assert expected_unique_rows(rows, draws, spec) == pytest.approx(
            empirical, rel=0.03
        )

    def test_skew_reduces_unique_footprint(self):
        rows, draws = 10000, 5000
        uniform = expected_unique_rows(rows, draws)
        skewed = expected_unique_rows(
            rows, draws, SkewSpec(kind="zipf", exponent=1.5)
        )
        assert skewed < uniform

    def test_huge_table_no_precision_loss(self):
        """For rows >> draws every draw is distinct."""
        assert expected_unique_rows(7_200_000, 2048) == pytest.approx(
            2048, rel=1e-3
        )

    def test_rejects_negative_draws(self):
        with pytest.raises(ValueError):
            expected_unique_rows(10, -1)
