"""Tests for the untouched-row privacy audit."""

import numpy as np
import pytest

from repro.privacy import AuditResult, audit_untouched_rows


def make_tables(rows=20, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    initial = rng.normal(size=(rows, dim))
    return initial, initial.copy()


class TestAudit:
    def test_eana_style_leak_detected(self):
        """Accessed rows move, untouched rows don't -> perfect attack."""
        initial, final = make_tables()
        accessed = np.array([0, 3, 7])
        final[accessed] += 0.5
        result = audit_untouched_rows(initial, final, accessed)
        assert result.leaks
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.true_positives == 17
        assert result.false_positives == 0

    def test_dp_style_no_leak(self):
        """Every row perturbed (dense noise) -> nothing to flag."""
        initial, final = make_tables(seed=1)
        final += np.random.default_rng(2).normal(scale=1e-3, size=final.shape)
        result = audit_untouched_rows(initial, final, np.array([0, 1]))
        assert not result.leaks
        assert result.flagged_untouched == 0
        assert result.recall == 0.0

    def test_tolerance_widens_flagging(self):
        initial, final = make_tables(seed=3)
        final += 1e-6  # sub-tolerance perturbation everywhere
        accessed = np.array([5])
        final[5] += 1.0
        strict = audit_untouched_rows(initial, final, accessed, atol=0.0)
        loose = audit_untouched_rows(initial, final, accessed, atol=1e-3)
        assert strict.flagged_untouched == 0
        assert loose.flagged_untouched == 19
        assert loose.leaks

    def test_all_rows_accessed(self):
        initial, final = make_tables(rows=4)
        final += 1.0
        result = audit_untouched_rows(initial, final, np.arange(4))
        assert result.recall == 0.0
        assert not result.leaks

    def test_shape_mismatch_rejected(self):
        initial, _ = make_tables()
        with pytest.raises(ValueError):
            audit_untouched_rows(initial, initial[:5], np.array([0]))

    def test_precision_with_false_positives(self):
        result = AuditResult(
            num_rows=10, num_accessed=4, flagged_untouched=4,
            true_positives=2, false_positives=2,
        )
        assert result.precision == 0.5
        assert result.recall == pytest.approx(2 / 6)

    def test_zero_flagged_precision(self):
        result = AuditResult(
            num_rows=10, num_accessed=4, flagged_untouched=0,
            true_positives=0, false_positives=0,
        )
        assert result.precision == 0.0
