"""Tests for the stateless numerical primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import bce_with_logits, bce_with_logits_grad, relu, relu_grad, sigmoid

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-10, 10, 101)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))

    @given(hnp.arrays(np.float64, 10, elements=finite_floats))
    def test_range(self, x):
        out = sigmoid(x)
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)


class TestReLU:
    def test_values(self):
        np.testing.assert_array_equal(
            relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_grad_masks_negative(self):
        x = np.array([-1.0, 0.0, 2.0])
        upstream = np.ones(3)
        np.testing.assert_array_equal(relu_grad(x, upstream), [0.0, 0.0, 1.0])

    def test_grad_scales_upstream(self):
        x = np.array([1.0, 5.0])
        upstream = np.array([2.0, -3.0])
        np.testing.assert_array_equal(relu_grad(x, upstream), [2.0, -3.0])


class TestBCEWithLogits:
    def test_matches_naive_formula(self):
        logits = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        targets = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
        p = sigmoid(logits)
        naive = -(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        np.testing.assert_allclose(
            bce_with_logits(logits, targets), naive, rtol=1e-10
        )

    def test_stable_for_large_logits(self):
        losses = bce_with_logits(np.array([800.0, -800.0]), np.array([0.0, 1.0]))
        assert np.all(np.isfinite(losses))
        assert losses[0] == pytest.approx(800.0)
        assert losses[1] == pytest.approx(800.0)

    def test_zero_loss_when_confidently_correct(self):
        losses = bce_with_logits(np.array([50.0, -50.0]), np.array([1.0, 0.0]))
        assert np.all(losses < 1e-10)

    def test_loss_is_nonnegative(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=100) * 5
        targets = rng.integers(0, 2, size=100).astype(float)
        assert np.all(bce_with_logits(logits, targets) >= 0.0)

    def test_grad_formula(self):
        logits = np.array([0.3, -1.2])
        targets = np.array([1.0, 0.0])
        np.testing.assert_allclose(
            bce_with_logits_grad(logits, targets), sigmoid(logits) - targets
        )

    @given(finite_floats, st.sampled_from([0.0, 1.0]))
    def test_grad_matches_numeric(self, logit, target):
        eps = 1e-6
        numeric = (
            bce_with_logits(np.array([logit + eps]), np.array([target]))[0]
            - bce_with_logits(np.array([logit - eps]), np.array([target]))[0]
        ) / (2 * eps)
        analytic = bce_with_logits_grad(np.array([logit]), np.array([target]))[0]
        assert analytic == pytest.approx(numeric, abs=1e-4)

    def test_grad_bounded(self):
        logits = np.linspace(-100, 100, 201)
        grads = bce_with_logits_grad(logits, np.zeros(201))
        assert np.all(grads >= 0.0)
        assert np.all(grads <= 1.0)
