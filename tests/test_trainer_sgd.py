"""Tests for the non-private SGD baseline."""

import numpy as np
import pytest

from repro import configs
from repro.nn import DLRM

from repro.testing import train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


class TestSGD:
    def test_loss_decreases(self, config):
        _, result, _ = train_algorithm(
            "sgd", config, batch_size=64, num_batches=30,
        )
        first = np.mean(result.mean_losses[:5])
        last = np.mean(result.mean_losses[-5:])
        assert last < first

    def test_sparse_update_only_touches_accessed_rows(self, config):
        model, _, trainer = train_algorithm(
            "sgd", config, batch_size=8, num_batches=1
        )
        reference = DLRM(config, seed=7)  # same init
        for t, bag in enumerate(model.embeddings):
            initial = reference.embeddings[t].table.data
            final = bag.table.data
            changed = ~np.all(final == initial, axis=1)
            # Far fewer rows changed than exist: sparse update.
            assert changed.sum() <= 8 * config.lookups_per_table

    def test_no_privacy_accounting(self, config):
        _, result, trainer = train_algorithm("sgd", config, num_batches=2)
        assert trainer.accountant is None
        assert result.epsilon is None

    def test_stage_timers_populated(self, config):
        _, _, trainer = train_algorithm("sgd", config, num_batches=2)
        stages = trainer.timer.as_dict()
        assert stages["fwd"] > 0
        assert stages["bwd_per_batch"] > 0
        assert stages["noisy_grad_update"] > 0
        assert "noise_sampling" not in stages

    def test_result_metadata(self, config):
        _, result, _ = train_algorithm("sgd", config, num_batches=4)
        assert result.algorithm == "sgd"
        assert result.iterations == 4
        assert len(result.mean_losses) == 4
        assert result.wall_time > 0
        assert result.final_loss == result.mean_losses[-1]

    def test_deterministic_training(self, config):
        model_a, _, _ = train_algorithm("sgd", config, num_batches=3)
        model_b, _, _ = train_algorithm("sgd", config, num_batches=3)
        for name, param in model_a.parameters().items():
            np.testing.assert_array_equal(
                param.data, model_b.parameters()[name].data
            )
