"""Tests for the RDP accountant (subsampled Gaussian mechanism)."""

import numpy as np
import pytest

from repro.privacy import (
    DEFAULT_ORDERS,
    RDPAccountant,
    compute_rdp,
    rdp_gaussian,
    rdp_sampled_gaussian,
    rdp_to_epsilon,
)


class TestSampledGaussianRDP:
    def test_zero_sampling_rate_is_free(self):
        assert rdp_sampled_gaussian(0.0, 1.0, 8) == 0.0

    def test_full_batch_matches_gaussian(self):
        for alpha in (2, 8, 32):
            assert rdp_sampled_gaussian(1.0, 1.3, alpha) == pytest.approx(
                rdp_gaussian(1.3, alpha)
            )

    def test_zero_noise_is_infinite(self):
        assert rdp_sampled_gaussian(0.5, 0.0, 2) == float("inf")

    def test_monotone_in_q(self):
        values = [rdp_sampled_gaussian(q, 1.1, 8) for q in (0.01, 0.1, 0.5, 1.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_antitone_in_sigma(self):
        values = [rdp_sampled_gaussian(0.1, s, 8) for s in (0.8, 1.0, 2.0, 4.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_subsampling_amplifies_privacy(self):
        q = 0.01
        subsampled = rdp_sampled_gaussian(q, 1.0, 4)
        full = rdp_gaussian(1.0, 4)
        assert subsampled < full * q  # much better than linear scaling

    def test_small_q_quadratic_behaviour(self):
        """For q -> 0 the leading term is O(q^2 alpha / sigma^2)."""
        sigma, alpha = 1.0, 4
        rdp_small = rdp_sampled_gaussian(1e-4, sigma, alpha)
        rdp_half = rdp_sampled_gaussian(5e-5, sigma, alpha)
        assert rdp_small / rdp_half == pytest.approx(4.0, rel=0.1)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            rdp_sampled_gaussian(0.1, 1.0, 1)
        with pytest.raises(ValueError):
            rdp_sampled_gaussian(0.1, 1.0, 0.5)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            rdp_sampled_gaussian(1.5, 1.0, 2)

    def test_nonnegative(self):
        for q in (0.001, 0.1, 0.9):
            for alpha in (1.5, 2, 16, 128):
                assert rdp_sampled_gaussian(q, 2.0, alpha) >= 0.0


class TestFractionalOrders:
    """The erfc-series computation for non-integer alpha."""

    @pytest.mark.parametrize("alpha", [2, 3, 5, 16])
    def test_continuity_at_integer_orders(self, alpha):
        """Fractional formula just off an integer ~= integer formula."""
        q, sigma = 0.01, 1.1
        exact = rdp_sampled_gaussian(q, sigma, alpha)
        near = rdp_sampled_gaussian(q, sigma, alpha + 1e-6)
        assert near == pytest.approx(exact, rel=1e-3)

    def test_fractional_matches_frac_formula_directly(self):
        from repro.privacy.accountant import _rdp_sampled_gaussian_frac
        assert rdp_sampled_gaussian(0.02, 1.3, 2.5) == pytest.approx(
            _rdp_sampled_gaussian_frac(0.02, 1.3, 2.5)
        )

    def test_rdp_nondecreasing_in_alpha(self):
        """epsilon(alpha) is nondecreasing in alpha for any mechanism."""
        q, sigma = 0.01, 1.1
        orders = [1.25, 1.5, 1.75, 2, 2.5, 3, 4.5, 8, 16]
        values = [rdp_sampled_gaussian(q, sigma, a) for a in orders]
        for low, high in zip(values, values[1:]):
            assert high >= low * (1 - 1e-9)

    def test_fractional_q1_matches_gaussian(self):
        assert rdp_sampled_gaussian(1.0, 2.0, 1.5) == pytest.approx(
            rdp_gaussian(2.0, 1.5)
        )

    def test_low_orders_tighten_small_budgets(self):
        """With many steps at moderate q, some optimum lands below the
        integer grid — fractional orders must not hurt and often help."""
        rdp = compute_rdp(0.05, 4.0, 5000)
        epsilon, best_order = rdp_to_epsilon(rdp, 1e-5)
        assert epsilon > 0
        integer_only = [o for o in DEFAULT_ORDERS if float(o) == int(o)]
        rdp_int = compute_rdp(0.05, 4.0, 5000, orders=integer_only)
        eps_int, _ = rdp_to_epsilon(rdp_int, 1e-5, orders=integer_only)
        assert epsilon <= eps_int + 1e-12


class TestComputeRDP:
    def test_linear_in_steps(self):
        one = compute_rdp(0.01, 1.1, 1)
        hundred = compute_rdp(0.01, 1.1, 100)
        np.testing.assert_allclose(hundred, 100 * one)

    def test_zero_steps(self):
        assert np.all(compute_rdp(0.01, 1.1, 0) == 0.0)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            compute_rdp(0.01, 1.1, -1)


class TestEpsilonConversion:
    def test_epsilon_positive_and_finite(self):
        rdp = compute_rdp(0.01, 1.1, 1000)
        epsilon, order = rdp_to_epsilon(rdp, 1e-5)
        assert 0.0 < epsilon < 100.0
        assert order in DEFAULT_ORDERS

    def test_epsilon_grows_with_steps(self):
        eps = [
            rdp_to_epsilon(compute_rdp(0.01, 1.1, steps), 1e-5)[0]
            for steps in (10, 100, 1000, 10000)
        ]
        assert all(a < b for a, b in zip(eps, eps[1:]))

    def test_epsilon_shrinks_with_sigma(self):
        eps = [
            rdp_to_epsilon(compute_rdp(0.01, sigma, 1000), 1e-5)[0]
            for sigma in (0.8, 1.1, 2.0, 4.0)
        ]
        assert all(a > b for a, b in zip(eps, eps[1:]))

    def test_epsilon_grows_as_delta_shrinks(self):
        rdp = compute_rdp(0.01, 1.1, 1000)
        eps_loose = rdp_to_epsilon(rdp, 1e-3)[0]
        eps_tight = rdp_to_epsilon(rdp, 1e-9)[0]
        assert eps_tight > eps_loose

    def test_rejects_bad_delta(self):
        rdp = compute_rdp(0.01, 1.1, 10)
        with pytest.raises(ValueError):
            rdp_to_epsilon(rdp, 0.0)
        with pytest.raises(ValueError):
            rdp_to_epsilon(rdp, 1.0)

    def test_gaussian_mechanism_sanity(self):
        """One full-batch step with sigma=1 at delta=1e-5: eps ~ a few.

        The classical bound for the Gaussian mechanism gives
        eps ~ sqrt(2 ln(1.25/delta))/sigma ~ 4.8; RDP should land in the
        same ballpark (and not be wildly off in either direction).
        """
        rdp = compute_rdp(1.0, 1.0, 1)
        epsilon, _ = rdp_to_epsilon(rdp, 1e-5)
        assert 2.0 < epsilon < 8.0

    def test_matches_known_opacus_ballpark(self):
        """sigma=1.1, q=256/60000, 1 epoch-ish of MNIST steps.

        Opacus' tutorial setting reports eps ~ 1 after ~1 epoch at
        delta=1e-5; assert the same order of magnitude.
        """
        q = 256 / 60000
        steps = 60000 // 256
        rdp = compute_rdp(q, 1.1, steps)
        epsilon, _ = rdp_to_epsilon(rdp, 1e-5)
        assert 0.3 < epsilon < 2.0


class TestAccountant:
    def test_steps_accumulate_and_coalesce(self):
        accountant = RDPAccountant()
        for _ in range(5):
            accountant.step(1.1, 0.01)
        assert accountant.steps == 5
        assert len(accountant._history) == 1

    def test_heterogeneous_runs(self):
        accountant = RDPAccountant()
        accountant.step(1.1, 0.01, count=10)
        accountant.step(2.0, 0.01, count=10)
        assert accountant.steps == 20
        assert len(accountant._history) == 2

    def test_matches_direct_computation(self):
        accountant = RDPAccountant()
        accountant.step(1.1, 0.02, count=500)
        direct = compute_rdp(0.02, 1.1, 500)
        np.testing.assert_allclose(accountant.total_rdp(), direct)
        assert accountant.get_epsilon(1e-5) == pytest.approx(
            rdp_to_epsilon(direct, 1e-5)[0]
        )

    def test_get_privacy_spent_returns_order(self):
        accountant = RDPAccountant()
        accountant.step(1.1, 0.01, count=100)
        epsilon, order = accountant.get_privacy_spent(1e-5)
        assert epsilon > 0
        assert order >= 2

    def test_rejects_bad_count(self):
        accountant = RDPAccountant()
        with pytest.raises(ValueError):
            accountant.step(1.1, 0.01, count=0)

    def test_sequential_composition_additivity(self):
        split = RDPAccountant()
        split.step(1.1, 0.01, count=300)
        split.step(1.1, 0.01, count=700)
        joint = RDPAccountant()
        joint.step(1.1, 0.01, count=1000)
        np.testing.assert_allclose(split.total_rdp(), joint.total_rdp())
