"""Tests for the assembled DLRM model and its DP gradient views."""

import numpy as np
import pytest

from repro import configs
from repro.data import SyntheticClickDataset
from repro.nn import DLRM

from repro.testing import numeric_gradient


@pytest.fixture
def setup():
    config = configs.tiny_dlrm(num_tables=2, rows=16, dim=4, lookups=2)
    model = DLRM(config, seed=1)
    dataset = SyntheticClickDataset(config, seed=2)
    batch = dataset.batch(np.arange(5))
    return config, model, batch


class TestConstruction:
    def test_parameter_inventory(self, setup):
        config, model, _ = setup
        params = model.parameters()
        # bottom: 2 linears, top: 2 linears -> 8 dense params + 2 tables.
        assert len(params) == 10
        assert len(model.embedding_parameters()) == 2
        assert len(model.dense_parameters()) == 8

    def test_same_seed_same_weights(self, setup):
        config, model, _ = setup
        clone = DLRM(config, seed=1)
        for name, param in model.parameters().items():
            np.testing.assert_array_equal(param.data, clone.parameters()[name].data)

    def test_different_seed_different_weights(self, setup):
        config, model, _ = setup
        other = DLRM(config, seed=2)
        assert any(
            not np.array_equal(param.data, other.parameters()[name].data)
            for name, param in model.parameters().items()
        )

    def test_parameter_count_matches_config(self, setup):
        config, model, _ = setup
        assert model.parameter_count() == (
            config.mlp_params + config.total_embedding_params
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            configs.DLRMConfig(
                name="bad", dense_features=4, bottom_mlp=(8, 9),
                embedding_dim=8, table_rows=(10,), lookups_per_table=1,
                top_mlp=(4, 1),
            )
        with pytest.raises(ValueError):
            configs.DLRMConfig(
                name="bad", dense_features=4, bottom_mlp=(8,),
                embedding_dim=8, table_rows=(10,), lookups_per_table=0,
                top_mlp=(4, 1),
            )


class TestForward:
    def test_logit_shape(self, setup):
        _, model, batch = setup
        assert model.forward(batch).shape == (5,)

    def test_loss_shape_and_finite(self, setup):
        _, model, batch = setup
        losses = model.loss(batch)
        assert losses.shape == (5,)
        assert np.all(np.isfinite(losses))
        assert np.all(losses >= 0.0)

    def test_rejects_table_mismatch(self, setup):
        config, model, _ = setup
        other_config = configs.tiny_dlrm(num_tables=3, rows=16, dim=4)
        other_batch = SyntheticClickDataset(other_config, seed=0).batch(
            np.arange(2)
        )
        with pytest.raises(ValueError):
            model.forward(other_batch)

    def test_loss_grad_requires_forward(self, setup):
        config, _, batch = setup
        fresh = DLRM(config, seed=3)
        with pytest.raises(RuntimeError):
            fresh.loss_grad_per_example(batch)

    def test_deterministic_forward(self, setup):
        _, model, batch = setup
        np.testing.assert_array_equal(model.forward(batch), model.forward(batch))


class TestGradients:
    def test_embedding_grad_numeric(self, setup):
        """Full-model gradcheck through to an embedding table."""
        _, model, batch = setup
        table = model.embeddings[0].table
        original = table.data.copy()
        # Only check rows the batch actually touches (others have zero grad).
        touched = batch.accessed_rows(0)

        def total_loss(table_values):
            table.data = table_values
            return float(model.loss(batch).sum())

        numeric = numeric_gradient(total_loss, original.copy())
        table.data = original
        model.loss(batch)
        model.backward(model.loss_grad_per_example(batch))
        sparse = model.batch_grads()[table.name]
        dense = sparse.to_dense(table.data.shape[0])
        np.testing.assert_allclose(dense[touched], numeric[touched], atol=1e-5)
        untouched = np.setdiff1d(np.arange(table.data.shape[0]), touched)
        assert np.all(numeric[untouched] == 0.0)

    def test_mlp_weight_grad_numeric(self, setup):
        _, model, batch = setup
        linear = model.top_mlp.linears[-1]
        original = linear.weight.data.copy()

        def total_loss(weight_values):
            linear.weight.data = weight_values
            return float(model.loss(batch).sum())

        numeric = numeric_gradient(total_loss, original.copy())
        linear.weight.data = original
        model.loss(batch)
        model.backward(model.loss_grad_per_example(batch))
        grads = model.batch_grads()
        np.testing.assert_allclose(
            grads[linear.weight.name], numeric, atol=1e-5
        )

    def test_per_example_dense_sums_to_batch(self, setup):
        _, model, batch = setup
        model.loss(batch)
        model.backward(model.loss_grad_per_example(batch))
        per_example = model.per_example_dense_grads()
        batch_grads = model.batch_grads()
        for name, grad in per_example.items():
            np.testing.assert_allclose(
                grad.sum(axis=0), batch_grads[name], atol=1e-10
            )

    def test_ghost_norms_match_materialised(self, setup):
        """DP-SGD(F)'s norms equal DP-SGD(B)'s, across the whole model."""
        config, model, batch = setup
        model.loss(batch)
        model.backward(model.loss_grad_per_example(batch))
        ghost = model.ghost_norm_sq()
        expected = np.zeros(batch.size)
        for grad in model.per_example_dense_grads().values():
            expected += (grad.reshape(batch.size, -1) ** 2).sum(axis=1)
        for t, pairs in enumerate(model.per_example_embedding_pairs().values()):
            rows = config.table_rows[t]
            dense = pairs.dense_per_example(rows)
            expected += (dense.reshape(batch.size, -1) ** 2).sum(axis=1)
        np.testing.assert_allclose(ghost, expected, rtol=1e-9)

    def test_weighted_grads_match_per_example_combination(self, setup):
        _, model, batch = setup
        model.loss(batch)
        model.backward(model.loss_grad_per_example(batch))
        weights = np.linspace(0.2, 1.0, batch.size)
        weighted = model.weighted_grads(weights)
        per_example = model.per_example_dense_grads()
        for name, grad in per_example.items():
            np.testing.assert_allclose(
                weighted[name],
                np.einsum("b...,b->...", grad, weights),
                atol=1e-10,
            )
