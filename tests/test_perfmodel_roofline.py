"""Tests for the AVX roofline model (Figure 6)."""

import pytest

from repro.perfmodel import (
    effective_avx_gflops,
    noise_sampling_throughput,
    noisy_update_throughput,
    paper_system,
    ridge_point,
    sweep,
)


@pytest.fixture
def hw():
    return paper_system()


class TestRoofline:
    def test_zero_ops_zero_throughput(self, hw):
        assert effective_avx_gflops(0, hw) == 0.0

    def test_monotone_nondecreasing(self, hw):
        values = [effective_avx_gflops(n, hw) for n in range(1, 125)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_memory_bound_region_linear(self, hw):
        """Below the ridge, doubling N doubles throughput."""
        low = effective_avx_gflops(2, hw)
        double = effective_avx_gflops(4, hw)
        assert double == pytest.approx(2 * low)

    def test_compute_bound_plateau(self, hw):
        """Beyond the ridge, throughput is flat at 81% of peak."""
        plateau = hw.cpu.effective_gflops
        assert effective_avx_gflops(101, hw) == pytest.approx(plateau)
        assert effective_avx_gflops(124, hw) == pytest.approx(plateau)

    def test_noise_sampling_point_matches_paper(self, hw):
        """N=101 must land at ~215 GFLOPS (81% of 265)."""
        assert noise_sampling_throughput(hw) == pytest.approx(215.0, rel=0.01)

    def test_noisy_update_point_is_memory_bound(self, hw):
        """N=2: throughput = 2 ops * 85.5% of 68 GB/s / 8 B = 14.5 GFLOPS."""
        expected = 2 * 0.855 * 68e9 / 8 / 1e9
        assert noisy_update_throughput(hw) == pytest.approx(expected)

    def test_ridge_point_location(self, hw):
        """Crossover where N * BW/bytes == compute ceiling."""
        ridge = ridge_point(hw)
        assert 20 < ridge < 40
        below = effective_avx_gflops(ridge * 0.9, hw)
        assert below < hw.cpu.effective_gflops

    def test_sweep_shape(self, hw):
        n_values, gflops = sweep(hw)
        assert n_values.shape == gflops.shape
        assert n_values[0] == 0
        assert gflops[-1] == pytest.approx(hw.cpu.effective_gflops)

    def test_sweep_custom_points(self, hw):
        n_values, gflops = sweep(hw, n_values=[2, 101])
        assert gflops[0] == pytest.approx(noisy_update_throughput(hw))
        assert gflops[1] == pytest.approx(noise_sampling_throughput(hw))


class TestPaperSystem:
    def test_hardware_constants(self, hw):
        assert hw.cpu.dram_bandwidth == pytest.approx(68e9)
        assert hw.gpu.hbm_bandwidth == pytest.approx(900e9)
        assert hw.pcie_bandwidth == pytest.approx(16e9)
        assert hw.cpu.dram_capacity == 256 * 10**9
        assert hw.gpu.hbm_capacity == 32 * 10**9

    def test_efficiency_fractions_match_section43(self, hw):
        assert hw.cpu.compute_efficiency == pytest.approx(0.81)
        assert hw.cpu.stream_efficiency == pytest.approx(0.855)
