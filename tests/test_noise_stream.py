"""Tests for the coordinate-keyed NoiseStream.

The stream's defining property — values are pure functions of their
coordinates — is what turns the paper's equivalence argument into exact
assertions, so these tests are strict about independence across every axis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.rng import NoiseStream


@pytest.fixture
def stream():
    return NoiseStream(seed=1234)


class TestRowNoise:
    def test_shape(self, stream):
        noise = stream.row_noise(0, np.arange(5), iteration=1, dim=7)
        assert noise.shape == (5, 7)

    def test_deterministic(self, stream):
        rows = np.array([3, 17, 42])
        a = stream.row_noise(1, rows, iteration=4, dim=8)
        b = stream.row_noise(1, rows, iteration=4, dim=8)
        assert np.array_equal(a, b)

    def test_independent_of_batch_composition(self, stream):
        """Row 17's noise must not depend on which rows accompany it."""
        alone = stream.row_noise(0, np.array([17]), iteration=2, dim=8)
        grouped = stream.row_noise(0, np.array([3, 17, 99]), iteration=2, dim=8)
        assert np.array_equal(alone[0], grouped[1])

    def test_varies_with_iteration(self, stream):
        rows = np.array([5])
        a = stream.row_noise(0, rows, iteration=1, dim=8)
        b = stream.row_noise(0, rows, iteration=2, dim=8)
        assert not np.array_equal(a, b)

    def test_varies_with_table(self, stream):
        rows = np.array([5])
        a = stream.row_noise(0, rows, iteration=1, dim=8)
        b = stream.row_noise(1, rows, iteration=1, dim=8)
        assert not np.array_equal(a, b)

    def test_varies_with_row(self, stream):
        noise = stream.row_noise(0, np.array([1, 2]), iteration=1, dim=8)
        assert not np.array_equal(noise[0], noise[1])

    def test_varies_with_seed(self):
        rows = np.array([5])
        a = NoiseStream(1).row_noise(0, rows, 1, 8)
        b = NoiseStream(2).row_noise(0, rows, 1, 8)
        assert not np.array_equal(a, b)

    def test_std_scaling(self, stream):
        unit = stream.row_noise(0, np.array([9]), 3, 16, std=1.0)
        scaled = stream.row_noise(0, np.array([9]), 3, 16, std=2.5)
        np.testing.assert_allclose(scaled, 2.5 * unit)

    def test_dim_prefix_property(self, stream):
        """Asking for fewer lanes returns a prefix of the wider request."""
        wide = stream.row_noise(0, np.array([4]), 1, 16)
        narrow = stream.row_noise(0, np.array([4]), 1, 8)
        assert np.array_equal(wide[:, :8], narrow)

    def test_non_multiple_of_four_dim(self, stream):
        noise = stream.row_noise(0, np.arange(3), 1, dim=5)
        assert noise.shape == (3, 5)

    def test_empty_rows(self, stream):
        noise = stream.row_noise(0, np.array([], dtype=np.int64), 1, 8)
        assert noise.shape == (0, 8)

    def test_rejects_bad_dim(self, stream):
        with pytest.raises(ValueError):
            stream.row_noise(0, np.arange(2), 1, dim=0)

    def test_rejects_2d_rows(self, stream):
        with pytest.raises(ValueError):
            stream.row_noise(0, np.zeros((2, 2), dtype=np.int64), 1, 8)

    def test_large_row_indices(self, stream):
        """Rows beyond 2^32 exercise the high counter word."""
        rows = np.array([2**33, 2**33 + 1], dtype=np.uint64)
        noise = stream.row_noise(0, rows, 1, 4)
        assert not np.array_equal(noise[0], noise[1])

    def test_gaussian_statistics(self, stream):
        noise = stream.row_noise(0, np.arange(2000), 1, 64)
        flat = noise.ravel()
        assert abs(flat.mean()) < 0.01
        assert abs(flat.std() - 1.0) < 0.01
        _, p_value = stats.kstest(flat[:20000], "norm")
        assert p_value > 0.001


class TestRowNoiseSum:
    def test_equals_manual_sum(self, stream):
        rows = np.array([1, 5, 9])
        total = stream.row_noise_sum(2, rows, 3, 6, dim=8, std=0.7)
        manual = sum(
            stream.row_noise(2, rows, it, 8, std=0.7) for it in range(3, 7)
        )
        np.testing.assert_allclose(total, manual)

    def test_empty_range_is_zero(self, stream):
        total = stream.row_noise_sum(0, np.array([1]), 5, 4, dim=8)
        assert np.all(total == 0.0)

    def test_single_iteration_range(self, stream):
        rows = np.array([2])
        total = stream.row_noise_sum(0, rows, 4, 4, dim=8)
        single = stream.row_noise(0, rows, 4, 8)
        np.testing.assert_allclose(total, single)


class TestAggregatedRowNoise:
    def test_zero_delay_gives_zero(self, stream):
        noise = stream.aggregated_row_noise(
            0, np.array([1, 2]), np.array([0, 3]), iteration=5, dim=8
        )
        assert np.all(noise[0] == 0.0)
        assert not np.all(noise[1] == 0.0)

    def test_variance_scales_with_delay(self, stream):
        """Theorem 5.1: aggregated draw has variance delay * std^2."""
        rows = np.arange(4000)
        for delay in (1, 4, 16):
            noise = stream.aggregated_row_noise(
                0, rows, np.full(rows.shape, delay), iteration=1, dim=16,
                std=1.0,
            )
            observed = noise.ravel().std()
            assert observed == pytest.approx(np.sqrt(delay), rel=0.02)

    def test_independent_of_row_noise_domain(self, stream):
        """ANS draws must never collide with per-iteration draws."""
        rows = np.array([7])
        ans = stream.aggregated_row_noise(
            0, rows, np.array([1]), iteration=3, dim=8
        )
        per_iter = stream.row_noise(0, rows, 3, 8)
        assert not np.allclose(ans, per_iter)

    def test_rejects_negative_delays(self, stream):
        with pytest.raises(ValueError):
            stream.aggregated_row_noise(
                0, np.array([1]), np.array([-1]), 1, 8
            )

    def test_rejects_misaligned_delays(self, stream):
        with pytest.raises(ValueError):
            stream.aggregated_row_noise(
                0, np.array([1, 2]), np.array([1]), 1, 8
            )

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=50))
    def test_deterministic_for_any_delay(self, delay):
        stream = NoiseStream(7)
        rows = np.array([11])
        delays = np.array([delay])
        a = stream.aggregated_row_noise(1, rows, delays, 9, 4)
        b = stream.aggregated_row_noise(1, rows, delays, 9, 4)
        assert np.array_equal(a, b)


class TestDenseAndInit:
    def test_dense_noise_shape(self, stream):
        noise = stream.dense_noise(3, iteration=2, shape=(4, 5), std=0.1)
        assert noise.shape == (4, 5)

    def test_dense_noise_varies_with_param(self, stream):
        a = stream.dense_noise(1, 1, (8,))
        b = stream.dense_noise(2, 1, (8,))
        assert not np.array_equal(a, b)

    def test_dense_noise_varies_with_iteration(self, stream):
        a = stream.dense_noise(1, 1, (8,))
        b = stream.dense_noise(1, 2, (8,))
        assert not np.array_equal(a, b)

    def test_init_values_deterministic(self, stream):
        a = stream.init_values(0, (3, 3), std=0.5)
        b = NoiseStream(1234).init_values(0, (3, 3), std=0.5)
        np.testing.assert_array_equal(a, b)

    def test_init_values_std(self, stream):
        values = stream.init_values(5, (300, 300), std=0.02)
        assert values.std() == pytest.approx(0.02, rel=0.02)
