"""Tests for the membership-inference attack and the DP bound."""

import numpy as np
import pytest

from repro import configs
from repro.testing import trainer_for
from repro.data import SyntheticClickDataset
from repro.nn import DLRM
from repro.privacy.membership import (
    MembershipAttackResult,
    dp_advantage_bound,
    loss_threshold_attack,
)
from repro.train import DPConfig


def overfit_and_attack(algorithm, sigma, epochs=60, seed=0):
    """Overfit a small member set, then attack with fresh non-members."""
    config = configs.tiny_dlrm(num_tables=2, rows=32, dim=8, lookups=2)
    dataset = SyntheticClickDataset(config, seed=seed, num_examples=256)
    member_ids = np.arange(64)
    non_member_ids = np.arange(128, 192)

    model = DLRM(config, seed=seed + 1)
    dp = DPConfig(noise_multiplier=sigma, max_grad_norm=1.0,
                  learning_rate=0.3)
    trainer = trainer_for(algorithm, model, dp, noise_seed=seed + 2)
    trainer.expected_batch_size = 64
    member_batch = dataset.batch(member_ids)
    # Repeatedly train on the same members: worst case for privacy.
    for iteration in range(1, epochs + 1):
        trainer.train_step(iteration, member_batch, member_batch)
    trainer.finalize(epochs)
    return loss_threshold_attack(
        model, member_batch, dataset.batch(non_member_ids)
    )


class TestAttackMechanics:
    def test_separable_losses_give_high_auc(self):
        """Direct check on the statistic, no training involved."""
        config = configs.tiny_dlrm(num_tables=1, rows=16, dim=4, lookups=1)
        model = DLRM(config, seed=0)
        dataset = SyntheticClickDataset(config, seed=1, num_examples=64)
        result = loss_threshold_attack(
            model, dataset.batch(np.arange(16)),
            dataset.batch(np.arange(32, 48)),
        )
        assert isinstance(result, MembershipAttackResult)
        assert 0.0 <= result.auc <= 1.0
        assert 0.5 <= result.best_accuracy <= 1.0
        assert -1.0 <= result.advantage <= 1.0

    def test_untrained_model_gives_chance_level(self):
        """Before training, members and non-members are exchangeable."""
        config = configs.tiny_dlrm(num_tables=2, rows=32, dim=8, lookups=2)
        model = DLRM(config, seed=5)
        dataset = SyntheticClickDataset(config, seed=6, num_examples=4096)
        aucs = []
        for offset in range(0, 2048, 512):
            result = loss_threshold_attack(
                model,
                dataset.batch(np.arange(offset, offset + 256)),
                dataset.batch(np.arange(offset + 2048, offset + 2048 + 256)),
            )
            aucs.append(result.auc)
        assert abs(np.mean(aucs) - 0.5) < 0.06


class TestDPReducesLeakage:
    def test_overfit_nonprivate_model_leaks(self):
        result = overfit_and_attack("sgd", sigma=0.0)
        assert result.member_mean_loss < result.non_member_mean_loss
        assert result.auc > 0.6

    def test_heavy_noise_suppresses_the_attack(self):
        """Strong DP noise must shrink the attack's advantage."""
        non_private = overfit_and_attack("sgd", sigma=0.0)
        private = overfit_and_attack("lazydp", sigma=4.0)
        assert private.advantage < non_private.advantage

    def test_lazydp_leaks_no_more_than_eager(self):
        """Same model => same attack surface."""
        lazy = overfit_and_attack("lazydp_no_ans", sigma=1.0)
        eager = overfit_and_attack("dpsgd_f", sigma=1.0)
        assert lazy.auc == pytest.approx(eager.auc, abs=1e-9)


class TestDPBound:
    def test_zero_epsilon_zero_advantage(self):
        assert dp_advantage_bound(0.0) == 0.0

    def test_monotone_in_epsilon(self):
        bounds = [dp_advantage_bound(e) for e in (0.1, 0.5, 1.0, 4.0)]
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_approaches_one(self):
        assert dp_advantage_bound(20.0) == pytest.approx(1.0, abs=1e-6)

    def test_delta_contributes(self):
        assert dp_advantage_bound(1.0, 1e-2) > dp_advantage_bound(1.0, 0.0)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            dp_advantage_bound(-1.0)
        with pytest.raises(ValueError):
            dp_advantage_bound(1.0, delta=2.0)
