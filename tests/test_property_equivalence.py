"""Property-based equivalence: LazyDP == DP-SGD on *random* geometries.

The handwritten equivalence tests pin one configuration; these let
hypothesis pick the model geometry, batch size, iteration count, pooling
factor and seeds — if any corner of the configuration space broke the
lazy-schedule argument (tiny tables, pooling larger than the table,
single-iteration runs, batch bigger than unique rows, ...), this is where
it would surface.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.configs import DLRMConfig
from repro.testing import trainer_for
from repro.data import DataLoader, LookaheadLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.train import DPConfig

from repro.testing import max_param_diff


geometries = st.fixed_dictionaries({
    "num_tables": st.integers(min_value=1, max_value=4),
    "rows": st.integers(min_value=4, max_value=96),
    "dim": st.sampled_from([2, 4, 8]),
    "lookups": st.integers(min_value=1, max_value=6),
    "batch": st.integers(min_value=1, max_value=24),
    "iterations": st.integers(min_value=1, max_value=7),
    "seed": st.integers(min_value=0, max_value=10_000),
})


def build_config(params) -> DLRMConfig:
    return DLRMConfig(
        name="prop",
        dense_features=3,
        bottom_mlp=(4, params["dim"]),
        embedding_dim=params["dim"],
        table_rows=(params["rows"],) * params["num_tables"],
        lookups_per_table=params["lookups"],
        top_mlp=(4, 1),
    )


def train(algorithm, params, dp=None):
    config = build_config(params)
    model = DLRM(config, seed=params["seed"] + 1)
    dataset = SyntheticClickDataset(
        config, seed=params["seed"] + 2, num_examples=512
    )
    loader = DataLoader(
        dataset, batch_size=min(params["batch"], 512),
        num_batches=params["iterations"], seed=params["seed"] + 3,
    )
    trainer = trainer_for(
        algorithm, model, dp or DPConfig(), noise_seed=params["seed"] + 4
    )
    trainer.fit(loader)
    return model, trainer


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(geometries)
def test_lazydp_exactly_matches_eager_dpsgd(params):
    """The central theorem, quantified over geometry."""
    eager, _ = train("dpsgd_f", params)
    lazy, _ = train("lazydp_no_ans", params)
    assert max_param_diff(eager, lazy) < 1e-9


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(geometries)
def test_variant_family_agrees(params):
    """B == F for arbitrary geometry (R == B is covered elsewhere)."""
    model_b, _ = train("dpsgd_b", params)
    model_f, _ = train("dpsgd_f", params)
    assert max_param_diff(model_b, model_f) < 1e-9


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(geometries)
def test_history_fully_flushed(params):
    """After fit(), no row owes noise, for any geometry."""
    _, trainer = train("lazydp", params)
    for history in trainer.engine.histories:
        assert history.pending_rows(params["iterations"]).size == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(geometries, st.floats(min_value=0.0, max_value=3.0))
def test_equivalence_across_noise_levels(params, noise_multiplier):
    """Equivalence cannot depend on sigma (including sigma = 0)."""
    dp = DPConfig(noise_multiplier=noise_multiplier, max_grad_norm=1.0,
                  learning_rate=0.05)
    eager, _ = train("dpsgd_f", params, dp)
    lazy, _ = train("lazydp_no_ans", params, dp)
    assert max_param_diff(eager, lazy) < 1e-9


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(geometries)
def test_visible_rows_current_at_access(params):
    """Invariant form: every gathered row agrees with eager at gather time."""
    config = build_config(params)
    dp = DPConfig()
    eager_model = DLRM(config, seed=params["seed"] + 1)
    lazy_model = DLRM(config, seed=params["seed"] + 1)
    eager = trainer_for("dpsgd_f", eager_model, dp,
                         noise_seed=params["seed"] + 4)
    lazy = trainer_for("lazydp_no_ans", lazy_model, dp,
                        noise_seed=params["seed"] + 4)
    dataset = SyntheticClickDataset(
        config, seed=params["seed"] + 2, num_examples=512
    )
    loader = DataLoader(
        dataset, batch_size=min(params["batch"], 512),
        num_batches=params["iterations"], seed=params["seed"] + 3,
    )
    eager.expected_batch_size = loader.batch_size
    lazy.expected_batch_size = loader.batch_size
    for index, batch, upcoming in LookaheadLoader(loader):
        for table in range(config.num_tables):
            rows = batch.accessed_rows(table)
            np.testing.assert_allclose(
                lazy_model.embeddings[table].table.data[rows],
                eager_model.embeddings[table].table.data[rows],
                atol=1e-9,
            )
        eager.train_step(index + 1, batch, upcoming)
        lazy.train_step(index + 1, batch, upcoming)
