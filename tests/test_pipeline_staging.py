"""Unit tests for the staging buffer and the noise-prefetch worker."""

import threading
import time

import pytest

from repro.pipeline import NoisePrefetchWorker, StagedNoise, StagingBuffer


class TestStagingBuffer:
    def test_put_pop_in_order(self):
        buffer = StagingBuffer(capacity=2)
        buffer.put(StagedNoise(1, ["a"]))
        buffer.put(StagedNoise(2, ["b"]))
        assert buffer.pop(1).tables == ["a"]
        assert buffer.pop(2).tables == ["b"]
        assert len(buffer) == 0

    def test_pop_wrong_iteration_raises(self):
        buffer = StagingBuffer(capacity=2)
        buffer.put(StagedNoise(1, []))
        with pytest.raises(RuntimeError, match="expected 2"):
            buffer.pop(2)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            StagingBuffer(capacity=0)

    def test_put_blocks_at_capacity(self):
        buffer = StagingBuffer(capacity=1)
        buffer.put(StagedNoise(1, []))
        done = threading.Event()

        def producer():
            buffer.put(StagedNoise(2, []))
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done.is_set()          # blocked: buffer full
        buffer.pop(1)
        assert done.wait(timeout=5.0)     # freed by the pop
        thread.join(timeout=5.0)
        assert buffer.stall_seconds > 0.0

    def test_pop_blocks_until_staged(self):
        buffer = StagingBuffer(capacity=1)

        def producer():
            time.sleep(0.05)
            buffer.put(StagedNoise(1, ["late"]))

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert buffer.pop(1).tables == ["late"]
        thread.join(timeout=5.0)
        assert buffer.wait_seconds > 0.0

    def test_fail_propagates_to_pop(self):
        buffer = StagingBuffer(capacity=1)
        buffer.fail(ValueError("worker died"))
        with pytest.raises(RuntimeError, match="noise-prefetch worker"):
            buffer.pop(1)

    def test_close_unblocks_pop(self):
        buffer = StagingBuffer(capacity=1)
        threading.Timer(0.05, buffer.close).start()
        with pytest.raises(RuntimeError, match="closed"):
            buffer.pop(1)

    def test_put_after_close_raises(self):
        buffer = StagingBuffer(capacity=1)
        buffer.close()
        with pytest.raises(RuntimeError, match="closed"):
            buffer.put(StagedNoise(1, []))


class TestNoisePrefetchWorker:
    def _make(self, compute, capacity=2):
        buffer = StagingBuffer(capacity=capacity)
        worker = NoisePrefetchWorker(compute, buffer)
        worker.start()
        return worker, buffer

    def test_computes_plans_in_order(self):
        seen = []

        def compute(iteration, batch):
            seen.append((iteration, batch))
            return StagedNoise(iteration, [batch * 2])

        worker, buffer = self._make(compute, capacity=4)
        worker.submit(0, 10)      # bootstrap batch: no plan
        worker.submit(1, 11)
        worker.submit(2, 12)
        worker.submit(3, None)    # end of stream
        assert buffer.pop(1).tables == [22]
        assert buffer.pop(2).tables == [24]
        worker.join(timeout=5.0)
        assert seen == [(1, 11), (2, 12)]
        assert worker.plans_computed == 2
        assert worker.busy_seconds >= 0.0

    def test_compute_error_reaches_consumer(self):
        def compute(iteration, batch):
            raise KeyError("bad plan")

        worker, buffer = self._make(compute)
        worker.submit(1, "x")
        with pytest.raises(RuntimeError, match="noise-prefetch worker"):
            buffer.pop(1)
        worker.join(timeout=5.0)

    def test_close_while_blocked_on_full_buffer(self):
        def compute(iteration, batch):
            return StagedNoise(iteration, [])

        worker, buffer = self._make(compute, capacity=1)
        worker.submit(1, "a")
        worker.submit(2, "b")     # will block: buffer full
        time.sleep(0.05)
        worker.close()            # must unblock and join cleanly
        assert not worker.is_alive

    def test_close_while_idle(self):
        worker, _ = self._make(lambda i, b: StagedNoise(i, []))
        worker.close()
        assert not worker.is_alive
