"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTrainCommand:
    def test_trains_and_reports(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lazydp" in out
        assert "epsilon" in out
        assert "stage breakdown" in out

    def test_sgd_has_no_epsilon(self, capsys):
        main(["train", "--algorithm", "sgd", "--rows", "256",
              "--batch", "16", "--iterations", "2"])
        out = capsys.readouterr().out
        assert "epsilon" not in out

    def test_skewed_training(self, capsys):
        code = main([
            "train", "--algorithm", "eana", "--rows", "512",
            "--batch", "16", "--iterations", "2", "--skew", "high",
        ])
        assert code == 0

    def test_sharded_training(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
            "--num-shards", "3", "--partition", "frequency",
            "--executor", "threads",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded_lazydp" in out
        assert "per-shard model update" in out
        assert "shard_model_update" in out

    def test_noop_default_engine_flag_allowed_with_baselines(self, capsys):
        """Explicitly passing a flag at its no-op default selects no
        engine, so it stays legal with any algorithm."""
        code = main([
            "train", "--algorithm", "sgd", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--num-shards", "1",
        ])
        assert code == 0

    def test_sharding_requires_lazydp(self, capsys):
        code = main([
            "train", "--algorithm", "dpsgd_f", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--num-shards", "2",
        ])
        assert code == 2
        assert "lazydp" in capsys.readouterr().err

    def test_pipelined_training(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
            "--pipeline", "--prefetch-depth", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipelined_lazydp" in out
        assert "noise prefetch pipeline" in out
        assert "hidden fraction" in out

    def test_pipelined_sharded_training(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
            "--pipeline", "--num-shards", "2", "--executor", "threads",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipelined_sharded_lazydp" in out
        assert "per-shard model update" in out
        assert "noise prefetch pipeline" in out

    def test_pipeline_requires_lazydp(self, capsys):
        code = main([
            "train", "--algorithm", "dpsgd_f", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--pipeline",
        ])
        assert code == 2
        assert "lazydp" in capsys.readouterr().err

    def test_rejects_bad_prefetch_depth(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "256",
            "--batch", "16", "--iterations", "2",
            "--pipeline", "--prefetch-depth", "0",
        ])
        assert code == 2
        assert "prefetch_depth" in capsys.readouterr().err

    def test_rejects_bad_engine_flag_even_with_axis_off(self, capsys):
        """A bad value is an error, not silently dropped, even when its
        engine axis is disabled (pre-plan CLI behaviour)."""
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--max-workers", "0",
        ])
        assert code == 2
        assert "max_workers" in capsys.readouterr().err
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--max-in-flight", "0",
        ])
        assert code == 2
        assert "max_in_flight" in capsys.readouterr().err

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["train", "--algorithm", "adam"])


class TestPlanFlag:
    """The unified --plan spec: parse, run, reject, round-trip."""

    def test_plan_spec_trains_and_reports_canonically(self, capsys):
        code = main([
            "train", "--rows", "512", "--batch", "32", "--iterations", "3",
            "--plan", "shards=2,pipeline=2,executor=threads",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipelined_sharded_lazydp" in out
        assert ("plan             : ans=on,shards=2,partition=row_range,"
                "pipeline=2,backend=threads") in out
        assert "per-shard model update" in out
        assert "noise prefetch pipeline" in out

    def test_async_plan_spec(self, capsys):
        code = main([
            "train", "--rows", "512", "--batch", "32", "--iterations", "3",
            "--plan", "async=strict,inflight=2,ans=off",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "async_lazydp_no_ans" in out
        assert "async apply engine" in out

    def test_reported_plan_round_trips(self, capsys):
        """The canonical string the CLI prints parses back to the same
        plan — the spec <-> to_dict/from_dict <-> canonical loop."""
        from repro.session import ExecutionPlan

        main([
            "train", "--rows", "256", "--batch", "16", "--iterations", "2",
            "--plan", "shards=3,partition=hash,async=bounded:1,inflight=3",
        ])
        out = capsys.readouterr().out
        printed = next(
            line.split(":", 1)[1].strip() for line in out.splitlines()
            if line.startswith("plan ")
        )
        plan = ExecutionPlan.from_spec(printed)
        assert plan.canonical() == printed
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    def test_legacy_flags_still_print_canonical_plan(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "256",
            "--batch", "16", "--iterations", "2",
            "--num-shards", "2", "--pipeline",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert ("plan             : ans=on,shards=2,partition=row_range,"
                "pipeline=2") in out

    def test_rejects_contradictory_spec(self, capsys):
        code = main([
            "train", "--rows", "256", "--batch", "16", "--iterations", "2",
            "--plan", "async=strict,pipeline=0",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "contradictory" in err
        assert "pipeline=0" in err

    def test_rejects_unknown_spec_key(self, capsys):
        code = main([
            "train", "--rows", "256", "--batch", "16", "--iterations", "2",
            "--plan", "turbo=on",
        ])
        assert code == 2
        assert "unknown key" in capsys.readouterr().err

    def test_rejects_plan_combined_with_engine_flags(self, capsys):
        code = main([
            "train", "--rows", "256", "--batch", "16", "--iterations", "2",
            "--plan", "shards=2", "--num-shards", "4",
        ])
        assert code == 2
        assert "--num-shards" in capsys.readouterr().err

    def test_rejects_plan_with_explicitly_passed_default_flag(self, capsys):
        """Even a flag passed at its default value conflicts with --plan
        (the None-sentinel defaults make explicit usage detectable)."""
        code = main([
            "train", "--rows", "256", "--batch", "16", "--iterations", "2",
            "--plan", "shards=2", "--max-in-flight", "2",
        ])
        assert code == 2
        assert "--max-in-flight" in capsys.readouterr().err

    def test_rejects_plan_combined_with_algorithm(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp_no_ans", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--plan", "ans=off",
        ])
        assert code == 2
        assert "ans" in capsys.readouterr().err


class TestFiguresCommand:
    def test_single_figure(self, capsys):
        code = main(["figures", "--which", "figure13a"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper" in out
        assert "OOM" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figures", "--which", "figure99"])


class TestReportCommand:
    def test_writes_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["report", "--output", str(path)])
        assert code == 0
        content = path.read_text()
        assert "Figure 10" in content
        assert "reproduced" in content


class TestAuditCommand:
    def test_audit_verdicts(self, capsys):
        code = main(["audit", "--rows", "512", "--batch", "32",
                     "--iterations", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LEAKS" in out       # EANA
        assert "protected" in out   # LazyDP


class TestScoreCommand:
    def test_scoreboard_passes(self, capsys):
        code = main(["score"])
        assert code == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out
        assert "FAIL" not in out


class TestArgumentValidation:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
