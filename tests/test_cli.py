"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTrainCommand:
    def test_trains_and_reports(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lazydp" in out
        assert "epsilon" in out
        assert "stage breakdown" in out

    def test_sgd_has_no_epsilon(self, capsys):
        main(["train", "--algorithm", "sgd", "--rows", "256",
              "--batch", "16", "--iterations", "2"])
        out = capsys.readouterr().out
        assert "epsilon" not in out

    def test_skewed_training(self, capsys):
        code = main([
            "train", "--algorithm", "eana", "--rows", "512",
            "--batch", "16", "--iterations", "2", "--skew", "high",
        ])
        assert code == 0

    def test_sharded_training(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
            "--num-shards", "3", "--partition", "frequency",
            "--executor", "threads",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded_lazydp" in out
        assert "per-shard model update" in out
        assert "shard_model_update" in out

    def test_sharding_requires_lazydp(self, capsys):
        code = main([
            "train", "--algorithm", "dpsgd_f", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--num-shards", "2",
        ])
        assert code == 2
        assert "lazydp" in capsys.readouterr().err

    def test_pipelined_training(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
            "--pipeline", "--prefetch-depth", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipelined_lazydp" in out
        assert "noise prefetch pipeline" in out
        assert "hidden fraction" in out

    def test_pipelined_sharded_training(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "512",
            "--batch", "32", "--iterations", "3",
            "--pipeline", "--num-shards", "2", "--executor", "threads",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipelined_sharded_lazydp" in out
        assert "per-shard model update" in out
        assert "noise prefetch pipeline" in out

    def test_pipeline_requires_lazydp(self, capsys):
        code = main([
            "train", "--algorithm", "dpsgd_f", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--pipeline",
        ])
        assert code == 2
        assert "lazydp" in capsys.readouterr().err

    def test_rejects_bad_prefetch_depth(self, capsys):
        code = main([
            "train", "--algorithm", "lazydp", "--rows", "256",
            "--batch", "16", "--iterations", "2",
            "--pipeline", "--prefetch-depth", "0",
        ])
        assert code == 2
        assert "prefetch_depth" in capsys.readouterr().err

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["train", "--algorithm", "adam"])


class TestFiguresCommand:
    def test_single_figure(self, capsys):
        code = main(["figures", "--which", "figure13a"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper" in out
        assert "OOM" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figures", "--which", "figure99"])


class TestReportCommand:
    def test_writes_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["report", "--output", str(path)])
        assert code == 0
        content = path.read_text()
        assert "Figure 10" in content
        assert "reproduced" in content


class TestAuditCommand:
    def test_audit_verdicts(self, capsys):
        code = main(["audit", "--rows", "512", "--batch", "32",
                     "--iterations", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LEAKS" in out       # EANA
        assert "protected" in out   # LazyDP


class TestScoreCommand:
    def test_scoreboard_passes(self, capsys):
        code = main(["score"])
        assert code == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out
        assert "FAIL" not in out


class TestArgumentValidation:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
