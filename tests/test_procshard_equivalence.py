"""The process backend's headline guarantee: bitwise equivalence.

``backend=process`` runs every shard's model update in a separate
worker process over shared memory, yet must release exactly the
parameters the flat ``LazyDPTrainer`` releases — same seed, same trace,
same bits — for every shard count, partition strategy, ANS mode and
sampling scheme.  Noise is a pure function of ``(seed, table, global
row id, iteration)`` and each global row is owned by exactly one
worker, so the cross-process matrix is testable as strict equality,
exactly like the in-process sharded matrix.

The ledger half: every worker advances a per-process ``VersionVector``
segment as it applies noise, and ``audit_noise_ledger`` must prove
exactly-once application across the process boundary after the flush.
"""

import multiprocessing

import numpy as np
import pytest

from repro import configs
from repro.lazydp.ledger import LedgerError
from repro.testing import max_param_diff, train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


def train_process(config, *, num_shards=2, sampling="fixed", use_ans=True,
                  partition="row_range", num_batches=6, audit=True):
    ans = "on" if use_ans else "off"
    spec = (f"ans={ans},shards={num_shards},partition={partition},"
            "backend=process")
    model, result, trainer = train_algorithm(
        spec, config, num_batches=num_batches, sampling=sampling,
    )
    if audit:
        trainer.audit_noise_ledger(result.iterations)
    trainer.close()
    return model, result, trainer


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_released_params_identical(self, config, num_shards, sampling):
        flat_model, _, _ = train_algorithm(
            "lazydp", config, num_batches=6, sampling=sampling
        )
        proc_model, _, _ = train_process(
            config, num_shards=num_shards, sampling=sampling
        )
        assert max_param_diff(flat_model, proc_model) == 0.0

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_identical_without_ans(self, config, num_shards, sampling):
        flat_model, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=5, sampling=sampling
        )
        proc_model, _, _ = train_process(
            config, num_shards=num_shards, sampling=sampling,
            use_ans=False, num_batches=5,
        )
        assert max_param_diff(flat_model, proc_model) == 0.0

    @pytest.mark.parametrize("partition", ["frequency", "hash"])
    def test_identical_across_partitions(self, config, partition):
        flat_model, _, _ = train_algorithm("lazydp", config, num_batches=6)
        proc_model, _, _ = train_process(
            config, num_shards=4, partition=partition
        )
        assert max_param_diff(flat_model, proc_model) == 0.0

    def test_matches_threads_backend_bitwise(self, config):
        threads_model, _, _ = train_algorithm(
            "shards=3,backend=threads", config, num_batches=6
        )
        proc_model, _, _ = train_process(config, num_shards=3)
        assert max_param_diff(threads_model, proc_model) == 0.0

    def test_histories_match_flat_after_fit(self, config):
        _, _, flat_trainer = train_algorithm("lazydp", config, num_batches=6)
        _, _, proc_trainer = train_process(config, num_shards=3)
        for flat, sharded in zip(flat_trainer.engine.histories,
                                 proc_trainer.engine.histories):
            np.testing.assert_array_equal(flat.snapshot(), sharded.snapshot())

    def test_spawn_start_method_is_equivalent(self, config, monkeypatch):
        """The spawn fallback (no fork on the host) trains the same bits."""
        flat_model, _, _ = train_algorithm("lazydp", config, num_batches=4)
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        proc_model, _, trainer = train_process(
            config, num_shards=2, num_batches=4
        )
        assert trainer._start_method == "spawn"
        assert max_param_diff(flat_model, proc_model) == 0.0


class TestCrossProcessLedger:
    def test_audit_passes_after_flush(self, config):
        _, result, trainer = train_process(config, num_shards=3, audit=False)
        trainer.audit_noise_ledger(result.iterations)
        # One non-empty segment per (table, shard); rows split across them.
        total_rows = sum(vector.num_rows for vector in trainer.ledger)
        assert total_rows == 3 * 64

    def test_ledger_mirrors_history_after_flush(self, config):
        _, result, trainer = train_process(config, num_shards=2)
        final = result.iterations
        for vector in trainer.ledger:
            np.testing.assert_array_equal(
                vector.snapshot(), np.full(vector.num_rows, final)
            )

    def test_audit_catches_missing_span(self, config):
        """A ledger segment left behind the flush horizon must fail the
        audit — the exactly-once proof is not vacuous."""
        _, result, trainer = train_process(config, num_shards=2)
        vector = trainer.ledger[0]
        storage = vector.snapshot()
        storage[0] = result.iterations - 1
        tampered = type(vector).attach(storage)
        with pytest.raises(LedgerError):
            tampered.audit_complete(result.iterations)


class TestReportingSurfaces:
    def test_procshard_stats_and_kernel_stats(self, config):
        model, result, trainer = train_algorithm(
            "shards=2,backend=process", config, num_batches=4
        )
        stats = trainer.procshard_stats()
        assert stats["start_method"] in ("fork", "spawn")
        assert len(stats["workers"]) == 2
        for worker in stats["workers"]:
            assert worker["pid"] > 0
            assert worker["messages"] > 0
            assert worker["samples_drawn"] >= 0
            assert worker["staged"] == 0
        assert trainer.kernel_stats()["procshard"]["workers"]
        trainer.close()
        # Post-close stats come from the cached last round trip.
        assert trainer.procshard_stats()["workers"]

    def test_worker_stage_timings_fold_into_shard_timers(self, config):
        _, _, trainer = train_algorithm(
            "shards=2,backend=process", config, num_batches=4
        )
        summary = trainer.shard_time_summary()
        assert summary["per_shard"], summary
        folded_stages = set()
        for stage_totals in summary["per_shard"]:
            folded_stages.update(stage_totals)
        assert "noise_sampling" in folded_stages
        assert "lazydp_history_read" in folded_stages
        trainer.close()

    def test_export_and_serve_survive_close(self, config):
        """Close rematerializes private copies: every read surface keeps
        working after the shared memory is gone."""
        model, result, trainer = train_algorithm(
            "shards=2,backend=process", config, num_batches=4
        )
        before = [bag.table.data.copy() for bag in model.embeddings]
        trainer.close()
        for bag, snapshot in zip(model.embeddings, before):
            np.testing.assert_array_equal(bag.table.data, snapshot)
        trainer.audit_noise_ledger(result.iterations)
