"""The session API: plan axes, serialization round trips, composition.

``ExecutionPlan`` must round-trip through both serialized forms
(``to_dict``/``from_dict`` and the ``--plan`` spec mini-language) and
reject contradictory specs with messages naming the contradiction;
``TrainSession.build`` must compose the same capability stacks the
legacy classes hard-code; ``make_trainer`` must keep accepting every
legacy algorithm string while emitting exactly one DeprecationWarning.
"""

import warnings

import pytest

from repro import configs
from repro.bench.experiments import make_trainer
from repro.configs import AsyncConfig, PipelineConfig, ShardConfig
from repro.nn import DLRM
from repro.session import (
    ExecutionPlan,
    LEGACY_ALGORITHMS,
    TrainSession,
    compose_trainer_class,
    plan_for_algorithm,
)
from repro.train import DPConfig


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=48, dim=8, lookups=2)


def plan_matrix():
    """A representative plan per legacy shape, plus non-default axes."""
    return [
        ExecutionPlan(),
        ExecutionPlan(ans=False),
        ExecutionPlan(shards=ShardConfig(num_shards=3)),
        ExecutionPlan(shards=ShardConfig(num_shards=4,
                                         partition="frequency"),
                      backend="threads:2"),
        ExecutionPlan(pipeline=PipelineConfig(enabled=True,
                                              prefetch_depth=3)),
        ExecutionPlan(async_=AsyncConfig(enabled=True, max_in_flight=4,
                                         staleness="bounded:2")),
        ExecutionPlan(
            ans=False,
            shards=ShardConfig(num_shards=2, partition="hash"),
            pipeline=PipelineConfig(enabled=True, prefetch_depth=4),
            async_=AsyncConfig(enabled=True, max_in_flight=3),
        ),
    ]


class TestPlanValidation:
    def test_default_plan_is_serial_flat(self):
        plan = ExecutionPlan()
        assert plan.ans
        assert not plan.is_sharded
        assert not plan.is_pipelined
        assert not plan.is_async
        assert plan.legacy_name() == "lazydp"

    def test_async_implies_pipelined(self):
        plan = ExecutionPlan(async_=AsyncConfig(enabled=True))
        assert plan.is_pipelined
        assert plan.pipeline is None       # depth defaults at build time
        assert plan.legacy_name() == "async_lazydp"

    def test_rejects_disabled_axis_configs(self):
        with pytest.raises(ValueError, match="pipeline axis"):
            ExecutionPlan(pipeline=PipelineConfig(enabled=False))
        with pytest.raises(ValueError, match="async axis"):
            ExecutionPlan(async_=AsyncConfig(enabled=False))

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionPlan(backend="cuda")

    def test_rejects_wrong_axis_types(self):
        with pytest.raises(ValueError, match="ShardConfig"):
            ExecutionPlan(shards=4)

    def test_legacy_names_cover_the_cross_product(self):
        assert len(LEGACY_ALGORITHMS) == 12
        for plan in plan_matrix():
            assert plan.legacy_name() in LEGACY_ALGORITHMS


class TestDictRoundTrip:
    @pytest.mark.parametrize("plan", plan_matrix(),
                             ids=lambda plan: plan.canonical())
    def test_round_trip(self, plan):
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    def test_dict_is_json_serializable(self):
        import json

        for plan in plan_matrix():
            encoded = json.dumps(plan.to_dict())
            assert ExecutionPlan.from_dict(json.loads(encoded)) == plan

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ExecutionPlan keys"):
            ExecutionPlan.from_dict({"ans": True, "sharding": {}})
        with pytest.raises(ValueError, match="unknown ShardConfig keys"):
            ExecutionPlan.from_dict({"shards": {"count": 2}})


class TestSpecRoundTrip:
    @pytest.mark.parametrize("plan", plan_matrix(),
                             ids=lambda plan: plan.canonical())
    def test_round_trip(self, plan):
        assert ExecutionPlan.from_spec(plan.to_spec()) == plan
        assert plan.canonical() == plan.to_spec()

    def test_issue_example_spec(self):
        plan = ExecutionPlan.from_spec(
            "shards=4,pipeline=2,async=bounded:2,ans=off"
        )
        assert not plan.ans
        assert plan.shards.num_shards == 4
        assert plan.pipeline.prefetch_depth == 2
        assert plan.async_.staleness == "bounded:2"
        assert plan.legacy_name() == "async_sharded_lazydp_no_ans"

    def test_empty_spec_is_default_plan(self):
        assert ExecutionPlan.from_spec("") == ExecutionPlan()

    def test_axis_zero_switches_off(self):
        assert ExecutionPlan.from_spec("shards=0,pipeline=0") == \
            ExecutionPlan()
        for word in ("off", "false", "no", "0", "none"):
            assert ExecutionPlan.from_spec(f"async={word}") == ExecutionPlan()

    @pytest.mark.parametrize("spec, message", [
        ("async=strict,pipeline=0", "contradictory"),
        ("async=bounded:1,pipeline=0", "contradictory"),
        ("partition=hash", "shards>=1"),
        ("executor=threads,shards=0", "shards>=1"),
        ("inflight=4", "async"),
        ("inflight=4,async=off", "async"),
        ("shards=two", "integer"),
        ("ans=maybe", "boolean"),
        ("turbo=on", "unknown key"),
        ("shards", "key=value"),
        ("ans=on,ans=off", "duplicate"),
        ("async=eventual", "staleness"),
        ("async=bounded:-1", "bound"),
        ("pipeline=-1", ">= 0"),
        ("workers=0,shards=2", "max_workers"),
        ("backend=cuda", "backend"),
    ])
    def test_rejections_name_the_problem(self, spec, message):
        with pytest.raises(ValueError, match=message):
            ExecutionPlan.from_spec(spec)


class TestLegacyMapping:
    def test_every_legacy_name_maps_and_round_trips(self):
        for algorithm in LEGACY_ALGORITHMS:
            plan, extras = plan_for_algorithm(algorithm)
            assert extras == {}
            assert plan.legacy_name() == algorithm
            assert ExecutionPlan.from_spec(plan.to_spec()) == plan
            assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    def test_kwargs_land_on_the_right_axes(self):
        plan, extras = plan_for_algorithm(
            "async_sharded_lazydp_no_ans",
            {"num_shards": 7, "partition": "hash", "executor": "threads",
             "max_in_flight": 4, "staleness": "bounded:1",
             "prefetch_depth": 3, "skew": "SKEW"},
        )
        assert plan.shards == ShardConfig(num_shards=7, partition="hash")
        assert plan.backend == "threads"
        assert plan.pipeline.prefetch_depth == 3
        assert plan.async_ == AsyncConfig(enabled=True, max_in_flight=4,
                                          staleness="bounded:1")
        assert not plan.ans
        assert extras == {"skew": "SKEW"}

    def test_executor_instance_travels_in_extras(self):
        from repro.shard import ThreadPoolShardExecutor

        executor = ThreadPoolShardExecutor(max_workers=3)
        try:
            plan, extras = plan_for_algorithm(
                "sharded_lazydp", {"num_shards": 3, "executor": executor}
            )
            assert plan.shards.executor == "serial"
            assert plan.backend == "threads"
            assert extras["executor"] is executor
        finally:
            executor.shutdown()

    def test_rejects_unknown_algorithm_and_kwargs(self):
        with pytest.raises(ValueError, match="unknown lazydp algorithm"):
            plan_for_algorithm("eager_lazydp")
        with pytest.raises(TypeError, match="unexpected trainer kwargs"):
            plan_for_algorithm("lazydp", {"num_shards": 2})


class TestComposition:
    def test_layerless_plans_are_the_core_trainers(self):
        from repro.lazydp import LazyDPTrainer
        from repro.shard import ShardedLazyDPTrainer

        assert compose_trainer_class() is LazyDPTrainer
        assert compose_trainer_class(sharded=True) is ShardedLazyDPTrainer

    def test_composed_mro_matches_the_legacy_stack(self):
        """Same capability layers in the same resolution order; the
        legacy concrete classes only add __init__ + a name on top."""
        from repro.async_ import AsyncLazyDPTrainer, AsyncShardedLazyDPTrainer
        from repro.pipeline import (
            PipelinedLazyDPTrainer,
            PipelinedShardedLazyDPTrainer,
        )

        thin_shims = {
            AsyncLazyDPTrainer, AsyncShardedLazyDPTrainer,
            PipelinedLazyDPTrainer, PipelinedShardedLazyDPTrainer,
        }

        def layers(cls):
            return [entry for entry in cls.__mro__
                    if entry not in thin_shims and "Composed" not in
                    entry.__name__]

        assert layers(compose_trainer_class(pipelined=True)) == \
            layers(PipelinedLazyDPTrainer)
        assert layers(compose_trainer_class(sharded=True, async_=True)) == \
            layers(AsyncShardedLazyDPTrainer)

    def test_composition_is_cached(self):
        assert compose_trainer_class(pipelined=True) is \
            compose_trainer_class(pipelined=True)

    def test_async_gets_default_prefetch_runway(self, config):
        plan = ExecutionPlan(async_=AsyncConfig(enabled=True,
                                                max_in_flight=4))
        session = TrainSession.build(DLRM(config, seed=7), DPConfig(), plan)
        assert session.trainer.prefetch_depth == 4
        assert session.trainer.max_in_flight == 4
        session.close()

    def test_trainer_carries_plan_and_legacy_name(self, config):
        plan = ExecutionPlan(shards=ShardConfig(num_shards=2), ans=False)
        session = TrainSession.build(DLRM(config, seed=7), DPConfig(), plan)
        assert session.trainer.execution_plan is plan
        assert session.trainer.name == "sharded_lazydp_no_ans"
        session.close()

    def test_live_escape_hatches_require_sharded_plan(self, config):
        with pytest.raises(ValueError, match="sharded"):
            TrainSession.build(DLRM(config, seed=7), DPConfig(),
                               ExecutionPlan(), skew="SKEW")


class TestSessionLifecycle:
    def test_fit_reports_under_the_legacy_name(self, config):
        from repro.testing import make_loader

        plan = ExecutionPlan.from_spec("shards=2,pipeline=2")
        with TrainSession.build(DLRM(config, seed=7), DPConfig(),
                                plan, noise_seed=99) as session:
            result = session.fit(
                make_loader(config, batch_size=16, num_batches=3)
            )
            assert result.algorithm == "pipelined_sharded_lazydp"
            assert session.current_iteration() == 3
            assert session.epsilon() > 0.0
            stats = session.stats()
            assert stats["plan"] == plan.canonical()
            assert "pipeline" in stats
            assert "shard_update_seconds" in stats

    def test_current_iteration_tracks_resumed_training(self, config):
        """Resuming past a flush must advance the release point: serving
        or exporting at the stale flushed_through would drop the resumed
        steps' deferred-noise accounting."""
        import numpy as np

        from repro.data import LookaheadLoader
        from repro.lazydp import export_private_model
        from repro.testing import make_loader

        session = TrainSession.build(DLRM(config, seed=7), DPConfig(),
                                     ExecutionPlan(), noise_seed=99)
        session.fit(make_loader(config, batch_size=16, num_batches=3))
        assert session.current_iteration() == 3
        loader = make_loader(config, batch_size=16, num_batches=2, seed=123)
        for index, batch, upcoming in LookaheadLoader(loader):
            session.train_step(4 + index, batch, upcoming)
        assert session.current_iteration() == 5
        released = session.export_private_model()
        reference = export_private_model(session.trainer, iteration=5)
        for name in reference:
            np.testing.assert_array_equal(released[name], reference[name])
        handle = session.serve()          # must not raise "serve the past"
        assert handle.stats()["iteration"] == 5
        session.close()

    def test_export_matches_trainer_export(self, config):
        import numpy as np

        from repro.lazydp import export_private_model
        from repro.testing import make_loader

        session = TrainSession.build(DLRM(config, seed=7), DPConfig(),
                                     ExecutionPlan(), noise_seed=99)
        session.fit(make_loader(config, batch_size=16, num_batches=3))
        released = session.export_private_model()
        reference = export_private_model(session.trainer, iteration=3)
        for name in reference:
            np.testing.assert_array_equal(released[name], reference[name])


class TestMakeTrainerShim:
    def test_warning_names_the_actual_plan(self, config):
        """The "equivalent plan spec" in the warning reflects the call's
        kwargs, not the algorithm's defaults."""
        with pytest.warns(DeprecationWarning,
                          match="shards=7,partition=hash"):
            trainer = make_trainer(
                "sharded_lazydp", DLRM(config, seed=7), DPConfig(),
                noise_seed=99, num_shards=7, partition="hash",
            )
        trainer.close()

    @pytest.mark.parametrize("algorithm", LEGACY_ALGORITHMS)
    def test_exactly_one_deprecation_warning(self, config, algorithm):
        model = DLRM(config, seed=7)
        with pytest.warns(DeprecationWarning,
                          match="ExecutionPlan") as record:
            trainer = make_trainer(algorithm, model, DPConfig(),
                                   noise_seed=99)
        deprecations = [entry for entry in record
                        if entry.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert trainer.name == algorithm
        assert trainer.execution_plan.legacy_name() == algorithm
        close = getattr(trainer, "close", None)
        if close is not None:
            close()

    def test_baseline_algorithms_do_not_warn(self, config):
        model = DLRM(config, seed=7)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            trainer = make_trainer("dpsgd_f", model, DPConfig(),
                                   noise_seed=99)
        assert trainer.name == "dpsgd_f"

    def test_unknown_algorithm_still_rejected(self, config):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_trainer("adam", DLRM(config, seed=7), DPConfig())
