"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench import bar_chart, figure10, series_chart


class TestBarChart:
    def test_basic_rendering(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10          # peak fills the width
        assert lines[0].count("#") == 5

    def test_title(self):
        chart = bar_chart(["x"], [1.0], title="My chart")
        assert chart.splitlines()[0] == "My chart"

    def test_oom_marker(self):
        chart = bar_chart(["ok", "oom"], [1.0, float("inf")])
        assert "OOM" in chart

    def test_none_marker(self):
        chart = bar_chart(["ok", "gap"], [1.0, None])
        assert "(missing)" in chart

    def test_log_scale_compresses_range(self):
        chart = bar_chart(["small", "big"], [1.0, 260.0], width=40,
                          log_scale=True)
        lines = chart.splitlines()
        small_bar = lines[0].count("#")
        big_bar = lines[1].count("#")
        assert big_bar == 40
        assert small_bar >= 1
        # Linear would give small ~0.15% of width; log keeps it visible.
        assert small_bar < big_bar

    def test_label_alignment(self):
        chart = bar_chart(["a", "long-label"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_all_infinite(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [float("inf")])

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=2)


class TestSeriesChart:
    def test_flattens_series(self):
        chart = series_chart(
            ("x", "y"), {"s1": (1.0, 2.0), "s2": (3.0, 4.0)}
        )
        assert "s1@x" in chart
        assert "s2@y" in chart

    def test_figure_chart_integration(self):
        result = figure10()
        chart = result.chart()
        assert "lazydp@2048" in chart
        assert "dpsgd_f@4096" in chart
