"""Cross-module integration tests: whole-pipeline behaviour."""

import numpy as np
import pytest

from repro import configs, make_private
from repro.data import DataLoader, SyntheticClickDataset, paper_skew_spec
from repro.nn import DLRM
from repro.perfmodel import ALGORITHMS
from repro.train import DPConfig

from repro.testing import max_param_diff, train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=2)


class TestAllAlgorithmsEndToEnd:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_runs_and_stays_finite(self, algorithm, config):
        model, result, _ = train_algorithm(algorithm, config, num_batches=4)
        assert result.iterations == 4
        assert np.all(np.isfinite(result.mean_losses))
        for param in model.parameters().values():
            assert np.all(np.isfinite(param.data))

    @pytest.mark.parametrize(
        "algorithm", [a for a in ALGORITHMS if a != "sgd"]
    )
    def test_private_algorithms_report_epsilon(self, algorithm, config):
        _, result, _ = train_algorithm(algorithm, config, num_batches=3)
        assert result.epsilon is not None and result.epsilon > 0

    def test_all_private_algorithms_spend_identical_budget(self, config):
        """Accounting depends only on (sigma, q, steps), never on how the
        noise lands in the table."""
        epsilons = set()
        for algorithm in ("dpsgd_b", "dpsgd_r", "dpsgd_f", "lazydp",
                          "lazydp_no_ans"):
            _, result, _ = train_algorithm(algorithm, config, num_batches=5)
            epsilons.add(round(result.epsilon, 12))
        assert len(epsilons) == 1


class TestUtilityUnderDP:
    def test_dp_training_learns_with_mild_noise(self, config):
        dp = DPConfig(noise_multiplier=0.3, max_grad_norm=5.0,
                      learning_rate=0.05)
        _, result, _ = train_algorithm(
            "lazydp", config, batch_size=64, num_batches=30, dp=dp,
        )
        assert np.mean(result.mean_losses[-5:]) < np.mean(
            result.mean_losses[:5]
        )

    def test_more_noise_hurts_loss(self, config):
        losses = {}
        for sigma in (0.1, 8.0):
            dp = DPConfig(noise_multiplier=sigma, max_grad_norm=1.0,
                          learning_rate=0.05)
            _, result, _ = train_algorithm(
                "lazydp", config, batch_size=64, num_batches=25, dp=dp,
            )
            losses[sigma] = np.mean(result.mean_losses[-5:])
        assert losses[0.1] < losses[8.0]


class TestSkewedEndToEnd:
    def test_lazydp_equivalence_under_paper_skew(self):
        config = configs.tiny_dlrm(num_tables=2, rows=256, dim=8, lookups=2)
        skew = paper_skew_spec("high", 256)
        eager, _, _ = train_algorithm(
            "dpsgd_f", config, num_batches=6, skew=skew
        )
        lazy, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=6, skew=skew
        )
        assert max_param_diff(eager, lazy) < 1e-9

    def test_skewed_trace_trains(self):
        config = configs.tiny_dlrm(num_tables=2, rows=256, dim=8, lookups=2)
        skew = paper_skew_spec("medium", 256)
        _, result, _ = train_algorithm(
            "lazydp", config, num_batches=5, skew=skew
        )
        assert np.all(np.isfinite(result.mean_losses))


class TestMakePrivateWorkflow:
    def test_documented_quickstart(self):
        """The README quickstart, verbatim."""
        config = configs.tiny_dlrm()
        model = DLRM(config, seed=0)
        dataset = SyntheticClickDataset(config, seed=0)
        loader = DataLoader(dataset, batch_size=64, num_batches=20)
        session = make_private(model, loader, noise_multiplier=1.1,
                               max_gradient_norm=1.0)
        result = session.fit()
        assert np.isfinite(result.final_loss)
        assert session.epsilon() > 0

    def test_two_sessions_same_seed_identical(self):
        config = configs.tiny_dlrm()

        def run():
            model = DLRM(config, seed=4)
            dataset = SyntheticClickDataset(config, seed=5)
            loader = DataLoader(dataset, batch_size=16, num_batches=6, seed=6)
            session = make_private(model, loader, noise_seed=42)
            session.fit()
            return model

        assert max_param_diff(run(), run()) == 0.0
