"""Tests for the phase-power energy model (Figure 12)."""

import pytest

from repro import configs
from repro.perfmodel import (
    average_power_watts,
    iteration_breakdown,
    iteration_energy_joules,
    paper_system,
    stage_power_watts,
)


@pytest.fixture
def hw():
    return paper_system()


@pytest.fixture
def config():
    return configs.mlperf_dlrm()


class TestEnergyModel:
    def test_energy_positive(self, config, hw):
        for algorithm in ("sgd", "lazydp", "dpsgd_f"):
            breakdown = iteration_breakdown(algorithm, config, 2048, hw=hw)
            assert iteration_energy_joules(breakdown, hw) > 0

    def test_average_power_bounded_by_states(self, config, hw):
        floor = hw.power.cpu_idle + hw.power.gpu_idle
        ceiling = hw.power.cpu_avx + hw.power.gpu_active
        for algorithm in ("sgd", "lazydp", "dpsgd_f"):
            breakdown = iteration_breakdown(algorithm, config, 2048, hw=hw)
            power = average_power_watts(breakdown, hw)
            assert floor <= power <= ceiling

    def test_dpsgd_draws_more_average_power_than_sgd(self, config, hw):
        """The AVX-pinned noise phase amplifies energy beyond the time
        ratio (Figure 12: 353x energy vs 259x time)."""
        sgd = iteration_breakdown("sgd", config, 2048, hw=hw)
        dpsgd = iteration_breakdown("dpsgd_f", config, 2048, hw=hw)
        assert average_power_watts(dpsgd, hw) > average_power_watts(sgd, hw)

    def test_energy_ratio_exceeds_time_ratio(self, config, hw):
        sgd = iteration_breakdown("sgd", config, 2048, hw=hw)
        dpsgd = iteration_breakdown("dpsgd_f", config, 2048, hw=hw)
        time_ratio = dpsgd.total / sgd.total
        energy_ratio = (
            iteration_energy_joules(dpsgd, hw) / iteration_energy_joules(sgd, hw)
        )
        assert energy_ratio > time_ratio

    def test_lazydp_energy_saving_in_paper_ballpark(self, config, hw):
        """Figure 12: ~155x average energy saving."""
        lazy = iteration_breakdown("lazydp", config, 2048, hw=hw)
        dpsgd = iteration_breakdown("dpsgd_f", config, 2048, hw=hw)
        saving = (
            iteration_energy_joules(dpsgd, hw) / iteration_energy_joules(lazy, hw)
        )
        assert 100 < saving < 250

    def test_oom_energy_is_infinite(self, hw):
        breakdown = iteration_breakdown(
            "dpsgd_f", configs.mlperf_dlrm(192 * 10**9), 2048, hw=hw
        )
        assert iteration_energy_joules(breakdown, hw) == float("inf")

    def test_every_stage_has_a_power_state(self, config, hw):
        for algorithm in ("sgd", "eana", "lazydp", "dpsgd_b"):
            breakdown = iteration_breakdown(algorithm, config, 2048, hw=hw)
            for stage in breakdown.stages:
                assert stage_power_watts(stage, hw) > 0

    def test_noise_phase_uses_avx_power(self, hw):
        assert stage_power_watts("noise_sampling", hw) == (
            hw.power.cpu_avx + hw.power.gpu_idle
        )
