"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import configs
from repro.bench.experiments import make_trainer
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.train import DPConfig


@pytest.fixture
def tiny_config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


@pytest.fixture
def tiny_model(tiny_config):
    return DLRM(tiny_config, seed=7)


@pytest.fixture
def dp_config():
    return DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                    learning_rate=0.05, delta=1e-5)


@pytest.fixture
def tiny_batch(tiny_config):
    dataset = SyntheticClickDataset(tiny_config, seed=3)
    return dataset.batch(np.arange(16))


def make_loader(config, batch_size=16, num_batches=8, seed=5,
                sampling="fixed", skew=None, data_seed=3,
                num_examples=1 << 12):
    dataset = SyntheticClickDataset(
        config, seed=data_seed, skew=skew, num_examples=num_examples
    )
    return DataLoader(dataset, batch_size=batch_size,
                      num_batches=num_batches, sampling=sampling, seed=seed)


def train_algorithm(algorithm, config, *, batch_size=16, num_batches=8,
                    model_seed=7, noise_seed=99, dp=None, sampling="fixed",
                    skew=None, **loader_kwargs):
    """Train one algorithm from a fixed initial state; return (model, result).

    Every call with the same seeds sees the same model init, the same
    trace, and the same noise stream — the setup all equivalence tests
    build on.
    """
    dp = dp or DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                        learning_rate=0.05)
    model = DLRM(config, seed=model_seed)
    loader = make_loader(config, batch_size=batch_size,
                         num_batches=num_batches, sampling=sampling,
                         skew=skew, **loader_kwargs)
    trainer = make_trainer(algorithm, model, dp, noise_seed=noise_seed)
    result = trainer.fit(loader)
    return model, result, trainer


def max_param_diff(model_a, model_b):
    """Largest absolute difference across all parameters of two models."""
    params_a = model_a.parameters()
    params_b = model_b.parameters()
    assert params_a.keys() == params_b.keys()
    worst = 0.0
    for name in params_a:
        diff = np.max(np.abs(params_a[name].data - params_b[name].data))
        worst = max(worst, float(diff))
    return worst


def numeric_gradient(func, x, eps=1e-6):
    """Central-difference gradient of a scalar function of array ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat_x = x.ravel()
    flat_grad = grad.ravel()
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        upper = func(x)
        flat_x[i] = original - eps
        lower = func(x)
        flat_x[i] = original
        flat_grad[i] = (upper - lower) / (2.0 * eps)
    return grad
