"""Shared fixtures for the test suite.

Reusable helpers (``max_param_diff``, ``train_algorithm``, ...) live in
:mod:`repro.testing` so they are importable without relying on pytest's
conftest path insertion; the names are re-exported here for any
straggling ``from conftest import ...`` usage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import configs
from repro.data import SyntheticClickDataset
from repro.nn import DLRM
from repro.testing import (  # noqa: F401  (re-exported for legacy imports)
    make_loader,
    max_param_diff,
    numeric_gradient,
    train_algorithm,
)
from repro.train import DPConfig


@pytest.fixture
def tiny_config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


@pytest.fixture
def tiny_model(tiny_config):
    return DLRM(tiny_config, seed=7)


@pytest.fixture
def dp_config():
    return DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                    learning_rate=0.05, delta=1e-5)


@pytest.fixture
def tiny_batch(tiny_config):
    dataset = SyntheticClickDataset(tiny_config, seed=3)
    return dataset.batch(np.arange(16))
