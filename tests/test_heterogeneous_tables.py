"""Tests with heterogeneous table sizes (production tables vary wildly).

The MLPerf config uses uniform tables, but nothing in the algorithms
requires it — each table has its own HistoryTable, noise stream and
geometry.  These tests pin that: mixed-size models train, stay
equivalent, and keep their bookkeeping straight.
"""

import numpy as np
import pytest

from repro import configs
from repro.nn import DLRM
from repro.perfmodel import iteration_breakdown

from repro.testing import max_param_diff, train_algorithm


@pytest.fixture
def mixed_config():
    return configs.DLRMConfig(
        name="mixed-tables",
        dense_features=4,
        bottom_mlp=(8, 8),
        embedding_dim=8,
        table_rows=(8, 64, 512),   # 64x spread
        lookups_per_table=2,
        top_mlp=(16, 1),
    )


class TestMixedGeometry:
    def test_model_builds_with_per_table_sizes(self, mixed_config):
        model = DLRM(mixed_config, seed=0)
        assert [bag.num_rows for bag in model.embeddings] == [8, 64, 512]

    def test_lazydp_equivalence(self, mixed_config):
        eager, _, _ = train_algorithm("dpsgd_f", mixed_config, num_batches=6)
        lazy, _, _ = train_algorithm(
            "lazydp_no_ans", mixed_config, num_batches=6
        )
        assert max_param_diff(eager, lazy) < 1e-9

    def test_variant_family_equivalence(self, mixed_config):
        model_b, _, _ = train_algorithm("dpsgd_b", mixed_config,
                                        num_batches=4)
        model_f, _, _ = train_algorithm("dpsgd_f", mixed_config,
                                        num_batches=4)
        assert max_param_diff(model_b, model_f) < 1e-10

    def test_history_tables_sized_per_table(self, mixed_config):
        _, _, trainer = train_algorithm("lazydp", mixed_config,
                                        num_batches=3)
        sizes = [h.num_rows for h in trainer.engine.histories]
        assert sizes == [8, 64, 512]
        for history in trainer.engine.histories:
            assert history.pending_rows(3).size == 0

    def test_tiny_table_saturates(self, mixed_config):
        """An 8-row table with 2 lookups x 16 batch is fully hot: every
        row is caught up every iteration (delay 1)."""
        _, _, trainer = train_algorithm("lazydp", mixed_config,
                                        batch_size=16, num_batches=4)
        small = trainer.engine.histories[0]
        np.testing.assert_array_equal(
            small.last_updated(np.arange(8)), 4
        )

    def test_scaled_tables_helper(self, mixed_config):
        scaled = mixed_config.scaled_tables(0.5)
        assert scaled.table_rows == (4, 32, 256)

    def test_perfmodel_accepts_mixed(self, mixed_config):
        breakdown = iteration_breakdown("lazydp", mixed_config, 16)
        assert breakdown.total > 0
        dense = iteration_breakdown("dpsgd_f", mixed_config, 16)
        assert dense.stage("noise_sampling") > 0
