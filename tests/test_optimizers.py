"""Tests for update rules and the LazyDP linearity constraint."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Parameter
from repro.train.optimizers import (
    DenseMomentum,
    DenseSGD,
    SparseAdagrad,
    SparseSGD,
    check_lazydp_compatible,
)


def make_param(shape=(6, 4), seed=0, embedding=False):
    rng = np.random.default_rng(seed)
    return Parameter("p", rng.normal(size=shape), 0, is_embedding=embedding)


class TestDenseSGD:
    def test_update(self):
        param = make_param()
        before = param.data.copy()
        grad = np.ones_like(param.data)
        DenseSGD(0.1).update(param, grad)
        np.testing.assert_allclose(param.data, before - 0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            DenseSGD(0.0)

    def test_no_state(self):
        assert DenseSGD(0.1).state_bytes() == 0


class TestDenseMomentum:
    def test_first_step_matches_sgd(self):
        param_sgd = make_param(seed=1)
        param_mom = make_param(seed=1)
        grad = np.random.default_rng(2).normal(size=param_sgd.data.shape)
        DenseSGD(0.1).update(param_sgd, grad)
        DenseMomentum(0.1, momentum=0.9).update(param_mom, grad)
        np.testing.assert_allclose(param_sgd.data, param_mom.data)

    def test_momentum_accumulates(self):
        param = make_param(seed=3)
        optimizer = DenseMomentum(0.1, momentum=0.5)
        grad = np.ones_like(param.data)
        before = param.data.copy()
        optimizer.update(param, grad)
        optimizer.update(param, grad)
        # Second step applies v = 0.5*1 + 1 = 1.5 -> total 2.5 * lr.
        np.testing.assert_allclose(param.data, before - 0.1 * 2.5)

    def test_state_tracked(self):
        param = make_param()
        optimizer = DenseMomentum(0.1)
        optimizer.update(param, np.ones_like(param.data))
        assert optimizer.state_bytes() == param.data.nbytes

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            DenseMomentum(0.1, momentum=1.0)


class TestSparseSGD:
    def test_only_touches_rows(self):
        param = make_param(embedding=True)
        before = param.data.copy()
        rows = np.array([1, 4])
        values = np.ones((2, 4))
        SparseSGD(0.5).update_rows(param, rows, values)
        np.testing.assert_allclose(param.data[rows], before[rows] - 0.5)
        untouched = [0, 2, 3, 5]
        np.testing.assert_array_equal(param.data[untouched], before[untouched])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=500))
    def test_linearity_property(self, pieces, seed):
        """Applying a sum equals applying the pieces one by one — the
        property LazyDP's deferral rests on (paper Section 5.1)."""
        rng = np.random.default_rng(seed)
        rows = np.array([0, 2])
        increments = [rng.normal(size=(2, 4)) for _ in range(pieces)]

        param_batched = make_param(seed=seed, embedding=True)
        SparseSGD(0.1).update_rows(param_batched, rows, sum(increments))

        param_one_by_one = make_param(seed=seed, embedding=True)
        optimizer = SparseSGD(0.1)
        for increment in increments:
            optimizer.update_rows(param_one_by_one, rows, increment)

        np.testing.assert_allclose(
            param_batched.data, param_one_by_one.data, atol=1e-12
        )


class TestSparseAdagrad:
    def test_update_shrinks_with_history(self):
        param = make_param(embedding=True)
        optimizer = SparseAdagrad(1.0)
        rows = np.array([0])
        values = np.ones((1, 4))
        before = param.data[0].copy()
        optimizer.update_rows(param, rows, values)
        first_step = before - param.data[0]
        before = param.data[0].copy()
        optimizer.update_rows(param, rows, values)
        second_step = before - param.data[0]
        assert np.all(np.abs(second_step) < np.abs(first_step))

    def test_rows_have_independent_state(self):
        param = make_param(embedding=True)
        optimizer = SparseAdagrad(1.0)
        for _ in range(3):
            optimizer.update_rows(param, np.array([0]), np.ones((1, 4)))
        fresh_before = param.data[5].copy()
        optimizer.update_rows(param, np.array([5]), np.ones((1, 4)))
        fresh_step = np.abs(fresh_before - param.data[5]).max()
        # A fresh row takes a near-full-lr step despite row 0's history.
        assert fresh_step > 0.5

    def test_not_linear(self):
        """Adagrad violates the deferral property: sum != one-by-one."""
        rows = np.array([0])
        increments = [np.ones((1, 4)), np.ones((1, 4))]

        param_batched = make_param(seed=9, embedding=True)
        SparseAdagrad(1.0).update_rows(param_batched, rows, sum(increments))

        param_one_by_one = make_param(seed=9, embedding=True)
        optimizer = SparseAdagrad(1.0)
        for increment in increments:
            optimizer.update_rows(param_one_by_one, rows, increment)

        assert not np.allclose(param_batched.data, param_one_by_one.data)

    def test_state_bytes(self):
        param = make_param(embedding=True)
        optimizer = SparseAdagrad(1.0)
        optimizer.update_rows(param, np.array([0]), np.ones((1, 4)))
        assert optimizer.state_bytes() == param.data.shape[0] * 8


class TestLazyDPCompatibility:
    def test_sgd_accepted(self):
        check_lazydp_compatible(SparseSGD(0.1))
        check_lazydp_compatible(DenseSGD(0.1))

    def test_adagrad_rejected(self):
        with pytest.raises(ValueError, match="not linear"):
            check_lazydp_compatible(SparseAdagrad(0.1))

    def test_momentum_rejected(self):
        with pytest.raises(ValueError, match="not linear"):
            check_lazydp_compatible(DenseMomentum(0.1))
