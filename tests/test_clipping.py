"""Tests for per-example gradient clipping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.privacy import (
    clip_dense_per_example,
    clip_factors,
    clipped_average_weights,
    global_norms,
)

norm_arrays = hnp.arrays(
    np.float64, st.integers(min_value=1, max_value=32),
    elements=st.floats(min_value=0.0, max_value=1e6),
)


class TestClipFactors:
    def test_small_norms_untouched(self):
        factors = clip_factors(np.array([0.5, 0.9]), max_norm=1.0)
        np.testing.assert_allclose(factors, [1.0, 1.0])

    def test_large_norms_scaled(self):
        factors = clip_factors(np.array([2.0, 4.0]), max_norm=1.0)
        np.testing.assert_allclose(factors, [0.5, 0.25])

    def test_zero_norm_safe(self):
        assert clip_factors(np.array([0.0]), 1.0)[0] == 1.0

    def test_rejects_nonpositive_max_norm(self):
        with pytest.raises(ValueError):
            clip_factors(np.array([1.0]), 0.0)

    def test_rejects_negative_norms(self):
        with pytest.raises(ValueError):
            clip_factors(np.array([-1.0]), 1.0)

    @given(norm_arrays, st.floats(min_value=1e-3, max_value=1e3))
    def test_clipped_norm_never_exceeds_bound(self, norms, max_norm):
        factors = clip_factors(norms, max_norm)
        clipped = norms * factors
        assert np.all(clipped <= max_norm * (1 + 1e-9))

    @given(norm_arrays, st.floats(min_value=1e-3, max_value=1e3))
    def test_factors_in_unit_interval(self, norms, max_norm):
        factors = clip_factors(norms, max_norm)
        assert np.all(factors > 0.0)
        assert np.all(factors <= 1.0)


class TestClippedAverageWeights:
    def test_divides_by_batch(self):
        weights = clipped_average_weights(np.array([0.5, 2.0]), 1.0, 4)
        np.testing.assert_allclose(weights, [0.25, 0.125])

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            clipped_average_weights(np.array([1.0]), 1.0, 0)


class TestGlobalNorms:
    def test_combines_contributions(self):
        norms = global_norms([np.array([9.0]), np.array([16.0])])
        np.testing.assert_allclose(norms, [5.0])

    def test_single_contribution(self):
        np.testing.assert_allclose(
            global_norms([np.array([4.0, 0.0])]), [2.0, 0.0]
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            global_norms([])

    def test_negative_rounding_clamped(self):
        # Tiny negative values from float error must not NaN the sqrt.
        norms = global_norms([np.array([-1e-18])])
        assert norms[0] == 0.0


class TestClipDensePerExample:
    def test_scales_each_example(self):
        grads = np.ones((2, 3, 4))
        out = clip_dense_per_example(grads, np.array([0.5, 2.0]))
        assert np.all(out[0] == 0.5)
        assert np.all(out[1] == 2.0)

    def test_preserves_shape(self):
        grads = np.zeros((3, 2))
        assert clip_dense_per_example(grads, np.ones(3)).shape == (3, 2)
