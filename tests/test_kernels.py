"""The fused apply kernels, pinned against their reference two-step.

Three contracts:

* ``fused_noisy_update`` produces the same slab bits as
  ``merge_sparse_updates`` + ``table[rows] -= lr * values`` across
  empty / disjoint / partially- and fully-overlapping row sets — shared
  rows see exactly one summed write.
* ``BufferArena`` reuse: a warm steady state allocates nothing.
* the batched no-ANS sampler equals the historical per-lag loop in
  value and in ``samples_drawn`` accounting, with O(1) (budget-bounded,
  ``max_delay``-independent) Philox invocations instead of O(max_delay).
"""

import numpy as np
import pytest

from repro.kernels import (
    BufferArena,
    apply_sparse_update,
    batched_catchup_sum,
    fused_merge,
    fused_noisy_update,
    merge_sparse_updates,
)
from repro.lazydp import ANSEngine
from repro.rng import NoiseStream, philox_invocations
from repro.train.common import StageTimer


def _sorted_rows(rng, universe, n):
    return np.sort(rng.choice(universe, size=n, replace=False)).astype(np.int64)


def _reference_apply(table, lr, grad_rows, grad_values, noise_rows, noise_values):
    rows, values = merge_sparse_updates(
        grad_rows, grad_values, noise_rows, noise_values
    )
    if rows.size:
        table[rows] -= lr * values
    return rows, values


def _case(rng, universe, na, nb, dim, overlap=None):
    """One (grad, noise) update pair; ``overlap`` forces shared rows."""
    grad_rows = _sorted_rows(rng, universe, na) if na else np.empty(0, np.int64)
    if overlap == "full":
        noise_rows = grad_rows.copy()
    elif overlap == "none" and na and nb:
        pool = np.setdiff1d(np.arange(universe), grad_rows)
        noise_rows = np.sort(rng.choice(pool, size=nb, replace=False))
    elif nb:
        noise_rows = _sorted_rows(rng, universe, nb)
    else:
        noise_rows = np.empty(0, np.int64)
    return (
        grad_rows,
        rng.standard_normal((grad_rows.size, dim)),
        noise_rows,
        rng.standard_normal((noise_rows.size, dim)),
    )


CASES = [
    ("both_empty", 0, 0, 4, None),
    ("empty_grad", 0, 7, 4, None),
    ("empty_noise", 9, 0, 4, None),
    ("disjoint", 13, 11, 8, "none"),
    ("partial_overlap", 50, 60, 8, None),
    ("full_overlap", 32, 32, 16, "full"),
    ("single_single", 1, 1, 4, None),
    ("wide_dim", 40, 30, 64, None),
]


class TestFusedNoisyUpdate:
    @pytest.mark.parametrize("name,na,nb,dim,overlap", CASES)
    def test_matches_reference_two_step(self, name, na, nb, dim, overlap):
        rng = np.random.default_rng(hash(name) % (2**32))
        universe = 200
        grad_rows, grad_values, noise_rows, noise_values = _case(
            rng, universe, na, nb, dim, overlap
        )
        reference = rng.standard_normal((universe, dim))
        fused = reference.copy()
        _reference_apply(
            reference, 0.05, grad_rows, grad_values, noise_rows, noise_values
        )
        fused_noisy_update(
            fused, 0.05, grad_rows, grad_values, noise_rows, noise_values,
            arena=BufferArena(),
        )
        assert fused.tobytes() == reference.tobytes()

    def test_shared_rows_see_one_summed_write(self):
        """A shared row must be written once with grad + noise — double
        application of either operand is the bug class this pins."""
        table = np.full((4, 2), 10.0)
        rows = np.array([1, 2])
        grad = np.full((2, 2), 3.0)
        noise = np.full((2, 2), 5.0)
        fused_noisy_update(table, 1.0, rows, grad, rows, noise, arena=BufferArena())
        np.testing.assert_array_equal(table[1], [2.0, 2.0])  # 10 - (3 + 5)
        np.testing.assert_array_equal(table[0], [10.0, 10.0])

    def test_property_random_sweep(self):
        rng = np.random.default_rng(42)
        for _ in range(60):
            universe = int(rng.integers(5, 400))
            na = int(rng.integers(0, min(universe, 80)))
            nb = int(rng.integers(0, min(universe, 80)))
            dim = int(rng.choice([1, 3, 4, 8, 17]))
            grad_rows, grad_values, noise_rows, noise_values = _case(
                rng, universe, na, nb, dim
            )
            reference = rng.standard_normal((universe, dim))
            fused = reference.copy()
            _reference_apply(
                reference, 0.1, grad_rows, grad_values, noise_rows, noise_values
            )
            fused_noisy_update(
                fused, 0.1, grad_rows, grad_values, noise_rows, noise_values,
                arena=BufferArena(),
            )
            assert fused.tobytes() == reference.tobytes()

    def test_merged_rows_are_unique_sorted(self):
        rng = np.random.default_rng(3)
        arena = BufferArena()
        for _ in range(20):
            grad_rows, grad_values, noise_rows, noise_values = _case(
                rng, 100, 30, 25, 4
            )
            rows, values = fused_merge(
                grad_rows, grad_values, noise_rows, noise_values, arena
            )
            assert np.all(np.diff(rows) > 0)  # strictly increasing => unique
            expected_rows, expected_values = merge_sparse_updates(
                grad_rows, grad_values, noise_rows, noise_values
            )
            np.testing.assert_array_equal(rows, expected_rows)
            np.testing.assert_array_equal(values, expected_values)

    def test_unsorted_inputs_fall_back_correctly(self):
        rng = np.random.default_rng(5)
        grad_rows = np.array([7, 2, 9], dtype=np.int64)  # unsorted
        grad_values = rng.standard_normal((3, 4))
        noise_rows = np.array([2, 11], dtype=np.int64)
        noise_values = rng.standard_normal((2, 4))
        reference = rng.standard_normal((20, 4))
        fused = reference.copy()
        _reference_apply(
            reference, 0.2, grad_rows, grad_values, noise_rows, noise_values
        )
        fused_noisy_update(
            fused, 0.2, grad_rows, grad_values, noise_rows, noise_values,
            arena=BufferArena(),
        )
        assert fused.tobytes() == reference.tobytes()

    def test_row_base_addresses_slab_window(self):
        """row_base shifts global ids into a contiguous slab window."""
        rng = np.random.default_rng(8)
        table = rng.standard_normal((50, 4))
        window = table[20:40]
        reference = table.copy()
        rows = np.array([23, 31, 39], dtype=np.int64)
        values = rng.standard_normal((3, 4))
        reference[rows] -= 0.5 * values
        fused_noisy_update(
            window, 0.5, rows, values,
            np.empty(0, np.int64), np.zeros((0, 4)),
            arena=BufferArena(), row_base=20,
        )
        assert table.tobytes() == reference.tobytes()

    def test_out_redirects_to_memo(self):
        """The serving engine's read-through: source stays untouched,
        the privatized rows land in ``out``."""
        rng = np.random.default_rng(9)
        table = rng.standard_normal((10, 3))
        source_bits = table.tobytes()
        memo = np.zeros_like(table)
        rows = np.array([2, 5], dtype=np.int64)
        noise = rng.standard_normal((2, 3))
        expected = table[rows] - 0.3 * noise
        apply_sparse_update(
            table, rows, noise, 0.3, arena=BufferArena(), out=memo
        )
        assert table.tobytes() == source_bits
        np.testing.assert_array_equal(memo[rows], expected)
        assert np.all(memo[[0, 1, 3, 4, 6, 7, 8, 9]] == 0.0)

    def test_stage_timing_and_counters_reported(self):
        rng = np.random.default_rng(11)
        timer = StageTimer()
        arena = BufferArena()
        grad_rows, grad_values, noise_rows, noise_values = _case(
            rng, 100, 20, 20, 4
        )
        table = rng.standard_normal((100, 4))
        fused_noisy_update(
            table, 0.1, grad_rows, grad_values, noise_rows, noise_values,
            arena=arena, timer=timer,
        )
        assert "noisy_grad_generation" in timer.totals
        assert "noisy_grad_update" in timer.totals
        stats = timer.stats()
        assert stats["counters"]["arena_allocs"] > 0
        assert stats["counters"]["arena_hits"] >= 0


class TestBufferArena:
    def test_steady_state_allocates_nothing(self):
        rng = np.random.default_rng(13)
        arena = BufferArena()
        table = rng.standard_normal((200, 8))
        case = _case(rng, 200, 40, 40, 8)
        fused_noisy_update(table, 0.1, *case, arena=arena)
        warm_allocs = arena.allocs
        for _ in range(10):
            fused_noisy_update(table, 0.1, *case, arena=arena)
        assert arena.allocs == warm_allocs  # zero-allocation steady state
        assert arena.hits > 0

    def test_buffers_grow_geometrically_and_shrink_requests_hit(self):
        arena = BufferArena()
        first = arena.request("x", (10,), np.float64)
        assert arena.allocs == 1 and first.shape == (10,)
        again = arena.request("x", (6,), np.float64)
        assert arena.hits == 1 and again.shape == (6,)
        bigger = arena.request("x", (11,), np.float64)
        assert arena.allocs == 2 and bigger.shape == (11,)
        # Doubling: the grow allocated capacity 20, so 20 still hits.
        assert arena.request("x", (20,), np.float64).shape == (20,)
        assert arena.allocs == 2

    def test_distinct_keys_never_alias(self):
        arena = BufferArena()
        a = arena.request("a", (4,), np.float64)
        b = arena.request("b", (4,), np.float64)
        a[:] = 1.0
        b[:] = 2.0
        assert np.all(a == 1.0)

    def test_dtype_change_reallocates(self):
        arena = BufferArena()
        arena.request("k", (8,), np.float64)
        ints = arena.request("k", (8,), np.int64)
        assert ints.dtype == np.int64
        assert arena.allocs == 2

    def test_stats_and_clear(self):
        arena = BufferArena()
        arena.request("k", (8,), np.float64)
        stats = arena.stats()
        assert stats["allocs"] == 1 and stats["nbytes"] == 64
        arena.clear()
        assert arena.stats()["nbytes"] == 0


def _looped_exact_sum(stream, table_id, rows, delays, iteration, dim, std):
    """The historical per-lag loop the batched sampler replaced."""
    total = np.zeros((rows.size, dim), dtype=np.float64)
    max_delay = int(delays.max()) if delays.size else 0
    order = np.argsort(-delays, kind="stable")
    ordered_rows = rows[order]
    ordered_delays = delays[order]
    for lag in range(1, max_delay + 1):
        active = int(np.searchsorted(-ordered_delays, -lag, side="right"))
        if active == 0:
            break
        total[order[:active]] += stream.row_noise(
            table_id, ordered_rows[:active], iteration - lag + 1, dim, std=std
        )
    return total


class TestBatchedSampler:
    @pytest.fixture
    def stream(self):
        return NoiseStream(seed=123)

    def test_equals_lag_loop(self, stream):
        rng = np.random.default_rng(17)
        rows = _sorted_rows(rng, 1000, 64)
        delays = rng.integers(0, 30, size=64).astype(np.int64)
        batched = batched_catchup_sum(
            stream, 2, rows, delays, 35, 8, std=0.7, arena=BufferArena()
        )
        looped = _looped_exact_sum(stream, 2, rows, delays, 35, 8, 0.7)
        np.testing.assert_allclose(batched, looped, atol=1e-12)

    def test_zero_delay_rows_exactly_zero(self, stream):
        rows = np.array([1, 2, 3], dtype=np.int64)
        delays = np.array([0, 4, 0], dtype=np.int64)
        out = batched_catchup_sum(stream, 0, rows, delays, 9, 4)
        assert np.all(out[[0, 2]] == 0.0)
        assert np.all(out[1] != 0.0)

    def test_row_purity_under_partitioning(self, stream):
        """A row's catch-up sum is identical no matter which other rows
        are batched with it — the invariant sharded-vs-serial bitwise
        equality rests on."""
        rng = np.random.default_rng(19)
        rows = _sorted_rows(rng, 500, 40)
        delays = rng.integers(1, 25, size=40).astype(np.int64)
        whole = batched_catchup_sum(stream, 1, rows, delays, 30, 8, std=0.5)
        split = np.empty_like(whole)
        for part in (slice(0, 13), slice(13, 31), slice(31, 40)):
            split[part] = batched_catchup_sum(
                stream, 1, rows[part], delays[part], 30, 8, std=0.5
            )
        assert whole.tobytes() == split.tobytes()

    def test_oversized_row_windowed_path(self, stream):
        """A row whose delay exceeds the per-row budget is summed in
        bounded lag windows — value-equal to the lag loop, and still a
        pure function of the row (partition- and chunk-invariant)."""
        rows = np.array([5, 9, 40], dtype=np.int64)
        delays = np.array([2, 300, 7], dtype=np.int64)  # 300 > window
        windowed = batched_catchup_sum(
            stream, 0, rows, delays, 301, 4, std=0.5, max_row_scalars=64
        )
        looped = _looped_exact_sum(stream, 0, rows, delays, 301, 4, 0.5)
        np.testing.assert_allclose(windowed, looped, atol=1e-12)
        # Purity: the oversized row alone yields the same bits.
        alone = batched_catchup_sum(
            stream, 0, rows[1:2], delays[1:2], 301, 4, std=0.5,
            max_row_scalars=64,
        )
        assert alone.tobytes() == windowed[1:2].tobytes()
        # Chunk budget must not change bits even with oversized rows.
        chunked = batched_catchup_sum(
            stream, 0, rows, delays, 301, 4, std=0.5, max_scalars=16,
            max_row_scalars=64,
        )
        assert chunked.tobytes() == windowed.tobytes()

    def test_chunked_equals_unchunked_bitwise(self, stream):
        """Row-aligned draw-budget chunking must not change any bits."""
        rng = np.random.default_rng(23)
        rows = _sorted_rows(rng, 2000, 50)
        delays = rng.integers(0, 40, size=50).astype(np.int64)
        whole = batched_catchup_sum(
            stream, 0, rows, delays, 45, 8, max_scalars=1 << 30
        )
        chunked = batched_catchup_sum(
            stream, 0, rows, delays, 45, 8, max_scalars=64
        )
        assert whole.tobytes() == chunked.tobytes()

    def test_single_philox_invocation_within_budget(self, stream):
        rng = np.random.default_rng(29)
        rows = _sorted_rows(rng, 1000, 32)
        delays = rng.integers(1, 200, size=32).astype(np.int64)
        max_delay = int(delays.max())
        before = philox_invocations()
        batched_catchup_sum(
            stream, 0, rows, delays, 205, 4, max_scalars=1 << 30
        )
        batched_invocations = philox_invocations() - before
        assert batched_invocations == 1  # vs the loop's max_delay launches
        before = philox_invocations()
        _looped_exact_sum(stream, 0, rows, delays, 205, 4, 1.0)
        assert philox_invocations() - before == max_delay

    def test_samples_drawn_matches_lag_loop_accounting(self, stream):
        """The batched path must report the draw count the lag loop did:
        sum(delays) * dim scalar Gaussians."""
        engine = ANSEngine(stream, enabled=False)
        rows = np.array([3, 8, 11], dtype=np.int64)
        delays = np.array([5, 0, 2], dtype=np.int64)
        engine.catchup_noise(0, rows, delays, 9, dim=4, std=1.0)
        assert engine.samples_drawn == int(delays.sum()) * 4

    def test_row_noise_sum_uses_one_invocation(self, stream):
        rows = np.arange(10, dtype=np.int64)
        before = philox_invocations()
        total = stream.row_noise_sum(0, rows, 3, 40, dim=8)
        assert philox_invocations() - before == 1
        manual = sum(stream.row_noise(0, rows, it, 8) for it in range(3, 41))
        np.testing.assert_allclose(total, manual, atol=1e-12)

    def test_empty_inputs(self, stream):
        out = batched_catchup_sum(
            stream, 0, np.empty(0, np.int64), np.empty(0, np.int64), 5, 8
        )
        assert out.shape == (0, 8)
        out = batched_catchup_sum(
            stream, 0, np.array([4]), np.array([0]), 5, 8
        )
        assert np.all(out == 0.0)
