"""The pipelined engine's headline guarantee: bitwise equivalence.

``PipelinedLazyDPTrainer`` (and its sharded variant) must release
exactly the parameters the serial ``LazyDPTrainer`` releases — same
seed, same trace, same bits — for every prefetch depth, sampling
scheme, ANS mode and shard count.  Noise values are keyed by
``(seed, table, row, iteration)``, so moving the plan+sample phase onto
a background worker cannot change them; these tests pin that.
"""

import numpy as np
import pytest

from repro import configs
from repro.pipeline import PipelinedLazyDPTrainer, PipelinedShardedLazyDPTrainer
from repro.testing import make_loader, max_param_diff, train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


def train_pipelined(config, *, sampling="fixed", use_ans=True, num_batches=6,
                    sharded=False, **kwargs):
    prefix = "pipelined_sharded" if sharded else "pipelined"
    algorithm = f"{prefix}_lazydp" if use_ans else f"{prefix}_lazydp_no_ans"
    model, result, trainer = train_algorithm(
        algorithm, config, num_batches=num_batches, sampling=sampling,
        trainer_kwargs=kwargs,
    )
    trainer.close()
    return model, result, trainer


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("prefetch_depth", [1, 2, 4])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_released_params_identical(self, config, prefetch_depth,
                                       sampling):
        flat_model, _, _ = train_algorithm(
            "lazydp", config, num_batches=6, sampling=sampling
        )
        pipelined_model, _, _ = train_pipelined(
            config, sampling=sampling, prefetch_depth=prefetch_depth
        )
        assert max_param_diff(flat_model, pipelined_model) == 0.0

    @pytest.mark.parametrize("use_ans", [True, False])
    def test_identical_with_and_without_ans(self, config, use_ans):
        algorithm = "lazydp" if use_ans else "lazydp_no_ans"
        flat_model, _, _ = train_algorithm(algorithm, config, num_batches=5)
        pipelined_model, _, _ = train_pipelined(
            config, use_ans=use_ans, num_batches=5
        )
        assert max_param_diff(flat_model, pipelined_model) == 0.0

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_sharded_pipelined_identical(self, config, num_shards, sampling):
        flat_model, _, _ = train_algorithm(
            "lazydp", config, num_batches=6, sampling=sampling
        )
        pipelined_model, _, _ = train_pipelined(
            config, sampling=sampling, sharded=True, num_shards=num_shards,
        )
        assert max_param_diff(flat_model, pipelined_model) == 0.0

    def test_sharded_pipelined_threads_no_ans(self, config):
        """The heaviest combination: threads, hash shards, exact replay."""
        flat_model, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=5
        )
        pipelined_model, _, _ = train_pipelined(
            config, use_ans=False, num_batches=5, sharded=True,
            num_shards=7, partition="hash", executor="threads",
            prefetch_depth=3,
        )
        assert max_param_diff(flat_model, pipelined_model) == 0.0

    def test_histories_match_serial_after_fit(self, config):
        _, _, flat_trainer = train_algorithm("lazydp", config, num_batches=6)
        _, _, pipelined_trainer = train_pipelined(config)
        for flat, pipelined in zip(flat_trainer.engine.histories,
                                   pipelined_trainer.engine.histories):
            np.testing.assert_array_equal(
                flat.snapshot(), pipelined.snapshot()
            )

    def test_same_draw_count_as_serial(self, config):
        """Prefetching changes when noise is drawn, never how much."""
        _, _, flat_trainer = train_algorithm("lazydp", config, num_batches=6)
        _, _, pipelined_trainer = train_pipelined(config)
        assert pipelined_trainer.engine.ans.samples_drawn == \
            flat_trainer.engine.ans.samples_drawn


class TestTrainerBehaviour:
    def test_algorithm_names(self, config):
        _, result, _ = train_pipelined(config)
        assert result.algorithm == "pipelined_lazydp"
        _, result, _ = train_pipelined(config, use_ans=False)
        assert result.algorithm == "pipelined_lazydp_no_ans"
        _, result, _ = train_pipelined(config, sharded=True, num_shards=2)
        assert result.algorithm == "pipelined_sharded_lazydp"

    def test_rejects_bad_depth(self, config):
        from repro.nn import DLRM
        from repro.train import DPConfig

        with pytest.raises(ValueError, match="prefetch_depth"):
            PipelinedLazyDPTrainer(
                DLRM(config, seed=7), DPConfig(), prefetch_depth=0
            )

    def test_pipeline_stats_and_wait_stage(self, config):
        _, result, trainer = train_pipelined(config)
        stats = trainer.pipeline_stats()
        assert stats["plans_computed"] == 5  # 6 batches -> 5 lookaheads
        assert stats["prefetch_busy_seconds"] > 0.0
        assert 0.0 <= stats["hidden_fraction"] <= 1.0
        assert stats["hidden_seconds"] + stats["exposed_wait_seconds"] >= 0.0
        # The worker did the dedup/history/sampling work, not the trainer.
        worker_stages = stats["worker_stage_seconds"]
        assert worker_stages["noise_sampling"] > 0.0
        assert worker_stages["lazydp_history_read"] >= 0.0
        # The embedding catch-up stages moved off the trainer timer
        # entirely (dense MLP noise still samples inline, so
        # ``noise_sampling`` itself may appear there).
        assert "lazydp_dedup" not in result.stage_times
        assert "lazydp_history_read" not in result.stage_times
        assert "pipeline_wait" in result.stage_times

    def test_manual_stepping_falls_back_to_serial(self, config):
        """Outside fit() the pipeline is inactive: inline path, still
        bitwise-identical to the serial trainer."""
        from repro.data import LookaheadLoader
        from repro.nn import DLRM
        from repro.train import DPConfig

        flat_model, _, _ = train_algorithm("lazydp", config, num_batches=4)
        model = DLRM(config, seed=7)
        trainer = PipelinedLazyDPTrainer(
            model, DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                            learning_rate=0.05), noise_seed=99,
        )
        trainer.expected_batch_size = 16
        loader = make_loader(config, batch_size=16, num_batches=4)
        for index, batch, upcoming in LookaheadLoader(loader):
            trainer.train_step(index + 1, batch, upcoming)
        trainer.finalize(4)
        assert max_param_diff(flat_model, model) == 0.0

    def test_pipeline_session_resets_worker_stats(self, config):
        """Each pipeline session gets fresh worker timers, so
        ``pipeline_stats`` stays per-run like the buffer/worker counters
        (re-*fitting* a LazyDP trainer is illegal — the history is ahead
        — but a fresh session must not inherit stale stage times)."""
        from repro.nn import DLRM
        from repro.train import DPConfig

        model = DLRM(config, seed=7)
        trainer = PipelinedLazyDPTrainer(
            model, DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                            learning_rate=0.05), noise_seed=99,
        )
        loader = make_loader(config, batch_size=16, num_batches=3)
        trainer.fit(loader)
        assert not trainer._pipeline_running
        first_timer = trainer.worker_timer
        assert first_timer.total() > 0.0
        trainer._start_pipeline(loader)
        try:
            assert trainer.worker_timer is not first_timer
            assert trainer.worker_timer.total() == 0.0
        finally:
            trainer._shutdown_pipeline()

    def test_sharded_stats_expose_per_shard_stage_split(self, config):
        """The Figure-11-style dedup/history/sampling attribution must
        survive pipelining: per-shard prefetch timers are surfaced, and
        the lumped fan-out wall-clock is named shard_prefetch (not
        noise_sampling)."""
        _, _, trainer = train_pipelined(
            config, sharded=True, num_shards=3
        )
        stats = trainer.pipeline_stats()
        assert "shard_prefetch" in stats["worker_stage_seconds"]
        assert "noise_sampling" not in stats["worker_stage_seconds"]
        per_shard = stats["prefetch_shard_stage_seconds"]
        assert len(per_shard) == 3
        for stages in per_shard:
            assert stages["noise_sampling"] >= 0.0
            assert stages["lazydp_history_read"] >= 0.0
            assert stages["lazydp_history_update"] >= 0.0

    def test_prefetch_executor_mirrors_instance_backend(self, config):
        """An executor *instance* must not downgrade prefetch to serial."""
        from repro.nn import DLRM
        from repro.shard import ThreadPoolShardExecutor
        from repro.train import DPConfig

        trainer = PipelinedShardedLazyDPTrainer(
            DLRM(config, seed=7), DPConfig(), noise_seed=99, num_shards=3,
            executor=ThreadPoolShardExecutor(max_workers=3),
        )
        assert trainer.prefetch_executor.name == "threads"
        assert trainer.prefetch_executor.max_workers == 3
        trainer.close()

    def test_worker_error_propagates(self, config):
        from repro.nn import DLRM
        from repro.train import DPConfig

        model = DLRM(config, seed=7)
        trainer = PipelinedLazyDPTrainer(
            model, DPConfig(), noise_seed=99,
        )

        def boom(iteration, batch):
            raise RuntimeError("prefetch exploded")

        trainer._prefetch_noise = boom
        with pytest.raises(RuntimeError, match="noise-prefetch worker"):
            trainer.fit(make_loader(config, batch_size=16, num_batches=4))
        assert not trainer._pipeline_running


class TestReleaseAndCheckpoint:
    def test_export_private_model_works_pipelined(self, config):
        """Mid-training release from a pipelined trainer == serial."""
        from repro.data import LookaheadLoader
        from repro.lazydp import LazyDPTrainer, export_private_model
        from repro.nn import DLRM
        from repro.train import DPConfig

        def drive(trainer, steps):
            loader = make_loader(config, batch_size=16, num_batches=steps)
            trainer.expected_batch_size = 16
            for index, batch, upcoming in LookaheadLoader(loader):
                trainer.train_step(index + 1, batch, upcoming)

        flat_model = DLRM(config, seed=7)
        flat_trainer = LazyDPTrainer(flat_model, DPConfig(), noise_seed=99)
        drive(flat_trainer, 4)
        flat_release = export_private_model(flat_trainer, iteration=4)

        pipelined_model = DLRM(config, seed=7)
        pipelined_trainer = PipelinedLazyDPTrainer(
            pipelined_model, DPConfig(), noise_seed=99
        )
        drive(pipelined_trainer, 4)
        pipelined_release = export_private_model(
            pipelined_trainer, iteration=4
        )

        assert flat_release.keys() == pipelined_release.keys()
        for name in flat_release:
            np.testing.assert_array_equal(
                flat_release[name], pipelined_release[name]
            )

    def test_terminal_flush_complete(self, config):
        _, _, trainer = train_pipelined(config, num_batches=4)
        assert trainer.engine.flushed_through == 4
        for history in trainer.engine.histories:
            assert history.pending_rows(4).size == 0
