"""Tests for the LazyDP trainer, engine plumbing and the make_private API."""

import numpy as np
import pytest

from repro import configs, make_private
from repro.data import DataLoader, SyntheticClickDataset
from repro.lazydp import LazyNoiseEngine
from repro.nn import DLRM
from repro.rng import NoiseStream
from repro.train import DPConfig

from repro.testing import train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=2)


class TestLazyDPTrainer:
    def test_name_reflects_ans_flag(self, config):
        _, result_ans, _ = train_algorithm("lazydp", config, num_batches=2)
        _, result_plain, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=2
        )
        assert result_ans.algorithm == "lazydp"
        assert result_plain.algorithm == "lazydp_no_ans"

    def test_history_fully_caught_up_after_fit(self, config):
        _, _, trainer = train_algorithm("lazydp", config, num_batches=6)
        for history in trainer.engine.histories:
            assert history.pending_rows(6).size == 0

    def test_engine_rejects_training_after_flush(self, config):
        _, _, trainer = train_algorithm("lazydp", config, num_batches=3)
        assert trainer.engine.flushed_through == 3
        with pytest.raises(RuntimeError):
            trainer.engine.catchup_for_next_access(
                0, np.array([1]), 4, 8, 0.1
            )

    def test_overhead_stages_timed(self, config):
        _, _, trainer = train_algorithm("lazydp", config, num_batches=3)
        stages = trainer.timer.as_dict()
        for stage in ("lazydp_dedup", "lazydp_history_read",
                      "lazydp_history_update"):
            assert stages[stage] > 0
        assert trainer.timer.lazydp_overhead_total() > 0

    def test_sparse_updates_only(self, config):
        """Mid-run (pre-flush), untouched rows must hold their init value —
        that is precisely the deferred work."""
        dp = DPConfig()
        model = DLRM(config, seed=7)
        reference = DLRM(config, seed=7)
        from repro.testing import trainer_for
        trainer = trainer_for("lazydp", model, dp, noise_seed=99)
        dataset = SyntheticClickDataset(config, seed=3)
        loader = DataLoader(dataset, batch_size=4, num_batches=2, seed=5)
        trainer.expected_batch_size = 4
        from repro.data import LookaheadLoader
        for index, batch, next_batch in LookaheadLoader(loader):
            trainer.train_step(index + 1, batch, next_batch)
        for t, bag in enumerate(model.embeddings):
            unchanged = np.all(
                bag.table.data == reference.embeddings[t].table.data, axis=1
            )
            assert unchanged.sum() > bag.num_rows // 2

    def test_flush_chunking(self, config):
        """Flush with a tiny chunk size must agree with one-shot flush."""
        dp = DPConfig()

        def run(chunk):
            model = DLRM(config, seed=7)
            from repro.testing import trainer_for
            trainer = trainer_for("lazydp_no_ans", model, dp, noise_seed=99)
            trainer.engine.flush_chunk_rows = chunk
            dataset = SyntheticClickDataset(config, seed=3)
            loader = DataLoader(dataset, batch_size=8, num_batches=4, seed=5)
            trainer.fit(loader)
            return model

        model_small = run(chunk=7)
        model_large = run(chunk=1 << 16)
        for name, param in model_small.parameters().items():
            np.testing.assert_allclose(
                param.data, model_large.parameters()[name].data, atol=1e-12
            )

    def test_finalize_before_any_step(self, config):
        """finalize() with no training step must flush with a sane std.

        Regression test: the fallback used to read ``expected_batch_size``
        without guarding against it being unset (None) or zero.
        """
        from repro.lazydp import LazyDPTrainer

        for expected in (None, 0, 16):
            model = DLRM(config, seed=7)
            trainer = LazyDPTrainer(model, DPConfig(), noise_seed=99)
            trainer.expected_batch_size = expected
            denominator = max(int(expected or 0), 1)
            assert trainer._flush_noise_std() == pytest.approx(
                DPConfig().noise_std(denominator)
            )
            trainer.finalize(3)  # must not raise
            assert trainer.engine.flushed_through == 3
            for history in trainer.engine.histories:
                assert history.pending_rows(3).size == 0

    def test_flush_std_prefers_last_observed(self, config):
        _, _, trainer = train_algorithm("lazydp", config, num_batches=2)
        assert trainer._last_noise_std is not None
        assert trainer._flush_noise_std() == trainer._last_noise_std

    def test_loss_finite_and_learns(self, config):
        _, result, _ = train_algorithm(
            "lazydp", config, batch_size=64, num_batches=25,
            dp=DPConfig(noise_multiplier=0.2, max_grad_norm=5.0,
                        learning_rate=0.05),
        )
        assert np.all(np.isfinite(result.mean_losses))
        assert np.mean(result.mean_losses[-5:]) < np.mean(result.mean_losses[:5])

    def test_zero_iterations(self, config):
        model = DLRM(config, seed=7)
        dataset = SyntheticClickDataset(config, seed=3)
        loader = DataLoader(dataset, batch_size=8, num_batches=1, seed=5)
        from repro.testing import trainer_for
        trainer = trainer_for("lazydp", model, DPConfig(), noise_seed=99)
        result = trainer.fit(loader)
        assert result.iterations == 1


class TestLazyNoiseEngine:
    def test_history_bytes(self, config):
        model = DLRM(config, seed=0)
        engine = LazyNoiseEngine(model, NoiseStream(1))
        assert engine.history_bytes() == sum(config.table_rows) * 4

    def test_catchup_advances_history(self, config):
        model = DLRM(config, seed=0)
        engine = LazyNoiseEngine(model, NoiseStream(1))
        rows = np.array([3, 9])
        returned_rows, delays, noise = engine.catchup_for_next_access(
            0, rows, iteration=4, dim=8, std=0.1
        )
        np.testing.assert_array_equal(returned_rows, rows)
        np.testing.assert_array_equal(delays, [4, 4])
        assert noise.shape == (2, 8)
        np.testing.assert_array_equal(
            engine.histories[0].last_updated(rows), [4, 4]
        )

    def test_flush_returns_pending_count(self, config):
        model = DLRM(config, seed=0)
        engine = LazyNoiseEngine(model, NoiseStream(1))
        engine.catchup_for_next_access(0, np.array([0, 1]), 3, 8, 0.1)
        caught = engine.flush(3, learning_rate=0.1, std=0.1)
        total_rows = sum(config.table_rows)
        assert caught == total_rows - 2


class TestMakePrivateAPI:
    def test_quickstart_path(self, config):
        """The paper's Figure 9a usage pattern end-to-end."""
        model = DLRM(config, seed=0)
        dataset = SyntheticClickDataset(config, seed=1)
        loader = DataLoader(dataset, batch_size=32, num_batches=5, seed=2)
        session = make_private(
            model, loader, noise_multiplier=1.1, max_gradient_norm=1.0
        )
        result = session.fit()
        assert result.iterations == 5
        assert session.epsilon() > 0
        assert session.epsilon(delta=1e-7) > session.epsilon(delta=1e-3)

    def test_epsilon_before_training_raises(self, config):
        model = DLRM(config, seed=0)
        dataset = SyntheticClickDataset(config, seed=1)
        loader = DataLoader(dataset, batch_size=8, num_batches=2)
        session = make_private(model, loader)
        with pytest.raises(RuntimeError):
            session.epsilon()

    def test_ans_ablation_flag(self, config):
        model = DLRM(config, seed=0)
        dataset = SyntheticClickDataset(config, seed=1)
        loader = DataLoader(dataset, batch_size=8, num_batches=2)
        session = make_private(model, loader, use_ans=False)
        assert session.trainer.use_ans is False
        assert session.trainer.engine.use_ans is False

    def test_hyperparameters_forwarded(self, config):
        model = DLRM(config, seed=0)
        dataset = SyntheticClickDataset(config, seed=1)
        loader = DataLoader(dataset, batch_size=8, num_batches=2)
        session = make_private(
            model, loader, noise_multiplier=2.5, max_gradient_norm=0.3,
            learning_rate=0.01, delta=1e-6,
        )
        assert session.trainer.config.noise_multiplier == 2.5
        assert session.trainer.config.max_grad_norm == 0.3
        assert session.trainer.config.learning_rate == 0.01
        assert session.trainer.config.delta == 1e-6
