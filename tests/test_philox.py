"""Tests for the Philox4x32-10 counter-based generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    derive_key,
    make_counters,
    philox4x32,
    splitmix64,
    uniform_from_uint32,
)


def _counters(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=(n, 4), dtype=np.uint32)


class TestPhiloxCore:
    def test_output_shape_and_dtype(self):
        out = philox4x32(_counters(10), derive_key(0))
        assert out.shape == (10, 4)
        assert out.dtype == np.uint32

    def test_deterministic(self):
        counters = _counters(100)
        key = derive_key(42)
        assert np.array_equal(philox4x32(counters, key),
                              philox4x32(counters, key))

    def test_different_keys_differ(self):
        counters = _counters(100)
        out_a = philox4x32(counters, derive_key(1))
        out_b = philox4x32(counters, derive_key(2))
        assert not np.array_equal(out_a, out_b)

    def test_different_counters_differ(self):
        key = derive_key(7)
        a = make_counters(np.uint32(0), np.uint32(0), np.uint32(0), np.uint32(0))
        b = make_counters(np.uint32(1), np.uint32(0), np.uint32(0), np.uint32(0))
        assert not np.array_equal(philox4x32(a, key), philox4x32(b, key))

    def test_single_bit_counter_change_flips_many_bits(self):
        """Avalanche: flipping one counter bit should change ~half of output."""
        key = derive_key(3)
        base = make_counters(np.uint32(123), np.uint32(4), np.uint32(5),
                             np.uint32(6))
        flipped = base.copy()
        flipped[0, 0] ^= np.uint32(1)
        out_a = philox4x32(base, key)[0]
        out_b = philox4x32(flipped, key)[0]
        differing_bits = sum(
            bin(int(a) ^ int(b)).count("1") for a, b in zip(out_a, out_b)
        )
        assert 40 <= differing_bits <= 88  # ~64 expected of 128

    def test_order_independence(self):
        """Values depend only on the counter, not batch composition."""
        key = derive_key(5)
        counters = _counters(50)
        full = philox4x32(counters, key)
        subset = philox4x32(counters[10:20], key)
        assert np.array_equal(full[10:20], subset)

    def test_rejects_bad_counter_shape(self):
        with pytest.raises(ValueError):
            philox4x32(np.zeros((4, 3), dtype=np.uint32), derive_key(0))

    def test_rejects_bad_key_shape(self):
        with pytest.raises(ValueError):
            philox4x32(_counters(1), np.zeros(3, dtype=np.uint32))

    def test_empty_batch(self):
        out = philox4x32(np.zeros((0, 4), dtype=np.uint32), derive_key(0))
        assert out.shape == (0, 4)


class TestPhiloxStatistics:
    def test_uniformity_chi_squared(self):
        """Output bytes should be uniform: chi-squared over 256 bins."""
        words = philox4x32(
            make_counters(
                np.arange(65536, dtype=np.uint32), np.uint32(0),
                np.uint32(0), np.uint32(0),
            ),
            derive_key(11),
        )
        raw_bytes = words.view(np.uint8).ravel()
        counts = np.bincount(raw_bytes, minlength=256)
        expected = raw_bytes.size / 256
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 255 dof: mean 255, std ~22.6; 5-sigma bound.
        assert chi2 < 255 + 5 * 22.6

    def test_mean_of_uniforms(self):
        words = philox4x32(
            make_counters(np.arange(40000, dtype=np.uint32), np.uint32(1),
                          np.uint32(2), np.uint32(3)),
            derive_key(13),
        )
        uniforms = uniform_from_uint32(words)
        assert abs(uniforms.mean() - 0.5) < 0.005
        assert abs(uniforms.var() - 1.0 / 12.0) < 0.005

    def test_lagged_correlation_is_small(self):
        words = philox4x32(
            make_counters(np.arange(30000, dtype=np.uint32), np.uint32(0),
                          np.uint32(9), np.uint32(0)),
            derive_key(17),
        )
        u = uniform_from_uint32(words).ravel()
        lagged = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(lagged) < 0.02


class TestUniformConversion:
    def test_range_is_open_interval(self):
        extremes = np.array([0, 2**32 - 1], dtype=np.uint32)
        u = uniform_from_uint32(extremes)
        assert np.all(u > 0.0)
        assert np.all(u < 1.0)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_monotone_in_word(self, word):
        u = uniform_from_uint32(np.array([word], dtype=np.uint32))[0]
        assert 0.0 < u < 1.0


class TestSplitmixAndKeys:
    def test_splitmix_deterministic_scalar(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_splitmix_distinct_neighbors(self):
        values = {int(splitmix64(i)) for i in range(1000)}
        assert len(values) == 1000

    def test_splitmix_vectorised_matches_scalar(self):
        xs = np.arange(100, dtype=np.uint64)
        vector = splitmix64(xs)
        for i in range(100):
            assert vector[i] == splitmix64(int(xs[i]))

    def test_derive_key_shape(self):
        key = derive_key(0, domain=1, stream=2)
        assert key.shape == (2,)
        assert key.dtype == np.uint32

    def test_derive_key_separates_domains(self):
        assert not np.array_equal(derive_key(1, domain=1), derive_key(1, domain=2))

    def test_derive_key_separates_streams(self):
        assert not np.array_equal(
            derive_key(1, domain=1, stream=0), derive_key(1, domain=1, stream=1)
        )

    def test_derive_key_separates_seeds(self):
        assert not np.array_equal(derive_key(1), derive_key(2))

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**62),
           st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    def test_derive_key_deterministic(self, seed, domain, stream):
        assert np.array_equal(
            derive_key(seed, domain, stream), derive_key(seed, domain, stream)
        )


class TestMakeCounters:
    def test_broadcast_scalars(self):
        counters = make_counters(
            np.arange(5, dtype=np.uint32), np.uint32(7), np.uint32(8),
            np.uint32(9),
        )
        assert counters.shape == (5, 4)
        assert np.array_equal(counters[:, 0], np.arange(5, dtype=np.uint32))
        assert np.all(counters[:, 1] == 7)

    def test_full_arrays(self):
        a = np.arange(4, dtype=np.uint32)
        counters = make_counters(a, a + 1, a + 2, a + 3)
        assert np.array_equal(counters[2], [2, 3, 4, 5])
