"""The execution-backend registry and the deprecated executor shim.

The registry (``repro.session.registry``) is the single source of truth
for what ``ExecutionPlan.backend`` may name: plan validation, the
trainer-class composer and ``tools/plan_matrix.py`` all iterate it, and
``register_backend`` is the extension point third-party backends use.
"""

import warnings

import pytest

from repro import configs
from repro.session import (
    BACKEND_CAPABILITIES,
    BackendInfo,
    ExecutionPlan,
    available_backends,
    backend_info,
    compose_trainer_class,
    parse_backend_spec,
    register_backend,
)
from repro.session.registry import _REGISTRY


@pytest.fixture
def scratch_backend():
    """Register-and-clean-up helper for tests that extend the registry."""
    registered = []

    def _register(name, factory, capabilities=(), description=""):
        register_backend(name, factory, capabilities=capabilities,
                         description=description)
        registered.append(name)
        return backend_info(name)

    yield _register
    for name in registered:
        _REGISTRY.pop(name, None)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert available_backends() == ("numpy", "threads", "process", "numba")

    def test_backend_info_fields(self):
        info = backend_info("threads")
        assert isinstance(info, BackendInfo)
        assert info.name == "threads"
        assert info.supports("workers")
        assert not info.supports("flat")
        assert backend_info("numpy").supports("flat")
        assert backend_info("process").supports("shards")
        assert not backend_info("process").supports("pipeline")

    def test_kernel_table_and_availability_fields(self):
        # Every backend but numba runs the numpy reference kernels and
        # is unconditionally available.
        for name in ("numpy", "threads", "process"):
            info = backend_info(name)
            assert info.kernels == "numpy"
            assert info.available() == (True, "")
        numba = backend_info("numba")
        assert numba.kernels == "numba"
        assert numba.supports("flat") and numba.supports("shards")
        ok, reason = numba.available()
        # Environment-dependent: when numba is missing the reason must
        # name the optional extra users need to install.
        if not ok:
            assert "numba" in reason
        else:
            assert reason == ""

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            backend_info("cuda")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message
        assert "register_backend" in message

    def test_register_backend_extends_plan_validation(self, scratch_backend):
        scratch_backend(
            "scratch", lambda **kwargs: object,
            capabilities=("flat", "shards"),
        )
        assert "scratch" in available_backends()
        plan = ExecutionPlan(backend="scratch")
        assert plan.backend == "scratch"
        unknown_error = None
        try:
            ExecutionPlan(backend="still_unknown")
        except ValueError as error:
            unknown_error = str(error)
        assert unknown_error is not None and "scratch" in unknown_error

    def test_register_rejects_duplicates_and_bad_input(self, scratch_backend):
        scratch_backend("dupe", lambda **kwargs: object,
                        capabilities=("flat",))
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dupe", lambda **kwargs: object)
        with pytest.raises(ValueError, match="name"):
            register_backend("bad name!", lambda **kwargs: object)
        with pytest.raises(ValueError, match="callable"):
            register_backend("notafactory", "nope")
        with pytest.raises(ValueError, match="capabilit"):
            register_backend("badcaps", lambda **kwargs: object,
                             capabilities=("time_travel",))

    def test_capability_vocabulary_is_closed(self):
        for name in available_backends():
            assert backend_info(name).capabilities <= set(BACKEND_CAPABILITIES)


class TestBackendSpecs:
    def test_parse_forms(self):
        assert parse_backend_spec("threads") == ("threads", None)
        assert parse_backend_spec("threads:4") == ("threads", 4)
        assert parse_backend_spec("process") == ("process", None)

    def test_parse_rejects_bad_worker_counts(self):
        with pytest.raises(ValueError, match="worker"):
            parse_backend_spec("threads:zero")
        with pytest.raises(ValueError, match="worker"):
            parse_backend_spec("threads:0")
        # numpy has no "workers" capability: a count is meaningless.
        with pytest.raises(ValueError, match="worker"):
            ExecutionPlan(backend="numpy:2")

    def test_flat_plan_requires_flat_capability(self):
        with pytest.raises(ValueError, match="shards"):
            ExecutionPlan(backend="threads")
        with pytest.raises(ValueError, match="shards"):
            ExecutionPlan.from_spec("backend=process")

    def test_process_pins_one_worker_per_shard(self):
        plan = ExecutionPlan.from_spec("shards=3,backend=process:3")
        assert parse_backend_spec(plan.backend) == ("process", 3)
        with pytest.raises(ValueError, match="process:4"):
            ExecutionPlan.from_spec("shards=3,backend=process:4")

    def test_process_composes_with_neither_pipeline_nor_async(self):
        with pytest.raises(ValueError, match="pipeline"):
            ExecutionPlan.from_spec("shards=2,backend=process,pipeline=2")
        with pytest.raises(ValueError, match="async"):
            ExecutionPlan.from_spec("shards=2,backend=process,async=strict")

    def test_process_spec_round_trips(self):
        for spec in ("ans=on,shards=2,partition=row_range,backend=process",
                     "ans=off,shards=7,partition=hash,backend=process:7"):
            plan = ExecutionPlan.from_spec(spec)
            assert plan.to_spec() == spec
            assert ExecutionPlan.from_dict(plan.to_dict()) == plan


class TestDeprecatedExecutorShim:
    def test_shim_warns_once_and_canonicalizes(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            plan = ExecutionPlan(
                shards=configs.ShardConfig(num_shards=4, executor="threads",
                                           max_workers=2),
            )
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "backend" in str(deprecations[0].message)
        assert plan.backend == "threads:2"
        assert plan.shards.executor == "serial"
        assert plan.shards.max_workers is None

    def test_shim_spec_keys_still_parse(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            plan = ExecutionPlan.from_spec("shards=2,executor=threads")
        assert plan.backend == "threads"
        assert plan.to_spec() == (
            "ans=on,shards=2,partition=row_range,backend=threads"
        )

    def test_both_spellings_at_once_is_a_contradiction(self):
        with pytest.raises(ValueError, match="contradictory"):
            ExecutionPlan(
                shards=configs.ShardConfig(num_shards=2, executor="threads"),
                backend="process",
            )
        with pytest.raises(ValueError, match="contradictory"):
            ExecutionPlan.from_spec(
                "shards=2,executor=threads,backend=process"
            )


class TestComposer:
    def test_compose_resolves_through_registry(self):
        from repro.lazydp import LazyDPTrainer
        from repro.procshard import ProcessShardedLazyDPTrainer
        from repro.shard import ShardedLazyDPTrainer

        assert compose_trainer_class(
            sharded=False, pipelined=False, async_=False, backend="numpy"
        ) is LazyDPTrainer
        assert compose_trainer_class(
            sharded=True, pipelined=False, async_=False, backend="numpy"
        ) is ShardedLazyDPTrainer
        assert compose_trainer_class(
            sharded=True, pipelined=False, async_=False, backend="process"
        ) is ProcessShardedLazyDPTrainer
        # Worker counts select the same class: they are trainer kwargs.
        assert compose_trainer_class(
            sharded=True, pipelined=False, async_=False, backend="threads:3"
        ) is compose_trainer_class(
            sharded=True, pipelined=False, async_=False, backend="threads"
        )

    def test_custom_backend_composes(self, scratch_backend):
        from repro.shard import ShardedLazyDPTrainer

        class MarkerTrainer(ShardedLazyDPTrainer):
            pass

        scratch_backend(
            "marker",
            lambda *, sharded, pipelined, async_: MarkerTrainer,
            capabilities=("shards",),
        )
        composed = compose_trainer_class(
            sharded=True, pipelined=False, async_=False, backend="marker"
        )
        assert issubclass(composed, MarkerTrainer)
