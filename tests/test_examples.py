"""Smoke tests: every example in examples/ runs to completion.

Slow examples get their module-level workload constants patched down —
the point is exercising each script's full code path (including its
internal assertions, several of which are equivalence checks), not its
production-sized workload.
"""

import importlib.util
import pathlib
import sys


EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_examples_directory_contents(self):
        scripts = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart" in scripts
        assert len(scripts) >= 5  # the deliverable: at least 3, we ship 7

    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "privacy spent" in out
        assert "epsilon" in out

    def test_equivalence_walkthrough(self, capsys):
        # Contains its own exact-equality assertions (Figure 7 replay).
        load_example("equivalence_walkthrough").main()
        out = capsys.readouterr().out
        assert "equivalence verified" in out

    def test_privacy_budget_planning(self, capsys):
        module = load_example("privacy_budget_planning")
        module.DATASET_SIZE = 100_000  # shrink the sweep
        module.main()
        out = capsys.readouterr().out
        assert "identical" in out

    def test_ads_ctr_training(self, capsys):
        module = load_example("ads_ctr_training")
        module.ROWS = 2000
        module.BATCH = 64
        module.ITERATIONS = 4
        module.main()
        out = capsys.readouterr().out
        assert "LEAKS" in out          # EANA exposed
        assert "protected" in out      # LazyDP safe

    def test_criteo_file_pipeline(self, capsys):
        # Contains its own bit-exact crash-recovery assertion.
        load_example("criteo_file_pipeline").main()
        out = capsys.readouterr().out
        assert "crash-recovery equivalence verified" in out

    def test_utility_vs_privacy(self, capsys):
        module = load_example("utility_vs_privacy")
        module.ROWS = 1024
        module.BATCH = 64
        module.ITERATIONS = 6
        module.SIGMAS = (0.3, 3.0)
        module.main()
        out = capsys.readouterr().out
        assert "identical, as the equivalence guarantee requires" in out

    def test_paper_scale_projection(self, capsys):
        load_example("paper_scale_projection").main()
        out = capsys.readouterr().out
        assert "modelled speedup" in out
        assert "119x" in out
