"""Randomized concurrency stress for the serving tier.

The serving engine promises two things under arbitrary interleavings
of readers, training steps, and attach/detach churn:

1. **Versioned consistency** — every ``lookup_versioned`` returns
   ``(values, iteration)`` where the values equal, bit for bit, what
   ``export_private_model`` produces at exactly that iteration.  A
   reader may race a refresh, a catch-up on another thread, or a
   detach; it must never observe a mix of iterations.
2. **Exactly-once noise** — after the final export, the per-table
   :class:`~repro.lazydp.ledger.VersionVector` must stand exactly at
   the serving iteration: no interleaving may double-apply or skip a
   row's catch-up draw (the ledger raises mid-run on overlap, and the
   final audit catches gaps).

The test drives N reader threads hammering fig13d-skewed row ids
against a live training session while a writer steps the trainer
inside ``quiesce`` windows and a chaos thread toggles attach/detach.
References for every reachable iteration are captured inside the
writer's exclusive window — before any reader can observe that
iteration — so verification is a pure post-join bitwise comparison.

Seeded: each run's schedule derives from its seed, so a failure
replays deterministically.  ``SERVE_STRESS_SEEDS=100 pytest
tests/test_serve_stress.py`` widens the sweep (the acceptance run);
the default keeps tier-1 fast.
"""

import os
import threading

import numpy as np
import pytest

from repro import configs
from repro.data import LookaheadLoader
from repro.lazydp import LazyDPTrainer, export_private_model
from repro.nn import DLRM
from repro.serve import HotRowCache, PrivateServingEngine, generate_traffic
from repro.testing import make_loader
from repro.train import DPConfig

SEEDS = range(int(os.environ.get("SERVE_STRESS_SEEDS", "4")))

ROWS = 48
TRAINED_ITERATIONS = 3
EXTRA_ITERATIONS = 4
READERS = 4
LOOKUPS_PER_READER = 60


def build_session(seed):
    config = configs.tiny_dlrm(num_tables=3, rows=ROWS, dim=8, lookups=2)
    model = DLRM(config, seed=7 + seed)
    trainer = LazyDPTrainer(model, DPConfig(), noise_seed=99 + seed)
    trainer.expected_batch_size = 16
    loader = make_loader(config, batch_size=16,
                         num_batches=TRAINED_ITERATIONS, seed=seed)
    for index, batch, upcoming in LookaheadLoader(loader):
        trainer.train_step(index + 1, batch, upcoming)
    return config, trainer


@pytest.mark.stress
@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_serving_under_live_training(seed):
    config, trainer = build_session(seed)
    cache = HotRowCache(capacity=16, admission_threshold=1)
    engine = PrivateServingEngine.from_trainer(
        trainer, iteration=TRAINED_ITERATIONS, snapshot=True, cache=cache
    )
    engine.attach(trainer)

    # Reference releases per iteration, captured inside the writer's
    # exclusive window before readers can observe the new iteration.
    references = {
        TRAINED_ITERATIONS: export_private_model(
            trainer, iteration=TRAINED_ITERATIONS
        )
    }
    writer_done = threading.Event()
    errors = []

    def writer():
        try:
            loader = make_loader(config, batch_size=16,
                                 num_batches=EXTRA_ITERATIONS,
                                 seed=seed + 500)
            for index, batch, upcoming in LookaheadLoader(loader):
                iteration = TRAINED_ITERATIONS + index + 1
                with engine.quiesce():
                    trainer.train_step(iteration, batch, upcoming)
                    references[iteration] = export_private_model(
                        trainer, iteration=iteration
                    )
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)
        finally:
            writer_done.set()

    def chaos():
        # Attach/detach churn: a detached engine freezes (still
        # consistent at its old iteration); re-attach refreshes.
        rng = np.random.default_rng(seed + 900)
        try:
            while not writer_done.is_set():
                if rng.random() < 0.5:
                    engine.detach()
                    engine.attach(trainer)
                writer_done.wait(0.002)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    samples = [[] for _ in range(READERS)]

    def reader(r):
        try:
            rng = np.random.default_rng(seed * 1000 + r)
            traffic = generate_traffic(
                ROWS, LOOKUPS_PER_READER, batch_size=6, skew="medium",
                seed=seed * 1000 + r, perm_seed=seed,
            )
            for k in range(LOOKUPS_PER_READER):
                table_index = int(rng.integers(engine.num_tables))
                rows = traffic[k]
                values, iteration = engine.lookup_versioned(
                    table_index, rows
                )
                samples[r].append((table_index, rows, values, iteration))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=writer),
               threading.Thread(target=chaos)]
    threads += [threading.Thread(target=reader, args=(r,))
                for r in range(READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)
    assert not errors, errors[0]

    # Every sampled (values, iteration) pair must match the reference
    # release at exactly that iteration — bit for bit.
    names = engine.embedding_names
    checked = 0
    for reader_samples in samples:
        assert len(reader_samples) == LOOKUPS_PER_READER
        for table_index, rows, values, iteration in reader_samples:
            reference = references[iteration][names[table_index]]
            np.testing.assert_array_equal(values, reference[rows])
            checked += 1
    assert checked == READERS * LOOKUPS_PER_READER

    # Exactly-once: finish the catch-up and audit the ledger.
    final = engine.export()
    final_iteration = engine.iteration
    engine.audit_exactly_once()
    for name, data in references[final_iteration].items():
        np.testing.assert_array_equal(final[name], data)

    # Accounting survives the stampede: the counters were taken under
    # the stats lock, so none of the concurrent increments were lost.
    expected_rows = sum(
        rows.size for reader_samples in samples
        for _, rows, _, _ in reader_samples
    )
    assert engine.rows_served >= expected_rows   # export adds more
    stats = engine.stats()
    assert stats["rows_still_pending"] == 0
    cache_stats = cache.stats()
    assert cache_stats["hits"] + cache_stats["misses"] >= 0


@pytest.mark.stress
@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_batch_lookups_consistent(seed):
    """The batch API under the same churn: every table of a batched
    lookup must come from the single returned iteration."""
    config, trainer = build_session(seed)
    engine = PrivateServingEngine.from_trainer(
        trainer, iteration=TRAINED_ITERATIONS, snapshot=True
    )
    engine.attach(trainer)
    references = {
        TRAINED_ITERATIONS: export_private_model(
            trainer, iteration=TRAINED_ITERATIONS
        )
    }
    errors = []
    writer_done = threading.Event()

    def writer():
        try:
            loader = make_loader(config, batch_size=16,
                                 num_batches=EXTRA_ITERATIONS,
                                 seed=seed + 500)
            for index, batch, upcoming in LookaheadLoader(loader):
                iteration = TRAINED_ITERATIONS + index + 1
                with engine.quiesce():
                    trainer.train_step(iteration, batch, upcoming)
                    references[iteration] = export_private_model(
                        trainer, iteration=iteration
                    )
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)
        finally:
            writer_done.set()

    samples = [[] for _ in range(READERS)]

    def reader(r):
        try:
            traffic = generate_traffic(
                ROWS, LOOKUPS_PER_READER, batch_size=4, skew="high",
                seed=seed * 77 + r, perm_seed=seed,
            )
            for k in range(LOOKUPS_PER_READER):
                per_table = [traffic[k]] * engine.num_tables
                outputs, iteration = engine.lookup_batch_versioned(
                    per_table
                )
                samples[r].append((traffic[k], outputs, iteration))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader, args=(r,))
                for r in range(READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)
    assert not errors, errors[0]

    names = engine.embedding_names
    for reader_samples in samples:
        for rows, outputs, iteration in reader_samples:
            for table_index, values in enumerate(outputs):
                reference = references[iteration][names[table_index]]
                np.testing.assert_array_equal(values, reference[rows])
    engine.export()
    engine.audit_exactly_once()
