"""The observability layer: tracer, metrics registry, engine wiring.

Three invariants carry the whole feature:

* **Observation never perturbs the computation.**  A traced run is
  bitwise identical to an untraced run — noise bits are pure functions
  of ``(seed, table, row, iteration)`` and the tracer only reads
  clocks.
* **The trace and the timers describe the same intervals.**  The
  StageTimer adapter hands its existing ``perf_counter`` pair to the
  tracer, so a span's exported duration and the accumulated stage
  seconds are the *same* float, and the trace-derived overlap agrees
  with ``pipeline_stats()``.
* **Disabled means null-object.**  Without ``instrument()`` every
  engine sees ``NULL_OBS`` / a ``None`` timer tracer and the hot paths
  cost one attribute check.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro import configs
from repro.configs import (
    AsyncConfig,
    ObservabilityConfig,
    PipelineConfig,
    ShardConfig,
)
from repro.nn import DLRM
from repro.obs import (
    NULL_OBS,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Observability,
    Tracer,
)
from repro.session import ExecutionPlan, TrainSession
from repro.testing import make_loader
from repro.train import DPConfig
from repro.train.common import StageTimer


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


def fit_plan(config, plan, iterations=4, batch=16, seed=7):
    """Build a session for ``plan``, fit it, return (session, result)."""
    session = TrainSession.build(DLRM(config, seed=seed), DPConfig(), plan,
                                 noise_seed=99)
    result = session.fit(
        make_loader(config, batch_size=batch, num_batches=iterations)
    )
    return session, result


def final_parameters(session):
    return {
        name: param.data.copy()
        for name, param in session.model.parameters().items()
    }


class TestTracer:
    def test_spans_land_on_named_per_thread_tracks(self):
        tracer = Tracer()
        with tracer.span("main_work", iteration=1):
            pass

        def worker():
            with tracer.span("worker_work"):
                pass

        thread = threading.Thread(target=worker, name="my-worker")
        thread.start()
        thread.join()

        assert set(tracer.track_names()) == {"main-loop", "my-worker"}
        payload = tracer.export()
        names = {
            event["args"]["name"]: event["tid"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        spans = {
            event["name"]: event["tid"]
            for event in payload["traceEvents"] if event["ph"] == "X"
        }
        assert spans["main_work"] == names["main-loop"]
        assert spans["worker_work"] == names["my-worker"]

    def test_export_schema_and_args(self):
        tracer = Tracer()
        with tracer.span("stage", iteration=3):
            pass
        tracer.add_instant("marker", note="here")
        tracer.add_counter("occupancy", 2)
        events = tracer.export()["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instant = [e for e in events if e["ph"] == "i"]
        counter = [e for e in events if e["ph"] == "C"]
        assert len(complete) == len(instant) == len(counter) == 1
        assert complete[0]["ts"] >= 0.0 and complete[0]["dur"] >= 0.0
        assert complete[0]["args"] == {"iteration": 3}
        assert instant[0]["s"] == "t"
        assert instant[0]["args"] == {"note": "here"}
        assert counter[0]["args"] == {"value": 2}

    def test_event_cap_drops_not_grows(self):
        tracer = Tracer(max_events_per_thread=4)
        for index in range(7):
            tracer.add_complete("e", 0.0, 1.0, {"i": index})
        assert tracer.events_recorded == 4
        assert tracer.events_dropped == 3
        payload = tracer.export()
        assert payload["otherData"]["events_dropped"] == 3
        assert len([e for e in payload["traceEvents"]
                    if e["ph"] == "X"]) == 4

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="positive"):
            Tracer(max_events_per_thread=0)

    def test_save_writes_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        path = tmp_path / "trace.json"
        count = tracer.save(path)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"

    def test_null_tracer_is_inert(self, tmp_path):
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.span("anything", key="value")
        with span:
            pass
        # The null span is a shared singleton — no per-call allocation.
        assert NULL_TRACER.span("other") is span
        NULL_TRACER.add_complete("x", 0.0, 1.0)
        NULL_TRACER.add_instant("x")
        NULL_TRACER.add_counter("x", 1)
        assert NULL_TRACER.events_recorded == 0
        assert NULL_TRACER.export()["traceEvents"] == []
        with pytest.raises(RuntimeError, match="obs=trace"):
            NULL_TRACER.save(tmp_path / "never.json")
        assert isinstance(NULL_TRACER, NullTracer)


class TestHistogram:
    def test_percentiles_within_one_octave(self):
        histogram = Histogram()
        values = [(i + 1) / 1000 for i in range(1000)]
        for value in values:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1000
        assert snapshot["min"] == values[0]
        assert snapshot["max"] == values[-1]
        assert snapshot["mean"] == pytest.approx(sum(values) / 1000)
        # Bucket interpolation is exact to within the octave containing
        # the rank; the true p50 of this stream is 0.5.
        assert 0.25 <= snapshot["p50"] <= 1.0
        assert snapshot["p95"] <= snapshot["max"]
        assert snapshot["p99"] >= snapshot["p50"]

    def test_zero_and_overflow_values(self):
        histogram = Histogram()
        histogram.observe(0.0)
        histogram.observe(2.0 ** 40)
        assert histogram.min == 0.0
        assert histogram.max == 2.0 ** 40
        assert histogram.percentile(1.0) == 2.0 ** 40

    def test_empty_snapshot_and_bad_fraction(self):
        histogram = Histogram()
        assert histogram.snapshot() == {"count": 0, "sum": 0.0}
        assert histogram.percentile(0.5) != histogram.percentile(0.5)  # nan
        with pytest.raises(ValueError, match="fraction"):
            histogram.percentile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_writers_and_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("events", 3)
        registry.inc("events")
        registry.set_gauge("depth", 2)
        registry.observe("latency", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"events": 4}
        assert snapshot["gauges"] == {"depth": 2.0}
        assert snapshot["histograms"]["latency"]["count"] == 1
        json.dumps(snapshot)  # must stay JSON-serializable

    def test_absorbs_stage_timer(self):
        timer = StageTimer()
        with timer.time("fwd"):
            pass
        timer.count("arena_hits", 5)
        registry = MetricsRegistry()
        registry.absorb_stage_timer(timer, "stages")
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["stages.stage_seconds.fwd"] == \
            timer.totals["fwd"]
        assert snapshot["counters"]["stages.arena_hits"] == 5


class TestStageTimerAdapter:
    def test_span_duration_is_the_timer_delta(self):
        """The adapter reuses the timer's own perf_counter pair, so the
        exported duration and the accumulated seconds are one float."""
        tracer = Tracer()
        timer = StageTimer(tracer=tracer)
        with timer.time("stage"):
            time.sleep(0.002)
        events = [e for e in tracer.export()["traceEvents"]
                  if e["ph"] == "X"]
        assert len(events) == 1
        assert events[0]["name"] == "stage"
        assert events[0]["dur"] == timer.totals["stage"] * 1e6

    def test_no_tracer_records_nothing(self):
        timer = StageTimer()
        with timer.time("stage"):
            pass
        assert timer.tracer is None
        assert timer.totals["stage"] > 0.0


class TestObservabilityConfig:
    def test_rejects_all_off(self):
        with pytest.raises(ValueError, match="records nothing"):
            ObservabilityConfig(trace=False, metrics=False)

    def test_modes_and_dict_round_trip(self):
        obs = ObservabilityConfig(trace=True, metrics=True)
        assert obs.modes() == ("trace", "metrics")
        assert ObservabilityConfig.from_dict(obs.to_dict()) == obs
        assert ObservabilityConfig(trace=True, metrics=False).modes() == \
            ("trace",)

    @pytest.mark.parametrize("spec, expected", [
        ("obs=trace", ObservabilityConfig(trace=True, metrics=False)),
        ("obs=metrics", ObservabilityConfig(trace=False, metrics=True)),
        ("obs=trace+metrics", ObservabilityConfig(trace=True, metrics=True)),
        ("obs=all", ObservabilityConfig(trace=True, metrics=True)),
        ("obs=off", None),
        ("", None),
    ])
    def test_plan_spec_parses(self, spec, expected):
        assert ExecutionPlan.from_spec(spec).obs == expected

    def test_plan_spec_round_trips(self):
        for obs in (None, ObservabilityConfig(trace=True),
                    ObservabilityConfig(metrics=True),
                    ObservabilityConfig(trace=True, metrics=True)):
            plan = ExecutionPlan(
                pipeline=PipelineConfig(enabled=True, prefetch_depth=2),
                obs=obs,
            )
            assert ExecutionPlan.from_spec(plan.to_spec()) == plan
            assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    def test_plan_spec_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode 'perfetto'"):
            ExecutionPlan.from_spec("obs=perfetto")

    def test_plan_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="ObservabilityConfig"):
            ExecutionPlan(obs="trace")


class TestInstrumentedTraining:
    def test_traced_run_is_bitwise_identical(self, config):
        plain, _ = fit_plan(config, ExecutionPlan(
            pipeline=PipelineConfig(enabled=True, prefetch_depth=2),
        ))
        traced, _ = fit_plan(config, ExecutionPlan(
            pipeline=PipelineConfig(enabled=True, prefetch_depth=2),
            obs=ObservabilityConfig(trace=True, metrics=True),
        ))
        reference = final_parameters(plain)
        for name, data in final_parameters(traced).items():
            np.testing.assert_array_equal(data, reference[name])
        plain.close()
        traced.close()

    def test_stage_times_shape_unchanged_by_observability(self, config):
        plain, plain_result = fit_plan(config, ExecutionPlan())
        traced, traced_result = fit_plan(config, ExecutionPlan(
            obs=ObservabilityConfig(trace=True, metrics=True),
        ))
        assert plain_result.stage_times.keys() == \
            traced_result.stage_times.keys()
        assert plain.observability is None
        assert plain.trainer.obs is NULL_OBS
        assert plain.trainer.timer.tracer is None

    def test_train_result_counters(self, config):
        _, result = fit_plan(config, ExecutionPlan(
            obs=ObservabilityConfig(metrics=True),
        ))
        # The fused-apply arena counters are the flat engine's events.
        assert result.counters["arena_hits"] > 0
        assert result.counters["arena_allocs"] > 0

    def test_counters_present_without_observability(self, config):
        _, result = fit_plan(config, ExecutionPlan())
        assert result.counters["arena_hits"] > 0
        assert result.shard_times is None

    def test_sharded_shard_times_merge(self, config):
        session, result = fit_plan(config, ExecutionPlan(
            shards=ShardConfig(num_shards=2, executor="threads"),
            obs=ObservabilityConfig(metrics=True),
        ))
        merged = result.shard_times
        assert len(merged["per_shard"]) == 2
        for stage, total in merged["summed"].items():
            assert total == pytest.approx(sum(
                shard.get(stage, 0.0) for shard in merged["per_shard"]
            ))
        skew = merged["skew"]
        update = merged["update_seconds"]
        assert skew["max"] == max(update)
        assert skew["min"] == min(update)
        assert skew["spread"] == pytest.approx(skew["max"] - skew["min"])
        gauges = session.observability.metrics.snapshot()["gauges"]
        assert gauges["shard.update_skew_seconds"] == \
            pytest.approx(skew["spread"])
        session.close()

    def test_traced_pipeline_has_overlapping_worker_track(self, config):
        session, _ = fit_plan(config, ExecutionPlan(
            pipeline=PipelineConfig(enabled=True, prefetch_depth=2),
            obs=ObservabilityConfig(trace=True, metrics=True),
        ), iterations=6)
        tracer = session.observability.tracer
        names = tracer.track_names()
        assert "main-loop" in names and "noise-prefetch" in names
        payload = session.observability.export_trace()
        by_tid = {}
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(
                    (event["ts"], event["ts"] + event["dur"])
                )
        assert len(by_tid) >= 2
        # At least one worker span overlaps a main-track span in time:
        # the prefetch pipeline's entire point.
        tids = sorted(by_tid)
        overlaps = any(
            a_start < b_end and b_start < a_end
            for a_start, a_end in by_tid[tids[0]]
            for b_start, b_end in by_tid[tids[1]]
        )
        assert overlaps
        snapshot = session.observability.metrics.snapshot()
        assert snapshot["histograms"]["pipeline.staging_occupancy"][
            "count"] > 0
        assert "pipeline.hidden_fraction" in snapshot["gauges"]
        session.close()

    def test_async_traced_run_records_inflight(self, config):
        session, result = fit_plan(config, ExecutionPlan(
            async_=AsyncConfig(enabled=True, max_in_flight=2),
            obs=ObservabilityConfig(trace=True, metrics=True),
        ), iterations=6)
        names = session.observability.tracer.track_names()
        assert "lazydp-apply" in names
        snapshot = session.observability.metrics.snapshot()
        assert snapshot["histograms"]["async.in_flight_depth"]["count"] > 0
        assert snapshot["gauges"]["async.applies_completed"] == \
            result.iterations
        session.trainer.audit_noise_ledger(result.iterations)
        session.close()

    def test_philox_launches_counted(self, config):
        session, _ = fit_plan(config, ExecutionPlan(
            obs=ObservabilityConfig(metrics=True),
        ))
        gauges = session.observability.metrics.snapshot()["gauges"]
        assert gauges["rng.philox_launches"] > 0

    def test_session_stats_and_save_trace_gating(self, config, tmp_path):
        session, _ = fit_plan(config, ExecutionPlan(
            obs=ObservabilityConfig(metrics=True),
        ))
        assert "metrics" in session.stats()
        with pytest.raises(RuntimeError, match="obs=trace"):
            session.save_trace(tmp_path / "no.json")
        session.close()

        traced, _ = fit_plan(config, ExecutionPlan(
            obs=ObservabilityConfig(trace=True, metrics=False),
        ))
        path = tmp_path / "yes.json"
        count = traced.save_trace(path)
        assert len(json.loads(path.read_text())["traceEvents"]) == count
        assert "metrics" not in traced.stats()
        traced.close()

    def test_instrument_defaults_to_full_observability(self, config):
        from repro.lazydp import LazyDPTrainer

        trainer = LazyDPTrainer(DLRM(config, seed=7), DPConfig(),
                                noise_seed=99)
        assert trainer.obs is NULL_OBS
        obs = trainer.instrument()
        assert isinstance(obs, Observability)
        assert trainer.obs is obs
        assert trainer.timer.tracer is None  # default config: metrics only


class TestTraceTimerAgreement:
    def test_trace_hidden_fraction_matches_pipeline_stats(self, config):
        """The trace-derived hidden fraction (worker busy time not
        overlapping the main loop's pipeline_wait spans) must agree
        with the timer-derived pipeline_stats within 10 points."""
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "trace_report",
            pathlib.Path(__file__).resolve().parent.parent
            / "tools" / "trace_report.py",
        )
        trace_report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(trace_report)

        gap = None
        for _ in range(3):   # wall-clock property: retry scheduling noise
            session, _ = fit_plan(config, ExecutionPlan(
                pipeline=PipelineConfig(enabled=True, prefetch_depth=2),
                obs=ObservabilityConfig(trace=True, metrics=True),
            ), iterations=8)
            summary = trace_report.summarize(
                session.observability.export_trace()
            )
            timer_hidden = \
                session.trainer.pipeline_stats()["hidden_fraction"]
            trace_hidden = [
                stats["hidden_fraction"]
                for name, stats in summary.get("overlap", {}).items()
                if name.startswith("noise-prefetch")
            ]
            session.close()
            assert trace_hidden, "prefetch worker track missing"
            gap = abs(trace_hidden[0] - timer_hidden)
            if gap <= 0.10:
                break
        assert gap <= 0.10


class TestCLITrace:
    def test_train_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        code = main([
            "train", "--rows", "512", "--batch", "32", "--iterations", "3",
            "--plan", "pipeline=2,obs=metrics", "--trace", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "event counters" in out
        assert "trace            : wrote" in out
        payload = json.loads(path.read_text())
        tids = {e["tid"] for e in payload["traceEvents"]
                if e["ph"] == "X"}
        assert len(tids) >= 2

    def test_train_trace_on_legacy_algorithm(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "eana.json"
        code = main([
            "train", "--algorithm", "eana", "--rows", "256",
            "--batch", "16", "--iterations", "2", "--trace", str(path),
        ])
        assert code == 0
        assert json.loads(path.read_text())["traceEvents"]

    def test_plan_rejects_unknown_obs_mode(self, capsys):
        from repro.cli import main

        code = main([
            "train", "--rows", "256", "--batch", "16",
            "--iterations", "2", "--plan", "obs=bogus",
        ])
        assert code == 2
        assert "unknown mode 'bogus'" in capsys.readouterr().err
