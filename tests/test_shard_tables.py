"""Tests for sharded tables and history (repro.shard.tables)."""

import numpy as np
import pytest

from repro import configs
from repro.lazydp.history import HistoryTable
from repro.nn import DLRM
from repro.shard import (
    ShardedEmbeddingBag,
    ShardedHistoryTable,
    build_partition_plan,
)


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=2)


def replay(history, script):
    """Apply a (rows, iteration) access script to any history table."""
    for rows, iteration in script:
        history.delays(rows, iteration)
        history.mark_updated(rows, iteration)


ACCESS_SCRIPT = [
    (np.array([0, 3, 17, 40, 63]), 1),
    (np.array([3, 5, 41]), 2),
    (np.array([0, 62, 63]), 4),
    (np.array([17]), 7),
]


class TestShardedHistoryTable:
    @pytest.mark.parametrize("strategy", ["row_range", "hash"])
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_matches_flat_history(self, config, strategy, num_shards):
        plan = build_partition_plan(config, num_shards, strategy=strategy)
        flat = HistoryTable(64)
        sharded = ShardedHistoryTable(plan.table(0))

        replay(flat, ACCESS_SCRIPT)
        replay(sharded, ACCESS_SCRIPT)

        np.testing.assert_array_equal(flat.snapshot(), sharded.snapshot())
        probe = np.arange(64)
        np.testing.assert_array_equal(
            flat.delays(probe, 9), sharded.delays(probe, 9)
        )
        np.testing.assert_array_equal(
            flat.pending_rows(9), sharded.pending_rows(9)
        )

    def test_shard_local_ops_match_flat_api(self, config):
        plan = build_partition_plan(config, 3, strategy="hash")
        part = plan.table(0)
        sharded = ShardedHistoryTable(part)
        rows = np.array([1, 8, 30, 55])
        sharded.mark_updated(rows, 5)
        for s in range(3):
            owned = rows[part.shard_of[rows] == s]
            local = part.local_of[owned]
            np.testing.assert_array_equal(
                sharded.shard_delays(s, local, 8), 8 - 5
            )

    def test_ahead_of_iteration_rejected(self, config):
        sharded = ShardedHistoryTable(build_partition_plan(config, 2).table(0))
        sharded.mark_updated(np.array([5]), 6)
        with pytest.raises(ValueError):
            sharded.delays(np.array([5]), 4)

    def test_snapshot_round_trip(self, config):
        plan = build_partition_plan(config, 4, strategy="hash")
        source = ShardedHistoryTable(plan.table(0))
        replay(source, ACCESS_SCRIPT)
        restored = ShardedHistoryTable(plan.table(0))
        restored.load_snapshot(source.snapshot())
        np.testing.assert_array_equal(
            source.snapshot(), restored.snapshot()
        )
        with pytest.raises(ValueError):
            restored.load_snapshot(np.zeros(3, dtype=np.int32))

    def test_nbytes_matches_flat(self, config):
        plan = build_partition_plan(config, 7)
        assert ShardedHistoryTable(plan.table(0)).nbytes == \
            HistoryTable(64).nbytes

    def test_empty_padded_shard(self):
        config = configs.tiny_dlrm(num_tables=1, rows=3, dim=8, lookups=1)
        plan = build_partition_plan(config, 5)
        sharded = ShardedHistoryTable(plan.table(0))
        assert sharded.shard_pending_rows(4, 1).size == 0
        sharded.mark_updated(np.array([0, 1, 2]), 1)
        assert sharded.pending_rows(1).size == 0


class TestShardedEmbeddingBag:
    @pytest.mark.parametrize("strategy", ["row_range", "hash"])
    def test_forward_matches_flat_bag(self, config, strategy):
        model = DLRM(config, seed=7)
        reference = DLRM(config, seed=7)
        plan = build_partition_plan(config, 3, strategy=strategy)
        bag = ShardedEmbeddingBag.adopt(model.embeddings[0], plan.table(0))
        indices = np.array([[0, 63], [5, 5], [17, 40]])
        np.testing.assert_array_equal(
            bag.forward(indices),
            reference.embeddings[0].forward(indices),
        )

    def test_contiguous_slabs_are_views(self, config):
        model = DLRM(config, seed=7)
        table = model.embeddings[0].table
        plan = build_partition_plan(config, 4, strategy="row_range")
        bag = ShardedEmbeddingBag.adopt(model.embeddings[0], plan.table(0))
        for slab in bag.slabs:
            assert slab.param is not None
            assert slab.param.data.base is table.data
        # A slab write is visible through the flat table (shared memory).
        rows = bag.shard_rows(1)[:2]
        before = table.data[rows].copy()
        bag.slabs[1].write_rows(rows, np.ones((2, 8)), 0.5)
        np.testing.assert_allclose(table.data[rows], before - 0.5)

    def test_hash_slabs_write_same_rows(self, config):
        model = DLRM(config, seed=7)
        table = model.embeddings[0].table
        plan = build_partition_plan(config, 4, strategy="hash")
        bag = ShardedEmbeddingBag.adopt(model.embeddings[0], plan.table(0))
        slab = bag.slabs[2]
        assert slab.param is None          # scattered rows: index window
        rows = slab.rows[:3]
        before = table.data[rows].copy()
        slab.write_rows(rows, np.full((3, 8), 2.0), 0.25)
        np.testing.assert_allclose(table.data[rows], before - 0.5)
        np.testing.assert_allclose(slab.read_rows(rows), table.data[rows])

    def test_materialize_and_nbytes(self, config):
        model = DLRM(config, seed=7)
        plan = build_partition_plan(config, 2, strategy="hash")
        bag = ShardedEmbeddingBag.adopt(model.embeddings[0], plan.table(0))
        total = sum(slab.nbytes for slab in bag.slabs)
        assert total == model.embeddings[0].table.data.nbytes
        for slab in bag.slabs:
            np.testing.assert_array_equal(
                slab.materialize(), bag.table.data[slab.rows]
            )

    def test_partition_size_mismatch_rejected(self, config):
        model = DLRM(config, seed=7)
        other = configs.tiny_dlrm(num_tables=2, rows=32, dim=8, lookups=2)
        plan = build_partition_plan(other, 2)
        with pytest.raises(ValueError, match="rows"):
            ShardedEmbeddingBag.adopt(model.embeddings[0], plan.table(0))
