"""Tests for the DLRM dot-product feature interaction."""

import numpy as np
import pytest

from repro.nn import FeatureInteraction

from repro.testing import numeric_gradient


def make_inputs(batch=3, num_tables=2, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    dense_vec = rng.normal(size=(batch, dim))
    embeddings = [rng.normal(size=(batch, dim)) for _ in range(num_tables)]
    return dense_vec, embeddings


class TestForward:
    def test_output_dim(self):
        layer = FeatureInteraction(num_features=3)
        assert layer.num_pairs == 3
        assert layer.output_dim(4) == 7

    def test_passes_dense_vector_through(self):
        layer = FeatureInteraction(3)
        dense_vec, embeddings = make_inputs()
        out = layer.forward(dense_vec, embeddings)
        np.testing.assert_allclose(out[:, :4], dense_vec)

    def test_pairwise_dots_match_manual(self):
        layer = FeatureInteraction(3)
        dense_vec, embeddings = make_inputs()
        out = layer.forward(dense_vec, embeddings)
        vectors = [dense_vec] + embeddings
        for b in range(3):
            expected = [
                float(vectors[i][b] @ vectors[j][b])
                for i in range(3) for j in range(i + 1, 3)
            ]
            np.testing.assert_allclose(out[b, 4:], expected)

    def test_rejects_wrong_feature_count(self):
        layer = FeatureInteraction(4)
        dense_vec, embeddings = make_inputs(num_tables=2)
        with pytest.raises(ValueError):
            layer.forward(dense_vec, embeddings)

    def test_backward_requires_forward(self):
        layer = FeatureInteraction(2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 5)))


class TestBackward:
    def test_dense_grad_numeric(self):
        layer = FeatureInteraction(3)
        dense_vec, embeddings = make_inputs(seed=1)
        upstream = np.random.default_rng(2).normal(size=(3, layer.output_dim(4)))

        def loss_of_dense(dense_val):
            return float((layer.forward(dense_val, embeddings) * upstream).sum())

        layer.forward(dense_vec, embeddings)
        analytic_dense, _ = layer.backward(upstream)
        numeric = numeric_gradient(loss_of_dense, dense_vec.copy())
        np.testing.assert_allclose(analytic_dense, numeric, atol=1e-6)

    def test_embedding_grads_numeric(self):
        layer = FeatureInteraction(3)
        dense_vec, embeddings = make_inputs(seed=3)
        upstream = np.random.default_rng(4).normal(size=(3, layer.output_dim(4)))
        layer.forward(dense_vec, embeddings)
        _, analytic_embs = layer.backward(upstream)
        for t in range(2):
            def loss_of_emb(emb_val, t=t):
                trial = list(embeddings)
                trial[t] = emb_val
                return float((layer.forward(dense_vec, trial) * upstream).sum())

            numeric = numeric_gradient(loss_of_emb, embeddings[t].copy())
            np.testing.assert_allclose(analytic_embs[t], numeric, atol=1e-6)

    def test_zero_upstream_gives_zero_grads(self):
        layer = FeatureInteraction(2)
        dense_vec, embeddings = make_inputs(num_tables=1)
        layer.forward(dense_vec, embeddings)
        d_dense, d_embs = layer.backward(np.zeros((3, layer.output_dim(4))))
        assert np.all(d_dense == 0.0)
        assert np.all(d_embs[0] == 0.0)
