"""Tests for DAC-format ingestion and synthesis."""

import numpy as np
import pytest

from repro import configs
from repro.data import DataLoader, SkewSpec
from repro.data.criteo import (
    NUM_CATEGORICAL_FEATURES,
    CriteoFileDataset,
    fnv1a_64,
    hash_to_row,
    write_synthetic_criteo,
)

from repro.testing import max_param_diff


@pytest.fixture
def config():
    return configs.DLRMConfig(
        name="criteo-test",
        dense_features=13,
        bottom_mlp=(16, 8),
        embedding_dim=8,
        table_rows=(64,) * 26,
        lookups_per_table=1,
        top_mlp=(16, 1),
    )


@pytest.fixture
def criteo_file(tmp_path):
    path = tmp_path / "clicks.tsv"
    write_synthetic_criteo(path, num_examples=200, seed=7)
    return path


class TestHashing:
    def test_fnv_deterministic(self):
        assert fnv1a_64("deadbeef") == fnv1a_64("deadbeef")

    def test_fnv_known_vector(self):
        """FNV-1a 64 of empty string is the offset basis."""
        assert fnv1a_64("") == 0xCBF29CE484222325

    def test_fnv_distinct(self):
        hashes = {fnv1a_64(f"{i:08x}") for i in range(2000)}
        assert len(hashes) == 2000

    def test_hash_to_row_in_range(self):
        for token in ("a", "ffffffff", "00000000"):
            assert 0 <= hash_to_row(token, 100) < 100

    def test_hash_to_row_spreads(self):
        rows = [hash_to_row(f"{i:08x}", 50) for i in range(5000)]
        counts = np.bincount(rows, minlength=50)
        assert counts.min() > 0
        assert counts.max() < 3 * counts.mean()

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            hash_to_row("x", 0)


class TestSynthesis:
    def test_file_format(self, criteo_file):
        lines = criteo_file.read_text().splitlines()
        assert len(lines) == 200
        fields = lines[0].split("\t")
        assert len(fields) == 1 + 13 + 26
        assert fields[0] in ("0", "1")

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.tsv", tmp_path / "b.tsv"
        write_synthetic_criteo(a, 50, seed=3)
        write_synthetic_criteo(b, 50, seed=3)
        assert a.read_text() == b.read_text()

    def test_missing_values_present(self, tmp_path):
        path = tmp_path / "m.tsv"
        write_synthetic_criteo(path, 300, seed=1, missing_rate=0.3)
        assert "\t\t" in path.read_text()

    def test_skewed_vocabulary(self, tmp_path):
        path = tmp_path / "s.tsv"
        write_synthetic_criteo(
            path, 1000, seed=2,
            skew=SkewSpec(kind="zipf", exponent=1.5),
        )
        tokens = [line.split("\t")[14] for line in
                  path.read_text().splitlines()]
        tokens = [t for t in tokens if t]
        top_share = max(
            np.unique(tokens, return_counts=True)[1]
        ) / len(tokens)
        assert top_share > 0.1  # a hot token dominates

    def test_rejects_bad_args(self, tmp_path):
        with pytest.raises(ValueError):
            write_synthetic_criteo(tmp_path / "x.tsv", 0)
        with pytest.raises(ValueError):
            write_synthetic_criteo(tmp_path / "x.tsv", 10, missing_rate=1.0)
        with pytest.raises(ValueError):
            write_synthetic_criteo(tmp_path / "x.tsv", 10,
                                   vocabulary_sizes=[10] * 3)


class TestIngestion:
    def test_shapes(self, criteo_file, config):
        dataset = CriteoFileDataset(criteo_file, config)
        assert len(dataset) == 200
        batch = dataset.batch(np.arange(32))
        assert batch.dense.shape == (32, 13)
        assert batch.sparse.shape == (32, 26, 1)
        assert set(np.unique(batch.labels)).issubset({0.0, 1.0})

    def test_indices_within_tables(self, criteo_file, config):
        dataset = CriteoFileDataset(criteo_file, config)
        batch = dataset.batch(np.arange(len(dataset)))
        assert batch.sparse.min() >= 0
        assert batch.sparse.max() < 64

    def test_dense_log_transform_nonnegative(self, criteo_file, config):
        dataset = CriteoFileDataset(criteo_file, config)
        assert dataset.dense.min() >= 0.0

    def test_rejects_multivalued_config(self, criteo_file):
        config = configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)
        with pytest.raises(ValueError):
            CriteoFileDataset(criteo_file, config)

    def test_rejects_too_many_tables(self, criteo_file):
        config = configs.DLRMConfig(
            name="too-many", dense_features=13, bottom_mlp=(8, 4),
            embedding_dim=4, table_rows=(16,) * 30, lookups_per_table=1,
            top_mlp=(8, 1),
        )
        with pytest.raises(ValueError):
            CriteoFileDataset(criteo_file, config)

    def test_rejects_malformed_file(self, tmp_path, config):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t2\t3\n")
        with pytest.raises(ValueError, match="expected"):
            CriteoFileDataset(path, config)

    def test_rejects_empty_file(self, tmp_path, config):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(ValueError, match="no examples"):
            CriteoFileDataset(path, config)

    def test_fewer_tables_than_columns_ok(self, criteo_file):
        config = configs.DLRMConfig(
            name="narrow", dense_features=4, bottom_mlp=(8, 4),
            embedding_dim=4, table_rows=(32,) * 5, lookups_per_table=1,
            top_mlp=(8, 1),
        )
        dataset = CriteoFileDataset(criteo_file, config)
        batch = dataset.batch(np.arange(8))
        assert batch.sparse.shape == (8, 5, 1)
        assert batch.dense.shape == (8, 4)


class TestEndToEndOnFiles:
    def test_training_pipeline_runs(self, criteo_file, config):
        """DAC file -> DataLoader -> LazyDP training, end to end."""
        from repro.testing import trainer_for
        from repro.nn import DLRM
        from repro.train import DPConfig

        dataset = CriteoFileDataset(criteo_file, config)
        loader = DataLoader(dataset, batch_size=32, num_batches=4, seed=1)
        model = DLRM(config, seed=2)
        trainer = trainer_for("lazydp", model, DPConfig(), noise_seed=3)
        result = trainer.fit(loader)
        assert result.iterations == 4
        assert np.all(np.isfinite(result.mean_losses))

    def test_lazydp_equivalence_on_file_data(self, criteo_file, config):
        """The exact-equivalence guarantee holds on real-format data too."""
        from repro.testing import trainer_for
        from repro.nn import DLRM
        from repro.train import DPConfig

        def run(algorithm):
            dataset = CriteoFileDataset(criteo_file, config)
            loader = DataLoader(dataset, batch_size=32, num_batches=5,
                                seed=1)
            model = DLRM(config, seed=2)
            trainer = trainer_for(algorithm, model, DPConfig(),
                                   noise_seed=3)
            trainer.fit(loader)
            return model

        assert max_param_diff(run("dpsgd_f"), run("lazydp_no_ans")) < 1e-9
