"""Tests for the Aggregated Noise Sampling engine (Theorem 5.1)."""

import numpy as np
import pytest
from scipy import stats

from repro.lazydp import ANSEngine
from repro.rng import NoiseStream


@pytest.fixture
def stream():
    return NoiseStream(seed=77)


class TestExactMode:
    """ANS disabled: the engine must reproduce the eager noise exactly."""

    def test_equals_row_noise_sum(self, stream):
        engine = ANSEngine(stream, enabled=False)
        rows = np.array([4, 9])
        delays = np.array([3, 3])
        noise = engine.catchup_noise(0, rows, delays, iteration=5, dim=8,
                                     std=0.5)
        expected = stream.row_noise_sum(0, rows, 3, 5, dim=8, std=0.5)
        np.testing.assert_allclose(noise, expected)

    def test_heterogeneous_delays(self, stream):
        """Rows with different delays each get exactly their own range."""
        engine = ANSEngine(stream, enabled=False)
        rows = np.array([1, 2, 3])
        delays = np.array([1, 4, 2])
        noise = engine.catchup_noise(1, rows, delays, iteration=10, dim=4,
                                     std=1.0)
        for i, (row, delay) in enumerate(zip(rows, delays)):
            expected = stream.row_noise_sum(
                1, np.array([row]), 10 - delay + 1, 10, dim=4
            )[0]
            np.testing.assert_allclose(noise[i], expected)

    def test_zero_delay_rows_get_zero(self, stream):
        engine = ANSEngine(stream, enabled=False)
        noise = engine.catchup_noise(
            0, np.array([1, 2]), np.array([0, 2]), 5, 4, 1.0
        )
        assert np.all(noise[0] == 0.0)

    def test_draw_count_equals_total_delays(self, stream):
        """Without ANS, cost is proportional to the sum of delays."""
        engine = ANSEngine(stream, enabled=False)
        rows = np.array([0, 1, 2])
        delays = np.array([5, 1, 3])
        engine.catchup_noise(0, rows, delays, 6, dim=4, std=1.0)
        assert engine.samples_drawn == delays.sum() * 4

    def test_order_invariance(self, stream):
        """Row order must not change any row's catch-up value."""
        engine = ANSEngine(stream, enabled=False)
        rows = np.array([3, 8, 5])
        delays = np.array([2, 7, 4])
        forward = engine.catchup_noise(0, rows, delays, 9, 4, 1.0)
        backward = ANSEngine(stream, enabled=False).catchup_noise(
            0, rows[::-1].copy(), delays[::-1].copy(), 9, 4, 1.0
        )
        np.testing.assert_allclose(forward, backward[::-1])


class TestANSMode:
    def test_draw_count_is_one_per_row(self, stream):
        """With ANS, cost is proportional to caught-up rows only."""
        engine = ANSEngine(stream, enabled=True)
        rows = np.array([0, 1, 2])
        delays = np.array([50, 100, 3])
        engine.catchup_noise(0, rows, delays, 101, dim=4, std=1.0)
        assert engine.samples_drawn == 3 * 4

    def test_variance_matches_theorem(self, stream):
        """Var(single ANS draw) == delay * sigma^2 (Theorem 5.1)."""
        engine = ANSEngine(stream, enabled=True)
        rows = np.arange(3000)
        for delay in (2, 9):
            noise = engine.catchup_noise(
                0, rows, np.full(3000, delay), iteration=1, dim=8, std=1.0
            )
            assert noise.ravel().std() == pytest.approx(
                np.sqrt(delay), rel=0.02
            )

    def test_distribution_matches_exact_sum(self, stream):
        """ANS and the exact sum are different draws of the SAME law."""
        rows = np.arange(4000)
        delays = np.full(4000, 5)
        exact = ANSEngine(stream, enabled=False).catchup_noise(
            0, rows, delays, 5, dim=4, std=1.0
        )
        aggregated = ANSEngine(stream, enabled=True).catchup_noise(
            0, rows, delays, 5, dim=4, std=1.0
        )
        _, p_value = stats.ks_2samp(exact.ravel(), aggregated.ravel())
        assert p_value > 0.001

    def test_empty_rows(self, stream):
        engine = ANSEngine(stream)
        noise = engine.catchup_noise(
            0, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            1, 8, 1.0,
        )
        assert noise.shape == (0, 8)

    def test_rejects_negative_delays(self, stream):
        with pytest.raises(ValueError):
            ANSEngine(stream).catchup_noise(
                0, np.array([1]), np.array([-2]), 1, 4, 1.0
            )

    def test_rejects_misaligned(self, stream):
        with pytest.raises(ValueError):
            ANSEngine(stream).catchup_noise(
                0, np.array([1, 2]), np.array([1]), 1, 4, 1.0
            )
