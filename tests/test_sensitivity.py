"""Tests for calibration sensitivity and the naive-history ablation."""

import numpy as np
import pytest

from repro.lazydp.history import HistoryTable, NaiveCounterHistory
from repro.perfmodel.sensitivity import (
    CALIBRATED_FIELDS,
    conclusions_hold,
    headline_speedup,
    perturbed_calibration,
    sensitivity_sweep,
)


class TestSensitivity:
    def test_baseline_speedup_near_paper(self):
        assert 90 < headline_speedup() < 170

    def test_every_calibrated_field_listed(self):
        # Guard: adding a constant to SoftwareCalibration automatically
        # subjects it to the sweep.
        assert "framework_fixed_s" in CALIBRATED_FIELDS
        assert "ans_off_steady_state_factor" in CALIBRATED_FIELDS
        assert len(CALIBRATED_FIELDS) >= 10

    def test_perturbation_changes_one_field(self):
        calibration = perturbed_calibration("framework_fixed_s", 2.0)
        from repro.perfmodel import DEFAULT_CALIBRATION
        assert calibration.framework_fixed_s == pytest.approx(
            2.0 * DEFAULT_CALIBRATION.framework_fixed_s
        )
        assert calibration.sgd_per_example_s == (
            DEFAULT_CALIBRATION.sgd_per_example_s
        )

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            perturbed_calibration("not_a_field", 1.1)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            perturbed_calibration("framework_fixed_s", 0.0)

    def test_conclusions_survive_50pct_perturbations(self):
        """The headline result is roofline-driven, not calibration-driven."""
        rows = sensitivity_sweep(factors=(0.5, 1.5))
        assert conclusions_hold(rows, minimum_speedup=30.0)

    def test_sweep_shape(self):
        rows = sensitivity_sweep(factors=(0.75,))
        assert rows[0][0] == "baseline"
        assert len(rows) == 1 + len(CALIBRATED_FIELDS)


class TestNaiveCounterHistory:
    def test_semantics_match_history_table(self):
        """Same delays/pending as HistoryTable over a random schedule."""
        rng = np.random.default_rng(0)
        smart = HistoryTable(32)
        naive = NaiveCounterHistory(32)
        for iteration in range(1, 9):
            naive.advance_iteration()
            rows = np.unique(rng.integers(0, 32, size=5))
            np.testing.assert_array_equal(
                smart.delays(rows, iteration),
                naive.delays(rows, iteration),
            )
            smart.mark_updated(rows, iteration)
            naive.mark_updated(rows, iteration)
            np.testing.assert_array_equal(
                smart.pending_rows(iteration),
                naive.pending_rows(iteration),
            )

    def test_requires_advancing(self):
        naive = NaiveCounterHistory(8)
        with pytest.raises(ValueError):
            naive.delays(np.array([0]), 1)
        naive.advance_iteration()
        naive.delays(np.array([0]), 1)  # now fine

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NaiveCounterHistory(0)

    def test_footprint_matches(self):
        assert NaiveCounterHistory(100).nbytes == HistoryTable(100).nbytes
