"""Tests for the partition planner (repro.shard.plan)."""

import numpy as np
import pytest

from repro import configs
from repro.data.skew import SkewSpec, paper_skew_spec, zipf_weights
from repro.shard import (
    PARTITION_STRATEGIES,
    access_weights_from_skew,
    access_weights_from_trace,
    build_partition_plan,
    partition_frequency,
    partition_hash,
    partition_row_range,
    plan_from_loader,
)
from repro.testing import make_loader


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


class TestStrategies:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_partition_is_exact(self, config, strategy, num_shards):
        plan = build_partition_plan(config, num_shards, strategy=strategy)
        assert plan.num_shards == num_shards
        assert plan.num_tables == config.num_tables
        for part in plan.tables:
            part.validate()   # every row owned exactly once

    def test_row_range_balanced_and_contiguous(self):
        part = partition_row_range(0, 100, 7)
        sizes = [rows.size for rows in part.shard_rows]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1
        assert part.contiguous
        for rows in part.shard_rows:
            if rows.size:
                np.testing.assert_array_equal(
                    rows, np.arange(rows[0], rows[-1] + 1)
                )

    def test_hash_is_deterministic_and_spread(self):
        a = partition_hash(0, 4096, 4)
        b = partition_hash(0, 4096, 4)
        np.testing.assert_array_equal(a.shard_of, b.shard_of)
        sizes = np.array([rows.size for rows in a.shard_rows])
        # Hash spread: no shard more than 25% off the mean.
        assert np.all(np.abs(sizes - sizes.mean()) < 0.25 * sizes.mean())
        # Different tables get different scatters (salted by table index).
        other = partition_hash(1, 4096, 4)
        assert np.any(a.shard_of != other.shard_of)

    def test_frequency_balances_zipf_mass(self):
        num_rows = 4096
        weights = zipf_weights(num_rows, 1.0)
        part = partition_frequency(0, weights, 4)
        part.validate()
        assert part.contiguous
        masses = np.array(
            [weights[rows].sum() for rows in part.shard_rows]
        )
        # Equal-mass cuts: every shard within 2x of the mean mass, while
        # equal-row cuts would give the head shard ~3.4x the mean.
        assert masses.max() / masses.mean() < 2.0
        naive = partition_row_range(0, num_rows, 4)
        naive_masses = np.array(
            [weights[rows].sum() for rows in naive.shard_rows]
        )
        assert masses.max() < naive_masses.max()

    def test_frequency_zero_weights_falls_back_to_row_range(self):
        part = partition_frequency(0, np.zeros(50), 5)
        part.validate()
        sizes = [rows.size for rows in part.shard_rows]
        assert max(sizes) - min(sizes) <= 1


class TestPlanEdges:
    def test_more_shards_than_rows_pads_empty(self):
        config = configs.tiny_dlrm(num_tables=2, rows=3, dim=8, lookups=1)
        plan = build_partition_plan(config, 5)
        for part in plan.tables:
            assert part.num_shards == 5
            assert sum(rows.size for rows in part.shard_rows) == 3
        part.validate()

    def test_invalid_inputs_rejected(self, config):
        with pytest.raises(ValueError, match="num_shards"):
            build_partition_plan(config, 0)
        with pytest.raises(ValueError, match="strategy"):
            build_partition_plan(config, 2, strategy="nope")
        with pytest.raises(ValueError, match="weights"):
            build_partition_plan(
                config, 2, strategy="frequency",
                weights_per_table=[np.ones(5)] * config.num_tables,
            )

    def test_describe_mentions_every_table(self, config):
        plan = build_partition_plan(config, 2)
        text = plan.describe()
        for t in range(config.num_tables):
            assert f"table {t}" in text


class TestShardConfig:
    def test_defaults_are_flat(self):
        shard = configs.ShardConfig()
        assert not shard.is_sharded
        assert shard.trainer_kwargs()["num_shards"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            configs.ShardConfig(num_shards=0)
        with pytest.raises(ValueError, match="partition"):
            configs.ShardConfig(partition="columns")
        with pytest.raises(ValueError, match="executor"):
            configs.ShardConfig(executor="mpi")
        with pytest.raises(ValueError, match="max_workers"):
            configs.ShardConfig(max_workers=0)

    def test_trainer_kwargs_round_trip(self):
        shard = configs.ShardConfig(num_shards=4, partition="hash",
                                    executor="threads", max_workers=2)
        assert shard.is_sharded
        assert shard.trainer_kwargs() == {
            "num_shards": 4, "partition": "hash",
            "executor": "threads", "max_workers": 2,
        }


class TestTraceDrivenWeights:
    def test_weights_count_access_mass(self):
        trace = [np.array([0, 0, 1]), np.array([1, 2])]
        weights = access_weights_from_trace(trace, 4)
        np.testing.assert_array_equal(weights, [2.0, 2.0, 1.0, 0.0])

    def test_skew_weights_uniform_and_zipf(self):
        assert np.all(access_weights_from_skew(10, None) == 1.0)
        spec = SkewSpec(kind="zipf", exponent=1.0)
        weights = access_weights_from_skew(10, spec)
        assert np.all(np.diff(weights) < 0)   # popularity-ranked

    def test_plan_from_loader_balances_skewed_trace(self, config):
        skew = paper_skew_spec("medium", 64)
        loader = make_loader(config, batch_size=16, num_batches=12,
                            skew=skew)
        plan = plan_from_loader(config, 4, loader)
        naive = build_partition_plan(config, 4, strategy="row_range")
        assert plan.strategy == "frequency"
        for part, naive_part in zip(plan.tables, naive.tables):
            part.validate()
            # The trace-balanced plan never does worse than equal-row
            # cuts on the observed mass (a single hot row can still cap
            # how even contiguous cuts can get).
            weights = access_weights_from_trace(
                [batch.sparse[:, part.table_index, :].ravel()
                 for batch in loader],
                64,
            )
            masses = np.array(
                [weights[rows].sum() for rows in part.shard_rows]
            )
            naive_masses = np.array(
                [weights[rows].sum() for rows in naive_part.shard_rows]
            )
            # No shard starves (the adaptive greedy keeps >= 1 row each)
            # and the cut is never much worse than equal-row cuts.  A
            # single hot row bounds how even *any* contiguous cut can be,
            # so exact balance is not asserted on sampled traces.
            assert all(rows.size > 0 for rows in part.shard_rows)
            assert masses.max() <= max(naive_masses.max(), weights.max())
