"""Tests for the Box-Muller transform and its workload constants."""

import numpy as np
import pytest
from scipy import stats

from repro.rng import (
    BOX_MULLER_AVX_OPS,
    NOISE_SAMPLING_PEAK_FRACTION,
    NOISY_UPDATE_AVX_OPS,
    NOISY_UPDATE_BANDWIDTH_FRACTION,
    box_muller,
    derive_key,
    gaussians_from_uint32_block,
    make_counters,
    philox4x32,
)


def _uniform_pairs(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(n) * (1 - 1e-12) + 1e-12, rng.random(n)


class TestBoxMuller:
    def test_output_shapes(self):
        u1, u2 = _uniform_pairs(100)
        z0, z1 = box_muller(u1, u2)
        assert z0.shape == (100,)
        assert z1.shape == (100,)

    def test_deterministic(self):
        u1, u2 = _uniform_pairs(10)
        assert np.array_equal(box_muller(u1, u2)[0], box_muller(u1, u2)[0])

    def test_known_value(self):
        """u1 = 1 gives radius 0, so both outputs are exactly 0."""
        z0, z1 = box_muller(np.array([1.0]), np.array([0.25]))
        assert z0[0] == 0.0
        assert z1[0] == 0.0

    def test_moments(self):
        u1, u2 = _uniform_pairs(200000, seed=1)
        z0, z1 = box_muller(u1, u2)
        samples = np.concatenate([z0, z1])
        assert abs(samples.mean()) < 0.01
        assert abs(samples.std() - 1.0) < 0.01
        assert abs(stats.skew(samples)) < 0.02

    def test_normality_kolmogorov_smirnov(self):
        u1, u2 = _uniform_pairs(50000, seed=2)
        z0, _ = box_muller(u1, u2)
        _, p_value = stats.kstest(z0, "norm")
        assert p_value > 0.001

    def test_pair_independence(self):
        u1, u2 = _uniform_pairs(100000, seed=3)
        z0, z1 = box_muller(u1, u2)
        assert abs(np.corrcoef(z0, z1)[0, 1]) < 0.01

    def test_rejects_zero_u1(self):
        with pytest.raises(ValueError):
            box_muller(np.array([0.0]), np.array([0.5]))

    def test_rejects_u1_above_one(self):
        with pytest.raises(ValueError):
            box_muller(np.array([1.5]), np.array([0.5]))


class TestBlockConversion:
    def test_shape(self):
        words = philox4x32(
            make_counters(np.arange(64, dtype=np.uint32), np.uint32(0),
                          np.uint32(0), np.uint32(0)),
            derive_key(0),
        )
        gaussians = gaussians_from_uint32_block(words)
        assert gaussians.shape == (64, 4)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            gaussians_from_uint32_block(np.zeros((4, 3), dtype=np.uint32))

    def test_statistics(self):
        words = philox4x32(
            make_counters(np.arange(50000, dtype=np.uint32), np.uint32(0),
                          np.uint32(0), np.uint32(0)),
            derive_key(9),
        )
        samples = gaussians_from_uint32_block(words).ravel()
        assert abs(samples.mean()) < 0.01
        assert abs(samples.std() - 1.0) < 0.01


class TestWorkloadConstants:
    """The paper's measured kernel characteristics (Section 4.3)."""

    def test_noise_sampling_op_count(self):
        assert BOX_MULLER_AVX_OPS == 101

    def test_noisy_update_op_count(self):
        assert NOISY_UPDATE_AVX_OPS == 2

    def test_efficiency_fractions(self):
        assert NOISE_SAMPLING_PEAK_FRACTION == pytest.approx(0.81)
        assert NOISY_UPDATE_BANDWIDTH_FRACTION == pytest.approx(0.855)
