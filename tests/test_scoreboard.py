"""The reproduction scoreboard, asserted.

If any future change to the performance model, configs or calibration
pushes a reproduced figure outside its declared tolerance of the paper's
value, these tests fail with the exact offending data points.
"""

import pytest

from repro.bench.scoreboard import (
    TOLERANCES,
    evaluate_scoreboard,
    failures,
)


@pytest.fixture(scope="module")
def rows():
    return evaluate_scoreboard()


class TestScoreboard:
    def test_every_tracked_point_within_tolerance(self, rows):
        failed = failures(rows)
        message = "\n".join(
            f"{row.figure}/{row.series}@{row.label}: paper {row.paper} "
            f"vs reproduced {row.reproduced:.3g} "
            f"(err {row.relative_error:.1%} > tol {row.tolerance:.0%})"
            for row in failed
        )
        assert not failed, f"scoreboard regressions:\n{message}"

    def test_scoreboard_covers_every_figure_series(self, rows):
        covered = {(row.figure, row.series) for row in rows}
        expected = {
            key for key, tolerance in TOLERANCES.items()
            if tolerance is not None
        }
        assert covered == expected

    def test_nontrivial_point_count(self, rows):
        """The scoreboard tracks a substantial number of data points."""
        assert len(rows) >= 60

    def test_oom_points_matched(self, rows):
        oom_rows = [
            row for row in rows
            if row.paper == float("inf") or row.reproduced == float("inf")
        ]
        assert oom_rows, "the 192 GB OOM point must be tracked"
        assert all(row.passed for row in oom_rows)

    def test_headline_points_tight(self, rows):
        """The flagship numbers sit well inside their tolerance bands."""
        headline = [
            row for row in rows
            if row.figure == "figure10" and row.series == "dpsgd_f"
        ]
        assert headline
        for row in headline:
            assert row.relative_error < 0.05

    def test_median_error_is_small(self, rows):
        """Aggregate quality: half the tracked points within ~10%."""
        errors = sorted(
            row.relative_error for row in rows
            if row.paper != float("inf")
        )
        median = errors[len(errors) // 2]
        assert median < 0.10
