"""Tests for EANA and its privacy leak (paper Section 2.5 / Figure 14)."""

import numpy as np
import pytest

from repro import configs
from repro.data import SyntheticClickDataset, DataLoader
from repro.nn import DLRM
from repro.privacy import audit_untouched_rows

from repro.testing import train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=1)


def accessed_rows_of_run(config, table, batch_size=8, num_batches=4,
                         seed=5, data_seed=3):
    # Must mirror conftest.make_loader exactly so the trace matches the
    # one the trainer consumed.
    dataset = SyntheticClickDataset(config, seed=data_seed,
                                    num_examples=1 << 12)
    loader = DataLoader(dataset, batch_size=batch_size,
                        num_batches=num_batches, seed=seed)
    rows = [batch.accessed_rows(table) for batch in loader]
    return np.unique(np.concatenate(rows))


class TestEANALeak:
    def test_untouched_rows_never_move(self, config):
        model, _, _ = train_algorithm("eana", config, batch_size=8,
                                      num_batches=4)
        reference = DLRM(config, seed=7)
        for t, bag in enumerate(model.embeddings):
            accessed = accessed_rows_of_run(config, t)
            untouched = np.setdiff1d(np.arange(bag.num_rows), accessed)
            np.testing.assert_array_equal(
                bag.table.data[untouched],
                reference.embeddings[t].table.data[untouched],
            )

    def test_audit_recovers_access_set(self, config):
        """The paper's attack: unchanged rows reveal 'never accessed'."""
        model, _, _ = train_algorithm("eana", config, batch_size=8,
                                      num_batches=4)
        reference = DLRM(config, seed=7)
        for t, bag in enumerate(model.embeddings):
            accessed = accessed_rows_of_run(config, t)
            result = audit_untouched_rows(
                reference.embeddings[t].table.data, bag.table.data, accessed
            )
            assert result.leaks

    def test_dpsgd_defeats_the_same_audit(self, config):
        model, _, _ = train_algorithm("dpsgd_f", config, batch_size=8,
                                      num_batches=4)
        reference = DLRM(config, seed=7)
        for t, bag in enumerate(model.embeddings):
            accessed = accessed_rows_of_run(config, t)
            result = audit_untouched_rows(
                reference.embeddings[t].table.data, bag.table.data, accessed
            )
            assert not result.leaks
            assert result.flagged_untouched == 0

    def test_lazydp_defeats_the_same_audit(self, config):
        """After the terminal flush every row has moved, like DP-SGD."""
        model, _, _ = train_algorithm("lazydp", config, batch_size=8,
                                      num_batches=4)
        reference = DLRM(config, seed=7)
        for t, bag in enumerate(model.embeddings):
            accessed = accessed_rows_of_run(config, t)
            result = audit_untouched_rows(
                reference.embeddings[t].table.data, bag.table.data, accessed
            )
            assert not result.leaks
            assert result.flagged_untouched == 0


class TestEANABehaviour:
    def test_accessed_rows_receive_noise(self, config):
        """Even zero-gradient accessed rows move (noise is added)."""
        model, _, _ = train_algorithm("eana", config, batch_size=8,
                                      num_batches=1)
        reference = DLRM(config, seed=7)
        for t, bag in enumerate(model.embeddings):
            accessed = accessed_rows_of_run(config, t, num_batches=1)
            moved = ~np.all(
                bag.table.data[accessed]
                == reference.embeddings[t].table.data[accessed],
                axis=1,
            )
            assert np.all(moved)

    def test_mlp_params_still_fully_private(self, config):
        """EANA only relaxes the embedding noise; MLPs get dense noise."""
        model, _, _ = train_algorithm("eana", config, num_batches=1)
        reference = DLRM(config, seed=7)
        for name, param in model.dense_parameters().items():
            assert not np.array_equal(
                param.data, reference.parameters()[name].data
            )

    def test_loss_stays_finite(self, config):
        _, result, _ = train_algorithm("eana", config, num_batches=6)
        assert np.all(np.isfinite(result.mean_losses))
