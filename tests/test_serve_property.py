"""Property-based tests for the serving read-through path.

Two layers, both checked for *bitwise* agreement with a naive
reference over hypothesis-generated inputs (arbitrary duplicate /
unsorted / empty row sets, delays, table shapes):

* :func:`repro.kernels.apply_sparse_update` with ``out=`` — the fused
  gather/subtract/scatter the serving memo is built on.  The naive
  reference is a Python loop; duplicates are last-write-wins in both.
* :class:`repro.serve.PrivateServingEngine.lookup` — the full
  read-through: history delays, ANS catch-up draws, memoization.  The
  naive reference privatizes one row at a time straight from
  :meth:`repro.rng.NoiseStream.aggregated_row_noise`.

Plus the accounting invariants the observability layer leans on:
``rows_served`` counts every returned row, ``memo_hits`` everything
answered without a fresh catch-up draw, and the caught-up set is
exactly the union of unique rows ever looked up.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import BufferArena, apply_sparse_update
from repro.rng import NoiseStream
from repro.serve import PrivateServingEngine

#: Local deadline=None: CI machines stall unpredictably and the arena
#: paths intentionally reuse buffers, which hypothesis's timing
#: heuristics misread as slow shrink candidates.
RELAXED = settings(deadline=None, max_examples=60)


@st.composite
def sparse_updates(draw):
    """A (table, rows, values, lr) quadruple with adversarial rows."""
    num_rows = draw(st.integers(min_value=1, max_value=24))
    dim = draw(st.integers(min_value=1, max_value=12))
    count = draw(st.integers(min_value=0, max_value=40))
    rows = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_rows - 1),
            min_size=count, max_size=count,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    table = rng.normal(size=(num_rows, dim))
    values = rng.normal(size=(len(rows), dim))
    lr = draw(st.sampled_from([0.05, 0.5, 1.0, 1.7e-3]))
    return table, np.array(rows, dtype=np.int64), values, lr


class TestApplySparseUpdateOut:
    @RELAXED
    @given(case=sparse_updates(), use_arena=st.booleans())
    def test_bitwise_matches_naive_reference(self, case, use_arena):
        table, rows, values, lr = case
        out = np.zeros_like(table)
        apply_sparse_update(
            table, rows, values.copy(), lr,
            arena=BufferArena() if use_arena else None,
            out=out, values_writable=True,
        )
        # Naive reference: scale first (the kernel's operation order),
        # then write row by row — duplicates are last-write-wins.
        expected = np.zeros_like(table)
        scaled = values * lr
        for k in range(rows.size):
            expected[rows[k]] = table[rows[k]] - scaled[k]
        np.testing.assert_array_equal(out, expected)

    @RELAXED
    @given(case=sparse_updates())
    def test_out_leaves_table_untouched(self, case):
        table, rows, values, lr = case
        before = table.copy()
        apply_sparse_update(
            table, rows, values.copy(), lr, arena=BufferArena(),
            out=np.zeros_like(table), values_writable=True,
        )
        np.testing.assert_array_equal(table, before)


@st.composite
def serving_states(draw):
    """A synthetic served model: tables, histories, and a lookup mix."""
    num_tables = draw(st.integers(min_value=1, max_value=3))
    num_rows = draw(st.integers(min_value=1, max_value=20))
    dim = draw(st.integers(min_value=1, max_value=8))
    iteration = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    tables = [
        rng.normal(size=(num_rows, dim)) for _ in range(num_tables)
    ]
    # Arbitrary per-row catch-up delays: history in [0, iteration].
    histories = [
        np.array(
            draw(st.lists(
                st.integers(min_value=0, max_value=iteration),
                min_size=num_rows, max_size=num_rows,
            )),
            dtype=np.int64,
        )
        for _ in range(num_tables)
    ]
    lookups = draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=num_tables - 1),
            st.lists(
                st.integers(min_value=0, max_value=num_rows - 1),
                min_size=0, max_size=12,
            ),
        ),
        min_size=0, max_size=6,
    ))
    noise_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    use_ans = draw(st.booleans())
    return (tables, histories, iteration, lookups, noise_seed, use_ans)


def build_engine(tables, histories, iteration, noise_seed, use_ans,
                 lr=0.05, std=1.3):
    parameters = {
        f"emb_{t}": table for t, table in enumerate(tables)
    }
    return PrivateServingEngine(
        parameters,
        list(parameters),
        histories,
        NoiseStream(noise_seed),
        iteration,
        lr,
        std,
        use_ans=use_ans,
        snapshot=True,
    )


def naive_private_row(table, history, stream, table_index, row,
                      iteration, lr, std, use_ans):
    """One row privatized the slow, obviously-correct way.

    ANS mode replaces the whole pending span with one aggregated draw
    (paper Theorem 5.1); exact mode sums the per-iteration draws eager
    DP-SGD would have applied.  Either way: one row at a time, straight
    from the keyed noise primitives.
    """
    delay = iteration - int(history[row])
    if delay == 0:
        return table[row].copy()
    one_row = np.array([row], dtype=np.int64)
    if use_ans:
        noise = stream.aggregated_row_noise(
            table_index, one_row, np.array([delay], dtype=np.int64),
            iteration, table.shape[1], std=std,
        )
    else:
        noise = stream.row_noise_sum(
            table_index, one_row, int(history[row]) + 1, iteration,
            table.shape[1], std=std,
        )
    return table[row] - noise[0] * lr


class TestReadThroughPath:
    @RELAXED
    @given(state=serving_states())
    def test_lookup_bitwise_matches_naive_reference(self, state):
        tables, histories, iteration, lookups, noise_seed, use_ans = state
        engine = build_engine(tables, histories, iteration, noise_seed,
                              use_ans)
        stream = NoiseStream(noise_seed)
        for table_index, row_list in lookups:
            rows = np.array(row_list, dtype=np.int64)
            served = engine.lookup(table_index, rows)
            assert served.shape == (rows.size, tables[table_index].shape[1])
            for k, row in enumerate(row_list):
                expected = naive_private_row(
                    tables[table_index], histories[table_index], stream,
                    table_index, row, iteration, engine.learning_rate,
                    engine.noise_std, use_ans,
                )
                np.testing.assert_array_equal(served[k], expected)

    @RELAXED
    @given(state=serving_states())
    def test_accounting_invariants(self, state):
        tables, histories, iteration, lookups, noise_seed, use_ans = state
        engine = build_engine(tables, histories, iteration, noise_seed,
                              use_ans)
        total_rows = 0
        touched = [set() for _ in tables]
        expected_catchups = 0
        for table_index, row_list in lookups:
            fresh = set(row_list) - touched[table_index]
            expected_catchups += sum(
                1 for row in fresh
                if histories[table_index][row] < iteration
            )
            touched[table_index].update(row_list)
            engine.lookup(
                table_index, np.array(row_list, dtype=np.int64)
            )
            total_rows += len(row_list)
        # Served counts every returned row; a row is a memo hit unless
        # this very lookup privatized it (first unique touch).
        assert engine.rows_served == total_rows
        unique_touches = sum(len(rows) for rows in touched)
        assert engine.memo_hits == total_rows - unique_touches
        # Catch-up draws happen only for rows that actually owe noise.
        assert engine.rows_caught_up == expected_catchups
        # The caught-up set is exactly the union of unique lookups.
        for table_index, rows in enumerate(touched):
            flags = engine._caught_up[table_index]
            assert set(np.nonzero(flags)[0]) == rows

    @RELAXED
    @given(state=serving_states())
    def test_repeat_lookups_are_pure_memo_hits(self, state):
        tables, histories, iteration, lookups, noise_seed, use_ans = state
        engine = build_engine(tables, histories, iteration, noise_seed,
                              use_ans)
        for table_index, row_list in lookups:
            rows = np.array(row_list, dtype=np.int64)
            first = engine.lookup(table_index, rows)
            caught = engine.rows_caught_up
            hits = engine.memo_hits
            again = engine.lookup(table_index, rows)
            np.testing.assert_array_equal(first, again)
            assert engine.rows_caught_up == caught
            assert engine.memo_hits == hits + rows.size

    @RELAXED
    @given(state=serving_states())
    def test_export_equals_lookups_then_export(self, state):
        """Export bits are invariant to which rows were looked up first
        — the memoized prefix never changes the released model."""
        tables, histories, iteration, lookups, noise_seed, use_ans = state
        eager = build_engine(tables, histories, iteration, noise_seed,
                             use_ans)
        lazy = build_engine(tables, histories, iteration, noise_seed,
                            use_ans)
        for table_index, row_list in lookups:
            eager.lookup(table_index, np.array(row_list, dtype=np.int64))
        eager_export = eager.export()
        lazy_export = lazy.export()
        assert eager_export.keys() == lazy_export.keys()
        for name in eager_export:
            np.testing.assert_array_equal(
                eager_export[name], lazy_export[name]
            )
        eager.audit_exactly_once()
        lazy.audit_exactly_once()
