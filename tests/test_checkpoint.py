"""Tests for LazyDP checkpoint/resume and private model export."""

import numpy as np
import pytest

from repro import configs
from repro.testing import trainer_for
from repro.data import DataLoader, LookaheadLoader, SyntheticClickDataset
from repro.lazydp.checkpoint import (
    export_private_model,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn import DLRM
from repro.train import DPConfig

from repro.testing import max_param_diff


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=48, dim=8, lookups=2)


def build(config, use_ans=True, noise_seed=99):
    model = DLRM(config, seed=7)
    trainer = trainer_for(
        "lazydp" if use_ans else "lazydp_no_ans", model, DPConfig(),
        noise_seed=noise_seed,
    )
    trainer.expected_batch_size = 16
    return model, trainer


def batches_for(config, count, seed=5):
    dataset = SyntheticClickDataset(config, seed=3, num_examples=1 << 12)
    loader = DataLoader(dataset, batch_size=16, num_batches=count, seed=seed)
    return list(LookaheadLoader(loader))


def drive(trainer, entries, start=0, stop=None):
    stop = stop if stop is not None else len(entries)
    for index, batch, upcoming in entries[start:stop]:
        trainer.train_step(index + 1, batch, upcoming)


class TestRoundtrip:
    def test_save_load_restores_state(self, config, tmp_path):
        model, trainer = build(config)
        entries = batches_for(config, 6)
        drive(trainer, entries, stop=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, trainer, iteration=3)

        fresh_model, fresh_trainer = build(config)
        iteration = load_checkpoint(path, fresh_trainer)
        assert iteration == 3
        assert max_param_diff(model, fresh_model) == 0.0
        for original, restored in zip(trainer.engine.histories,
                                      fresh_trainer.engine.histories):
            np.testing.assert_array_equal(
                original.snapshot(), restored.snapshot()
            )

    def test_resume_equals_uninterrupted_run(self, config, tmp_path):
        """5 steps, checkpoint, restore, 5 more == 10 straight steps."""
        entries = batches_for(config, 10)

        straight_model, straight_trainer = build(config, use_ans=False)
        drive(straight_trainer, entries)
        straight_trainer.finalize(10)

        first_model, first_trainer = build(config, use_ans=False)
        drive(first_trainer, entries, stop=5)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, first_trainer, iteration=5)

        resumed_model, resumed_trainer = build(config, use_ans=False)
        assert load_checkpoint(path, resumed_trainer) == 5
        resumed_trainer._last_noise_std = DPConfig().noise_std(16)
        drive(resumed_trainer, entries, start=5)
        resumed_trainer.finalize(10)

        assert max_param_diff(straight_model, resumed_model) < 1e-12

    def test_wrong_ans_mode_rejected(self, config, tmp_path):
        _, trainer = build(config, use_ans=True)
        path = tmp_path / "a.npz"
        save_checkpoint(path, trainer, 0)
        _, other = build(config, use_ans=False)
        with pytest.raises(ValueError, match="ANS mode"):
            load_checkpoint(path, other)

    def test_wrong_noise_seed_rejected(self, config, tmp_path):
        _, trainer = build(config, noise_seed=1)
        path = tmp_path / "a.npz"
        save_checkpoint(path, trainer, 0)
        _, other = build(config, noise_seed=2)
        with pytest.raises(ValueError, match="noise seed"):
            load_checkpoint(path, other)

    def test_geometry_mismatch_rejected(self, config, tmp_path):
        _, trainer = build(config)
        path = tmp_path / "a.npz"
        save_checkpoint(path, trainer, 0)
        other_config = configs.tiny_dlrm(num_tables=2, rows=32, dim=8,
                                         lookups=2)
        _, other = build(other_config)
        with pytest.raises(ValueError):
            load_checkpoint(path, other)

    def test_negative_iteration_rejected(self, config, tmp_path):
        _, trainer = build(config)
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x.npz", trainer, -1)


class TestExportPrivateModel:
    def test_matches_flush(self, config):
        """Exported snapshot == what finalize() would produce."""
        entries = batches_for(config, 4)
        model, trainer = build(config, use_ans=False)
        drive(trainer, entries)

        released = export_private_model(trainer, iteration=4)

        trainer.finalize(4)
        for name, param in model.parameters().items():
            np.testing.assert_allclose(released[name], param.data,
                                       atol=1e-12)

    def test_does_not_mutate_trainer(self, config):
        entries = batches_for(config, 4)
        model, trainer = build(config)
        drive(trainer, entries, stop=3)
        before = {
            name: param.data.copy()
            for name, param in model.parameters().items()
        }
        histories_before = [
            history.snapshot() for history in trainer.engine.histories
        ]
        export_private_model(trainer, iteration=3)
        for name, param in model.parameters().items():
            np.testing.assert_array_equal(param.data, before[name])
        for history, snapshot in zip(trainer.engine.histories,
                                     histories_before):
            np.testing.assert_array_equal(history.snapshot(), snapshot)

    def test_export_equals_eager_model(self, config):
        """Mid-training release == eager DP-SGD model at that iteration."""
        entries = batches_for(config, 6)

        lazy_model, lazy_trainer = build(config, use_ans=False)
        drive(lazy_trainer, entries, stop=4)
        released = export_private_model(lazy_trainer, iteration=4)

        eager_model = DLRM(config, seed=7)
        eager_trainer = trainer_for("dpsgd_f", eager_model, DPConfig(),
                                     noise_seed=99)
        eager_trainer.expected_batch_size = 16
        drive(eager_trainer, entries, stop=4)

        for name, param in eager_model.parameters().items():
            np.testing.assert_allclose(released[name], param.data,
                                       atol=1e-9)

    def test_requires_known_noise_std(self, config):
        _, trainer = build(config)
        with pytest.raises(ValueError, match="noise_std"):
            export_private_model(trainer, iteration=0)

    def test_export_leaves_no_stale_rows(self, config):
        """Every row in the exported tables must have moved (DP property)."""
        entries = batches_for(config, 3)
        model, trainer = build(config)
        drive(trainer, entries)
        released = export_private_model(trainer, iteration=3)
        reference = DLRM(config, seed=7)
        for bag in reference.embeddings:
            moved = ~np.all(
                released[bag.table.name] == bag.table.data, axis=1
            )
            assert np.all(moved)
