"""Round-trip property tests for the shard router (repro.shard.router)."""

import numpy as np
import pytest

from repro import configs
from repro.data.skew import zipf_weights
from repro.shard import ShardRouter, build_partition_plan


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=128, dim=8, lookups=2)


def skewed_rows(num_rows, count, exponent, seed):
    """Zipf-distributed row draws (duplicates included, unsorted)."""
    weights = zipf_weights(num_rows, exponent)
    probabilities = weights / weights.sum()
    rng = np.random.default_rng(seed)
    return rng.choice(num_rows, size=count, p=probabilities)


class TestScatterGatherRoundTrip:
    @pytest.mark.parametrize("strategy", ["row_range", "hash", "frequency"])
    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("exponent", [0.3, 1.0, 1.8])
    def test_values_survive_round_trip(self, config, strategy, num_shards,
                                       exponent):
        """gather(scatter(rows)) restores per-row values in input order."""
        plan = build_partition_plan(config, num_shards, strategy=strategy)
        router = ShardRouter(plan)
        rows = skewed_rows(128, 300, exponent, seed=num_shards)
        routed = router.scatter(0, rows)
        assert sum(routed.counts()) == rows.size
        # Per-shard "computation": value = global row id (identity probe).
        per_shard = [
            np.stack([g.astype(np.float64)] * 4, axis=1)
            for g in routed.global_rows
        ]
        gathered = router.gather(routed, per_shard)
        np.testing.assert_array_equal(gathered[:, 0], rows.astype(np.float64))

    @pytest.mark.parametrize("strategy", ["row_range", "hash"])
    def test_local_ids_address_owner_rows(self, config, strategy):
        plan = build_partition_plan(config, 4, strategy=strategy)
        router = ShardRouter(plan)
        rows = skewed_rows(128, 200, 1.2, seed=9)
        routed = router.scatter(0, rows)
        part = plan.table(0)
        for s in range(4):
            np.testing.assert_array_equal(
                part.shard_rows[s][routed.local[s]], routed.global_rows[s]
            )

    def test_sorted_unique_input_stays_sorted_per_shard(self, config):
        """The invariant HistoryTable and merge_sparse_updates rely on."""
        plan = build_partition_plan(config, 3, strategy="hash")
        router = ShardRouter(plan)
        rows = np.unique(skewed_rows(128, 400, 1.0, seed=3))
        routed = router.scatter(0, rows)
        for s in range(3):
            shard_globals = routed.global_rows[s]
            assert np.all(np.diff(shard_globals) > 0)   # sorted, unique

    def test_empty_input(self, config):
        router = ShardRouter(build_partition_plan(config, 3))
        routed = router.scatter(0, np.empty(0, dtype=np.int64))
        assert routed.input_size == 0
        gathered = router.gather(
            routed, [np.zeros((0, 8))] * 3, dim=8
        )
        assert gathered.shape == (0, 8)

    def test_out_of_range_rejected(self, config):
        router = ShardRouter(build_partition_plan(config, 2))
        with pytest.raises(IndexError):
            router.scatter(0, np.array([128]))
        with pytest.raises(IndexError):
            router.scatter(0, np.array([-1]))

    def test_shard_load_matches_scatter(self, config):
        plan = build_partition_plan(config, 5, strategy="hash")
        router = ShardRouter(plan)
        rows = skewed_rows(128, 500, 1.5, seed=21)
        np.testing.assert_array_equal(
            router.shard_load(0, rows), router.scatter(0, rows).counts()
        )

    def test_hot_row_all_on_one_shard(self, config):
        """Worst-case skew: every lookup hits one row -> one shard."""
        router = ShardRouter(build_partition_plan(config, 4, strategy="hash"))
        rows = np.zeros(100, dtype=np.int64)
        counts = router.scatter(0, rows).counts()
        assert counts.max() == 100
        assert np.count_nonzero(counts) == 1
