"""The paper's central claim, tested exactly.

Section 5.1: "as long as we make sure that any delayed noise updates are
conducted before the actual embedding access occurs, the exact timing of
when those delayed noise updates were performed have no impact".  Because
our noise stream keys every value by (table, row, iteration), LazyDP with
ANS disabled consumes the *same* noise values as eager DP-SGD(B), just
later — so trained models must agree to floating-point tolerance, not just
in distribution.  These tests are the machine-checkable version of the
paper's Figure 7 argument.
"""

import numpy as np
import pytest

from repro import configs
from repro.testing import trainer_for
from repro.data import DataLoader, LookaheadLoader, SkewSpec, SyntheticClickDataset
from repro.nn import DLRM
from repro.train import DPConfig

from repro.testing import max_param_diff, train_algorithm

TOLERANCE = 1e-9


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


class TestExactEquivalence:
    """LazyDP (ANS off) == eager DP-SGD(B), bit-for-bit up to float order."""

    def test_final_model_matches_dpsgd_b(self, config):
        model_eager, _, _ = train_algorithm("dpsgd_b", config, num_batches=10)
        model_lazy, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=10
        )
        assert max_param_diff(model_eager, model_lazy) < TOLERANCE

    def test_final_model_matches_dpsgd_f(self, config):
        model_eager, _, _ = train_algorithm("dpsgd_f", config, num_batches=10)
        model_lazy, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=10
        )
        assert max_param_diff(model_eager, model_lazy) < TOLERANCE

    def test_equivalence_under_skewed_access(self, config):
        skew = SkewSpec(kind="zipf", exponent=1.3)
        model_eager, _, _ = train_algorithm(
            "dpsgd_f", config, num_batches=8, skew=skew
        )
        model_lazy, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=8, skew=skew
        )
        assert max_param_diff(model_eager, model_lazy) < TOLERANCE

    def test_equivalence_under_poisson_sampling(self, config):
        model_eager, _, _ = train_algorithm(
            "dpsgd_f", config, num_batches=8, sampling="poisson"
        )
        model_lazy, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=8, sampling="poisson"
        )
        assert max_param_diff(model_eager, model_lazy) < TOLERANCE

    def test_equivalence_single_iteration(self, config):
        model_eager, _, _ = train_algorithm("dpsgd_f", config, num_batches=1)
        model_lazy, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=1
        )
        assert max_param_diff(model_eager, model_lazy) < TOLERANCE

    def test_equivalence_with_large_pooling(self):
        config = configs.tiny_dlrm(num_tables=2, rows=32, dim=4, lookups=6)
        model_eager, _, _ = train_algorithm("dpsgd_f", config, num_batches=6)
        model_lazy, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=6
        )
        assert max_param_diff(model_eager, model_lazy) < TOLERANCE

    def test_losses_identical_along_trajectory(self, config):
        """Figure 7: gradients derived at access time must be identical,
        which implies the observed losses agree at every iteration."""
        _, result_eager, _ = train_algorithm("dpsgd_f", config, num_batches=8)
        _, result_lazy, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=8
        )
        np.testing.assert_allclose(
            result_eager.mean_losses, result_lazy.mean_losses, rtol=1e-9
        )


class TestVisibleValueInvariant:
    """Mid-training: rows are caught up by the time they are gathered."""

    def test_rows_current_before_every_access(self, config):
        dp = DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                      learning_rate=0.05)
        eager_model = DLRM(config, seed=7)
        lazy_model = DLRM(config, seed=7)
        eager = trainer_for("dpsgd_f", eager_model, dp, noise_seed=99)
        lazy = trainer_for("lazydp_no_ans", lazy_model, dp, noise_seed=99)

        dataset = SyntheticClickDataset(config, seed=3)
        loader = DataLoader(dataset, batch_size=16, num_batches=6, seed=5)
        eager.expected_batch_size = loader.batch_size
        lazy.expected_batch_size = loader.batch_size

        for index, batch, next_batch in LookaheadLoader(loader):
            iteration = index + 1
            # Before stepping, rows this batch gathers must be identical in
            # both models: eager applied noise eagerly, LazyDP caught them
            # up during the previous iteration.
            for t in range(config.num_tables):
                rows = batch.accessed_rows(t)
                np.testing.assert_allclose(
                    lazy_model.embeddings[t].table.data[rows],
                    eager_model.embeddings[t].table.data[rows],
                    atol=TOLERANCE,
                )
            eager.train_step(iteration, batch, next_batch)
            lazy.train_step(iteration, batch, next_batch)

    def test_unaccessed_rows_differ_mid_training(self, config):
        """Before the flush, deferred rows intentionally lag eager DP-SGD —
        the whole point of laziness.  (They are never read, so it's safe.)"""
        dp = DPConfig()
        eager_model = DLRM(config, seed=7)
        lazy_model = DLRM(config, seed=7)
        eager = trainer_for("dpsgd_f", eager_model, dp, noise_seed=99)
        lazy = trainer_for("lazydp_no_ans", lazy_model, dp, noise_seed=99)
        dataset = SyntheticClickDataset(config, seed=3)
        loader = DataLoader(dataset, batch_size=8, num_batches=3, seed=5)
        eager.expected_batch_size = loader.batch_size
        lazy.expected_batch_size = loader.batch_size
        for index, batch, next_batch in LookaheadLoader(loader):
            eager.train_step(index + 1, batch, next_batch)
            lazy.train_step(index + 1, batch, next_batch)
        # Without the flush, some rows must still differ.
        assert max_param_diff(eager_model, lazy_model) > 1e-6
        # After the flush, everything matches.
        lazy.finalize(3)
        assert max_param_diff(eager_model, lazy_model) < TOLERANCE


class TestANSDistributionalEquivalence:
    """With ANS the values differ but the law does not."""

    def test_ans_final_noise_variance(self, config):
        """Untouched rows after N iterations hold N-fold accumulated noise
        whose std must match sqrt(N) * sigma*C/B under both schedules."""
        iterations = 20
        dp = DPConfig(noise_multiplier=1.0, max_grad_norm=1.0,
                      learning_rate=1.0)
        reference = DLRM(config, seed=7)

        def untouched_noise(algorithm):
            model, _, trainer = train_algorithm(
                algorithm, config, batch_size=4, num_batches=iterations,
                dp=dp,
            )
            diffs = []
            for t, bag in enumerate(model.embeddings):
                init = reference.embeddings[t].table.data
                delta = bag.table.data - init
                # Rows whose delta is pure noise: those never accessed.
                # With batch 4 and 64 rows most rows qualify; filter via
                # the loader's trace.
                diffs.append(delta)
            return np.concatenate([d.ravel() for d in diffs])

        lazy = untouched_noise("lazydp")
        eager = untouched_noise("dpsgd_f")
        # Gradient-bearing rows add signal; compare robust scale (IQR).
        iqr_lazy = np.subtract(*np.percentile(lazy, [75, 25]))
        iqr_eager = np.subtract(*np.percentile(eager, [75, 25]))
        assert iqr_lazy == pytest.approx(iqr_eager, rel=0.1)

    def test_ans_accumulated_variance_exact_bookkeeping(self):
        """Pure-noise setting: lr=1, zero gradient influence via sigma-only
        check on a row that is never accessed until the flush."""
        config = configs.tiny_dlrm(num_tables=1, rows=512, dim=16, lookups=1)
        iterations = 9
        dp = DPConfig(noise_multiplier=2.0, max_grad_norm=1.0,
                      learning_rate=1.0)
        reference = DLRM(config, seed=7)
        model, _, trainer = train_algorithm(
            "lazydp", config, batch_size=2, num_batches=iterations, dp=dp,
        )
        init = reference.embeddings[0].table.data
        final = model.embeddings[0].table.data
        history = trainer.engine.histories[0]
        # Every row must be caught up through the final iteration.
        assert history.pending_rows(iterations).size == 0
        noise = (final - init).ravel()
        expected_std = 2.0 * 1.0 / 2 * np.sqrt(iterations)
        observed = np.subtract(*np.percentile(noise, [75, 25])) / 1.349
        assert observed == pytest.approx(expected_std, rel=0.1)

    def test_epsilon_identical_to_eager(self, config):
        """LazyDP consumes exactly the privacy budget of DP-SGD."""
        _, lazy_result, _ = train_algorithm("lazydp", config, num_batches=7)
        _, eager_result, _ = train_algorithm("dpsgd_b", config, num_batches=7)
        assert lazy_result.epsilon == pytest.approx(eager_result.epsilon)
