"""Numba kernel backend: equivalence, dispatch, and availability gating.

The suite runs with or without numba installed.  Without it, the
``@njit`` decorators in ``repro.kernels.njit`` degrade to no-ops (see
``repro.kernels.njit._compat``) so the *identical kernel logic* executes
interpreted — the numerics contract (bitwise Philox/fused-apply,
``NUMERIC_TOLERANCE`` for Gaussians) is checked either way, and the CI
``numba-kernels`` job re-runs this file against the real compiled
kernels.  Backend *selection* stays gated on real numba, so tests that
route trainers through ``backend=numba`` opt in via the single
monkeypatch choke point ``repro.kernels.dispatch.numba_missing_reason``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import configs
from repro.kernels import (
    active_kernel_backend,
    active_kernel_table,
    kernel_backends,
    set_kernel_backend,
    use_kernel_backend,
)
from repro.kernels import dispatch
from repro.kernels import njit as njit_kernels
from repro.kernels.fused import fused_noisy_update as numpy_fused_noisy_update
from repro.kernels.njit import NUMERIC_TOLERANCE
from repro.kernels.sampler import batched_catchup_sum as numpy_batched_catchup_sum
from repro.kernels.sampler import batched_row_noise_sum as numpy_batched_row_noise_sum
from repro.rng import (
    NoiseStream,
    derive_key,
    gaussians_from_uint32_block,
    philox4x32,
)
from repro.session import ExecutionPlan, PlanError, backend_info
from repro.testing import max_param_diff, train_algorithm

MISSING_REASON = (
    "numba is not installed; the compiled kernel backend needs "
    "the optional extra -- pip install 'repro[numba]'"
)


@pytest.fixture
def numba_selectable(monkeypatch):
    """Allow ``backend=numba`` selection, restoring numpy afterwards.

    With numba installed this is a no-op guard; without it the
    interpreted fallback is opted in by monkeypatching the availability
    probe.  Either way the process-global kernel table is restored to
    numpy on teardown (selection is sticky by design).
    """
    if not njit_kernels.NUMBA_AVAILABLE:
        monkeypatch.setattr(dispatch, "numba_missing_reason", lambda: None)
    yield
    set_kernel_backend("numpy")


@pytest.fixture
def numba_missing(monkeypatch):
    """Simulate an environment without numba, deterministically."""
    monkeypatch.setattr(
        dispatch, "numba_missing_reason", lambda: MISSING_REASON
    )


class TestPhilox:
    def test_blocks_match_numpy_bitwise(self):
        rng = np.random.default_rng(11)
        counters = rng.integers(0, 1 << 32, size=(64, 4), dtype=np.uint32)
        key = derive_key(12345, 1, 2)
        expected = philox4x32(counters, key)
        got = njit_kernels.philox4x32_blocks(counters, key)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    def test_scalar_matches_numpy_bitwise(self):
        rng = np.random.default_rng(13)
        counters = rng.integers(0, 1 << 32, size=(16, 4), dtype=np.uint32)
        key = derive_key(999, 1, 0)
        expected = philox4x32(counters, key)
        k0, k1 = np.uint64(key[0]), np.uint64(key[1])
        for i in range(counters.shape[0]):
            words = njit_kernels.philox4x32_scalar(
                np.uint64(counters[i, 0]), np.uint64(counters[i, 1]),
                np.uint64(counters[i, 2]), np.uint64(counters[i, 3]),
                k0, k1,
            )
            assert tuple(int(w) for w in words) == tuple(
                int(w) for w in expected[i]
            )

    def test_gauss4_within_pinned_tolerance(self):
        rng = np.random.default_rng(17)
        counters = rng.integers(0, 1 << 32, size=(32, 4), dtype=np.uint32)
        words = philox4x32(counters, derive_key(7, 1, 0))
        expected = gaussians_from_uint32_block(words).reshape(-1)
        got = np.empty(words.size, dtype=np.float64)
        for i in range(words.shape[0]):
            got[4 * i: 4 * i + 4] = njit_kernels.gauss4(
                np.uint64(words[i, 0]), np.uint64(words[i, 1]),
                np.uint64(words[i, 2]), np.uint64(words[i, 3]),
            )
        assert np.allclose(got, expected, **NUMERIC_TOLERANCE)


def _fused_case(grad, noise, dim, row_base, seed):
    """Build one fused-apply input set over a 20-row slab."""
    rng = np.random.default_rng(seed)
    grad_rows = np.array(sorted(grad), dtype=np.int64) + row_base
    noise_rows = np.array(sorted(noise), dtype=np.int64) + row_base
    grad_values = rng.standard_normal((grad_rows.size, dim))
    noise_values = rng.standard_normal((noise_rows.size, dim))
    table = rng.standard_normal((20, dim))
    return table, grad_rows, grad_values, noise_rows, noise_values


class TestFusedApply:
    @settings(max_examples=25, deadline=None)
    @given(
        grad=st.sets(st.integers(0, 19), max_size=8),
        noise=st.sets(st.integers(0, 19), max_size=8),
        dim=st.integers(1, 8),
        row_base=st.sampled_from([0, 7]),
        seed=st.integers(0, 2**16),
    )
    def test_bitwise_equal_to_numpy(self, grad, noise, dim, row_base, seed):
        table, grad_rows, grad_values, noise_rows, noise_values = _fused_case(
            grad, noise, dim, row_base, seed
        )
        table_numpy = table.copy()
        table_njit = table.copy()
        written_numpy = numpy_fused_noisy_update(
            table_numpy, 0.05, grad_rows, grad_values,
            noise_rows, noise_values, row_base=row_base,
        )
        written_njit = njit_kernels.fused_noisy_update(
            table_njit, 0.05, grad_rows, grad_values,
            noise_rows, noise_values, row_base=row_base,
        )
        assert written_njit == written_numpy
        assert np.array_equal(table_njit, table_numpy)

    @pytest.mark.parametrize(
        "grad_rows,noise_rows",
        [
            ([5, 3, 3], [1, 2]),      # unsorted + duplicate gradient rows
            ([1, 2], [9, 4]),         # unsorted noise rows
            ([2, 2], [3, 3]),         # duplicates on both sides
        ],
    )
    def test_unsorted_inputs_delegate_to_reference(self, grad_rows, noise_rows):
        # Both backends fall back to the reference implementation for
        # inputs no hot path produces; results must still agree bitwise.
        rng = np.random.default_rng(23)
        grad_rows = np.array(grad_rows, dtype=np.int64)
        noise_rows = np.array(noise_rows, dtype=np.int64)
        grad_values = rng.standard_normal((grad_rows.size, 4))
        noise_values = rng.standard_normal((noise_rows.size, 4))
        table = rng.standard_normal((12, 4))
        table_numpy = table.copy()
        table_njit = table.copy()
        written_numpy = numpy_fused_noisy_update(
            table_numpy, 0.1, grad_rows, grad_values,
            noise_rows, noise_values,
        )
        written_njit = njit_kernels.fused_noisy_update(
            table_njit, 0.1, grad_rows, grad_values,
            noise_rows, noise_values,
        )
        assert written_njit == written_numpy
        assert np.array_equal(table_njit, table_numpy)

    def test_empty_updates_write_nothing(self):
        empty_rows = np.empty(0, dtype=np.int64)
        empty_values = np.empty((0, 3), dtype=np.float64)
        table = np.random.default_rng(3).standard_normal((6, 3))
        before = table.copy()
        written = njit_kernels.fused_noisy_update(
            table, 0.05, empty_rows, empty_values, empty_rows, empty_values
        )
        assert written == 0
        assert np.array_equal(table, before)


class TestCatchupSampling:
    def test_matches_numpy_within_pinned_tolerance(self):
        stream = NoiseStream(4242)
        # A >32-bit row exercises the (row_lo, row_hi) counter split;
        # dim=5 exercises the partial trailing Philox block.
        rows = np.array([0, 1, 17, (1 << 33) + 7], dtype=np.int64)
        delays = np.array([0, 1, 3, 6], dtype=np.int64)
        expected = numpy_batched_catchup_sum(
            stream, 2, rows, delays, iteration=10, dim=5, std=1.3
        )
        got = njit_kernels.batched_catchup_sum(
            stream, 2, rows, delays, iteration=10, dim=5, std=1.3
        )
        assert got.shape == expected.shape
        assert np.allclose(got, expected, **NUMERIC_TOLERANCE)
        # Zero-delay rows receive exactly zero on both paths.
        assert np.all(got[0] == 0.0) and np.all(expected[0] == 0.0)

    def test_per_row_sums_are_batch_invariant(self):
        # The sum for a row is a pure function of its own coordinates:
        # computing rows together or one at a time is bitwise identical.
        # This is the property that makes sharded == flat exact.
        stream = NoiseStream(77)
        rows = np.array([3, 9, 21], dtype=np.int64)
        delays = np.array([4, 1, 7], dtype=np.int64)
        together = njit_kernels.batched_catchup_sum(
            stream, 0, rows, delays, iteration=12, dim=6
        )
        for k in range(rows.size):
            alone = njit_kernels.batched_catchup_sum(
                stream, 0, rows[k: k + 1], delays[k: k + 1],
                iteration=12, dim=6,
            )
            assert np.array_equal(alone[0], together[k])

    def test_matches_per_lag_replay_bitwise(self):
        # Replaying the same compiled draws one lag at a time and
        # accumulating reproduces the single-launch sum bit for bit:
        # the kernel adds draws in descending-iteration order, exactly
        # the order this loop adds them.
        stream = NoiseStream(5150)
        rows = np.array([2, 40], dtype=np.int64)
        delays = np.array([5, 5], dtype=np.int64)
        fused = njit_kernels.batched_catchup_sum(
            stream, 1, rows, delays, iteration=9, dim=4, std=0.7
        )
        replay = np.zeros_like(fused)
        one = np.ones(rows.size, dtype=np.int64)
        for lag in range(5):
            replay += njit_kernels.batched_catchup_sum(
                stream, 1, rows, one, iteration=9 - lag, dim=4, std=0.7
            )
        assert np.array_equal(replay, fused)

    def test_row_noise_sum_matches_numpy_and_uniform_delays(self):
        stream = NoiseStream(31337)
        rows = np.array([0, 5, 11], dtype=np.int64)
        expected = numpy_batched_row_noise_sum(
            stream, 3, rows, first_iteration=4, last_iteration=8, dim=3
        )
        got = njit_kernels.batched_row_noise_sum(
            stream, 3, rows, first_iteration=4, last_iteration=8, dim=3
        )
        assert np.allclose(got, expected, **NUMERIC_TOLERANCE)
        uniform = njit_kernels.batched_catchup_sum(
            stream, 3, rows, np.full(rows.size, 5, dtype=np.int64),
            iteration=8, dim=3,
        )
        assert np.array_equal(got, uniform)

    def test_empty_and_zero_delay_inputs(self):
        stream = NoiseStream(1)
        empty = njit_kernels.batched_catchup_sum(
            stream, 0, np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64), iteration=3, dim=4,
        )
        assert empty.shape == (0, 4)
        rows = np.array([1, 2], dtype=np.int64)
        zeros = njit_kernels.batched_catchup_sum(
            stream, 0, rows, np.zeros(2, dtype=np.int64), iteration=3, dim=4
        )
        assert np.all(zeros == 0.0)


class TestDispatch:
    def test_numpy_is_the_default_table(self):
        assert active_kernel_backend() == "numpy"
        assert "numpy" in kernel_backends()
        assert (
            active_kernel_table().fused_noisy_update
            is numpy_fused_noisy_update
        )

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(ValueError, match="numpy"):
            set_kernel_backend("cuda")

    def test_selection_refused_without_numba(self, numba_missing):
        with pytest.raises(RuntimeError, match=r"repro\[numba\]"):
            set_kernel_backend("numba")
        assert active_kernel_backend() == "numpy"

    def test_use_kernel_backend_swaps_and_restores(self, numba_selectable):
        assert active_kernel_backend() == "numpy"
        with use_kernel_backend("numba"):
            assert active_kernel_backend() == "numba"
            table = active_kernel_table()
            assert table.fused_noisy_update is njit_kernels.fused_noisy_update
            assert (
                table.batched_catchup_sum is njit_kernels.batched_catchup_sum
            )
        assert active_kernel_backend() == "numpy"

    def test_package_wrappers_follow_the_active_table(self, numba_selectable):
        from repro import kernels

        rng = np.random.default_rng(29)
        rows = np.array([1, 4], dtype=np.int64)
        values = rng.standard_normal((2, 3))
        empty_rows = np.empty(0, dtype=np.int64)
        empty_values = np.empty((0, 3), dtype=np.float64)
        table = rng.standard_normal((8, 3))
        via_numpy = table.copy()
        via_numba = table.copy()
        kernels.fused_noisy_update(
            via_numpy, 0.05, rows, values, empty_rows, empty_values
        )
        with use_kernel_backend("numba"):
            kernels.fused_noisy_update(
                via_numba, 0.05, rows, values, empty_rows, empty_values
            )
        assert np.array_equal(via_numba, via_numpy)

    def test_session_build_installs_the_plan_kernel_table(
        self, numba_selectable
    ):
        from repro.nn import DLRM
        from repro.session import TrainSession
        from repro.train import DPConfig

        config = configs.tiny_dlrm(num_tables=2, rows=32, dim=8, lookups=2)
        plan = ExecutionPlan.from_spec("backend=numba")
        with TrainSession.build(
            DLRM(config, seed=7), DPConfig(), plan, noise_seed=99
        ):
            assert active_kernel_backend() == "numba"
        # Sticky by design: only the next build (or an explicit call)
        # moves the table back.
        assert active_kernel_backend() == "numba"
        with TrainSession.build(
            DLRM(config, seed=7), DPConfig(), ExecutionPlan(), noise_seed=99
        ):
            assert active_kernel_backend() == "numpy"


class TestPlanGating:
    def test_plan_validation_names_the_missing_extra(self, numba_missing):
        with pytest.raises(PlanError, match=r"repro\[numba\]"):
            ExecutionPlan(backend="numba")
        with pytest.raises(PlanError, match="unavailable"):
            ExecutionPlan.from_spec("shards=2,backend=numba")
        ok, reason = backend_info("numba").available()
        assert not ok and "numba" in reason

    def test_numpy_plans_are_untouched_by_missing_numba(self, numba_missing):
        plan = ExecutionPlan.from_spec("ans=on,shards=2,partition=row_range")
        assert ExecutionPlan.from_spec(plan.to_spec()) == plan
        assert active_kernel_backend() == "numpy"
        model, result, _ = train_algorithm(
            "ans=on", configs.tiny_dlrm(), num_batches=2
        )
        assert result.iterations == 2
        assert active_kernel_backend() == "numpy"

    def test_available_numba_plans_round_trip(self, numba_selectable):
        flat = ExecutionPlan.from_spec("backend=numba")
        assert ExecutionPlan.from_spec(flat.to_spec()) == flat
        assert ExecutionPlan.from_dict(flat.to_dict()) == flat
        sharded = ExecutionPlan.from_spec(
            "ans=off,shards=2,partition=row_range,backend=numba"
        )
        assert sharded.to_spec() == (
            "ans=off,shards=2,partition=row_range,backend=numba"
        )


class TestTrainerEquivalence:
    """The backend=numba trainer matrix at tiny geometry.

    With ANS on, the numba trainer is *bitwise* equal to numpy: the ANS
    draws stay on the numpy sampler and the fused apply arithmetic is
    bit-identical.  With ANS off, the catch-up Gaussians go through the
    compiled transcendentals, so cross-backend equality holds within
    ``NUMERIC_TOLERANCE`` — while numba-vs-numba stays bitwise across
    execution strategies (sharding, pipelining, async).
    """

    CONFIG = configs.tiny_dlrm()

    def _train(self, spec):
        model, _, _ = train_algorithm(spec, self.CONFIG, num_batches=3)
        return model

    @pytest.mark.parametrize(
        "spec",
        [
            "ans=on",
            "ans=on,shards=2,partition=row_range",
            "ans=on,pipeline=2",
            "ans=on,async=strict,inflight=2",
        ],
    )
    def test_ans_on_is_bitwise_equal_to_numpy(self, numba_selectable, spec):
        reference = self._train(spec)
        compiled = self._train(f"{spec},backend=numba")
        assert max_param_diff(compiled, reference) == 0.0

    def test_ans_off_matches_numpy_within_tolerance(self, numba_selectable):
        reference = self._train("ans=off")
        compiled = self._train("ans=off,backend=numba")
        assert max_param_diff(compiled, reference) <= NUMERIC_TOLERANCE["atol"]

    def test_ans_off_sharded_equals_flat_bitwise(self, numba_selectable):
        flat = self._train("ans=off,backend=numba")
        sharded = self._train(
            "ans=off,shards=2,partition=row_range,backend=numba"
        )
        assert max_param_diff(sharded, flat) == 0.0

    def test_ans_on_composed_plans_equal_flat_bitwise(self, numba_selectable):
        flat = self._train("ans=on,backend=numba")
        composed = self._train(
            "ans=on,shards=3,partition=row_range,backend=numba,pipeline=2"
        )
        assert max_param_diff(composed, flat) == 0.0
