"""Tests for the memory-capacity model (Figure 13a, Section 7.2)."""

import pytest

from repro import configs
from repro.perfmodel import (
    fits_in_host_memory,
    history_table_bytes,
    input_queue_bytes,
    lazydp_metadata_fraction,
    paper_system,
    required_host_bytes,
    table_bytes,
)


@pytest.fixture
def hw():
    return paper_system()


@pytest.fixture
def config():
    return configs.mlperf_dlrm()


class TestSection72Overheads:
    def test_input_queue_is_213kb(self, config):
        """batch x tables x lookups x 4B = 2048*26*1*4 = 212992 B."""
        assert input_queue_bytes(2048, config) == 2048 * 26 * 4

    def test_history_table_is_751mb(self, config):
        """total rows x 4B ~ 750 MB for the 96 GB model."""
        assert history_table_bytes(config) == pytest.approx(751e6, rel=0.01)

    def test_metadata_under_one_percent(self, config):
        """Paper: HistoryTable < 1% of total model size."""
        assert lazydp_metadata_fraction(config, 2048) < 0.01

    def test_rmc_metadata_under_3_percent(self):
        """Section 7.3: <3.1% across RMC models."""
        for factory in (configs.rmc1, configs.rmc2, configs.rmc3):
            assert lazydp_metadata_fraction(factory(), 2048) < 0.031


class TestOOM:
    def test_dpsgd_fits_at_96gb(self, config, hw):
        assert fits_in_host_memory("dpsgd_f", config, 2048, hw)

    def test_dpsgd_oom_at_192gb(self, hw):
        config = configs.mlperf_dlrm(192 * 10**9)
        assert not fits_in_host_memory("dpsgd_f", config, 2048, hw)

    def test_sparse_algorithms_fit_at_192gb(self, hw):
        config = configs.mlperf_dlrm(192 * 10**9)
        for algorithm in ("sgd", "lazydp", "lazydp_no_ans", "eana"):
            assert fits_in_host_memory(algorithm, config, 2048, hw)

    def test_dense_needs_roughly_twice_the_model(self, config):
        dense = required_host_bytes("dpsgd_f", config, 2048)
        sparse = required_host_bytes("sgd", config, 2048)
        assert dense > 2 * table_bytes(config)
        assert sparse < 1.1 * table_bytes(config)

    def test_lazydp_requirement_between(self, config):
        lazy = required_host_bytes("lazydp", config, 2048)
        assert table_bytes(config) < lazy < 1.1 * table_bytes(config)
        assert lazy > required_host_bytes("sgd", config, 2048)
