"""Tests for the beyond-paper scaling projections."""


from repro.perfmodel import paper_system
from repro.perfmodel.scaling import (
    PROJECTION_MODEL_BYTES,
    break_even_model_bytes,
    oom_capacity_bytes,
    project_scaling,
)


class TestProjection:
    def test_speedup_grows_with_scale(self):
        """The paper's closing claim: the gap widens as tables grow.

        At 2 TB even the 4 TB future host cannot run eager DP-SGD (it
        needs twice the model size), so the last point has no finite
        speedup — DP-SGD is not merely slower there, it is impossible.
        """
        points = project_scaling()
        speedups = [
            p.speedup_vs_dpsgd for p in points
            if p.algorithm == "lazydp" and p.speedup_vs_dpsgd is not None
        ]
        assert len(speedups) == len(PROJECTION_MODEL_BYTES) - 1
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        final_eager = [p for p in points
                       if p.algorithm == "dpsgd_f"][-1]
        assert final_eager.oom

    def test_tb_scale_speedup_is_enormous(self):
        points = project_scaling()
        tb_point = next(
            p for p in points
            if p.algorithm == "lazydp" and p.model_bytes == 10**12
        )
        assert tb_point.speedup_vs_dpsgd > 500

    def test_lazydp_time_flat(self):
        points = project_scaling()
        lazy_times = [
            p.seconds_per_iteration for p in points if p.algorithm == "lazydp"
        ]
        assert max(lazy_times) / min(lazy_times) < 1.05

    def test_paper_capacity_reproduces_oom_wall(self):
        hw = paper_system()
        points = project_scaling(
            host_capacity_bytes=hw.cpu.dram_capacity,
            sizes=(96 * 10**9, 384 * 10**9),
        )
        eager = {p.model_bytes: p for p in points if p.algorithm == "dpsgd_f"}
        assert not eager[96 * 10**9].oom
        assert eager[384 * 10**9].oom


class TestOOMCapacity:
    def test_dpsgd_wall_between_96_and_192gb(self):
        """Figure 13a: fits at 96 GB, OOM at 192 GB on the 256 GB host."""
        wall = oom_capacity_bytes("dpsgd_f")
        assert 96e9 < wall < 192e9

    def test_lazydp_headroom(self):
        """LazyDP trains models nearly as large as host DRAM itself."""
        lazy_wall = oom_capacity_bytes("lazydp")
        eager_wall = oom_capacity_bytes("dpsgd_f")
        assert lazy_wall > 1.8 * eager_wall
        assert lazy_wall > 230e9

    def test_sgd_headroom_matches_lazydp_scale(self):
        sgd_wall = oom_capacity_bytes("sgd")
        lazy_wall = oom_capacity_bytes("lazydp")
        # LazyDP's metadata (<1%) barely dents the trainable capacity.
        assert lazy_wall > 0.95 * sgd_wall


class TestBreakEven:
    def test_break_even_far_below_production_scale(self):
        """Eager DP-SGD only wins for tables ~3 orders of magnitude
        smaller than the paper's default 96 GB."""
        crossover = break_even_model_bytes()
        assert crossover < 2e9       # under 2 GB of tables
        assert crossover > 1e6       # but the crossover does exist
