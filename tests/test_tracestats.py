"""Tests for trace statistics and their agreement with the perf model."""

import numpy as np
import pytest

from repro import configs
from repro.data import DataLoader, SkewSpec, SyntheticClickDataset
from repro.data.skew import expected_unique_rows, paper_skew_spec
from repro.data.tracestats import analyze_trace, collect_trace, loader_stats


def make_loader(rows=512, lookups=2, batches=10, batch_size=64, skew=None,
                seed=0):
    config = configs.tiny_dlrm(num_tables=2, rows=rows, dim=4,
                               lookups=lookups)
    dataset = SyntheticClickDataset(config, seed=seed, skew=skew)
    return DataLoader(dataset, batch_size=batch_size, num_batches=batches,
                      seed=seed + 1)


class TestBasicStats:
    def test_lookup_counts(self):
        stats = loader_stats(make_loader(batch_size=32, lookups=3))
        assert stats.lookups_per_iteration == pytest.approx(32 * 3)
        assert stats.unique_per_iteration <= stats.lookups_per_iteration

    def test_iterations_counted(self):
        stats = loader_stats(make_loader(batches=7))
        assert stats.iterations == 7

    def test_coverage_bounds(self):
        stats = loader_stats(make_loader())
        assert 0.0 < stats.coverage <= 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_trace([], num_rows=10)

    def test_unique_matches_expectation(self):
        """Empirical unique footprint ~ the closed-form the perf model uses."""
        rows, batch, lookups = 512, 64, 2
        stats = loader_stats(make_loader(rows=rows, batch_size=batch,
                                         lookups=lookups, batches=20))
        expected = expected_unique_rows(rows, batch * lookups)
        assert stats.unique_per_iteration == pytest.approx(expected, rel=0.05)


class TestSkewStats:
    def test_top_fraction_mass_reflects_skew(self):
        uniform = loader_stats(make_loader(skew=None, batches=20))
        skewed = loader_stats(make_loader(
            skew=SkewSpec(kind="zipf", exponent=1.5), batches=20
        ))
        assert skewed.top_fraction_mass[0.1] > uniform.top_fraction_mass[0.1]

    def test_calibrated_skew_hits_paper_point(self):
        """A 'medium' trace should put ~90% of accesses on ~10% of rows."""
        rows = 2048
        spec = paper_skew_spec("medium", rows)
        config = configs.tiny_dlrm(num_tables=1, rows=rows, dim=4, lookups=4)
        dataset = SyntheticClickDataset(config, seed=3, skew=spec)
        loader = DataLoader(dataset, batch_size=256, num_batches=40, seed=4)
        stats = loader_stats(loader)
        assert stats.top_fraction_mass[0.1] == pytest.approx(0.9, abs=0.05)


class TestLazyDPDelayAccounting:
    def test_total_draws_equals_iterations_times_rows(self):
        """Conservation law: every (row, iteration) noise value is drawn
        exactly once — during catch-up or at the flush.  So the no-ANS
        draw count is exactly rows x iterations."""
        loader = make_loader(rows=256, batches=8)
        stats = loader_stats(loader)
        assert stats.total_deferred_draws == 256 * 8

    def test_mean_delay_positive_for_sparse_access(self):
        stats = loader_stats(make_loader(rows=2048, batch_size=16,
                                         batches=12))
        assert stats.mean_catchup_delay >= 1.0

    def test_delay_agrees_with_trainer_history(self):
        """The replayed HistoryTable discipline matches the real trainer."""
        from repro.testing import trainer_for
        from repro.nn import DLRM
        from repro.train import DPConfig

        config = configs.tiny_dlrm(num_tables=1, rows=128, dim=4, lookups=2)
        dataset = SyntheticClickDataset(config, seed=5)
        loader = DataLoader(dataset, batch_size=16, num_batches=6, seed=6)
        stats = loader_stats(loader)

        model = DLRM(config, seed=7)
        trainer = trainer_for("lazydp_no_ans", model, DPConfig(),
                               noise_seed=8)
        trainer.fit(loader)
        # samples_drawn counts scalars: draws * dim.
        draws = trainer.engine.ans.samples_drawn / config.embedding_dim
        assert draws == pytest.approx(stats.total_deferred_draws)

    def test_skew_reduces_unique_but_not_total_draws(self):
        uniform = loader_stats(make_loader(rows=1024, batches=10, seed=1))
        skewed = loader_stats(make_loader(
            rows=1024, batches=10, seed=1,
            skew=SkewSpec(kind="zipf", exponent=1.5),
        ))
        assert skewed.unique_per_iteration < uniform.unique_per_iteration
        # Conservation: total deferred draws depend only on rows x iters.
        assert skewed.total_deferred_draws == uniform.total_deferred_draws


class TestCollectTrace:
    def test_raw_lookups_preserved(self):
        loader = make_loader(batch_size=32, lookups=3)
        trace = collect_trace(loader, table=0)
        for rows in trace:
            assert rows.size == 32 * 3  # duplicates kept

    def test_matches_batch_contents(self):
        loader = make_loader(batch_size=8, lookups=2, batches=2)
        trace = collect_trace(loader, table=1)
        batches = list(loader)
        for rows, batch in zip(trace, batches):
            np.testing.assert_array_equal(
                np.sort(rows), np.sort(batch.sparse[:, 1, :].ravel())
            )
