"""Tests for learning-rate schedules under lazy noise.

The critical property: a deferred noise value must carry its *origin*
iteration's learning rate.  ScheduledLazyDP (ANS off) must therefore
match eager scheduled DP-SGD exactly, for any schedule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import configs
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.train import DPConfig
from repro.train.schedules import (
    ConstantLR,
    LinearWarmupLR,
    ScheduledDPSGDFTrainer,
    ScheduledLazyDPTrainer,
    StepDecayLR,
)

from repro.testing import max_param_diff


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=48, dim=8, lookups=2)


def run_scheduled(trainer_cls, config, schedule, iterations=8, use_ans=None,
                  noise_seed=99):
    model = DLRM(config, seed=7)
    dataset = SyntheticClickDataset(config, seed=3, num_examples=1 << 12)
    loader = DataLoader(dataset, batch_size=16, num_batches=iterations,
                        seed=5)
    dp = DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                  learning_rate=0.05)
    kwargs = {} if use_ans is None else {"use_ans": use_ans}
    trainer = trainer_cls(model, dp, schedule, noise_seed=noise_seed,
                          **kwargs)
    result = trainer.fit(loader)
    return model, result, trainer


class TestScheduleValues:
    def test_constant(self):
        schedule = ConstantLR(0.1)
        assert schedule.rate(1) == schedule.rate(100) == 0.1

    def test_step_decay(self):
        schedule = StepDecayLR(0.2, factor=0.5, step_size=3)
        assert schedule.rate(1) == 0.2
        assert schedule.rate(3) == 0.2
        assert schedule.rate(4) == 0.1
        assert schedule.rate(7) == 0.05

    def test_linear_warmup(self):
        schedule = LinearWarmupLR(0.1, warmup=4)
        assert schedule.rate(1) == pytest.approx(0.025)
        assert schedule.rate(4) == pytest.approx(0.1)
        assert schedule.rate(9) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            StepDecayLR(0.1, factor=1.5)
        with pytest.raises(ValueError):
            LinearWarmupLR(0.1, warmup=0)
        with pytest.raises(ValueError):
            StepDecayLR(0.1).rate(0)


class TestSumSquaresWindow:
    def test_matches_direct_sum(self):
        schedule = StepDecayLR(0.3, factor=0.7, step_size=2)
        delays = np.array([0, 1, 3, 7])
        window = schedule.sum_squares_window(7, delays)
        for delay, value in zip(delays, window):
            direct = sum(
                schedule.rate(k) ** 2 for k in range(7 - delay + 1, 8)
            )
            assert value == pytest.approx(direct)

    def test_zero_delay_is_zero(self):
        schedule = ConstantLR(0.1)
        assert schedule.sum_squares_window(5, np.array([0]))[0] == 0.0

    def test_rejects_overlong_delay(self):
        schedule = ConstantLR(0.1)
        with pytest.raises(ValueError):
            schedule.sum_squares_window(3, np.array([4]))

    def test_constant_reduces_to_delay_scaling(self):
        schedule = ConstantLR(0.2)
        window = schedule.sum_squares_window(10, np.array([5]))
        assert window[0] == pytest.approx(5 * 0.2 ** 2)


class TestScheduledEquivalence:
    @pytest.mark.parametrize("make_schedule", [
        lambda: ConstantLR(0.05),
        lambda: StepDecayLR(0.1, factor=0.5, step_size=3),
        lambda: LinearWarmupLR(0.08, warmup=4),
    ])
    def test_lazy_matches_eager_exactly(self, config, make_schedule):
        """The headline: origin-scaled lazy noise == eager, per schedule."""
        eager, _, _ = run_scheduled(
            ScheduledDPSGDFTrainer, config, make_schedule()
        )
        lazy, _, _ = run_scheduled(
            ScheduledLazyDPTrainer, config, make_schedule(), use_ans=False
        )
        assert max_param_diff(eager, lazy) < 1e-9

    def test_constant_schedule_matches_plain_trainers(self, config):
        """ConstantLR(lr) must reproduce the unscheduled implementation."""
        from repro.testing import train_algorithm

        plain, _, _ = train_algorithm("dpsgd_f", config, num_batches=8)
        scheduled, _, _ = run_scheduled(
            ScheduledDPSGDFTrainer, config, ConstantLR(0.05)
        )
        assert max_param_diff(plain, scheduled) < 1e-12

    def test_constant_lazy_matches_plain_lazy(self, config):
        from repro.testing import train_algorithm

        plain, _, _ = train_algorithm("lazydp_no_ans", config, num_batches=8)
        scheduled, _, _ = run_scheduled(
            ScheduledLazyDPTrainer, config, ConstantLR(0.05), use_ans=False
        )
        assert max_param_diff(plain, scheduled) < 1e-12

    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=0.9),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=500),
    )
    def test_equivalence_property_over_schedules(self, factor, step, seed):
        config = configs.tiny_dlrm(num_tables=2, rows=32, dim=4, lookups=2)
        schedule_a = StepDecayLR(0.1, factor=factor, step_size=step)
        schedule_b = StepDecayLR(0.1, factor=factor, step_size=step)
        eager, _, _ = run_scheduled(
            ScheduledDPSGDFTrainer, config, schedule_a, iterations=6,
            noise_seed=seed,
        )
        lazy, _, _ = run_scheduled(
            ScheduledLazyDPTrainer, config, schedule_b, iterations=6,
            use_ans=False, noise_seed=seed,
        )
        assert max_param_diff(eager, lazy) < 1e-9

    def test_wrong_scaling_would_differ(self, config):
        """Sanity: the distinction matters — applying catch-up noise at the
        *current* rate diverges from eager under a decaying schedule."""
        schedule = StepDecayLR(0.1, factor=0.25, step_size=2)
        eager, _, _ = run_scheduled(
            ScheduledDPSGDFTrainer, config, schedule
        )
        # Plain LazyDP with a naive constant-lr config at the final rate —
        # the "obvious wrong implementation".
        from repro.testing import train_algorithm
        wrong, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=8,
            dp=DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                        learning_rate=0.1),
        )
        assert max_param_diff(eager, wrong) > 1e-6


class TestScheduledANS:
    def test_ans_variance_uses_window_sum(self):
        """Untouched-row noise std must equal std * sqrt(sum eta_k^2)."""
        config = configs.tiny_dlrm(num_tables=1, rows=512, dim=16, lookups=1)
        iterations = 9
        schedule = StepDecayLR(1.0, factor=0.5, step_size=3)
        dp = DPConfig(noise_multiplier=2.0, max_grad_norm=1.0,
                      learning_rate=1.0)
        reference = DLRM(config, seed=7)

        model = DLRM(config, seed=7)
        dataset = SyntheticClickDataset(config, seed=3, num_examples=1 << 12)
        loader = DataLoader(dataset, batch_size=2, num_batches=iterations,
                            seed=5)
        trainer = ScheduledLazyDPTrainer(model, dp, schedule, noise_seed=99,
                                         use_ans=True)
        trainer.fit(loader)

        noise = (
            model.embeddings[0].table.data
            - reference.embeddings[0].table.data
        ).ravel()
        base_std = 2.0 * 1.0 / 2  # sigma * C / B
        window = schedule.sum_squares_window(
            iterations, np.array([iterations])
        )[0]
        expected_std = base_std * np.sqrt(window)
        observed = np.subtract(*np.percentile(noise, [75, 25])) / 1.349
        assert observed == pytest.approx(expected_std, rel=0.1)

    def test_history_flushed(self, config):
        _, _, trainer = run_scheduled(
            ScheduledLazyDPTrainer, config, LinearWarmupLR(0.05, warmup=3),
        )
        for history in trainer.engine.histories:
            assert history.pending_rows(8).size == 0
