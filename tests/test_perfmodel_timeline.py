"""Tests for the per-iteration timeline model — the paper's shapes."""

import pytest

from repro import configs
from repro.data import SkewSpec
from repro.perfmodel import (
    ALGORITHMS,
    iteration_breakdown,
    end_to_end_seconds,
    paper_system,
)


@pytest.fixture
def config():
    return configs.mlperf_dlrm()


class TestBreakdownStructure:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_produces_stages(self, algorithm, config):
        breakdown = iteration_breakdown(algorithm, config, 2048)
        assert breakdown.total > 0
        assert breakdown.stage("fwd") > 0
        assert not breakdown.oom

    def test_unknown_algorithm_rejected(self, config):
        with pytest.raises(ValueError):
            iteration_breakdown("adam", config, 2048)

    def test_grouped_sums_to_total(self, config):
        breakdown = iteration_breakdown("dpsgd_f", config, 2048)
        grouped = breakdown.grouped()
        assert sum(grouped.values()) == pytest.approx(breakdown.total)

    def test_sgd_has_no_noise_stage(self, config):
        breakdown = iteration_breakdown("sgd", config, 2048)
        assert breakdown.stage("noise_sampling") == 0.0

    def test_lazydp_has_overhead_stages(self, config):
        breakdown = iteration_breakdown("lazydp", config, 2048)
        assert breakdown.lazydp_overhead_total() > 0
        assert breakdown.stage("lazydp_dedup") > 0


class TestPaperShapes:
    def test_sgd_constant_in_table_size(self):
        times = [
            end_to_end_seconds("sgd", configs.mlperf_dlrm(size), 2048)
            for size in (24e9, 96e9, 192e9)
        ]
        assert max(times) / min(times) < 1.05

    def test_lazydp_constant_in_table_size(self):
        times = [
            end_to_end_seconds("lazydp", configs.mlperf_dlrm(size), 2048)
            for size in (24e9, 96e9, 192e9)
        ]
        assert max(times) / min(times) < 1.05

    def test_dpsgd_linear_in_table_size(self):
        small = end_to_end_seconds("dpsgd_f", configs.mlperf_dlrm(24e9), 2048)
        large = end_to_end_seconds("dpsgd_f", configs.mlperf_dlrm(96e9), 2048)
        assert large / small == pytest.approx(4.0, rel=0.1)

    def test_dpsgd_oom_at_192gb(self):
        """Figure 13a: eager DP-SGD cannot hold table + dense gradient."""
        breakdown = iteration_breakdown(
            "dpsgd_f", configs.mlperf_dlrm(192 * 10**9), 2048
        )
        assert breakdown.oom
        assert end_to_end_seconds(
            "dpsgd_f", configs.mlperf_dlrm(192 * 10**9), 2048
        ) == float("inf")

    def test_lazydp_survives_192gb(self):
        breakdown = iteration_breakdown(
            "lazydp", configs.mlperf_dlrm(192 * 10**9), 2048
        )
        assert not breakdown.oom

    def test_headline_speedup_in_paper_range(self, config):
        """Section 7.1: 85x-155x across batches, 119x average."""
        for batch in (1024, 2048, 4096):
            lazy = end_to_end_seconds("lazydp", config, batch)
            eager = end_to_end_seconds("dpsgd_f", config, batch)
            assert 70 < eager / lazy < 200

    def test_no_ans_sits_between(self, config):
        """Figure 10 ordering: lazydp << lazydp_no_ans < dpsgd_f."""
        lazy = end_to_end_seconds("lazydp", config, 2048)
        no_ans = end_to_end_seconds("lazydp_no_ans", config, 2048)
        eager = end_to_end_seconds("dpsgd_f", config, 2048)
        assert lazy < no_ans < eager
        assert no_ans / lazy > 20

    def test_eana_faster_than_lazydp(self, config):
        """Figure 14: LazyDP pays 27-37% over EANA for real privacy."""
        eana = end_to_end_seconds("eana", config, 2048)
        lazy = end_to_end_seconds("lazydp", config, 2048)
        assert 1.05 < lazy / eana < 1.6

    def test_variant_ordering_small_table(self):
        """Figure 3 at 96MB: B slowest, F fastest."""
        config = configs.mlperf_dlrm(96 * 10**6)
        b = end_to_end_seconds("dpsgd_b", config, 2048)
        r = end_to_end_seconds("dpsgd_r", config, 2048)
        f = end_to_end_seconds("dpsgd_f", config, 2048)
        assert b > r > f

    def test_variants_converge_large_table(self, config):
        """Figure 3 at 96GB: <3% spread."""
        b = end_to_end_seconds("dpsgd_b", config, 2048)
        f = end_to_end_seconds("dpsgd_f", config, 2048)
        assert b / f < 1.05

    def test_pooling_increases_sgd_and_lazydp(self):
        for algorithm in ("sgd", "lazydp"):
            one = end_to_end_seconds(
                algorithm, configs.mlperf_dlrm(lookups_per_table=1), 2048
            )
            thirty = end_to_end_seconds(
                algorithm, configs.mlperf_dlrm(lookups_per_table=30), 2048
            )
            assert thirty > 4 * one

    def test_pooling_barely_moves_dpsgd(self):
        one = end_to_end_seconds(
            "dpsgd_f", configs.mlperf_dlrm(lookups_per_table=1), 2048
        )
        thirty = end_to_end_seconds(
            "dpsgd_f", configs.mlperf_dlrm(lookups_per_table=30), 2048
        )
        assert thirty / one < 1.05

    def test_skew_reduces_lazydp_cost(self, config):
        uniform = end_to_end_seconds("lazydp", config, 2048)
        skewed = end_to_end_seconds(
            "lazydp", config, 2048,
            skew=SkewSpec(kind="zipf", exponent=1.2),
        )
        assert skewed < uniform

    def test_batch_scales_sgd(self, config):
        small = end_to_end_seconds("sgd", config, 1024)
        large = end_to_end_seconds("sgd", config, 4096)
        assert 1.5 < large / small < 4.0

    def test_lazydp_overhead_fraction_near_paper(self, config):
        """Figure 11: ~15% of LazyDP's end-to-end time."""
        breakdown = iteration_breakdown("lazydp", config, 2048)
        fraction = breakdown.lazydp_overhead_total() / breakdown.total
        assert 0.08 < fraction < 0.25
