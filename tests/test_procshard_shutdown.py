"""Worker-death and shutdown semantics of the process backend.

The contract under failure: a worker dying mid-step surfaces as a named
:class:`ShardWorkerError` in ``train_step``, the router terminates the
surviving workers, every shared-memory segment is freed (no
``/dev/shm`` entries, no ``resource_tracker`` warnings at interpreter
exit) and no child processes are left behind.  The orderly path —
``close()`` — must be idempotent and leave the model readable.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import configs
from repro.nn.dlrm import DLRM
from repro.procshard import ProcessShardedLazyDPTrainer, ShardWorkerError
from repro.session import ExecutionPlan, TrainSession
from repro.testing import make_loader
from repro.train.common import DPConfig


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=2, rows=32, dim=4, lookups=2)


def build(config, num_shards=2):
    dp = DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                  learning_rate=0.05)
    model = DLRM(config, seed=7)
    plan = ExecutionPlan.from_spec(f"shards={num_shards},backend=process")
    session = TrainSession.build(model, dp, plan, noise_seed=99)
    loader = make_loader(config, batch_size=8, num_batches=6)
    return model, session.trainer, list(loader)


def shm_segment_names():
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if name.startswith("psm_")
        )
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def worker_pids(trainer):
    return [handle.pid for handle in trainer._workers]


class TestWorkerDeath:
    def test_sigkill_mid_step_raises_named_error(self, config):
        _, trainer, batches = build(config)
        trainer.train_step(1, batches[0], batches[1])
        victim = worker_pids(trainer)[1]
        os.kill(victim, signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(ShardWorkerError) as excinfo:
            trainer.train_step(2, batches[1], batches[2])
        message = str(excinfo.value)
        assert "shard worker 1" in message
        assert str(victim) in message
        assert "shared-memory" in message

    def test_death_terminates_siblings_and_frees_segments(self, config):
        before = shm_segment_names()
        _, trainer, batches = build(config, num_shards=3)
        trainer.train_step(1, batches[0], batches[1])
        pids = worker_pids(trainer)
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(ShardWorkerError):
            trainer.train_step(2, batches[1], batches[2])
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []
        assert shm_segment_names() == before
        # Subsequent steps and close stay safe.
        with pytest.raises(ShardWorkerError, match="closed"):
            trainer.train_step(3, batches[2], None)
        trainer.close()

    def test_worker_exception_propagates_with_traceback(self, config):
        """A worker-side exception (not just death) also surfaces as a
        ShardWorkerError carrying the worker's traceback."""
        _, trainer, batches = build(config)
        trainer.train_step(1, batches[0], batches[1])
        # Poison the protocol: an apply for an iteration nothing staged.
        handle = trainer._workers[0]
        handle.conn.send(("apply", 999, 0, np.empty(0, dtype=np.int64),
                          np.empty((0, config.embedding_dim)), 0.05))
        with pytest.raises(ShardWorkerError, match="worker traceback"):
            trainer._collect_ok(handle, "apply")

    def test_model_remains_readable_after_abort(self, config):
        model, trainer, batches = build(config)
        trainer.train_step(1, batches[0], batches[1])
        os.kill(worker_pids(trainer)[0], signal.SIGKILL)
        time.sleep(0.2)
        with pytest.raises(ShardWorkerError):
            trainer.train_step(2, batches[1], batches[2])
        # Private copies were rematerialized on abort.
        for bag in model.embeddings:
            assert bag.table.data.flags.writeable
            assert np.isfinite(bag.table.data).all()


class TestOrderlyShutdown:
    def test_close_is_idempotent_and_leaves_no_children(self, config):
        before = shm_segment_names()
        _, trainer, batches = build(config)
        trainer.train_step(1, batches[0], batches[1])
        trainer.close()
        trainer.close()
        assert multiprocessing.active_children() == []
        assert shm_segment_names() == before

    def test_segments_are_unlinked_at_startup(self, config):
        """Names disappear once workers attach, so even SIGKILL of the
        whole tree cannot leak /dev/shm entries."""
        before = shm_segment_names()
        _, trainer, _ = build(config)
        try:
            assert shm_segment_names() == before
        finally:
            trainer.close()

    def test_finalizer_backstop_reaps_unclosed_trainer(self, config):
        import gc

        _, trainer, batches = build(config)
        trainer.train_step(1, batches[0], batches[1])
        pids = worker_pids(trainer)
        del trainer, batches
        gc.collect()
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestConstructionGuards:
    def test_rejects_executor_instance_and_max_workers(self, config):
        from repro.shard import ThreadPoolShardExecutor

        dp = DPConfig()
        with pytest.raises(ValueError, match="process backend"):
            ProcessShardedLazyDPTrainer(
                DLRM(config, seed=7), dp, num_shards=2, executor="threads"
            )
        with pytest.raises(ValueError, match="one worker process per shard"):
            ProcessShardedLazyDPTrainer(
                DLRM(config, seed=7), dp, num_shards=2, max_workers=3
            )
        executor = ThreadPoolShardExecutor(max_workers=2)
        try:
            with pytest.raises(ValueError, match="live executor"):
                plan = ExecutionPlan.from_spec("shards=2,backend=process")
                TrainSession.build(DLRM(config, seed=7), dp, plan,
                                   executor=executor)
        finally:
            executor.shutdown()


class TestCleanStderr:
    def test_no_resource_tracker_warnings_on_any_path(self, tmp_path):
        """Full run in a subprocess: train, kill a worker, abort, train
        again, close, exit — stderr must show no resource_tracker leak
        warnings and no BufferError spam from SharedMemory.__del__."""
        script = tmp_path / "procshard_stderr_probe.py"
        script.write_text(
            "\n".join([
                "import os, signal, time",
                "from repro import configs",
                "from repro.nn.dlrm import DLRM",
                "from repro.procshard import ShardWorkerError",
                "from repro.session import ExecutionPlan, TrainSession",
                "from repro.testing import make_loader",
                "from repro.train.common import DPConfig",
                "config = configs.tiny_dlrm(num_tables=2, rows=32, dim=4,"
                " lookups=2)",
                "dp = DPConfig()",
                "plan = ExecutionPlan.from_spec('shards=2,backend=process')",
                "loader = make_loader(config, batch_size=8, num_batches=4)",
                "session = TrainSession.build(DLRM(config, seed=7), dp, plan)",
                "session.fit(loader)",
                "session.close()",
                "session = TrainSession.build(DLRM(config, seed=7), dp, plan)",
                "trainer = session.trainer",
                "batches = list(loader)",
                "trainer.train_step(1, batches[0], batches[1])",
                "os.kill(trainer._workers[1].pid, signal.SIGKILL)",
                "time.sleep(0.2)",
                "try:",
                "    trainer.train_step(2, batches[1], batches[2])",
                "except ShardWorkerError:",
                "    pass",
                "print('probe done')",
            ])
        )
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = repo_src
        completed = subprocess.run(
            [sys.executable, str(script)], env=env, capture_output=True,
            text=True, timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        assert "probe done" in completed.stdout
        assert "resource_tracker" not in completed.stderr, completed.stderr
        assert "BufferError" not in completed.stderr, completed.stderr
        assert "Traceback" not in completed.stderr, completed.stderr
