"""Tests for EmbeddingBag: the sparse layer at the heart of the paper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import EmbeddingBag, Parameter


def make_bag(rows=10, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    table = Parameter("t", rng.normal(size=(rows, dim)), 0, is_embedding=True)
    return EmbeddingBag(table)


def run_bag(indices, rows=10, dim=4, seed=0, delta_seed=1):
    bag = make_bag(rows, dim, seed)
    indices = np.asarray(indices, dtype=np.int64)
    bag.forward(indices)
    delta = np.random.default_rng(delta_seed).normal(
        size=(indices.shape[0], dim)
    )
    bag.backward(delta)
    return bag, delta


class TestForward:
    def test_sum_pooling(self):
        bag = make_bag()
        indices = np.array([[0, 1], [2, 2]])
        out = bag.forward(indices)
        table = bag.table.data
        np.testing.assert_allclose(out[0], table[0] + table[1])
        np.testing.assert_allclose(out[1], 2 * table[2])

    def test_single_lookup(self):
        bag = make_bag()
        out = bag.forward(np.array([[3]]))
        np.testing.assert_allclose(out[0], bag.table.data[3])

    def test_rejects_out_of_range(self):
        bag = make_bag(rows=4)
        with pytest.raises(IndexError):
            bag.forward(np.array([[4]]))

    def test_rejects_negative(self):
        bag = make_bag()
        with pytest.raises(IndexError):
            bag.forward(np.array([[-1]]))

    def test_rejects_1d_indices(self):
        bag = make_bag()
        with pytest.raises(ValueError):
            bag.forward(np.array([1, 2]))

    def test_accessed_rows_sorted_unique(self):
        bag, _ = run_bag([[5, 2], [2, 7]])
        np.testing.assert_array_equal(bag.accessed_rows(), [2, 5, 7])


class TestPairs:
    def test_multiplicities(self):
        bag, _ = run_bag([[1, 1, 3], [3, 3, 3]])
        pairs = bag.per_example_pairs()
        # Example 0: row 1 twice, row 3 once; example 1: row 3 thrice.
        lookup = {
            (int(e), int(r)): m
            for e, r, m in zip(pairs.example_ids, pairs.rows, pairs.mults)
        }
        assert lookup == {(0, 1): 2.0, (0, 3): 1.0, (1, 3): 3.0}

    def test_dense_per_example_matches_definition(self):
        bag, delta = run_bag([[0, 1], [1, 1]])
        dense = bag.per_example_pairs().dense_per_example(10)
        np.testing.assert_allclose(dense[0, 0], delta[0])
        np.testing.assert_allclose(dense[0, 1], delta[0])
        np.testing.assert_allclose(dense[1, 1], 2 * delta[1])
        assert np.all(dense[:, 2:] == 0.0)


class TestGradientViews:
    def test_batch_grad_matches_scatter(self):
        bag, delta = run_bag([[0, 1], [1, 2]])
        sparse = bag.batch_grads()["t"]
        dense = np.zeros((10, 4))
        for b, row_set in enumerate([[0, 1], [1, 2]]):
            for row in row_set:
                dense[row] += delta[b]
        np.testing.assert_allclose(sparse.to_dense(10), dense)

    def test_ghost_norm_matches_dense(self):
        bag, _ = run_bag([[1, 1, 5], [2, 3, 3]])
        dense = bag.per_example_pairs().dense_per_example(10)
        expected = (dense.reshape(2, -1) ** 2).sum(axis=1)
        np.testing.assert_allclose(bag.ghost_norm_sq(), expected, rtol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),   # batch
        st.integers(min_value=1, max_value=5),   # lookups
        st.integers(min_value=2, max_value=12),  # rows
        st.integers(min_value=0, max_value=999),
    )
    def test_ghost_norm_property(self, batch, lookups, rows, seed):
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, rows, size=(batch, lookups))
        bag = make_bag(rows=rows, dim=3, seed=seed)
        bag.forward(indices)
        delta = rng.normal(size=(batch, 3))
        bag.backward(delta)
        dense = bag.per_example_pairs().dense_per_example(rows)
        expected = (dense.reshape(batch, -1) ** 2).sum(axis=1)
        np.testing.assert_allclose(bag.ghost_norm_sq(), expected, rtol=1e-9)

    def test_weighted_grad_matches_dense(self):
        bag, delta = run_bag([[0, 1], [1, 2], [4, 4]])
        weights = np.array([0.5, 1.0, 0.25])
        sparse = bag.weighted_grads(np.array(weights))["t"]
        dense = bag.per_example_pairs().dense_per_example(10)
        expected = np.einsum("brd,b->rd", dense, weights)
        np.testing.assert_allclose(sparse.to_dense(10), expected)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=999),
    )
    def test_weighted_grad_property(self, batch, lookups, rows, seed):
        rng = np.random.default_rng(seed + 1)
        indices = rng.integers(0, rows, size=(batch, lookups))
        bag = make_bag(rows=rows, dim=3, seed=seed)
        bag.forward(indices)
        delta = rng.normal(size=(batch, 3))
        bag.backward(delta)
        weights = rng.random(batch)
        sparse = bag.weighted_grads(weights)["t"]
        dense = bag.per_example_pairs().dense_per_example(rows)
        expected = np.einsum("brd,b->rd", dense, weights)
        np.testing.assert_allclose(
            sparse.to_dense(rows), expected, atol=1e-12
        )

    def test_grad_only_touches_accessed_rows(self):
        bag, _ = run_bag([[3, 7]])
        sparse = bag.batch_grads()["t"]
        assert set(sparse.rows.tolist()) == {3, 7}

    def test_views_require_cache(self):
        bag = make_bag()
        with pytest.raises(RuntimeError):
            bag.batch_grads()
        bag.forward(np.array([[1]]))
        with pytest.raises(RuntimeError):
            bag.ghost_norm_sq()

    def test_backward_returns_none(self):
        bag = make_bag()
        bag.forward(np.array([[1]]))
        assert bag.backward(np.zeros((1, 4))) is None
