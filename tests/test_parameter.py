"""Tests for parameter and gradient containers."""

import numpy as np
import pytest

from repro.nn import Parameter, PerExamplePairs, SparseRowGrad


class TestParameter:
    def test_attributes(self):
        param = Parameter("name", np.zeros((3, 4)), 7, is_embedding=True)
        assert param.shape == (3, 4)
        assert param.size == 12
        assert param.param_id == 7
        assert param.is_embedding


class TestSparseRowGrad:
    def test_to_dense(self):
        grad = SparseRowGrad(np.array([1, 3]), np.ones((2, 2)))
        dense = grad.to_dense(5)
        assert dense.shape == (5, 2)
        assert np.all(dense[[0, 2, 4]] == 0.0)
        assert np.all(dense[[1, 3]] == 1.0)

    def test_scaled(self):
        grad = SparseRowGrad(np.array([0]), np.full((1, 3), 2.0))
        np.testing.assert_allclose(grad.scaled(0.5).values, 1.0)

    def test_dim(self):
        assert SparseRowGrad(np.array([0]), np.zeros((1, 9))).dim == 9

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([0, 1]), np.zeros((1, 3)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([[0]]), np.zeros((1, 3)))


class TestPerExamplePairs:
    def _pairs(self):
        # example 0 hits row 2 twice; example 1 hits rows 0 and 2 once each.
        deltas = np.array([[1.0, 0.0], [0.0, 2.0]])
        return PerExamplePairs(
            example_ids=np.array([0, 1, 1]),
            rows=np.array([2, 0, 2]),
            mults=np.array([2.0, 1.0, 1.0]),
            deltas=deltas,
            batch_size=2,
        )

    def test_norm_sq(self):
        pairs = self._pairs()
        # Example 0: (2*||d0||)^2 = 4*1 = 4. Example 1: (1+1)*||d1||^2 = 2*4 = 8.
        np.testing.assert_allclose(pairs.norm_sq_per_example(), [4.0, 8.0])

    def test_weighted_row_grad(self):
        pairs = self._pairs()
        grad = pairs.weighted_row_grad(np.array([1.0, 0.5]))
        dense = grad.to_dense(3)
        # Row 2: 2*d0*1.0 + 1*d1*0.5 ; row 0: 1*d1*0.5.
        np.testing.assert_allclose(dense[2], [2.0, 1.0])
        np.testing.assert_allclose(dense[0], [0.0, 1.0])
        np.testing.assert_allclose(dense[1], [0.0, 0.0])

    def test_dense_per_example(self):
        pairs = self._pairs()
        dense = pairs.dense_per_example(3)
        assert dense.shape == (2, 3, 2)
        np.testing.assert_allclose(dense[0, 2], [2.0, 0.0])
        np.testing.assert_allclose(dense[1, 0], [0.0, 2.0])
        np.testing.assert_allclose(dense[1, 2], [0.0, 2.0])

    def test_zero_weights_give_zero_grad(self):
        pairs = self._pairs()
        grad = pairs.weighted_row_grad(np.zeros(2))
        assert np.all(grad.values == 0.0)
