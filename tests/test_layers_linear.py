"""Tests for the Linear layer and MLP: gradients and DP gradient views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear, MLP, Parameter, relu
from repro.nn.init import ParameterFactory
from repro.rng import NoiseStream

from repro.testing import numeric_gradient


def make_linear(out_features=3, in_features=4, seed=0):
    rng = np.random.default_rng(seed)
    weight = Parameter("w", rng.normal(size=(out_features, in_features)), 0)
    bias = Parameter("b", rng.normal(size=out_features), 1)
    return Linear(weight, bias)


def make_mlp(dims=(4, 6, 3), seed=0):
    factory = ParameterFactory(NoiseStream(seed))
    linears = []
    for i in range(len(dims) - 1):
        weight = factory.linear_weight(f"l{i}.w", dims[i + 1], dims[i])
        bias = factory.linear_bias(f"l{i}.b", dims[i + 1])
        linears.append(Linear(weight, bias))
    return MLP(linears)


class TestLinearForward:
    def test_matches_manual(self):
        layer = make_linear()
        x = np.random.default_rng(1).normal(size=(5, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.data.T + layer.bias.data
        )

    def test_shape(self):
        layer = make_linear(out_features=7, in_features=2)
        assert layer.forward(np.zeros((3, 2))).shape == (3, 7)

    def test_rejects_1d_weight(self):
        with pytest.raises(ValueError):
            Linear(Parameter("w", np.zeros(3), 0), Parameter("b", np.zeros(3), 1))


class TestLinearBackward:
    def test_input_grad_numeric(self):
        layer = make_linear()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 4))
        upstream = rng.normal(size=(3, 3))

        def loss_of_input(x_val):
            return float((layer.forward(x_val) * upstream).sum())

        layer.forward(x)
        analytic = layer.backward(upstream)
        numeric = numeric_gradient(loss_of_input, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_weight_grad_numeric(self):
        layer = make_linear()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(3, 4))
        upstream = rng.normal(size=(3, 3))

        def loss_of_weight(w_val):
            layer.weight.data = w_val
            return float((layer.forward(x) * upstream).sum())

        original = layer.weight.data.copy()
        numeric = numeric_gradient(loss_of_weight, original.copy())
        layer.weight.data = original
        layer.forward(x)
        layer.backward(upstream)
        analytic = layer.batch_grads()["w"]
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_bias_grad_numeric(self):
        layer = make_linear()
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 4))
        upstream = rng.normal(size=(3, 3))

        def loss_of_bias(b_val):
            layer.bias.data = b_val
            return float((layer.forward(x) * upstream).sum())

        original = layer.bias.data.copy()
        numeric = numeric_gradient(loss_of_bias, original.copy())
        layer.bias.data = original
        layer.forward(x)
        layer.backward(upstream)
        np.testing.assert_allclose(
            layer.batch_grads()["b"], numeric, atol=1e-6
        )

    def test_views_require_cache(self):
        layer = make_linear()
        with pytest.raises(RuntimeError):
            layer.batch_grads()


class TestLinearDPViews:
    def _run(self, batch=6, seed=5):
        layer = make_linear(seed=seed)
        rng = np.random.default_rng(seed + 1)
        x = rng.normal(size=(batch, 4))
        upstream = rng.normal(size=(batch, 3))
        layer.forward(x)
        layer.backward(upstream)
        return layer

    def test_per_example_sums_to_batch(self):
        layer = self._run()
        per_example = layer.per_example_grads()
        batch = layer.batch_grads()
        np.testing.assert_allclose(per_example["w"].sum(axis=0), batch["w"])
        np.testing.assert_allclose(per_example["b"].sum(axis=0), batch["b"])

    def test_ghost_norm_matches_materialised(self):
        layer = self._run()
        per_example = layer.per_example_grads()
        expected = (
            (per_example["w"].reshape(6, -1) ** 2).sum(axis=1)
            + (per_example["b"] ** 2).sum(axis=1)
        )
        np.testing.assert_allclose(layer.ghost_norm_sq(), expected)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=1000))
    def test_ghost_norm_property(self, batch, out_f, in_f, seed):
        rng = np.random.default_rng(seed)
        layer = Linear(
            Parameter("w", rng.normal(size=(out_f, in_f)), 0),
            Parameter("b", rng.normal(size=out_f), 1),
        )
        x = rng.normal(size=(batch, in_f))
        upstream = rng.normal(size=(batch, out_f))
        layer.forward(x)
        layer.backward(upstream)
        per_example = layer.per_example_grads()
        expected = (
            (per_example["w"].reshape(batch, -1) ** 2).sum(axis=1)
            + (per_example["b"] ** 2).sum(axis=1)
        )
        np.testing.assert_allclose(layer.ghost_norm_sq(), expected, rtol=1e-9)

    def test_weighted_grads_match_manual(self):
        layer = self._run()
        weights = np.linspace(0.1, 1.0, 6)
        weighted = layer.weighted_grads(weights)
        per_example = layer.per_example_grads()
        np.testing.assert_allclose(
            weighted["w"],
            np.einsum("boi,b->oi", per_example["w"], weights),
        )
        np.testing.assert_allclose(
            weighted["b"],
            np.einsum("bo,b->o", per_example["b"], weights),
        )

    def test_uniform_weights_recover_batch_grad(self):
        layer = self._run()
        weighted = layer.weighted_grads(np.ones(6))
        batch = layer.batch_grads()
        np.testing.assert_allclose(weighted["w"], batch["w"])


class TestMLP:
    def test_forward_matches_manual(self):
        mlp = make_mlp((4, 6, 3))
        x = np.random.default_rng(7).normal(size=(5, 4))
        hidden = relu(mlp.linears[0].forward(x))
        expected = mlp.linears[1].forward(hidden)
        np.testing.assert_allclose(mlp.forward(x), expected)

    def test_backward_numeric_gradcheck(self):
        mlp = make_mlp((3, 5, 2), seed=9)
        rng = np.random.default_rng(10)
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))

        def loss_of_input(x_val):
            return float((mlp.forward(x_val) * upstream).sum())

        mlp.forward(x)
        analytic = mlp.backward(upstream)
        numeric = numeric_gradient(loss_of_input, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_weight_grads_numeric_all_layers(self):
        mlp = make_mlp((3, 4, 2), seed=11)
        rng = np.random.default_rng(12)
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))
        mlp.forward(x)
        mlp.backward(upstream)
        grads = mlp.batch_grads()
        for linear in mlp.linears:
            name = linear.weight.name
            original = linear.weight.data.copy()

            def loss_of_weight(w_val, linear=linear):
                linear.weight.data = w_val
                return float((mlp.forward(x) * upstream).sum())

            numeric = numeric_gradient(loss_of_weight, original.copy())
            linear.weight.data = original
            np.testing.assert_allclose(grads[name], numeric, atol=1e-6)

    def test_ghost_norms_sum_over_layers(self):
        mlp = make_mlp((3, 4, 2), seed=13)
        rng = np.random.default_rng(14)
        x = rng.normal(size=(5, 3))
        upstream = rng.normal(size=(5, 2))
        mlp.forward(x)
        mlp.backward(upstream)
        per_example = mlp.per_example_grads()
        expected = sum(
            (grad.reshape(5, -1) ** 2).sum(axis=1)
            for grad in per_example.values()
        )
        np.testing.assert_allclose(mlp.ghost_norm_sq(), expected, rtol=1e-9)

    def test_parameters_enumeration(self):
        mlp = make_mlp((4, 6, 3))
        assert len(mlp.parameters()) == 4  # 2 weights + 2 biases
