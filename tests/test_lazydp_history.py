"""Tests for the HistoryTable (Algorithm 1's bookkeeping structure)."""

import numpy as np
import pytest

from repro.lazydp import HistoryTable


class TestHistoryTable:
    def test_initial_state_is_iteration_zero(self):
        table = HistoryTable(8)
        np.testing.assert_array_equal(table.delays(np.arange(8), 0), 0)
        np.testing.assert_array_equal(table.delays(np.arange(8), 5), 5)

    def test_delays_after_update(self):
        table = HistoryTable(8)
        table.mark_updated(np.array([2, 5]), iteration=3)
        delays = table.delays(np.array([2, 5, 7]), iteration=7)
        np.testing.assert_array_equal(delays, [4, 4, 7])

    def test_delay_formula_matches_algorithm1(self):
        """delays[idx] = iter - HistoryTable[idx] (line 14)."""
        table = HistoryTable(4)
        table.mark_updated(np.array([1]), 2)
        assert table.delays(np.array([1]), 9)[0] == 7

    def test_rejects_time_travel(self):
        table = HistoryTable(4)
        table.mark_updated(np.array([0]), 5)
        with pytest.raises(ValueError):
            table.delays(np.array([0]), 3)

    def test_pending_rows(self):
        table = HistoryTable(6)
        table.mark_updated(np.array([0, 3]), 4)
        np.testing.assert_array_equal(table.pending_rows(4), [1, 2, 4, 5])
        assert table.pending_rows(0).size == 0

    def test_pending_rows_after_full_update(self):
        table = HistoryTable(6)
        table.mark_updated(np.arange(6), 9)
        assert table.pending_rows(9).size == 0
        assert table.pending_rows(10).size == 6

    def test_nbytes_is_four_per_row(self):
        """Section 7.2: 4 bytes per embedding vector."""
        assert HistoryTable(1000).nbytes == 4000
        assert HistoryTable.BYTES_PER_ENTRY == 4

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            HistoryTable(0)

    def test_snapshot_is_a_copy(self):
        table = HistoryTable(4)
        snap = table.snapshot()
        table.mark_updated(np.array([0]), 1)
        assert snap[0] == 0

    def test_last_updated(self):
        table = HistoryTable(4)
        table.mark_updated(np.array([2]), 7)
        np.testing.assert_array_equal(
            table.last_updated(np.array([1, 2])), [0, 7]
        )
