"""Tests for the data loader, Poisson sampling and the lookahead queue."""

import numpy as np
import pytest

from repro import configs
from repro.data import DataLoader, InputQueue, LookaheadLoader, SyntheticClickDataset


@pytest.fixture
def dataset():
    config = configs.tiny_dlrm(num_tables=2, rows=64, dim=8, lookups=2)
    return SyntheticClickDataset(config, seed=0, num_examples=1024)


class TestFixedSampling:
    def test_batch_count_and_size(self, dataset):
        loader = DataLoader(dataset, batch_size=32, num_batches=5)
        batches = list(loader)
        assert len(batches) == 5
        assert all(b.size == 32 for b in batches)

    def test_deterministic(self, dataset):
        a = DataLoader(dataset, 16, 3, seed=9)
        b = DataLoader(dataset, 16, 3, seed=9)
        for batch_a, batch_b in zip(a, b):
            np.testing.assert_array_equal(batch_a.sparse, batch_b.sparse)

    def test_seed_changes_selection(self, dataset):
        ids_a = DataLoader(dataset, 16, 1, seed=1).example_ids_for(0)
        ids_b = DataLoader(dataset, 16, 1, seed=2).example_ids_for(0)
        assert not np.array_equal(np.sort(ids_a), np.sort(ids_b))

    def test_no_replacement_within_batch(self, dataset):
        ids = DataLoader(dataset, 64, 1, seed=3).example_ids_for(0)
        assert len(np.unique(ids)) == 64

    def test_iterations_differ(self, dataset):
        loader = DataLoader(dataset, 16, 2, seed=4)
        assert not np.array_equal(
            np.sort(loader.example_ids_for(0)), np.sort(loader.example_ids_for(1))
        )

    def test_rejects_oversized_batch(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=4096, num_batches=1)

    def test_rejects_bad_mode(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, 16, 1, sampling="bernoulli")

    def test_len(self, dataset):
        assert len(DataLoader(dataset, 16, 7)) == 7


class TestPoissonSampling:
    def test_sample_rate(self, dataset):
        loader = DataLoader(dataset, batch_size=128, num_batches=1,
                            sampling="poisson")
        assert loader.sample_rate == pytest.approx(128 / 1024)

    def test_batch_size_fluctuates_around_rate(self, dataset):
        loader = DataLoader(dataset, batch_size=128, num_batches=50,
                            sampling="poisson", seed=7)
        sizes = [batch.size for batch in loader]
        assert np.mean(sizes) == pytest.approx(128, rel=0.15)
        assert len(set(sizes)) > 1  # actually varies

    def test_never_empty(self, dataset):
        loader = DataLoader(dataset, batch_size=1, num_batches=30,
                            sampling="poisson", seed=8)
        assert all(batch.size >= 1 for batch in loader)


class TestInputQueue:
    def test_push_pop_head_tail(self):
        queue = InputQueue()
        queue.push("a")
        queue.push("b")
        assert queue.head() == "a"
        assert queue.tail() == "b"
        assert queue.pop() == "a"
        assert len(queue) == 1

    def test_overflow(self):
        queue = InputQueue()
        queue.push(1)
        queue.push(2)
        with pytest.raises(RuntimeError):
            queue.push(3)

    def test_underflow(self):
        with pytest.raises(RuntimeError):
            InputQueue().pop()

    def test_head_requires_entry(self):
        with pytest.raises(RuntimeError):
            InputQueue().head()

    def test_tail_requires_lookahead(self):
        queue = InputQueue()
        queue.push(1)
        with pytest.raises(RuntimeError):
            queue.tail()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            InputQueue(size=1)

    def test_deep_queue_push_and_tail(self):
        queue = InputQueue(size=4)
        for item in ("a", "b", "c", "d"):
            queue.push(item)
        assert queue.head() == "a"
        assert queue.tail() == "d"
        with pytest.raises(RuntimeError):
            queue.push("e")

    def test_peek_offsets(self):
        queue = InputQueue(size=3)
        queue.push("a")
        queue.push("b")
        assert queue.peek(0) == "a"
        assert queue.peek(1) == "b"
        with pytest.raises(RuntimeError):
            queue.peek(2)
        with pytest.raises(ValueError):
            queue.peek(-1)

    def test_peek_none_sentinel(self):
        queue = InputQueue(size=2)
        queue.push("last")
        queue.push(None)
        assert queue.peek(1) is None


class TestLookaheadLoader:
    def test_pairs_align_with_plain_iteration(self, dataset):
        loader = DataLoader(dataset, 16, 4, seed=11)
        plain = list(loader)
        for index, current, upcoming in LookaheadLoader(loader):
            np.testing.assert_array_equal(current.sparse, plain[index].sparse)
            if index + 1 < len(plain):
                np.testing.assert_array_equal(
                    upcoming.sparse, plain[index + 1].sparse
                )

    def test_last_iteration_has_no_lookahead(self, dataset):
        loader = DataLoader(dataset, 16, 3, seed=12)
        entries = list(LookaheadLoader(loader))
        assert len(entries) == 3
        assert entries[-1][2] is None
        assert all(entry[2] is not None for entry in entries[:-1])

    def test_single_batch_loader(self, dataset):
        loader = DataLoader(dataset, 16, 1, seed=13)
        entries = list(LookaheadLoader(loader))
        assert len(entries) == 1
        assert entries[0][2] is None

    def test_iteration_indices(self, dataset):
        loader = DataLoader(dataset, 16, 5, seed=14)
        indices = [index for index, _, _ in LookaheadLoader(loader)]
        assert indices == [0, 1, 2, 3, 4]


class TestLookaheadDepth:
    """Depth-k lookahead: same yielded tuples, earlier batch loading."""

    def test_rejects_bad_depth(self, dataset):
        loader = DataLoader(dataset, 16, 3, seed=15)
        with pytest.raises(ValueError):
            LookaheadLoader(loader, depth=0)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_depth_does_not_change_yielded_batches(self, dataset, depth):
        loader = DataLoader(dataset, 16, 5, seed=16)
        baseline = list(LookaheadLoader(loader))
        deep = list(LookaheadLoader(loader, depth=depth))
        assert len(deep) == len(baseline) == 5
        for (i_a, cur_a, up_a), (i_b, cur_b, up_b) in zip(baseline, deep):
            assert i_a == i_b
            np.testing.assert_array_equal(cur_a.sparse, cur_b.sparse)
            if up_a is None:
                assert up_b is None
            else:
                np.testing.assert_array_equal(up_a.sparse, up_b.sparse)

    def test_depth_exceeding_num_batches(self, dataset):
        """A queue deeper than the epoch still flushes every batch."""
        loader = DataLoader(dataset, 16, 3, seed=17)
        entries = list(LookaheadLoader(loader, depth=10))
        assert len(entries) == 3
        assert entries[-1][2] is None
        assert all(entry[2] is not None for entry in entries[:-1])

    def test_on_load_positions_and_sentinel(self, dataset):
        """on_load sees every batch once, in order, then the sentinel."""
        loader = DataLoader(dataset, 16, 4, seed=18)
        events = []
        lookahead = LookaheadLoader(
            loader, depth=2,
            on_load=lambda position, batch: events.append(
                (position, batch is None)
            ),
        )
        consumed = list(lookahead)
        assert len(consumed) == 4
        assert events == [(0, False), (1, False), (2, False), (3, False),
                          (4, True)]

    def test_on_load_runs_ahead_of_consumption(self, dataset):
        """With depth k, batch j is loaded before iteration j-k yields —
        the runway the noise-prefetch worker uses."""
        depth = 3
        loader = DataLoader(dataset, 16, 6, seed=19)
        loaded = []
        lookahead = LookaheadLoader(
            loader, depth=depth,
            on_load=lambda position, batch: loaded.append(position),
        )
        for index, _, _ in lookahead:
            # Everything up to index + depth has been loaded already
            # (clipped to the epoch, plus the final sentinel position).
            expected = min(index + depth, 6)
            assert max(loaded) >= expected

    def test_single_batch_with_on_load(self, dataset):
        loader = DataLoader(dataset, 16, 1, seed=20)
        events = []
        entries = list(LookaheadLoader(
            loader, depth=2,
            on_load=lambda position, batch: events.append(
                (position, batch is None)
            ),
        ))
        assert len(entries) == 1
        assert entries[0][2] is None
        assert events == [(0, False), (1, True)]
