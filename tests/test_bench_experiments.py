"""Tests for the benchmark harness: figure drivers and reporting."""

import math

import pytest

from repro.bench import (
    ALL_FIGURES,
    comparison_table,
    figure6,
    figure10,
    figure11,
    figure13a,
    figure13c,
    figure14,
    format_table,
    format_value,
    geometric_mean,
    measured_series,
    measured_stage_breakdown,
    paper_data,
    section72,
)
from repro import configs
from repro.train import DPConfig


class TestReporting:
    def test_format_value_oom(self):
        assert format_value(float("inf")) == "OOM"

    def test_format_value_none(self):
        assert format_value(None) == "-"

    def test_format_value_precision(self):
        assert format_value(1.234) == "1.23"
        assert format_value(42.34) == "42.3"
        assert format_value(259.23) == "259"

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2], [3, 4]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_comparison_table_includes_both_columns(self):
        text = comparison_table(
            "fig", ("x",), {"s": (1.0,)}, {"s": (2.0,)}
        )
        assert "paper" in text
        assert "reproduced" in text

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, float("inf")]) == pytest.approx(2.0)
        assert math.isnan(geometric_mean([]))


class TestFigureDrivers:
    def test_all_figures_run(self):
        for name, driver in ALL_FIGURES.items():
            result = driver()
            assert result.figure
            assert result.reproduced
            assert result.table()

    def test_figure10_headline_speedup(self):
        result = figure10()
        assert 90 < result.extras["avg_speedup"] < 160

    def test_figure10_ordering(self):
        result = figure10()
        for i in range(3):
            assert (result.reproduced["sgd"][i]
                    < result.reproduced["lazydp"][i]
                    < result.reproduced["lazydp_no_ans"][i]
                    < result.reproduced["dpsgd_f"][i])

    def test_figure11_overhead_fraction(self):
        result = figure11()
        fraction = result.reproduced["lazydp"][0]
        assert 0.08 < fraction < 0.25

    def test_figure11_split_sums_to_one(self):
        result = figure11()
        split = result.reproduced["lazydp"][1:4]
        assert sum(split) == pytest.approx(1.0)

    def test_figure13a_oom_entry(self):
        result = figure13a()
        assert result.reproduced["dpsgd_f"][-1] == float("inf")
        assert all(v < 10 for v in result.reproduced["lazydp"])

    def test_figure13c_lazydp_wins_everywhere(self):
        result = figure13c()
        for lazy, eager in zip(result.reproduced["lazydp"],
                               result.reproduced["dpsgd_f"]):
            assert eager / lazy > 10

    def test_figure14_overhead_range(self):
        result = figure14()
        for ratio in result.extras["lazydp_over_eana"]:
            assert 1.0 < ratio < 1.6

    def test_figure6_matches_measured_constants(self):
        result = figure6()
        reproduced = result.reproduced["roofline"]
        assert reproduced[1] == pytest.approx(
            paper_data.FIG6_NOISE_SAMPLING_GFLOPS, rel=0.01
        )

    def test_section72(self):
        result = section72()
        queue, history, fraction = result.reproduced["overheads"]
        assert queue == pytest.approx(paper_data.SEC72_INPUT_QUEUE_BYTES,
                                      rel=0.01)
        assert history == pytest.approx(paper_data.SEC72_HISTORY_TABLE_BYTES,
                                        rel=0.01)
        assert fraction < 0.01


class TestMeasuredMode:
    """Real numpy trainers at a small geometry: the shape must reproduce."""

    @pytest.fixture(scope="class")
    def measurements(self):
        # Table must be large relative to the batch footprint so the dense
        # noisy update dominates DP-SGD(F), and enough iterations must run
        # to amortise LazyDP's one-time terminal flush.
        config = configs.small_dlrm(rows=20000)
        return measured_series(
            ["sgd", "eana", "lazydp", "dpsgd_f"],
            config=config, batch=64, iterations=5,
        )

    def test_lazydp_beats_dpsgd_measured(self, measurements):
        assert measurements["dpsgd_f"] > 2 * measurements["lazydp"]

    def test_ordering_measured(self, measurements):
        assert measurements["sgd"] <= measurements["lazydp"]
        assert measurements["lazydp"] < measurements["dpsgd_f"]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            measured_series(["adamw"])

    def test_stage_breakdown_keys(self):
        stages = measured_stage_breakdown(
            "lazydp", config=configs.small_dlrm(rows=500), batch=32,
            iterations=2, dp=DPConfig(),
        )
        assert stages["lazydp_dedup"] > 0
        assert stages["noise_sampling"] > 0
