"""The async engine's acceptance bar: strict == serial, ledger exact.

``AsyncLazyDPTrainer`` keeps up to ``max_in_flight`` iteration applies
outstanding on a background worker.  Under the ``strict`` staleness
policy a forward pass never reads a slab with an outstanding apply, so
training must release parameters *bitwise identical* to the serial
``LazyDPTrainer`` — across sampling schemes, ANS modes, shard counts
and in-flight depths.  Under ``bounded:k`` the released parameters
legitimately diverge (reads may trail applies), but the deferred-noise
ledger must stay exact: the per-row :class:`VersionVector
<repro.lazydp.ledger.VersionVector>` proves every per-iteration noise
value was applied exactly once, regardless of interleaving.
"""

import numpy as np
import pytest

from repro import configs
from repro.async_ import AsyncLazyDPTrainer
from repro.lazydp import LedgerError
from repro.testing import make_loader, max_param_diff, train_algorithm


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=64, dim=8, lookups=2)


def train_async(config, *, sampling="fixed", use_ans=True, num_batches=6,
                sharded=False, **kwargs):
    prefix = "async_sharded" if sharded else "async"
    algorithm = f"{prefix}_lazydp" if use_ans else f"{prefix}_lazydp_no_ans"
    model, result, trainer = train_algorithm(
        algorithm, config, num_batches=num_batches, sampling=sampling,
        trainer_kwargs=kwargs,
    )
    trainer.close()
    return model, result, trainer


class TestStrictBitwiseEquivalence:
    @pytest.mark.parametrize("max_in_flight", [1, 2, 4])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_flat_identical_to_serial(self, config, max_in_flight, sampling):
        serial_model, _, _ = train_algorithm(
            "lazydp", config, num_batches=6, sampling=sampling
        )
        async_model, _, trainer = train_async(
            config, sampling=sampling, max_in_flight=max_in_flight,
            staleness="strict",
        )
        assert max_param_diff(serial_model, async_model) == 0.0
        trainer.audit_noise_ledger(6)

    @pytest.mark.parametrize("use_ans", [True, False])
    def test_identical_with_and_without_ans(self, config, use_ans):
        algorithm = "lazydp" if use_ans else "lazydp_no_ans"
        serial_model, _, _ = train_algorithm(algorithm, config, num_batches=5)
        async_model, _, _ = train_async(
            config, use_ans=use_ans, num_batches=5, max_in_flight=2,
        )
        assert max_param_diff(serial_model, async_model) == 0.0

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_sharded_identical_to_serial(self, config, num_shards, sampling):
        serial_model, _, _ = train_algorithm(
            "lazydp", config, num_batches=6, sampling=sampling
        )
        async_model, _, trainer = train_async(
            config, sampling=sampling, sharded=True, num_shards=num_shards,
            max_in_flight=2,
        )
        assert max_param_diff(serial_model, async_model) == 0.0
        trainer.audit_noise_ledger(6)

    @pytest.mark.parametrize("max_in_flight", [1, 4])
    def test_sharded_threads_deep_in_flight(self, config, max_in_flight):
        """The heaviest combination: threaded shards, hash partition,
        no ANS (exact per-iteration replay), deep in-flight window."""
        serial_model, _, _ = train_algorithm(
            "lazydp_no_ans", config, num_batches=5
        )
        async_model, _, _ = train_async(
            config, use_ans=False, num_batches=5, sharded=True,
            num_shards=7, partition="hash", executor="threads",
            max_in_flight=max_in_flight,
        )
        assert max_param_diff(serial_model, async_model) == 0.0

    def test_bounded_zero_is_strict(self, config):
        """``bounded:0`` is the synchronous endpoint of the k sweep."""
        serial_model, _, _ = train_algorithm("lazydp", config, num_batches=6)
        async_model, _, _ = train_async(
            config, max_in_flight=4, staleness="bounded:0",
        )
        assert max_param_diff(serial_model, async_model) == 0.0

    def test_histories_match_serial_after_fit(self, config):
        _, _, serial_trainer = train_algorithm(
            "lazydp", config, num_batches=6
        )
        _, _, async_trainer = train_async(config)
        for serial, asynchronous in zip(serial_trainer.engine.histories,
                                        async_trainer.engine.histories):
            np.testing.assert_array_equal(
                serial.snapshot(), asynchronous.snapshot()
            )


class TestBoundedStalenessLedger:
    @pytest.mark.parametrize("staleness", ["bounded:1", "bounded:2"])
    @pytest.mark.parametrize("sampling", ["fixed", "poisson"])
    def test_ledger_exact_under_bounded_staleness(self, config, staleness,
                                                  sampling):
        """Released parameters may diverge; the noise accounting may not."""
        _, _, trainer = train_async(
            config, sampling=sampling, max_in_flight=4, staleness=staleness,
        )
        trainer.audit_noise_ledger(6)
        for vector in trainer.ledger:
            assert vector.pending_rows(6).size == 0

    def test_ledger_exact_sharded_bounded(self, config):
        _, _, trainer = train_async(
            config, sharded=True, num_shards=3, executor="threads",
            max_in_flight=4, staleness="bounded:2",
        )
        trainer.audit_noise_ledger(6)

    def test_ledger_counts_every_iteration_exactly_once(self, config):
        """After the audit, every row stands exactly at the final
        iteration: contiguous spans + completeness == exactly-once."""
        _, _, trainer = train_async(
            config, max_in_flight=4, staleness="bounded:2",
        )
        for vector in trainer.ledger:
            np.testing.assert_array_equal(
                vector.snapshot(), np.full(vector.num_rows, 6)
            )

    def test_audit_raises_on_incomplete_ledger(self, config):
        _, _, trainer = train_async(config)
        # Pretend one row's noise never landed.
        trainer.ledger[0]._applied_through[3] = 4
        with pytest.raises(LedgerError, match="still owe"):
            trainer.audit_noise_ledger(6)


class TestVersionVector:
    def test_rejects_gap_and_overlap(self):
        from repro.lazydp import VersionVector

        vector = VersionVector(8)
        rows = np.array([1, 2])
        vector.advance(rows, np.array([1, 1]), 1)
        # Overlap: iteration-1 noise applied again.
        with pytest.raises(LedgerError, match="ledger violation"):
            vector.advance(rows, np.array([2, 2]), 2)
        # Gap: skipping straight to iteration 3 without the span start.
        with pytest.raises(LedgerError, match="ledger violation"):
            vector.advance(rows, np.array([1, 1]), 3)
        # The contiguous span is accepted.
        vector.advance(rows, np.array([1, 1]), 2)
        np.testing.assert_array_equal(
            vector.applied_through(rows), np.array([2, 2])
        )

    def test_audit_flags_overshoot(self):
        from repro.lazydp import VersionVector

        vector = VersionVector(1)
        vector.advance(np.array([0]), np.array([5]), 5)
        with pytest.raises(LedgerError, match="beyond"):
            vector.audit_complete(4)

    def test_empty_advance_is_noop(self):
        from repro.lazydp import VersionVector

        vector = VersionVector(4)
        vector.advance(np.empty(0, dtype=np.int64),
                       np.empty(0, dtype=np.int64), 3)
        vector.audit_complete(0)


class TestTrainerBehaviour:
    def test_algorithm_names(self, config):
        _, result, _ = train_async(config)
        assert result.algorithm == "async_lazydp"
        _, result, _ = train_async(config, use_ans=False)
        assert result.algorithm == "async_lazydp_no_ans"
        _, result, _ = train_async(config, sharded=True, num_shards=2)
        assert result.algorithm == "async_sharded_lazydp"

    def test_rejects_bad_options(self, config):
        from repro.nn import DLRM
        from repro.train import DPConfig

        with pytest.raises(ValueError, match="max_in_flight"):
            AsyncLazyDPTrainer(
                DLRM(config, seed=7), DPConfig(), max_in_flight=0
            )
        with pytest.raises(ValueError, match="staleness"):
            AsyncLazyDPTrainer(
                DLRM(config, seed=7), DPConfig(), staleness="eventual"
            )
        with pytest.raises(ValueError, match="bound"):
            AsyncLazyDPTrainer(
                DLRM(config, seed=7), DPConfig(), staleness="bounded:-1"
            )

    def test_async_stats_surface(self, config):
        _, result, trainer = train_async(
            config, max_in_flight=3, staleness="bounded:1",
        )
        stats = trainer.async_stats()
        assert stats["max_in_flight"] == 3
        assert stats["staleness"] == "bounded:1"
        assert stats["applies_completed"] == 6
        assert stats["apply_busy_seconds"] > 0.0
        # The embedding merge/write stages run on the apply thread and
        # are accounted there (the trainer timer may still show the
        # stage names for the dense MLP noisy update, which stays
        # synchronous on the trainer thread).
        assert stats["apply_stage_seconds"]["noisy_grad_update"] > 0.0
        # The async block rides along in pipeline_stats.
        assert trainer.pipeline_stats()["async"] is not None

    def test_staleness_wait_recorded_under_strict(self, config):
        _, result, _ = train_async(config, max_in_flight=2)
        assert "staleness_wait" in result.stage_times

    def test_manual_stepping_falls_back(self, config):
        """Outside fit() the apply worker is inactive: inline path,
        still bitwise-identical to the serial trainer."""
        from repro.data import LookaheadLoader
        from repro.nn import DLRM
        from repro.train import DPConfig

        serial_model, _, _ = train_algorithm("lazydp", config, num_batches=4)
        model = DLRM(config, seed=7)
        trainer = AsyncLazyDPTrainer(
            model, DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                            learning_rate=0.05), noise_seed=99,
        )
        trainer.expected_batch_size = 16
        loader = make_loader(config, batch_size=16, num_batches=4)
        for index, batch, upcoming in LookaheadLoader(loader):
            trainer.train_step(index + 1, batch, upcoming)
        trainer.finalize(4)
        assert max_param_diff(serial_model, model) == 0.0

    def test_export_after_fit_matches_serial(self, config):
        from repro.lazydp import export_private_model

        _, _, serial_trainer = train_algorithm(
            "lazydp", config, num_batches=6
        )
        _, _, async_trainer = train_async(config)
        serial_release = export_private_model(serial_trainer, iteration=6)
        async_release = export_private_model(async_trainer, iteration=6)
        for name in serial_release:
            np.testing.assert_array_equal(
                serial_release[name], async_release[name]
            )

    def test_sharded_executor_single_writer(self, config):
        """During fit the apply worker is the shard executor's only
        client; per-shard apply timers still get populated."""
        _, _, trainer = train_async(
            config, sharded=True, num_shards=2, executor="threads",
        )
        # train_async goes through TrainSession.build, which composes
        # the same async+pipeline+sharded stack the legacy class names.
        assert trainer.execution_plan.is_async
        assert trainer.execution_plan.is_sharded
        assert trainer.name == "async_sharded_lazydp"
        assert trainer.apply_timer.totals["shard_model_update"] > 0.0
        for timer in trainer.shard_timers:
            assert timer.totals["noisy_grad_update"] >= 0.0
