"""Cross-validation: the performance model vs. real measured trainers.

The reproduction stands on two legs — the calibrated model (paper scale)
and the measured numpy trainers (scaled geometry).  These tests check the
legs agree with *each other* on every trend the figures rely on, using
the same scaled geometries for both, so neither mode can drift into
telling its own story.

Absolute times are incomparable (numpy vs modelled AVX), so every
assertion is about ratios and orderings computed within each mode.
"""

import time

import numpy as np
import pytest

from repro import configs
from repro.testing import trainer_for
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.perfmodel import iteration_breakdown, paper_system
from repro.train import DPConfig


def measured_step_seconds(algorithm, config, batch=128, repeats=3, seed=9):
    """Median wall-clock of one warmed-up training step."""
    model = DLRM(config, seed=seed)
    dataset = SyntheticClickDataset(config, seed=seed + 1)
    loader = DataLoader(dataset, batch_size=batch, num_batches=repeats + 2,
                        seed=seed + 2)
    trainer = trainer_for(algorithm, model, DPConfig(), noise_seed=seed + 3)
    trainer.expected_batch_size = batch
    batches = [loader.batch_for(i) for i in range(repeats + 2)]
    trainer.train_step(1, batches[0], batches[1])  # warm-up
    samples = []
    for i in range(repeats):
        start = time.perf_counter()
        trainer.train_step(i + 2, batches[i + 1], batches[i + 2])
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def modelled_step_seconds(algorithm, config, batch=128):
    return iteration_breakdown(
        algorithm, config, batch, hw=paper_system()
    ).total


@pytest.fixture(scope="module")
def geometries():
    return {
        "small": configs.small_dlrm(rows=5000, name="xval-small"),
        "large": configs.small_dlrm(rows=20000, name="xval-large"),
    }


class TestTableSizeTrend:
    """Figure 13(a)'s load-bearing trend, agreed on by both modes.

    Each mode is probed where its table-dependent terms dominate its
    fixed costs: numpy at 5 k-20 k rows (numpy per-element cost is high
    relative to its dispatch overhead), the model at 24-96 GB (the
    paper's calibrated fixed costs are tuned to that system).  The
    *trend* — DP-SGD grows ~linearly with 4x the capacity, LazyDP stays
    flat — must appear in both.
    """

    def test_dpsgd_scales_in_both_modes(self, geometries):
        measured_ratio = (
            measured_step_seconds("dpsgd_f", geometries["large"])
            / measured_step_seconds("dpsgd_f", geometries["small"])
        )
        modelled_ratio = (
            modelled_step_seconds("dpsgd_f", configs.mlperf_dlrm(96e9), 2048)
            / modelled_step_seconds("dpsgd_f", configs.mlperf_dlrm(24e9),
                                    2048)
        )
        # 4x the capacity: both modes must show substantial (>1.7x) growth.
        assert measured_ratio > 1.7
        assert modelled_ratio > 1.7

    def test_lazydp_flat_in_both_modes(self, geometries):
        measured_ratio = (
            measured_step_seconds("lazydp", geometries["large"])
            / measured_step_seconds("lazydp", geometries["small"])
        )
        modelled_ratio = (
            modelled_step_seconds("lazydp", configs.mlperf_dlrm(96e9), 2048)
            / modelled_step_seconds("lazydp", configs.mlperf_dlrm(24e9),
                                    2048)
        )
        assert measured_ratio < 1.8   # timer noise headroom
        assert modelled_ratio < 1.1


class TestAlgorithmOrdering:
    """Figure 10/14's ordering must hold per mode at the same geometry."""

    @pytest.fixture(scope="class")
    def step_times(self, geometries):
        algorithms = ("sgd", "eana", "lazydp", "dpsgd_f")
        # Measured at numpy's natural scale, modelled at the paper's.
        return (
            {a: measured_step_seconds(a, geometries["large"])
             for a in algorithms},
            {a: modelled_step_seconds(a, configs.mlperf_dlrm(96e9), 2048)
             for a in algorithms},
        )

    def test_lazydp_beats_dpsgd_in_both(self, step_times):
        measured, modelled = step_times
        assert measured["dpsgd_f"] > 2.5 * measured["lazydp"]
        assert modelled["dpsgd_f"] > 2.5 * modelled["lazydp"]

    def test_sgd_fastest_in_both(self, step_times):
        measured, modelled = step_times
        for table in (measured, modelled):
            assert table["sgd"] == min(table.values())

    def test_eana_not_slower_than_lazydp_in_both(self, step_times):
        measured, modelled = step_times
        assert measured["eana"] <= measured["lazydp"] * 1.15
        assert modelled["eana"] <= modelled["lazydp"] * 1.15


class TestNoiseVolumeAgreement:
    """The model's central quantity — Gaussian draws per iteration — must
    match what the trainers actually draw."""

    def test_eager_draw_count(self, geometries):
        config = geometries["small"]
        model = DLRM(config, seed=1)
        dataset = SyntheticClickDataset(config, seed=2)
        loader = DataLoader(dataset, batch_size=64, num_batches=1, seed=3)
        trainer = trainer_for("dpsgd_f", model, DPConfig(), noise_seed=4)
        trainer.fit(loader)
        # Eager: every table element gets one draw per iteration; the
        # model charges exactly config.total_embedding_params draws.
        # (The trainers don't count draws directly; sanity-check via the
        # tables: every row moved.)
        reference = DLRM(config, seed=1)
        for t, bag in enumerate(model.embeddings):
            moved = ~np.all(
                bag.table.data == reference.embeddings[t].table.data, axis=1
            )
            assert moved.all()

    def test_lazydp_draw_count_matches_unique_rows(self, geometries):
        config = geometries["small"]
        model = DLRM(config, seed=1)
        dataset = SyntheticClickDataset(config, seed=2)
        iterations = 4
        loader = DataLoader(dataset, batch_size=64,
                            num_batches=iterations, seed=3)
        trainer = trainer_for("lazydp", model, DPConfig(), noise_seed=4)
        trainer.fit(loader)
        drawn = trainer.engine.ans.samples_drawn / config.embedding_dim
        # Conservation: catch-ups + flush touch each (row, lifetime) once;
        # per-iteration catch-up count equals next-batch unique rows, and
        # the flush covers the rest -> total rows touched equals
        # (sum over iterations of unique next rows) + pending at flush.
        # Upper bound: unique-per-iter * (iters-1) + total rows.
        unique_per_iter = sum(
            len(np.unique(loader.batch_for(i).sparse[:, t, :]))
            for i in range(1, iterations)
            for t in range(config.num_tables)
        )
        total_rows = config.total_embedding_rows
        assert drawn == unique_per_iter + total_rows

    def test_modelled_lazydp_noise_share_matches_measured_order(self,
                                                                geometries):
        """Noise work relative to eager: both modes agree it collapses."""
        config = geometries["large"]
        modelled_lazy = iteration_breakdown("lazydp", config, 128)
        modelled_eager = iteration_breakdown("dpsgd_f", config, 128)
        model_reduction = (
            modelled_eager.stage("noise_sampling")
            / modelled_lazy.stage("noise_sampling")
        )
        # Measured: time the two noise paths directly.
        from repro.rng import NoiseStream
        stream = NoiseStream(0)
        rows_all = np.arange(config.table_rows[0], dtype=np.int64)
        rows_batch = np.arange(128, dtype=np.int64)
        start = time.perf_counter()
        stream.row_noise(0, rows_all, 1, config.embedding_dim)
        eager_s = time.perf_counter() - start
        start = time.perf_counter()
        stream.aggregated_row_noise(
            0, rows_batch, np.full(128, 3), 1, config.embedding_dim
        )
        lazy_s = time.perf_counter() - start
        measured_reduction = eager_s / lazy_s
        assert model_reduction > 10
        assert measured_reduction > 10
