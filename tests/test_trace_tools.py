"""tools/check_trace.py and tools/trace_report.py on handcrafted traces.

The tools are standalone scripts (stdlib only), so they are loaded by
file path and exercised against small hand-built traces where every
quantity — busy time, utilization, overlap, hidden fraction — is known
exactly.  The tracer's own exports are covered in ``test_obs.py``;
these tests pin the *analysis* arithmetic.
"""

import importlib.util
import json
import pathlib

import pytest

_TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, _TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_trace():
    return _load("check_trace")


@pytest.fixture(scope="module")
def trace_report():
    return _load("trace_report")


def _meta(tid, name):
    return {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": name}}


def _span(tid, name, ts, dur):
    return {"name": name, "cat": "stage", "ph": "X", "ts": ts, "dur": dur,
            "pid": 1, "tid": tid}


def two_track_trace():
    """Worker registered first (tid 0), main loop second (tid 1) — the
    order a pipelined run can genuinely produce.  All times in µs:

    * main (tid 1): train_step [0, 100), pipeline_wait [100, 120)
    * worker (tid 0): prefetch [50, 110) — 60 busy, 10 of it exposed
      under the wait, plus nested sub-spans that must not double count.
    """
    return {"traceEvents": [
        _meta(0, "noise-prefetch"),
        _meta(1, "main-loop"),
        _span(1, "train_step", 0.0, 100.0),
        _span(1, "pipeline_wait", 100.0, 20.0),
        _span(0, "prefetch_compute", 50.0, 60.0),
        _span(0, "shard_prefetch", 55.0, 30.0),   # nested: no extra busy
    ]}


class TestCheckTrace:
    def test_valid_trace_passes(self, check_trace):
        errors, stats = check_trace.validate(two_track_trace(), min_tracks=2)
        assert errors == []
        assert stats["tracks"] == 2
        assert stats["span_events"] == 4
        assert sorted(stats["track_names"]) == ["main-loop",
                                                "noise-prefetch"]

    def test_bare_event_list_accepted(self, check_trace):
        errors, stats = check_trace.validate(
            two_track_trace()["traceEvents"]
        )
        assert errors == []
        assert stats["tracks"] == 2

    def test_min_tracks_enforced(self, check_trace):
        errors, _ = check_trace.validate(two_track_trace(), min_tracks=3)
        assert any("at least 3" in error for error in errors)

    @pytest.mark.parametrize("event, fragment", [
        ({"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}, "dur"),
        ({"name": "x", "ph": "X", "ts": -1, "dur": 1, "pid": 1, "tid": 0},
         "non-negative"),
        ({"name": "x", "ph": "Z", "ts": 0}, "unknown phase"),
        ({"name": "thread_name", "ph": "M", "pid": 1, "tid": 0}, "args"),
        ({"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 0,
          "args": {"value": "high"}}, "numeric"),
        ({"name": "i", "ph": "i", "ts": 0, "pid": 1, "tid": 0, "s": "x"},
         "scope"),
        ("not-an-object", "not an object"),
    ])
    def test_malformed_events_are_flagged(self, check_trace, event,
                                          fragment):
        errors, _ = check_trace.validate({"traceEvents": [event]})
        assert any(fragment in error for error in errors)

    def test_span_track_without_name_metadata_flagged(self, check_trace):
        errors, _ = check_trace.validate({"traceEvents": [
            _span(7, "orphan", 0.0, 1.0),
        ]})
        assert any("thread_name" in error for error in errors)

    def test_rejects_wrong_top_level(self, check_trace):
        errors, _ = check_trace.validate({"events": []})
        assert errors == ["top-level object has no traceEvents list"]
        errors, _ = check_trace.validate("nope")
        assert errors == ["trace must be a JSON object or array"]

    def test_cli_exit_codes(self, check_trace, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(two_track_trace()))
        assert check_trace.main([str(good), "--min-tracks", "2"]) == 0
        assert check_trace.main([str(good), "--min-tracks", "3"]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert check_trace.main([str(bad)]) == 1
        capsys.readouterr()


class TestTraceReport:
    def test_interval_union_and_intersection(self, trace_report):
        union = trace_report._union([(5.0, 9.0), (0.0, 4.0), (3.0, 6.0)])
        assert union == [(0.0, 6.0), (5.0, 9.0)] or \
            union == [(0.0, 9.0)]  # (3,6) bridges into (5,9)
        assert trace_report._total([(0.0, 6.0)]) == 6.0
        assert trace_report._intersect(
            [(0.0, 10.0)], [(5.0, 15.0), (20.0, 25.0)]
        ) == 5.0
        assert trace_report._intersect([(0.0, 1.0)], [(2.0, 3.0)]) == 0.0

    def test_summary_exact_quantities(self, trace_report):
        summary = trace_report.summarize(two_track_trace())
        assert summary["extent_us"] == 120.0
        tracks = {track["name"]: track for track in summary["tracks"]}
        # Main track listed first by convention.
        assert summary["tracks"][0]["name"] == "main-loop"
        assert tracks["main-loop"]["busy_us"] == 120.0
        assert tracks["main-loop"]["utilization"] == pytest.approx(1.0)
        # Nested worker spans union to [50, 110): 60 µs, not 90.
        assert tracks["noise-prefetch"]["busy_us"] == 60.0
        assert tracks["noise-prefetch"]["utilization"] == \
            pytest.approx(0.5)

    def test_hidden_fraction_vs_main_waits(self, trace_report):
        summary = trace_report.summarize(two_track_trace())
        overlap = summary["overlap"]
        worker = overlap["noise-prefetch (tid 0)"]
        # 60 µs busy; [100, 110) overlaps the pipeline_wait span, so
        # 10 µs are exposed and 50 µs hidden.
        assert worker["busy_us"] == 60.0
        assert worker["hidden_us"] == 50.0
        assert worker["hidden_fraction"] == pytest.approx(50.0 / 60.0)
        assert worker["overlap_main_us"] == 60.0

    def test_main_track_found_by_name_not_tid(self, trace_report):
        """The worker holds tid 0 here; the report must not treat it
        as the main loop just because it registered first."""
        summary = trace_report.summarize(two_track_trace())
        assert "main-loop (tid 1)" not in summary.get("overlap", {})
        assert set(summary["overlap"]) == {"noise-prefetch (tid 0)"}

    def test_no_main_track_means_no_overlap_section(self, trace_report):
        summary = trace_report.summarize({"traceEvents": [
            _meta(0, "solo"), _span(0, "work", 0.0, 5.0),
        ]})
        assert "overlap" not in summary
        assert summary["tracks"][0]["busy_us"] == 5.0

    def test_top_spans_aggregate_by_name(self, trace_report):
        payload = {"traceEvents": [
            _meta(0, "main-loop"),
            _span(0, "a", 0.0, 5.0),
            _span(0, "a", 10.0, 7.0),
            _span(0, "b", 20.0, 2.0),
        ]}
        summary = trace_report.summarize(payload, top=1)
        top = summary["tracks"][0]["top_spans"]
        assert top == [{"name": "a", "count": 2, "total_us": 12.0}]

    def test_cli_json_output(self, trace_report, tmp_path, capsys):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(two_track_trace()))
        assert trace_report.main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["extent_us"] == 120.0
        assert trace_report.main([str(path)]) == 0
        assert "hidden fraction" in capsys.readouterr().out
