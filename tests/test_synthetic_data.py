"""Tests for the synthetic click-log dataset."""

import numpy as np
import pytest

from repro import configs
from repro.data import Batch, SkewSpec, SyntheticClickDataset


@pytest.fixture
def config():
    return configs.tiny_dlrm(num_tables=3, rows=128, dim=8, lookups=4)


class TestDeterminism:
    def test_same_seed_same_batch(self, config):
        a = SyntheticClickDataset(config, seed=5).batch(np.arange(10))
        b = SyntheticClickDataset(config, seed=5).batch(np.arange(10))
        np.testing.assert_array_equal(a.sparse, b.sparse)
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seed_differs(self, config):
        a = SyntheticClickDataset(config, seed=5).batch(np.arange(10))
        b = SyntheticClickDataset(config, seed=6).batch(np.arange(10))
        assert not np.array_equal(a.sparse, b.sparse)

    def test_random_access_consistency(self, config):
        """Example 17 looks the same alone or inside any batch."""
        dataset = SyntheticClickDataset(config, seed=7)
        alone = dataset.batch(np.array([17]))
        grouped = dataset.batch(np.array([3, 17, 99]))
        np.testing.assert_array_equal(alone.sparse[0], grouped.sparse[1])
        np.testing.assert_array_equal(alone.dense[0], grouped.dense[1])
        assert alone.labels[0] == grouped.labels[1]


class TestShapesAndRanges:
    def test_batch_shapes(self, config):
        batch = SyntheticClickDataset(config, seed=0).batch(np.arange(6))
        assert batch.dense.shape == (6, config.dense_features)
        assert batch.sparse.shape == (6, 3, 4)
        assert batch.labels.shape == (6,)
        assert batch.size == 6
        assert batch.num_tables == 3
        assert batch.lookups == 4

    def test_indices_in_range(self, config):
        batch = SyntheticClickDataset(config, seed=1).batch(np.arange(200))
        assert batch.sparse.min() >= 0
        assert batch.sparse.max() < 128

    def test_dense_in_unit_interval(self, config):
        batch = SyntheticClickDataset(config, seed=2).batch(np.arange(100))
        assert batch.dense.min() >= -1.0
        assert batch.dense.max() <= 1.0

    def test_labels_binary(self, config):
        batch = SyntheticClickDataset(config, seed=3).batch(np.arange(100))
        assert set(np.unique(batch.labels)).issubset({0.0, 1.0})

    def test_labels_not_degenerate(self, config):
        labels = SyntheticClickDataset(config, seed=4).batch(
            np.arange(500)
        ).labels
        assert 0.05 < labels.mean() < 0.95

    def test_labels_carry_dense_signal(self, config):
        """Labels must correlate with the dense features (learnability)."""
        dataset = SyntheticClickDataset(config, seed=5)
        batch = dataset.batch(np.arange(4000))
        logits = batch.dense @ dataset._label_weights
        positive_rate_high = batch.labels[logits > 0.5].mean()
        positive_rate_low = batch.labels[logits < -0.5].mean()
        assert positive_rate_high > positive_rate_low + 0.2


class TestSkewedTraces:
    def test_uniform_spread(self, config):
        dataset = SyntheticClickDataset(config, seed=8)
        indices = dataset.batch(np.arange(3000)).sparse[:, 0, :].ravel()
        counts = np.bincount(indices, minlength=128)
        # Uniform: max row share should be small.
        assert counts.max() / counts.sum() < 0.03

    def test_zipf_concentrates_mass(self, config):
        skew = SkewSpec(kind="zipf", exponent=1.5)
        dataset = SyntheticClickDataset(config, seed=8, skew=skew)
        indices = dataset.batch(np.arange(3000)).sparse[:, 0, :].ravel()
        counts = np.sort(np.bincount(indices, minlength=128))[::-1]
        top_10pct = counts[:13].sum() / counts.sum()
        assert top_10pct > 0.5

    def test_hot_rows_are_scattered(self, config):
        """The permutation must decouple popularity rank from row id."""
        skew = SkewSpec(kind="zipf", exponent=1.5)
        dataset = SyntheticClickDataset(config, seed=9, skew=skew)
        indices = dataset.batch(np.arange(3000)).sparse[:, 0, :].ravel()
        counts = np.bincount(indices, minlength=128)
        hottest = int(np.argmax(counts))
        assert hottest != 0  # rank-0 should not be row 0 (with high prob.)

    def test_per_table_skew_list(self, config):
        skews = [SkewSpec(), SkewSpec(kind="zipf", exponent=2.0), SkewSpec()]
        dataset = SyntheticClickDataset(config, seed=10, skew=skews)
        batch = dataset.batch(np.arange(2000))
        skewed_counts = np.bincount(batch.sparse[:, 1, :].ravel(), minlength=128)
        uniform_counts = np.bincount(batch.sparse[:, 0, :].ravel(), minlength=128)
        assert skewed_counts.max() > uniform_counts.max() * 2

    def test_wrong_skew_list_length_rejected(self, config):
        with pytest.raises(ValueError):
            SyntheticClickDataset(config, seed=0, skew=[SkewSpec()])


class TestBatchContainer:
    def test_accessed_rows(self, config):
        batch = Batch(
            dense=np.zeros((2, 4)),
            sparse=np.array([[[1, 2], [3, 3], [0, 1]],
                             [[2, 2], [3, 4], [1, 1]]]),
            labels=np.zeros(2),
        )
        np.testing.assert_array_equal(batch.accessed_rows(0), [1, 2])
        np.testing.assert_array_equal(batch.accessed_rows(1), [3, 4])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Batch(dense=np.zeros((2, 4)), sparse=np.zeros((2, 3)),
                  labels=np.zeros(2))
        with pytest.raises(ValueError):
            Batch(dense=np.zeros((2, 4)), sparse=np.zeros((3, 1, 1)),
                  labels=np.zeros(2))
