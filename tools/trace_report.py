#!/usr/bin/env python
"""Summarize a ``repro.obs`` Chrome trace: tracks, top spans, overlap.

Reads the trace-event JSON a traced run writes (CLI ``--trace``,
``TrainSession.save_trace``) and reports, per thread track, the span
count, busy time (union of span intervals, so nested spans are not
double-counted), utilization over the trace extent, and the top spans
by aggregate duration.  For worker tracks it also computes the *hidden
fraction*: the share of the worker's busy time that did **not** overlap
the main loop's exposed waits (``pipeline_wait`` / ``staleness_wait``
spans) — the trace-derived counterpart of
``pipeline_stats()["hidden_fraction"]``, which
``benchmarks/bench_pipeline_overlap.py`` measures from timers.

The main track is found by its exported *name* (``main-loop``), never
by tid: worker threads can register with the tracer before the main
thread does, so track order and tid assignment are not meaningful.

Standalone on purpose — stdlib only, no ``repro`` imports — so it can
run against an artifact trace without the package on the path.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The exported name of the training loop's track (see
#: repro.obs.tracer._THREAD_NAME_ALIASES).
MAIN_TRACK_NAME = "main-loop"

#: Main-loop span names that represent *exposed* waiting on a worker.
#: Worker busy time overlapping these spans did not hide anything.
WAIT_SPAN_NAMES = ("pipeline_wait", "staleness_wait")


def _union(intervals: list) -> list:
    """Merge overlapping ``(start, end)`` intervals (sorted output)."""
    merged: list = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _total(intervals: list) -> float:
    return sum(end - start for start, end in intervals)


def _intersect(a: list, b: list) -> float:
    """Total overlap between two *merged* interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def summarize(payload, top: int = 5) -> dict:
    """Structured summary of a parsed trace payload.

    Returns ``{"extent_us", "tracks": [...], "overlap": {...}}`` where
    each track entry has ``name``, ``tid``, ``spans``, ``busy_us``,
    ``utilization`` and ``top_spans`` (name, count, total_us), and
    ``overlap`` (present when a main track and at least one worker
    track exist) maps worker names to
    ``{"busy_us", "overlap_main_us", "hidden_us", "hidden_fraction"}``.
    """
    events = payload.get("traceEvents", payload) if \
        isinstance(payload, dict) else payload
    names: dict = {}
    spans: dict = {}
    for event in events:
        if not isinstance(event, dict):
            continue
        key = (event.get("pid"), event.get("tid"))
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[key] = event.get("args", {}).get("name", f"tid {key[1]}")
        elif event.get("ph") == "X":
            start = float(event["ts"])
            spans.setdefault(key, []).append(
                (event.get("name", "?"), start, start + float(event["dur"]))
            )

    starts = [s for track in spans.values() for _, s, _ in track]
    ends = [e for track in spans.values() for _, _, e in track]
    extent = (max(ends) - min(starts)) if starts else 0.0

    tracks = []
    busy_by_key: dict = {}
    for key, track_spans in spans.items():
        busy = _union([(s, e) for _, s, e in track_spans])
        busy_by_key[key] = busy
        by_name: dict = {}
        for name, start, end in track_spans:
            count, total = by_name.get(name, (0, 0.0))
            by_name[name] = (count + 1, total + (end - start))
        top_spans = sorted(
            by_name.items(), key=lambda item: -item[1][1]
        )[:top]
        tracks.append({
            "name": names.get(key, f"tid {key[1]}"),
            "tid": key[1],
            "spans": len(track_spans),
            "busy_us": _total(busy),
            "utilization": (_total(busy) / extent) if extent else 0.0,
            "top_spans": [
                {"name": name, "count": count, "total_us": total}
                for name, (count, total) in top_spans
            ],
        })
    tracks.sort(key=lambda t: (t["name"] != MAIN_TRACK_NAME, t["name"]))

    summary = {"extent_us": extent, "tracks": tracks}
    main_keys = [k for k in spans if names.get(k) == MAIN_TRACK_NAME]
    if main_keys:
        main_key = main_keys[0]
        main_busy = busy_by_key[main_key]
        waits = _union([
            (s, e) for name, s, e in spans[main_key]
            if name in WAIT_SPAN_NAMES
        ])
        overlap: dict = {}
        for key, busy in busy_by_key.items():
            if key == main_key or not busy:
                continue
            busy_total = _total(busy)
            exposed = _intersect(busy, waits)
            overlap[f"{names.get(key, key[1])} (tid {key[1]})"] = {
                "busy_us": busy_total,
                "overlap_main_us": _intersect(busy, main_busy),
                "hidden_us": busy_total - exposed,
                "hidden_fraction": (
                    (busy_total - exposed) / busy_total
                ),
            }
        if overlap:
            summary["overlap"] = overlap
    return summary


def _format_report(summary: dict) -> str:
    lines = [f"trace extent: {summary['extent_us'] / 1e3:.2f} ms"]
    for track in summary["tracks"]:
        lines.append("")
        lines.append(f"track {track['name']} (tid {track['tid']}): "
                     f"{track['spans']} spans, "
                     f"busy {track['busy_us'] / 1e3:.2f} ms, "
                     f"utilization {track['utilization']:.1%}")
        for span in track["top_spans"]:
            lines.append(f"  {span['name']:<24} x{span['count']:<5} "
                         f"{span['total_us'] / 1e3:.3f} ms")
    overlap = summary.get("overlap")
    if overlap:
        lines.append("")
        lines.append("worker overlap vs main loop:")
        for name, stats in sorted(overlap.items()):
            lines.append(
                f"  {name}: busy {stats['busy_us'] / 1e3:.2f} ms, "
                f"overlaps main {stats['overlap_main_us'] / 1e3:.2f} ms, "
                f"hidden fraction {stats['hidden_fraction']:.1%}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace JSON file")
    parser.add_argument("--top", type=int, default=5,
                        help="top spans per track (default: 5)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    args = parser.parse_args(argv)
    try:
        with open(args.trace, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"ERROR: {args.trace}: {error}", file=sys.stderr)
        return 1
    summary = summarize(payload, top=args.top)
    if args.json:
        json.dump(summary, sys.stdout, indent=2)
        print()
    else:
        print(_format_report(summary))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
