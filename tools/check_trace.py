#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file produced by ``repro.obs``.

Checks that the file parses, that every event carries the keys its
phase requires (``X`` complete events need numeric non-negative
``ts``/``dur`` plus ``pid``/``tid``; ``M`` metadata events need an
``args`` dict; ``C`` counters need numeric args; ``i`` instants need a
scope), and that at least ``--min-tracks`` distinct threads recorded
span events.  Used by the CI ``trace-smoke`` job to gate the traces the
traced smoke runs emit; standalone on purpose (stdlib only, no
``repro`` imports) so it exercises the on-disk format rather than the
in-memory objects that wrote it.

Exit code 0 when the trace is well-formed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys

#: Phases repro.obs emits. Anything else is flagged — the validator is
#: a format pin, not a general Chrome-trace linter.
KNOWN_PHASES = ("X", "M", "C", "i")


def _is_number(value) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _check_complete(event, where: str, errors: list) -> None:
    for key in ("name", "ts", "dur", "pid", "tid"):
        if key not in event:
            errors.append(f"{where}: X event missing {key!r}")
            return
    if not isinstance(event["name"], str) or not event["name"]:
        errors.append(f"{where}: X event name must be a non-empty string")
    for key in ("ts", "dur"):
        if not _is_number(event[key]) or event[key] < 0:
            errors.append(f"{where}: X event {key!r} must be a "
                          f"non-negative number, got {event[key]!r}")
    args = event.get("args")
    if args is not None and not isinstance(args, dict):
        errors.append(f"{where}: X event args must be a dict when present")


def _check_metadata(event, where: str, errors: list) -> None:
    if not isinstance(event.get("args"), dict):
        errors.append(f"{where}: M event needs an args dict")
        return
    if event.get("name") == "thread_name":
        name = event["args"].get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: thread_name metadata needs a "
                          "non-empty args.name")


def _check_counter(event, where: str, errors: list) -> None:
    args = event.get("args")
    if not isinstance(args, dict) or not args:
        errors.append(f"{where}: C event needs a non-empty args dict")
        return
    for key, value in args.items():
        if not _is_number(value):
            errors.append(f"{where}: C event series {key!r} must be "
                          f"numeric, got {value!r}")
    if not _is_number(event.get("ts")):
        errors.append(f"{where}: C event needs a numeric ts")


def _check_instant(event, where: str, errors: list) -> None:
    if not _is_number(event.get("ts")):
        errors.append(f"{where}: i event needs a numeric ts")
    if event.get("s") not in ("t", "p", "g"):
        errors.append(f"{where}: i event scope must be t/p/g, "
                      f"got {event.get('s')!r}")


def validate(payload, min_tracks: int = 1) -> tuple:
    """Validate a parsed trace payload.

    Accepts both the object form (``{"traceEvents": [...]}``) and the
    bare JSON-array form — chrome://tracing loads either.  Returns
    ``(errors, stats)`` where ``stats`` has ``events``, ``span_events``,
    ``tracks`` (distinct tids with span events) and ``track_names``.
    """
    errors: list = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return (["top-level object has no traceEvents list"], {})
    elif isinstance(payload, list):
        events = payload
    else:
        return (["trace must be a JSON object or array"], {})

    span_tids: set = set()
    names_by_tid: dict = {}
    span_events = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "X":
            _check_complete(event, where, errors)
            if "tid" in event:
                span_tids.add((event.get("pid"), event["tid"]))
                span_events += 1
        elif phase == "M":
            _check_metadata(event, where, errors)
            if event.get("name") == "thread_name" and \
                    isinstance(event.get("args"), dict):
                names_by_tid[(event.get("pid"), event.get("tid"))] = \
                    event["args"].get("name")
        elif phase == "C":
            _check_counter(event, where, errors)
        elif phase == "i":
            _check_instant(event, where, errors)

    if len(span_tids) < min_tracks:
        errors.append(f"expected at least {min_tracks} thread tracks "
                      f"with span events, found {len(span_tids)}")
    for key in span_tids:
        if key not in names_by_tid:
            errors.append(f"track pid/tid {key} has span events but no "
                          "thread_name metadata")
    stats = {
        "events": len(events),
        "span_events": span_events,
        "tracks": len(span_tids),
        "track_names": sorted(
            str(names_by_tid[key]) for key in span_tids
            if key in names_by_tid
        ),
    }
    return errors, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="+", help="trace JSON file(s)")
    parser.add_argument("--min-tracks", type=int, default=1,
                        help="minimum distinct threads that must have "
                             "recorded span events (default: 1)")
    args = parser.parse_args(argv)
    failed = False
    for path in args.trace:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"ERROR: {path}: {error}", file=sys.stderr)
            failed = True
            continue
        errors, stats = validate(payload, min_tracks=args.min_tracks)
        for error in errors[:20]:
            print(f"ERROR: {path}: {error}", file=sys.stderr)
        if len(errors) > 20:
            print(f"ERROR: {path}: ... and {len(errors) - 20} more",
                  file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: OK — {stats['events']} events, "
                  f"{stats['span_events']} spans across "
                  f"{stats['tracks']} tracks "
                  f"({', '.join(stats['track_names'])})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
