#!/usr/bin/env python
"""Check that internal markdown links in docs/ (and README.md) resolve.

Walks every ``[text](target)`` link in the checked files, skips external
targets (``http(s)://``, ``mailto:``), and verifies that relative
targets — with any ``#anchor`` stripped — point at an existing file or
directory relative to the file containing the link.  Anchors into other
files are checked against that file's headings (GitHub-style slugs).

Exit code 0 when every link resolves, 1 otherwise (used by the CI docs
job).  No third-party dependencies.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Files and directories whose markdown gets checked.
CHECKED = ("README.md", "docs")

#: [text](target) — ignores images' leading "!" (checked the same way)
#: and stops at the first closing paren (no nested-paren targets here).
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def markdown_files() -> list:
    files = []
    for entry in CHECKED:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, strip most
    punctuation (close enough for the headings used in this repo)."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {github_slug(match) for match in HEADING_PATTERN.findall(text)}


def check_file(path: pathlib.Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        if not base:
            # Same-file anchor.
            if anchor and github_slug(anchor) not in anchors_of(path):
                errors.append(f"{path.relative_to(REPO_ROOT)}: "
                              f"broken anchor #{anchor}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: "
                          f"broken link {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_of(resolved):
                errors.append(f"{path.relative_to(REPO_ROOT)}: "
                              f"broken anchor {target}")
    return errors


def main() -> int:
    files = markdown_files()
    if not files:
        print("no markdown files found to check", file=sys.stderr)
        return 1
    errors = []
    checked_links = 0
    for path in files:
        checked_links += len(LINK_PATTERN.findall(
            path.read_text(encoding="utf-8")
        ))
        errors.extend(check_file(path))
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    print(f"checked {len(files)} files, {checked_links} links: "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
