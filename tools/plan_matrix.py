"""Plan-matrix smoke: every legacy-equivalent plan builds and steps.

For each legacy algorithm string, map it to its ExecutionPlan
(:func:`repro.session.plan_for_algorithm`), check both serialization
round trips, build a trainer through ``TrainSession.build``, and run a
short fit (one lookahead step plus the terminal flush) at a tiny
geometry.  Then iterate the execution-backend *registry*
(:func:`repro.session.available_backends`) and smoke one plan per
registered backend, so a backend someone registers — or one of the
built-ins — cannot silently stop composing with the session facade.
Backends whose optional dependency is missing in this environment
(e.g. ``numba`` without the ``[numba]`` extra) are reported and
skipped, not failed — their plans *must* raise a PlanError naming the
reason, which the skip path asserts.
CI runs this as the ``plan-matrix`` step so a plan that stops composing
— or stops round-tripping — fails fast, independently of the (slower)
tier-1 equivalence matrix.

Run:  PYTHONPATH=src python tools/plan_matrix.py
      PYTHONPATH=src python tools/plan_matrix.py --backends   # registry table
"""

import sys


def _backend_smoke_plan(name):
    """A minimal plan exercising one registered backend."""
    from repro.session import ExecutionPlan, backend_info

    info = backend_info(name)
    if info.supports("shards"):
        return ExecutionPlan.from_spec(f"shards=2,backend={name}")
    return ExecutionPlan.from_spec(f"backend={name}")


def print_backends() -> int:
    """Print the backend registry table (same surface as `repro backends`)."""
    from repro.session import available_backends, backend_info

    rows = []
    for name in available_backends():
        info = backend_info(name)
        ok, reason = info.available()
        capabilities = ",".join(
            c for c in ("flat", "shards", "pipeline", "async", "workers")
            if info.supports(c)
        )
        rows.append((name, capabilities, info.kernels,
                     "yes" if ok else "NO",
                     info.description if ok else reason))
    widths = [max(len(str(row[i])) for row in rows) for i in range(4)]
    for row in rows:
        print(f"{row[0]:{widths[0]}s}  {row[1]:{widths[1]}s}  "
              f"{row[2]:{widths[2]}s}  {row[3]:{widths[3]}s}  {row[4]}")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--backends" in argv:
        return print_backends()

    from repro import configs
    from repro.nn import DLRM
    from repro.session import (
        ExecutionPlan,
        LEGACY_ALGORITHMS,
        PlanError,
        TrainSession,
        available_backends,
        backend_info,
        plan_for_algorithm,
    )
    from repro.testing import make_loader
    from repro.train import DPConfig

    config = configs.tiny_dlrm(num_tables=2, rows=48, dim=8, lookups=2)
    dp = DPConfig()
    failures = 0
    skipped = 0
    for algorithm in sorted(LEGACY_ALGORITHMS):
        try:
            plan, extras = plan_for_algorithm(algorithm)
            assert extras == {}, f"unexpected extras: {extras}"
            assert ExecutionPlan.from_dict(plan.to_dict()) == plan
            assert ExecutionPlan.from_spec(plan.to_spec()) == plan
            assert plan.legacy_name() == algorithm
            with TrainSession.build(DLRM(config, seed=7), dp, plan,
                                    noise_seed=99) as session:
                result = session.fit(
                    make_loader(config, batch_size=16, num_batches=2)
                )
                assert result.iterations == 2, result.iterations
                assert result.algorithm == algorithm, result.algorithm
            print(f"ok   {algorithm:35s} -> {plan.canonical()}")
        except Exception as error:  # noqa: BLE001 - smoke surface
            failures += 1
            print(f"FAIL {algorithm:35s} -> {error!r}", file=sys.stderr)
    for name in available_backends():
        ok, reason = backend_info(name).available()
        if not ok:
            # Unavailable here: the only acceptable behavior is a
            # PlanError naming the reason at plan validation.
            try:
                _backend_smoke_plan(name)
            except PlanError as error:
                skipped += 1
                print(f"skip backend:{name:27s} -> {error}")
                continue
            failures += 1
            print(f"FAIL backend:{name:27s} -> unavailable backend "
                  "validated without a PlanError", file=sys.stderr)
            continue
        try:
            plan = _backend_smoke_plan(name)
            assert ExecutionPlan.from_spec(plan.to_spec()) == plan
            with TrainSession.build(DLRM(config, seed=7), dp, plan,
                                    noise_seed=99) as session:
                result = session.fit(
                    make_loader(config, batch_size=16, num_batches=2)
                )
                assert result.iterations == 2, result.iterations
            print(f"ok   backend:{name:27s} -> {plan.canonical()}")
        except Exception as error:  # noqa: BLE001 - smoke surface
            failures += 1
            print(f"FAIL backend:{name:27s} -> {error!r}", file=sys.stderr)
    if failures:
        print(f"{failures} plan(s) failed", file=sys.stderr)
        return 1
    print(f"\nplan matrix: {len(LEGACY_ALGORITHMS)} legacy-equivalent "
          f"plans and {len(available_backends()) - skipped} of "
          f"{len(available_backends())} registered backends built, "
          f"stepped and round-tripped ({skipped} unavailable here)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
