"""Shared machinery for the figure benchmarks.

Each ``bench_figXX`` module does two things:

1. **Measured mode** — pytest-benchmark times real numpy training steps /
   kernels at a scaled-down geometry, demonstrating the paper's effects
   with live measurements.
2. **Model mode** — the calibrated performance model regenerates the
   figure's series at the paper's full scale; the paper-vs-reproduced
   table is printed (visible with ``pytest -s``) and persisted under
   ``benchmarks/reports/`` so results survive output capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import configs
from repro.testing import trainer_for
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.train import DPConfig

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/reports/."""
    print()
    print(text)
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


class SteppableRun:
    """A pre-warmed trainer whose ``step`` can be benchmarked repeatedly.

    The model, dataset and lookahead batches are built outside the timed
    region; every ``step`` call advances the iteration counter so LazyDP's
    HistoryTable semantics stay valid across benchmark rounds.
    """

    def __init__(
        self,
        algorithm: str,
        config,
        batch: int = 128,
        seed: int = 21,
        dp: DPConfig | None = None,
        pool_batches: int = 8,
    ):
        self.model = DLRM(config, seed=seed)
        dataset = SyntheticClickDataset(config, seed=seed + 1)
        loader = DataLoader(
            dataset, batch_size=batch, num_batches=pool_batches, seed=seed + 2
        )
        self.batches = [loader.batch_for(i) for i in range(pool_batches)]
        self.trainer = trainer_for(
            algorithm, self.model, dp or DPConfig(), noise_seed=seed + 3
        )
        self.trainer.expected_batch_size = batch
        self.iteration = 0

    def step(self) -> float:
        current = self.batches[self.iteration % len(self.batches)]
        upcoming = self.batches[(self.iteration + 1) % len(self.batches)]
        self.iteration += 1
        return self.trainer.train_step(self.iteration, current, upcoming)


@pytest.fixture
def bench_config():
    """Default scaled geometry for measured-mode benchmarks."""
    return configs.small_dlrm(rows=20000)


@pytest.fixture
def tiny_bench_config():
    return configs.small_dlrm(rows=4000)
