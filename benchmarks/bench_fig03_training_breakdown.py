"""Figure 3: SGD vs DP-SGD(B/R/F) training time across table sizes.

Measured mode benchmarks one full training step of each eager DP-SGD
variant at a scaled geometry (the dense noisy update already dominates);
model mode regenerates the paper's 96 MB - 96 GB sweep.
"""

from repro import configs
from repro.bench.experiments import figure3

from conftest import SteppableRun, emit_report


def test_fig3_report_model_scale(benchmark):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    emit_report("fig03_training_breakdown", result.table())
    # Structure assertions straight from the paper's text.
    b96mb, r96mb, f96mb = (result.reproduced[a][0]
                           for a in ("dpsgd_b", "dpsgd_r", "dpsgd_f"))
    assert b96mb > r96mb > f96mb
    spread_96gb = (result.reproduced["dpsgd_b"][-1]
                   / result.reproduced["dpsgd_f"][-1])
    assert spread_96gb < 1.05


def test_fig3_step_sgd(benchmark, bench_config):
    run = SteppableRun("sgd", bench_config)
    benchmark(run.step)


def test_fig3_step_dpsgd_b(benchmark, tiny_bench_config):
    # DP-SGD(B) materialises per-example dense grads; keep it small.
    run = SteppableRun("dpsgd_b", tiny_bench_config, batch=64)
    benchmark.pedantic(run.step, rounds=3, iterations=1)


def test_fig3_step_dpsgd_r(benchmark, tiny_bench_config):
    run = SteppableRun("dpsgd_r", tiny_bench_config, batch=64)
    benchmark.pedantic(run.step, rounds=3, iterations=1)


def test_fig3_step_dpsgd_f(benchmark, tiny_bench_config):
    run = SteppableRun("dpsgd_f", tiny_bench_config, batch=64)
    benchmark.pedantic(run.step, rounds=3, iterations=1)


def test_fig3_table_size_scaling_measured(benchmark):
    """One DP-SGD(F) step at 4x the rows takes ~4x the model-update time."""
    small = SteppableRun("dpsgd_f", configs.small_dlrm(rows=5000), batch=64)
    large = SteppableRun("dpsgd_f", configs.small_dlrm(rows=20000), batch=64)

    def both():
        small.step()
        large.step()

    benchmark.pedantic(both, rounds=2, iterations=1)
    small_update = small.trainer.timer.model_update_total()
    large_update = large.trainer.timer.model_update_total()
    assert large_update > 2.0 * small_update
