"""Figure 13(c): alternative DLRM configurations RMC1-RMC3.

Measured mode steps LazyDP and DP-SGD(F) on scaled-down versions of each
RMC geometry; model mode regenerates the paper-scale comparison.
"""

from dataclasses import replace

from repro import configs
from repro.bench.experiments import figure13c

from conftest import SteppableRun, emit_report


def _scaled(config, rows=6000):
    return replace(
        config,
        table_rows=(rows,) * config.num_tables,
        name=f"{config.name}-scaled",
    )


def test_fig13c_report_model_scale(benchmark):
    result = benchmark.pedantic(figure13c, rounds=1, iterations=1)
    emit_report("fig13c_model_configs", result.table())
    dpsgd = dict(zip(result.labels, result.reproduced["dpsgd_f"]))
    # Paper ordering: RMC3 slowest (huge tables), RMC2 mildest (pooling
    # inflates its SGD baseline).
    assert dpsgd["rmc3"] > dpsgd["rmc1"] > dpsgd["rmc2"]


def test_fig13c_step_rmc1_lazydp(benchmark):
    run = SteppableRun("lazydp", _scaled(configs.rmc1()), batch=64)
    benchmark(run.step)


def test_fig13c_step_rmc2_lazydp(benchmark):
    run = SteppableRun("lazydp", _scaled(configs.rmc2(), rows=3000), batch=32)
    benchmark.pedantic(run.step, rounds=3, iterations=1)


def test_fig13c_step_rmc3_lazydp(benchmark):
    run = SteppableRun("lazydp", _scaled(configs.rmc3()), batch=64)
    benchmark(run.step)


def test_fig13c_lazydp_beats_dpsgd_measured(benchmark):
    import time

    config = _scaled(configs.rmc1(), rows=12000)
    lazy = SteppableRun("lazydp", config, batch=64)
    eager = SteppableRun("dpsgd_f", config, batch=64)

    def run_both():
        start = time.perf_counter()
        lazy.step()
        lazy_s = time.perf_counter() - start
        start = time.perf_counter()
        eager.step()
        return lazy_s, time.perf_counter() - start

    lazy_s, eager_s = benchmark.pedantic(run_both, rounds=3, iterations=1)
    assert eager_s > 2 * lazy_s
