"""Section 7.2: LazyDP's metadata overheads and their runtime cost.

Reproduces the paper's arithmetic — 213 KB input queue, 751 MB
HistoryTable (<1% of the model) — and benchmarks the HistoryTable's
read-modify-write path, which the paper keeps off the critical path by
touching only sparsely-accessed entries.
"""

import numpy as np

from repro.bench.experiments import section72
from repro.lazydp import HistoryTable

from conftest import emit_report


def test_sec72_report(benchmark):
    result = benchmark.pedantic(section72, rounds=1, iterations=1)
    emit_report("sec72_overheads", result.table())
    queue, history, fraction = result.reproduced["overheads"]
    assert abs(queue - 213e3) / 213e3 < 0.01
    assert abs(history - 751e6) / 751e6 < 0.01
    assert fraction < 0.01


def test_sec72_history_delay_computation(benchmark):
    table = HistoryTable(1_000_000)
    rows = np.random.default_rng(0).choice(1_000_000, size=53248,
                                           replace=False)
    state = {"iteration": 1}

    def delays_and_update():
        iteration = state["iteration"]
        delays = table.delays(rows, iteration)
        table.mark_updated(rows, iteration)
        state["iteration"] += 1
        return delays

    benchmark(delays_and_update)


def test_sec72_history_scales_with_access_not_table(benchmark):
    """Reading 53k entries of a 10M-row table costs the same as of a 1M-row
    table: the naive dense-counter design the paper rejects would not."""
    import time

    small = HistoryTable(1_000_000)
    large = HistoryTable(10_000_000)
    rows = np.random.default_rng(1).choice(1_000_000, size=53248,
                                           replace=False)

    def measure():
        start = time.perf_counter()
        small.delays(rows, 5)
        small_s = time.perf_counter() - start
        start = time.perf_counter()
        large.delays(rows, 5)
        return small_s, time.perf_counter() - start

    small_s, large_s = benchmark.pedantic(measure, rounds=5, iterations=1)
    assert large_s < 5 * small_s
