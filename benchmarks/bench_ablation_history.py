"""Ablation: HistoryTable design (paper Section 5.2.1).

Algorithm 1 explicitly rejects a per-row pending counter because
incrementing it for every non-accessed row is a dense write per
iteration.  This benchmark implements both designs and measures what the
paper argues: the naive counter's per-iteration cost scales with *table
size*, the iteration-ID design's with the *access footprint*.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.lazydp.history import HistoryTable, NaiveCounterHistory

from conftest import emit_report

ACCESSED = 53248  # the default config's per-iteration footprint (2048 x 26)


def _rows(num_rows, seed=0):
    return np.random.default_rng(seed).choice(
        num_rows, size=ACCESSED, replace=False
    )


def _smart_iteration(table: HistoryTable, rows, iteration):
    delays = table.delays(rows, iteration)
    table.mark_updated(rows, iteration)
    return delays


def _naive_iteration(table: NaiveCounterHistory, rows):
    table.advance_iteration()              # dense write over the table
    delays = table.delays(rows, table._iteration)
    table.mark_updated(rows, table._iteration)
    return delays


def test_ablation_smart_history_1m(benchmark):
    table = HistoryTable(1_000_000)
    rows = _rows(1_000_000)
    state = {"iteration": 0}

    def step():
        state["iteration"] += 1
        return _smart_iteration(table, rows, state["iteration"])

    benchmark(step)


def test_ablation_naive_history_1m(benchmark):
    table = NaiveCounterHistory(1_000_000)
    rows = _rows(1_000_000)
    benchmark(lambda: _naive_iteration(table, rows))


def test_ablation_naive_history_16m(benchmark):
    table = NaiveCounterHistory(16_000_000)
    rows = _rows(16_000_000)
    benchmark.pedantic(lambda: _naive_iteration(table, rows), rounds=5,
                       iterations=1)


def test_ablation_history_scaling_report(benchmark):
    """The paper's claim, measured: naive scales with rows, smart doesn't."""
    import time

    sizes = (1_000_000, 4_000_000, 16_000_000)

    def measure():
        results = []
        for num_rows in sizes:
            rows = _rows(num_rows)
            smart = HistoryTable(num_rows)
            naive = NaiveCounterHistory(num_rows)
            # Warm-up: fault in the lazily-allocated tables so the timed
            # region measures steady-state access, not first-touch paging.
            _smart_iteration(smart, rows, 1)
            _naive_iteration(naive, rows)
            start = time.perf_counter()
            for iteration in range(2, 10):
                _smart_iteration(smart, rows, iteration)
            smart_s = (time.perf_counter() - start) / 8
            start = time.perf_counter()
            for _ in range(8):
                _naive_iteration(naive, rows)
            naive_s = (time.perf_counter() - start) / 8
            results.append((num_rows, smart_s, naive_s))
        return results

    results = benchmark.pedantic(measure, rounds=2, iterations=1)
    rows_out = [
        [f"{num_rows/1e6:g}M rows", smart_s * 1e3, naive_s * 1e3,
         naive_s / smart_s]
        for num_rows, smart_s, naive_s in results
    ]
    emit_report(
        "ablation_history",
        format_table(
            ["table size", "iteration-ID ms", "naive-counter ms",
             "naive/smart"],
            rows_out,
            title="Ablation: HistoryTable design (per-iteration cost)",
        ),
    )
    naive_growth = results[-1][2] / results[0][2]
    # Naive cost scales with the table; at the largest size it must be
    # several times the iteration-ID design's (which stays ~flat).
    assert naive_growth > 2.5
    assert results[-1][2] > 2.5 * results[-1][1]
