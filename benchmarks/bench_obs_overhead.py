"""Observability overhead benchmark: tracing must be free when off.

Three claims, all load-bearing for ``repro.obs``:

* **Disabled overhead < 2%** — the StageTimer tracer adapter with no
  tracer bound costs (per event, measured against a seed-style
  reference timer with the identical accumulation arithmetic) so
  little that a whole smoke run's worth of events stays under 2% of
  that run's wall time.
* **Bitwise equivalence** — a traced run produces exactly the same
  model parameters as an untraced run: observation never perturbs the
  noise schedule or update order.
* **Trace/timer agreement** — the hidden fraction derived from the
  exported trace (``tools/trace_report.py``, interval intersection of
  worker busy spans with the main loop's ``pipeline_wait`` spans)
  agrees with the timer-derived ``pipeline_stats()["hidden_fraction"]``
  within 10 points: the two instrumentation paths see the same
  pipeline.

Runs under pytest (``pytest benchmarks/bench_obs_overhead.py``) and as
a plain script (``python benchmarks/bench_obs_overhead.py [--smoke]``)
for the CI trace-smoke step.
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys
import time
from contextlib import contextmanager

import numpy as np

from repro import configs
from repro.bench.reporting import format_table
from repro.configs import ObservabilityConfig, PipelineConfig
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.session import ExecutionPlan, TrainSession
from repro.train import DPConfig
from repro.train.common import StageTimer

#: The acceptance bound on the disabled-path overhead fraction.
MAX_DISABLED_OVERHEAD = 0.02

#: Trace-derived and timer-derived hidden fractions must agree this
#: closely (absolute, both live in [0, 1]).
MAX_HIDDEN_FRACTION_GAP = 0.10

_TRACE_REPORT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "tools" / "trace_report.py"
)


def _load_trace_report():
    spec = importlib.util.spec_from_file_location(
        "trace_report", _TRACE_REPORT_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def timer_overhead_per_event(calls: int = 50_000) -> float:
    """Per-event cost (seconds) the tracer adapter adds over the seed
    timer, measured with no tracer bound — the disabled path every
    un-instrumented run takes."""
    timer = StageTimer()
    start = time.perf_counter()
    for _ in range(calls):
        with timer.time("stage"):
            pass
    adapter_seconds = time.perf_counter() - start

    totals: dict = {}

    @contextmanager
    def reference(stage):
        # The seed-era timer body: one clock read on entry, one on
        # exit, dict accumulate.  Identical arithmetic, no tracer hook.
        begin = time.perf_counter()
        try:
            yield
        finally:
            totals[stage] = totals.get(stage, 0.0) + (
                time.perf_counter() - begin
            )

    start = time.perf_counter()
    for _ in range(calls):
        with reference("stage"):
            pass
    reference_seconds = time.perf_counter() - start
    return max(adapter_seconds - reference_seconds, 0.0) / calls


def _train(config, *, obs, depth=2, batch=64, iterations=6, seed=11):
    """One pipelined run; returns (session, result, wall_seconds)."""
    model = DLRM(config, seed=seed)
    dataset = SyntheticClickDataset(config, seed=seed + 1)
    loader = DataLoader(dataset, batch_size=batch, num_batches=iterations,
                        seed=seed + 2)
    plan = ExecutionPlan(
        pipeline=PipelineConfig(enabled=True, prefetch_depth=depth),
        obs=obs,
    )
    session = TrainSession.build(model, DPConfig(), plan,
                                 noise_seed=seed + 3)
    start = time.perf_counter()
    result = session.fit(loader)
    wall = time.perf_counter() - start
    session.close()
    return session, result, wall


def overhead_sweep(rows=2000, batch=64, iterations=6):
    """Measure all three claims once.

    Returns ``(metrics, max_diff, snapshot)``: the report metrics, the
    worst traced-vs-untraced parameter difference (must be exactly
    0.0), and the traced run's metrics snapshot (embedded in the
    artifact's meta).
    """
    config = configs.small_dlrm(rows=rows)
    off_session, off_result, off_wall = _train(
        config, obs=None, batch=batch, iterations=iterations
    )
    reference = {
        name: param.data.copy()
        for name, param in off_session.model.parameters().items()
    }

    traced_session, traced_result, traced_wall = _train(
        config, obs=ObservabilityConfig(trace=True, metrics=True),
        batch=batch, iterations=iterations,
    )
    max_diff = max(
        float(np.max(np.abs(param.data - reference[name])))
        for name, param in traced_session.model.parameters().items()
    )
    obs = traced_session.observability
    events = obs.tracer.events_recorded

    per_event = timer_overhead_per_event()
    disabled_overhead = (per_event * events) / off_wall if off_wall else 0.0

    trace_report = _load_trace_report()
    summary = trace_report.summarize(obs.export_trace())
    trace_hidden = [
        stats["hidden_fraction"]
        for name, stats in summary.get("overlap", {}).items()
        if name.startswith("noise-prefetch")
    ]
    timer_hidden = traced_session.trainer.pipeline_stats()["hidden_fraction"]
    hidden_gap = (
        abs(trace_hidden[0] - timer_hidden) if trace_hidden else 1.0
    )

    metrics = {
        "disabled_overhead_fraction": disabled_overhead,
        "adapter_ns_per_event": per_event * 1e9,
        "events_per_run": float(events),
        "traced_wall_ratio": traced_wall / off_wall if off_wall else 1.0,
        "timer_hidden_fraction": timer_hidden,
        "trace_hidden_fraction": trace_hidden[0] if trace_hidden else -1.0,
        "hidden_fraction_gap": hidden_gap,
    }
    assert off_result.stage_times.keys() == traced_result.stage_times.keys()
    return metrics, max_diff, obs.metrics.snapshot()


def overhead_sweep_with_retry(retries: int = 2, **kwargs):
    """Run the sweep, retrying the wall-clock-dependent checks.

    ``max_diff`` is deterministic and never retried.  The overhead
    fraction and the trace/timer hidden-fraction gap are scheduling
    properties: a loaded runner can starve the prefetch worker or
    inflate one microbench leg.  A clean re-run separates that noise
    from a real regression (which fails every time).
    """
    metrics, max_diff, snapshot = overhead_sweep(**kwargs)
    for _ in range(retries):
        if max_diff != 0.0:
            break
        if (metrics["disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD
                and metrics["hidden_fraction_gap"] <= MAX_HIDDEN_FRACTION_GAP):
            break
        metrics, max_diff, snapshot = overhead_sweep(**kwargs)
    return metrics, max_diff, snapshot


def run_report(smoke: bool = False) -> int:
    import _jsonreport

    iterations = 4 if smoke else 8
    rows = 2000 if smoke else 4000
    metrics, max_diff, snapshot = overhead_sweep_with_retry(
        rows=rows, iterations=iterations
    )
    print(format_table(
        ["metric", "value"],
        [
            ["adapter cost (ns/event)",
             f"{metrics['adapter_ns_per_event']:.0f}"],
            ["events per run", f"{metrics['events_per_run']:.0f}"],
            ["disabled overhead",
             f"{metrics['disabled_overhead_fraction']:.3%}"],
            ["traced wall ratio", f"{metrics['traced_wall_ratio']:.2f}x"],
            ["hidden fraction (timer)",
             f"{metrics['timer_hidden_fraction']:.1%}"],
            ["hidden fraction (trace)",
             f"{metrics['trace_hidden_fraction']:.1%}"],
            ["agreement gap", f"{metrics['hidden_fraction_gap']:.3f}"],
        ],
        title=f"observability overhead ({rows} rows/table, "
              f"{iterations} iterations)",
    ))
    if max_diff != 0.0:
        print(f"ERROR: traced model diverged from untraced by {max_diff}",
              file=sys.stderr)
        return 1
    if metrics["disabled_overhead_fraction"] >= MAX_DISABLED_OVERHEAD:
        print("ERROR: disabled-observability overhead "
              f"{metrics['disabled_overhead_fraction']:.3%} >= "
              f"{MAX_DISABLED_OVERHEAD:.0%}", file=sys.stderr)
        return 1
    if metrics["hidden_fraction_gap"] > MAX_HIDDEN_FRACTION_GAP:
        print("ERROR: trace-derived hidden fraction "
              f"{metrics['trace_hidden_fraction']:.3f} disagrees with the "
              f"timer-derived {metrics['timer_hidden_fraction']:.3f} by "
              f"more than {MAX_HIDDEN_FRACTION_GAP}", file=sys.stderr)
        return 1
    print("\nequivalence: traced == untraced (bitwise) for every "
          "parameter; disabled overhead "
          f"{metrics['disabled_overhead_fraction']:.3%}")
    return _jsonreport.gate(
        "obs_overhead", metrics,
        meta={"rows": rows, "iterations": iterations, "smoke": smoke,
              "metrics": snapshot},
    )


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_obs_overhead(benchmark):
    metrics, max_diff, _ = benchmark.pedantic(
        overhead_sweep_with_retry,
        kwargs={"rows": 2000, "iterations": 4},
        rounds=1, iterations=1,
    )
    assert max_diff == 0.0
    assert metrics["disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD
    assert metrics["hidden_fraction_gap"] <= MAX_HIDDEN_FRACTION_GAP


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI")
    raise SystemExit(run_report(smoke=parser.parse_args().smoke))
