"""Section 4.2: the hand-optimised model-update kernel.

The paper reports its tuned noise+update implementation is 8.2x faster
than stock PyTorch built-ins (13.4x for the full pipeline with TBB and
OpenMP).  The numpy analogue: a fused, vectorised noisy update versus a
naive per-row Python loop.  The measured speedup factor differs (Python
loops are slower than PyTorch dispatch), but the lesson is the same —
the optimised kernel is the right baseline to compare LazyDP against.
"""

import numpy as np

from repro.bench.reporting import format_table

from conftest import emit_report

ROWS, DIM = 3000, 64
LEARNING_RATE = 0.05


def _setup(seed=0):
    rng = np.random.default_rng(seed)
    table = rng.normal(size=(ROWS, DIM))
    grad = rng.normal(size=(ROWS, DIM))
    noise = rng.normal(size=(ROWS, DIM))
    return table, grad, noise


def naive_noisy_update(table, grad, noise):
    """Row-at-a-time update: what an untuned implementation does."""
    for row in range(table.shape[0]):
        noisy = grad[row] + noise[row]
        table[row] = table[row] - LEARNING_RATE * noisy
    return table


def optimized_noisy_update(table, grad, noise):
    """Fused, vectorised update: one pass, no temporaries per row."""
    np.add(grad, noise, out=noise)
    table -= LEARNING_RATE * noise
    return table


def test_sec42_naive_kernel(benchmark):
    table, grad, noise = _setup()
    benchmark.pedantic(
        naive_noisy_update, args=(table, grad, noise), rounds=3, iterations=1
    )


def test_sec42_optimized_kernel(benchmark):
    table, grad, noise = _setup()
    benchmark(optimized_noisy_update, table, grad, noise)


def test_sec42_speedup_report(benchmark):
    import time

    def measure():
        table, grad, noise = _setup(1)
        start = time.perf_counter()
        naive_noisy_update(table, grad, noise)
        naive_s = time.perf_counter() - start
        table, grad, noise = _setup(1)
        start = time.perf_counter()
        optimized_noisy_update(table, grad, noise)
        return naive_s, time.perf_counter() - start

    naive_s, optimized_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    speedup = naive_s / optimized_s
    emit_report(
        "sec42_kernel_optimization",
        format_table(
            ["kernel", "seconds", "speedup"],
            [["naive (per-row)", naive_s, 1.0],
             ["optimised (fused, vectorised)", optimized_s, speedup],
             ["paper (tuned AVX vs PyTorch built-in)", None, 8.2]],
            title="Section 4.2: model-update kernel optimisation",
        ),
    )
    assert speedup > 3.0

    def equal_outputs():
        table_a, grad_a, noise_a = _setup(2)
        table_b, grad_b, noise_b = _setup(2)
        naive = naive_noisy_update(table_a, grad_a, noise_a)
        fused = optimized_noisy_update(table_b, grad_b, noise_b)
        np.testing.assert_allclose(naive, fused, atol=1e-12)

    equal_outputs()
