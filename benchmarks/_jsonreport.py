"""Machine-readable benchmark reports and the regression gate.

Every ``bench_*.py --smoke`` run writes a ``BENCH_<name>.json`` artifact
into ``benchmarks/reports/`` via :func:`write_report` — a flat mapping
of metric name to float, plus run metadata — so CI can upload the
numbers and humans can diff them across runs.

``benchmarks/reports/baseline.json`` (committed in-repo) pins the
expected value of selected metrics.  :func:`check_against_baseline`
fails a metric that regresses more than ``tolerance`` (default 25%)
against its pinned value, in the pinned direction.  Baselined metrics
are deliberately *relative* (speedup ratios, hidden fractions measured
against a serial reference in the same process) rather than absolute
wall-clock, so the gate tracks real engine regressions instead of the
speed difference between a laptop and a CI runner.

The smoke scripts call :func:`gate` as the last step of ``run_report``
and propagate its exit code, so a regression (or an equivalence
failure upstream of it) fails the CI step — nothing is
print-and-return-0.

Run ``python benchmarks/_jsonreport.py --verify`` to re-check every
``BENCH_*.json`` currently on disk against the baseline (the CI
``bench-regression`` job's final step, and the local way to prove the
gate trips on an injected slowdown).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPORTS_DIR = pathlib.Path(__file__).resolve().parent / "reports"
BASELINE_PATH = REPORTS_DIR / "baseline.json"
ARTIFACT_PREFIX = "BENCH_"
DEFAULT_TOLERANCE = 0.25


def artifact_path(name: str, directory: pathlib.Path | None = None) -> pathlib.Path:
    return (directory or REPORTS_DIR) / f"{ARTIFACT_PREFIX}{name}.json"


def write_report(
    name: str,
    metrics: dict,
    meta: dict | None = None,
    directory: pathlib.Path | None = None,
) -> pathlib.Path:
    """Persist one benchmark's metrics as ``BENCH_<name>.json``.

    ``metrics`` must map metric names to numbers; ``meta`` (geometry,
    iteration counts, ...) rides along for humans and is never gated.
    """
    bad = {
        key: value
        for key, value in metrics.items()
        if not isinstance(value, (int, float)) or isinstance(value, bool)
    }
    if bad:
        raise TypeError(f"metrics must be numeric, got {bad!r}")
    payload = {
        "benchmark": name,
        "metrics": {key: float(value) for key, value in metrics.items()},
        "meta": dict(meta or {}),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    path = artifact_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_baseline(path: pathlib.Path | None = None) -> dict:
    """The committed baseline: ``{"tolerance": ..., "metrics": {...}}``.

    Each baselined metric is ``"<benchmark>/<metric>": {"value": v,
    "direction": "higher"|"lower"}`` — ``higher`` means larger is
    better (throughput ratios), ``lower`` the opposite.
    """
    return json.loads((path or BASELINE_PATH).read_text(encoding="utf-8"))


def check_against_baseline(
    name: str, metrics: dict, baseline: dict | None = None
) -> list:
    """Regression failures for one benchmark's metrics (empty == pass).

    Only metrics pinned in the baseline are gated; everything else is
    informational.  A pinned metric missing from ``metrics`` is itself
    a failure — a silently dropped measurement must not pass the gate.
    """
    baseline = baseline if baseline is not None else load_baseline()
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    failures = []
    prefix = f"{name}/"
    for key, spec in baseline.get("metrics", {}).items():
        if not key.startswith(prefix):
            continue
        metric = key.removeprefix(prefix)
        if metric not in metrics:
            failures.append(f"{key}: metric missing from report")
            continue
        current = float(metrics[metric])
        pinned = float(spec["value"])
        direction = spec.get("direction", "higher")
        if direction == "higher":
            floor = pinned * (1.0 - tolerance)
            if current < floor:
                failures.append(
                    f"{key}: {current:.4g} regressed below {floor:.4g} "
                    f"(baseline {pinned:.4g}, tolerance {tolerance:.0%})"
                )
        elif direction == "lower":
            ceiling = pinned * (1.0 + tolerance)
            if current > ceiling:
                failures.append(
                    f"{key}: {current:.4g} regressed above {ceiling:.4g} "
                    f"(baseline {pinned:.4g}, tolerance {tolerance:.0%})"
                )
        else:
            failures.append(f"{key}: unknown direction {direction!r}")
    return failures


def gate(name: str, metrics: dict, meta: dict | None = None) -> int:
    """Write the artifact, check the baseline, report; 0 == pass."""
    path = write_report(name, metrics, meta)
    print(f"\nwrote {path}")
    try:
        failures = check_against_baseline(name, metrics)
    except FileNotFoundError:
        print(
            "no baseline.json committed; regression gate skipped", file=sys.stderr
        )
        return 0
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        gated = [
            key
            for key in load_baseline().get("metrics", {})
            if key.startswith(f"{name}/")
        ]
        print(f"regression gate: {len(gated)} baselined metric(s) within tolerance")
    return 1 if failures else 0


def verify_artifacts(directory: pathlib.Path | None = None) -> int:
    """Re-check every BENCH_*.json on disk against the baseline."""
    directory = directory or REPORTS_DIR
    artifacts = sorted(directory.glob(f"{ARTIFACT_PREFIX}*.json"))
    if not artifacts:
        print(f"no {ARTIFACT_PREFIX}*.json artifacts in {directory}", file=sys.stderr)
        return 1
    baseline = load_baseline()
    status = 0
    for path in artifacts:
        payload = json.loads(path.read_text(encoding="utf-8"))
        failures = check_against_baseline(
            payload["benchmark"], payload["metrics"], baseline
        )
        verdict = "ok" if not failures else "REGRESSED"
        print(f"{path.name}: {verdict}")
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        status = status or (1 if failures else 0)
    return status


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-check BENCH_*.json artifacts against baseline.json",
    )
    args = parser.parse_args()
    if not args.verify:
        parser.error("nothing to do (did you mean --verify?)")
    raise SystemExit(verify_artifacts())
