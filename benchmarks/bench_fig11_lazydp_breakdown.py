"""Figure 11: LazyDP's own latency breakdown and pure overhead.

Measured mode runs an instrumented LazyDP training step and reports the
per-stage wall-clock split; model mode reproduces the paper's 15%
overhead with its 61/22/17 split.
"""

from repro.bench.experiments import figure11, measured_stage_breakdown
from repro.bench.reporting import format_table
from repro import configs
from repro.train import LAZYDP_OVERHEAD_STAGES

from conftest import SteppableRun, emit_report


def test_fig11_report_model_scale(benchmark):
    result = benchmark.pedantic(figure11, rounds=1, iterations=1)
    stage_rows = [
        [stage, seconds * 1e3]
        for stage, seconds in result.extras["stages"].items()
    ]
    text = result.table() + "\n\n" + format_table(
        ["stage", "modelled ms"], stage_rows,
        title="LazyDP modelled stage times (96 GB, batch 2048)",
    )
    emit_report("fig11_lazydp_breakdown", text)
    fraction = result.reproduced["lazydp"][0]
    assert 0.05 < fraction < 0.3


def test_fig11_measured_stage_split(benchmark):
    config = configs.small_dlrm(rows=8000)

    def run():
        lazy = measured_stage_breakdown(
            "lazydp", config=config, batch=128, iterations=4
        )
        eager = measured_stage_breakdown(
            "dpsgd_f", config=config, batch=128, iterations=4
        )
        return lazy, eager

    lazy_stages, eager_stages = benchmark.pedantic(run, rounds=2, iterations=1)
    # The terminal flush is a one-time end-of-training cost, not part of
    # the steady-state iteration profile Figure 11 shows.
    lazy_stages = {
        k: v for k, v in lazy_stages.items() if k != "terminal_flush"
    }
    total = sum(lazy_stages.values())
    overhead = sum(lazy_stages.get(s, 0.0) for s in LAZYDP_OVERHEAD_STAGES)
    rows = [[stage, seconds * 1e3, seconds / total]
            for stage, seconds in sorted(lazy_stages.items())]
    emit_report(
        "fig11_measured",
        format_table(["stage", "ms (numpy)", "fraction"], rows,
                     title="LazyDP measured stage split (scaled geometry)"),
    )
    assert overhead > 0.0
    # Figure 11's claim, measured: LazyDP's noise sampling and noisy
    # update are a fraction of eager DP-SGD's on the same workload.
    assert (lazy_stages["noise_sampling"]
            < 0.5 * eager_stages["noise_sampling"])
    assert (lazy_stages["noisy_grad_update"]
            < 0.5 * eager_stages["noisy_grad_update"])


def test_fig11_step_lazydp_instrumented(benchmark):
    run = SteppableRun("lazydp", configs.small_dlrm(rows=8000))
    benchmark(run.step)
    assert run.trainer.timer.lazydp_overhead_total() > 0
