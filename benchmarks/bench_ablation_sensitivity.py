"""Ablation: robustness of the headline result to calibration constants.

The performance model contains fitted software-overhead constants
(DESIGN.md).  This benchmark perturbs each by +/-50% and re-derives
LazyDP's speedup over DP-SGD(F): the orders-of-magnitude conclusion must
come from the roofline physics, not from the fitted numbers.
"""

from repro.bench.reporting import format_table
from repro.perfmodel.sensitivity import (
    conclusions_hold,
    headline_speedup,
    sensitivity_sweep,
)

from conftest import emit_report


def test_ablation_sensitivity_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: sensitivity_sweep(factors=(0.5, 1.5)), rounds=1, iterations=1
    )
    table_rows = [
        [field, factor, speedup] for field, factor, speedup in rows
    ]
    emit_report(
        "ablation_sensitivity",
        format_table(
            ["calibrated constant", "x factor", "LazyDP speedup"],
            table_rows,
            title="Ablation: headline speedup under calibration "
                  "perturbations (paper: 119x)",
        ),
    )
    assert conclusions_hold(rows, minimum_speedup=30.0)
    speedups = [speedup for _, _, speedup in rows]
    # The conclusion is stable: even the worst perturbation keeps the
    # speedup within ~2x of the baseline.
    baseline = rows[0][2]
    assert min(speedups) > baseline / 2.5
    assert max(speedups) < baseline * 2.5


def test_ablation_headline_evaluation(benchmark):
    speedup = benchmark(headline_speedup)
    assert 90 < speedup < 170
