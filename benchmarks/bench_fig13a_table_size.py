"""Figure 13(a): sensitivity to embedding-table size, incl. the OOM point.

Measured mode steps DP-SGD(F) and LazyDP at two table sizes: DP-SGD's
cost must scale with the table while LazyDP's stays flat.  Model mode
regenerates the 24-192 GB sweep with the 192 GB OOM.
"""

from repro import configs
from repro.bench.experiments import figure13a
from repro.bench.reporting import format_table
from repro.perfmodel import (
    fits_when_sharded,
    min_shards_to_fit,
    per_shard_table_bytes,
    sharded_update_breakdown,
)

from conftest import SteppableRun, emit_report


def test_fig13a_report_model_scale(benchmark):
    result = benchmark.pedantic(figure13a, rounds=1, iterations=1)
    emit_report("fig13a_table_size", result.table())
    series = result.reproduced["dpsgd_f"]
    assert series[-1] == float("inf")           # 192 GB OOM
    assert series[1] / series[0] > 1.5          # scales with capacity
    lazy = result.reproduced["lazydp"]
    assert max(lazy[:3]) / min(lazy[:3]) < 1.1  # flat


def test_fig13a_sharded_projection(benchmark):
    """Beyond Figure 13(a): sharding extends the size axis past one host.

    Flat LazyDP already survives the figure's 192 GB point; the sharded
    engine's memory model shows where the *next* capacity wall sits and
    how many shards (hosts) restore headroom, plus the per-shard
    model-update critical path at those sizes.
    """
    def project():
        rows = []
        for gigabytes in (96, 192, 384, 768):
            config = configs.mlperf_dlrm(gigabytes * 10**9,
                                         name=f"mlperf-{gigabytes}GB")
            shards = min_shards_to_fit(config, 2048)
            breakdown = sharded_update_breakdown(config, 2048, shards or 1)
            rows.append([
                f"{gigabytes} GB",
                "yes" if fits_when_sharded(config, 2048, 1) else "OOM",
                shards,
                f"{per_shard_table_bytes(config, shards or 1) / 1e9:.0f} GB",
                f"{breakdown.critical_path_seconds * 1e3:.1f} ms",
            ])
        return rows

    rows = benchmark.pedantic(project, rounds=1, iterations=1)
    emit_report("fig13a_sharded_projection", format_table(
        ["model", "fits one host", "min shards", "per-shard slice",
         "update critical path"],
        rows,
        title="Sharded LazyDP capacity projection (batch 2048)",
    ))
    by_size = {row[0]: row for row in rows}
    assert by_size["192 GB"][1] == "yes"     # flat LazyDP survives 192 GB
    assert by_size["384 GB"][1] == "OOM"     # ...but not 384 GB
    assert by_size["384 GB"][2] >= 2         # sharding restores headroom
    assert by_size["768 GB"][2] >= by_size["384 GB"][2]


def test_fig13a_dpsgd_scales_measured(benchmark):
    small = SteppableRun("dpsgd_f", configs.small_dlrm(rows=5000), batch=64)
    large = SteppableRun("dpsgd_f", configs.small_dlrm(rows=20000), batch=64)
    import time

    def run_both():
        start = time.perf_counter()
        small.step()
        small_s = time.perf_counter() - start
        start = time.perf_counter()
        large.step()
        return small_s, time.perf_counter() - start

    small_s, large_s = benchmark.pedantic(run_both, rounds=3, iterations=1)
    assert large_s > 1.8 * small_s


def test_fig13a_lazydp_flat_measured(benchmark):
    small = SteppableRun("lazydp", configs.small_dlrm(rows=5000), batch=64)
    large = SteppableRun("lazydp", configs.small_dlrm(rows=20000), batch=64)
    import time

    def run_both():
        start = time.perf_counter()
        small.step()
        small_s = time.perf_counter() - start
        start = time.perf_counter()
        large.step()
        return small_s, time.perf_counter() - start

    # LazyDP's per-step cost must not scale with the table (no flush here;
    # the flush is a one-time end-of-training cost).  4x the rows should
    # cost nowhere near 4x the time; allow headroom for timer noise.
    results = [benchmark.pedantic(run_both, rounds=1, iterations=1)
               if i == 0 else run_both() for i in range(4)]
    small_avg = sum(r[0] for r in results[1:]) / 3
    large_avg = sum(r[1] for r in results[1:]) / 3
    assert large_avg < 2.5 * small_avg
