"""Beyond the paper: TB-scale projections and break-even analysis.

The paper ends by arguing its bottlenecks "only get worse" for future
models.  This bench quantifies that with the calibrated model: the
DP-SGD tax from 24 GB to 2 TB, the OOM walls on the paper's host, and
the break-even table size below which eager DP-SGD would actually win.
"""

from repro.bench.reporting import format_table
from repro.perfmodel.scaling import (
    break_even_model_bytes,
    oom_capacity_bytes,
    project_scaling,
)

from conftest import emit_report


def test_scaling_projection_report(benchmark):
    points = benchmark.pedantic(project_scaling, rounds=1, iterations=1)
    by_size: dict = {}
    for point in points:
        by_size.setdefault(point.model_bytes, {})[point.algorithm] = point
    rows = []
    for size, algorithms in sorted(by_size.items()):
        eager = algorithms["dpsgd_f"]
        lazy = algorithms["lazydp"]
        rows.append([
            f"{size/1e9:g} GB",
            eager.seconds_per_iteration,
            lazy.seconds_per_iteration,
            lazy.speedup_vs_dpsgd,
        ])
    emit_report(
        "scaling_projection",
        format_table(
            ["model size", "DP-SGD(F) s/iter", "LazyDP s/iter", "speedup"],
            rows,
            title="Beyond the paper: projected scaling on a 4 TB host",
        ),
    )
    finite = [r[3] for r in rows if r[3] is not None]
    assert all(b > a for a, b in zip(finite, finite[1:]))


def test_scaling_oom_walls(benchmark):
    def walls():
        return {
            "dpsgd_f": oom_capacity_bytes("dpsgd_f"),
            "lazydp": oom_capacity_bytes("lazydp"),
        }

    result = benchmark.pedantic(walls, rounds=1, iterations=1)
    emit_report(
        "scaling_oom_walls",
        format_table(
            ["algorithm", "largest trainable model (GB)"],
            [[name, bytes_ / 1e9] for name, bytes_ in result.items()],
            title="OOM walls on the paper's 256 GB host",
        ),
    )
    assert result["dpsgd_f"] < 192e9
    assert result["lazydp"] > 230e9


def test_scaling_break_even(benchmark):
    crossover = benchmark.pedantic(
        break_even_model_bytes, rounds=1, iterations=1
    )
    emit_report(
        "scaling_break_even",
        format_table(
            ["quantity", "value"],
            [["break-even table size", f"{crossover/1e9:.2f} GB"],
             ["paper default", "96 GB"],
             ["ratio", f"{96e9/crossover:.0f}x"]],
            title="Break-even: below this size, eager DP-SGD beats LazyDP",
        ),
    )
    assert crossover < 96e9 / 10
