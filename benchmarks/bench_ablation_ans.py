"""Ablation: Aggregated Noise Sampling (paper Section 5.2.2, Figure 8).

Without ANS, catching a row up after ``n`` deferred iterations costs ``n``
Gaussian draws; with ANS it costs one.  This benchmark measures the
catch-up kernel directly as the delay grows, showing exact-mode cost
scaling linearly while ANS stays flat — the gap that turns LazyDP from
151x-slower-than-SGD into 2.2x (Figure 10).
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.lazydp import ANSEngine
from repro.rng import NoiseStream

from conftest import emit_report

ROWS = 4096
DIM = 64


def _catchup(engine: ANSEngine, delay: int):
    rows = np.arange(ROWS, dtype=np.int64)
    delays = np.full(ROWS, delay, dtype=np.int64)
    return engine.catchup_noise(0, rows, delays, delay, DIM, std=0.01)


def test_ablation_ans_delay64(benchmark):
    engine = ANSEngine(NoiseStream(0), enabled=True)
    benchmark(_catchup, engine, 64)


def test_ablation_exact_delay8(benchmark):
    engine = ANSEngine(NoiseStream(0), enabled=False)
    benchmark.pedantic(_catchup, args=(engine, 8), rounds=3, iterations=1)


def test_ablation_exact_delay64(benchmark):
    engine = ANSEngine(NoiseStream(0), enabled=False)
    benchmark.pedantic(_catchup, args=(engine, 64), rounds=3, iterations=1)


def test_ablation_ans_scaling_report(benchmark):
    import time

    delays = (1, 8, 64)

    def measure():
        results = []
        for delay in delays:
            ans = ANSEngine(NoiseStream(1), enabled=True)
            exact = ANSEngine(NoiseStream(1), enabled=False)
            start = time.perf_counter()
            _catchup(ans, delay)
            ans_s = time.perf_counter() - start
            start = time.perf_counter()
            _catchup(exact, delay)
            exact_s = time.perf_counter() - start
            results.append((delay, ans_s, exact_s))
        return results

    results = benchmark.pedantic(measure, rounds=2, iterations=1)
    rows = [
        [delay, ans_s * 1e3, exact_s * 1e3, exact_s / ans_s]
        for delay, ans_s, exact_s in results
    ]
    emit_report(
        "ablation_ans",
        format_table(
            ["deferred iterations", "ANS ms", "exact-sum ms", "exact/ANS"],
            rows,
            title="Ablation: aggregated noise sampling (catch-up cost, "
                  f"{ROWS} rows x {DIM} dims)",
        ),
    )
    # Exact-mode cost must grow with delay; ANS must not.
    assert results[-1][2] > 10 * results[0][2]
    assert results[-1][1] < 3 * results[0][1]


def test_ablation_ans_statistical_price_is_zero(benchmark):
    """ANS is not an approximation: the aggregated draw has exactly the
    deferred sum's distribution (Theorem 5.1).  Verify moments at scale
    while benchmarking the two kernels side by side."""

    def run():
        delay = 16
        ans = ANSEngine(NoiseStream(3), enabled=True)
        exact = ANSEngine(NoiseStream(3), enabled=False)
        return _catchup(ans, delay), _catchup(exact, delay)

    aggregated, summed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(aggregated.std() - summed.std()) / summed.std() < 0.05
    # Both means are ~0 with std 0.01*sqrt(16) over ROWS*DIM samples.
    standard_error = 0.01 * np.sqrt(16) / np.sqrt(ROWS * DIM)
    assert abs(aggregated.mean()) < 6 * standard_error
    assert abs(summed.mean()) < 6 * standard_error
