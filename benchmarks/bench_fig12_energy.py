"""Figure 12: energy consumption of SGD / LazyDP / DP-SGD(F).

Energy cannot be measured in this environment (no power counters), so
the benchmark times the energy-model evaluation itself and the report
regenerates the paper's series via phase-power integration, asserting
the ~155x saving and the >1 power-amplification of the AVX-bound noise
phase.
"""

from repro import configs
from repro.bench.experiments import figure12
from repro.perfmodel import (
    average_power_watts,
    iteration_breakdown,
    paper_system,
)

from conftest import emit_report


def test_fig12_report_model_scale(benchmark):
    result = benchmark.pedantic(figure12, rounds=1, iterations=1)
    emit_report("fig12_energy", result.table())
    assert 100 < result.extras["avg_energy_saving"] < 250
    for i in range(3):
        assert (result.reproduced["lazydp"][i]
                < result.reproduced["dpsgd_f"][i] / 50)


def test_fig12_energy_model_evaluation(benchmark):
    hw = paper_system()
    config = configs.mlperf_dlrm()

    def evaluate():
        totals = {}
        for algorithm in ("sgd", "lazydp", "dpsgd_f"):
            breakdown = iteration_breakdown(algorithm, config, 2048, hw=hw)
            totals[algorithm] = average_power_watts(breakdown, hw)
        return totals

    powers = benchmark(evaluate)
    # DP-SGD's long AVX phase draws more average power than SGD's mix.
    assert powers["dpsgd_f"] > powers["sgd"]
