"""Figure 6: effective throughput vs per-element op count (roofline).

Measured mode reproduces the paper's microbenchmark in numpy: load a
vector, apply N arithmetic operations, store the result.  Throughput must
rise with N in the memory-bound region and flatten once compute-bound.
Model mode evaluates the calibrated roofline at the paper's two operating
points (N=2 and N=101).
"""

import numpy as np

from repro.bench.experiments import figure6
from repro.bench.reporting import format_table

from conftest import emit_report

ELEMENTS = 4_000_000


def _micro_kernel(buffer: np.ndarray, n_ops: int) -> np.ndarray:
    """N dependent multiply-adds per element between one load and store."""
    out = buffer * 1.0000001 + 0.5
    for _ in range(n_ops - 1):
        out = out * 1.0000001 + 0.5
    return out


def test_fig6_report_model_scale(benchmark):
    result = benchmark.pedantic(figure6, rounds=1, iterations=1)
    sweep_rows = [
        [int(n), g]
        for n, g in zip(result.extras["sweep_n"][::8],
                        result.extras["sweep_gflops"][::8])
    ]
    text = result.table() + "\n\n" + format_table(
        ["N", "modelled GFLOPS"], sweep_rows,
        title="Roofline sweep (every 8th point)",
    )
    emit_report("fig06_avx_roofline", text)
    reproduced = result.reproduced["roofline"]
    assert reproduced[1] > 10 * reproduced[0]  # compute >> memory point


def test_fig6_micro_n2(benchmark):
    buffer = np.random.default_rng(0).random(ELEMENTS)
    benchmark(_micro_kernel, buffer, 2)


def test_fig6_micro_n16(benchmark):
    buffer = np.random.default_rng(0).random(ELEMENTS)
    benchmark(_micro_kernel, buffer, 16)


def test_fig6_micro_n101(benchmark):
    buffer = np.random.default_rng(0).random(ELEMENTS)
    benchmark.pedantic(_micro_kernel, args=(buffer, 101), rounds=3,
                       iterations=1)


def test_fig6_throughput_saturates_measured(benchmark):
    """Effective GFLOP/s grows sublinearly with N: the roofline knee.

    At N=2 the kernel is near memory-bound; by N=64 each additional op
    costs full compute time, so (time at 64) >> (time at 2) while
    GFLOP/s(64) < 32x GFLOP/s(2).
    """
    import time

    buffer = np.random.default_rng(1).random(ELEMENTS)

    def run_all():
        timings = {}
        for n_ops in (2, 64):
            start = time.perf_counter()
            _micro_kernel(buffer, n_ops)
            timings[n_ops] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run_all, rounds=2, iterations=1)
    gflops_2 = 2 * ELEMENTS / timings[2] / 1e9
    gflops_64 = 64 * ELEMENTS / timings[64] / 1e9
    assert gflops_64 < 32 * gflops_2  # sublinear: the roofline bends
