"""Figure 13(d): sensitivity to embedding access skew.

Measured mode steps LazyDP on traces calibrated to the paper's low /
medium / high skew points (90% of accesses on 36% / 10% / 0.6% of rows);
model mode regenerates the paper-scale comparison.  The shape to
reproduce: DP-SGD(F) is skew-blind, LazyDP gets slightly *faster* with
skew (smaller unique-row footprint).
"""

from repro import configs
from repro.bench.experiments import figure13d
from repro.testing import trainer_for
from repro.data import DataLoader, SyntheticClickDataset, paper_skew_spec
from repro.nn import DLRM
from repro.train import DPConfig

from conftest import emit_report


def test_fig13d_report_model_scale(benchmark):
    result = benchmark.pedantic(figure13d, rounds=1, iterations=1)
    emit_report("fig13d_skew", result.table())
    lazy = dict(zip(result.labels, result.reproduced["lazydp"]))
    dpsgd = result.reproduced["dpsgd_f"]
    assert lazy["high"] <= lazy["random"]
    assert max(dpsgd) / min(dpsgd) < 1.02


def _skewed_step(level, rows=12000, batch=256):
    config = configs.small_dlrm(rows=rows)
    skew = None if level == "random" else paper_skew_spec(level, rows)
    model = DLRM(config, seed=3)
    dataset = SyntheticClickDataset(config, seed=4, skew=skew)
    loader = DataLoader(dataset, batch_size=batch, num_batches=4, seed=5)
    trainer = trainer_for("lazydp", model, DPConfig(), noise_seed=6)
    trainer.expected_batch_size = batch
    batches = [loader.batch_for(i) for i in range(4)]
    state = {"iteration": 0}

    def step():
        current = batches[state["iteration"] % 4]
        upcoming = batches[(state["iteration"] + 1) % 4]
        state["iteration"] += 1
        return trainer.train_step(state["iteration"], current, upcoming)

    return step


def test_fig13d_step_random(benchmark):
    benchmark(_skewed_step("random"))


def test_fig13d_step_medium_skew(benchmark):
    benchmark(_skewed_step("medium"))


def test_fig13d_step_high_skew(benchmark):
    benchmark(_skewed_step("high"))


def test_fig13d_skew_shrinks_catchup_set(benchmark):
    """High skew concentrates accesses, shrinking the unique-row set
    LazyDP must catch up each iteration."""
    rows, batch = 12000, 1024
    config = configs.small_dlrm(rows=rows)

    def unique_counts():
        counts = {}
        for level in ("random", "high"):
            skew = None if level == "random" else paper_skew_spec(level, rows)
            dataset = SyntheticClickDataset(config, seed=9, skew=skew)
            loaded = dataset.batch(range(batch))
            counts[level] = sum(
                loaded.accessed_rows(t).size for t in range(config.num_tables)
            )
        return counts

    counts = benchmark.pedantic(unique_counts, rounds=2, iterations=1)
    assert counts["high"] < 0.7 * counts["random"]
