"""Figure 14: LazyDP vs EANA.

EANA is faster (no history bookkeeping, no catch-up for next-batch rows)
but leaks the access set; LazyDP pays a bounded overhead (paper: 27-37%)
for DP-SGD-equivalent privacy.  Measured mode times both and verifies the
overhead stays bounded; the privacy difference itself is covered by
tests/test_eana.py's audit.
"""

from repro.bench.experiments import figure14
from repro.bench.reporting import format_table

from conftest import SteppableRun, emit_report


def test_fig14_report_model_scale(benchmark):
    result = benchmark.pedantic(figure14, rounds=1, iterations=1)
    emit_report("fig14_eana", result.table())
    for ratio in result.extras["lazydp_over_eana"]:
        assert 1.0 < ratio < 1.6


def test_fig14_step_eana(benchmark, bench_config):
    run = SteppableRun("eana", bench_config)
    benchmark(run.step)


def test_fig14_step_lazydp(benchmark, bench_config):
    run = SteppableRun("lazydp", bench_config)
    benchmark(run.step)


def test_fig14_overhead_bounded_measured(benchmark, bench_config):
    import time

    eana = SteppableRun("eana", bench_config)
    lazy = SteppableRun("lazydp", bench_config)

    def run_both():
        start = time.perf_counter()
        eana.step()
        eana_s = time.perf_counter() - start
        start = time.perf_counter()
        lazy.step()
        return eana_s, time.perf_counter() - start

    samples = [benchmark.pedantic(run_both, rounds=1, iterations=1)]
    for _ in range(4):
        samples.append(run_both())
    eana_s = sum(s[0] for s in samples[1:])
    lazy_s = sum(s[1] for s in samples[1:])
    overhead = lazy_s / eana_s
    emit_report(
        "fig14_measured",
        format_table(
            ["algorithm", "s / 4 steps"],
            [["eana", eana_s], ["lazydp", lazy_s],
             ["overhead", overhead]],
            title="Figure 14 measured mode (scaled geometry)",
        ),
    )
    # numpy bookkeeping costs differ from the paper's C++, so allow a
    # wider band than 1.27-1.37 — but it must stay the same order.
    assert overhead < 3.0
