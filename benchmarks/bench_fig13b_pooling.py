"""Figure 13(b): sensitivity to the embedding pooling factor.

SGD and LazyDP scale with lookups per table; DP-SGD(F) barely moves
because the dense update dwarfs the gather work.
"""

from repro import configs
from repro.bench.experiments import figure13b

from conftest import SteppableRun, emit_report


def _config(lookups, rows=12000):
    base = configs.small_dlrm(rows=rows)
    from dataclasses import replace
    return replace(base, lookups_per_table=lookups,
                   name=f"{base.name}-L{lookups}")


def test_fig13b_report_model_scale(benchmark):
    result = benchmark.pedantic(figure13b, rounds=1, iterations=1)
    emit_report("fig13b_pooling", result.table())
    sgd = result.reproduced["sgd"]
    lazy = result.reproduced["lazydp"]
    dpsgd = result.reproduced["dpsgd_f"]
    assert sgd[-1] > 4 * sgd[0]
    assert lazy[-1] > 4 * lazy[0]
    assert dpsgd[-1] < 1.05 * dpsgd[0]
    # Paper: the LazyDP/DP-SGD gap narrows but stays >= ~16x at pooling 30.
    assert dpsgd[-1] / lazy[-1] > 10


def test_fig13b_step_lazydp_pool1(benchmark):
    run = SteppableRun("lazydp", _config(1), batch=64)
    benchmark(run.step)


def test_fig13b_step_lazydp_pool8(benchmark):
    run = SteppableRun("lazydp", _config(8), batch=64)
    benchmark(run.step)


def test_fig13b_dpsgd_insensitive_measured(benchmark):
    import time

    pool1 = SteppableRun("dpsgd_f", _config(1), batch=64)
    pool8 = SteppableRun("dpsgd_f", _config(8), batch=64)

    def run_both():
        start = time.perf_counter()
        pool1.step()
        one = time.perf_counter() - start
        start = time.perf_counter()
        pool8.step()
        return one, time.perf_counter() - start

    one, eight = benchmark.pedantic(run_both, rounds=3, iterations=1)
    # Dense noisy update dominates: 8x the lookups << 8x the time.
    assert eight < 3.0 * one
