"""Pipeline-overlap benchmark: hidden vs exposed noise catch-up time.

The serial LazyDP trainer pays the full catch-up (dedup + history read/
update + ANS draw) on the critical path every iteration.  The pipelined
trainer moves that work onto a background prefetch worker; what remains
on the critical path is only ``pipeline_wait`` — the time the trainer
blocked because the worker had not finished.  This benchmark measures
both, reports how much of the background compute was *hidden* behind
forward/backward and input gather, and verifies the pipelined model
stays bitwise identical to the serial one.

Runs two ways:

* under pytest-benchmark alongside the other figure benchmarks
  (``pytest benchmarks/bench_pipeline_overlap.py``);
* as a plain script — ``python benchmarks/bench_pipeline_overlap.py
  [--smoke]`` — for CI smoke coverage without the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import configs
from repro.bench.reporting import format_table
from repro.data import DataLoader, SyntheticClickDataset
from repro.lazydp import LazyDPTrainer
from repro.pipeline import PipelinedLazyDPTrainer, PipelinedShardedLazyDPTrainer
from repro.train import DPConfig

PREFETCH_DEPTHS = (1, 2, 4)

#: Serial-trainer stages that the pipeline moves off the critical path.
CATCHUP_STAGES = ("lazydp_dedup", "lazydp_history_read",
                  "lazydp_history_update", "noise_sampling")

#: Metrics snapshot of the most recent instrumented run — embedded into
#: the report's ``meta`` so BENCH_*.json carries the engine gauges
#: (staging occupancy, hidden fractions, ...) alongside the gated
#: relative metrics.
_last_metrics: dict = {}


def _train(config, *, variant="serial", depth=2, num_shards=2, batch=64,
           iterations=6, seed=11):
    """Train one variant; returns (model, trainer, wall_seconds)."""
    from repro.configs import ObservabilityConfig
    from repro.nn import DLRM
    from repro.obs import Observability

    model = DLRM(config, seed=seed)
    dataset = SyntheticClickDataset(config, seed=seed + 1)
    loader = DataLoader(dataset, batch_size=batch, num_batches=iterations,
                        seed=seed + 2)
    if variant == "serial":
        trainer = LazyDPTrainer(model, DPConfig(), noise_seed=seed + 3)
    elif variant == "pipelined":
        trainer = PipelinedLazyDPTrainer(
            model, DPConfig(), noise_seed=seed + 3, prefetch_depth=depth
        )
    elif variant == "pipelined_sharded":
        trainer = PipelinedShardedLazyDPTrainer(
            model, DPConfig(), noise_seed=seed + 3, prefetch_depth=depth,
            num_shards=num_shards, executor="threads",
        )
    else:
        raise ValueError(f"unknown variant: {variant}")
    obs = trainer.instrument(Observability(ObservabilityConfig(metrics=True)))
    start = time.perf_counter()
    trainer.fit(loader)
    elapsed = time.perf_counter() - start
    _last_metrics.clear()
    _last_metrics.update(obs.metrics.snapshot())
    if variant != "serial":
        trainer.close()
    return model, trainer, elapsed


def overlap_sweep(rows=4000, batch=64, iterations=6,
                  depths=PREFETCH_DEPTHS, num_shards=2):
    """Hidden-vs-exposed catch-up time across pipeline variants.

    Returns ``(table_rows, metrics, max_diff, worst_hidden_fraction)``:
    one report row per variant, the gateable relative metrics (hidden
    fractions, per-variant throughput against the serial trainer
    measured in the same process), the worst parameter difference
    against the serial reference (must be exactly 0.0), and the
    smallest hidden fraction observed (the acceptance criterion
    demands > 0).
    """
    config = configs.small_dlrm(rows=rows)
    serial_model, serial_trainer, serial_wall = _train(
        config, variant="serial", batch=batch, iterations=iterations
    )
    reference = {
        name: param.data.copy()
        for name, param in serial_model.parameters().items()
    }
    serial_catchup = serial_trainer.timer.total(*CATCHUP_STAGES)

    table_rows = [[
        "serial", "-", f"{serial_catchup * 1e3:.1f}", "-", "-", "-",
        f"{serial_wall:.2f}", "reference",
    ]]
    metrics = {"serial_iterations_per_second": iterations / serial_wall}
    max_diff = 0.0
    worst_hidden = 1.0
    runs = [("pipelined", depth, None) for depth in depths]
    runs.append(("pipelined_sharded", 2, num_shards))
    for variant, depth, shards in runs:
        model, trainer, elapsed = _train(
            config, variant=variant, depth=depth,
            num_shards=shards or num_shards, batch=batch,
            iterations=iterations,
        )
        diff = max(
            float(np.max(np.abs(param.data - reference[name])))
            for name, param in model.parameters().items()
        )
        max_diff = max(max_diff, diff)
        stats = trainer.pipeline_stats()
        worst_hidden = min(worst_hidden, stats["hidden_fraction"])
        label = (variant if shards is None
                 else f"{variant} ({shards} shards)")
        metrics[f"hidden_fraction_{variant}_depth{depth}"] = \
            stats["hidden_fraction"]
        metrics[f"throughput_ratio_{variant}_depth{depth}"] = \
            serial_wall / elapsed
        table_rows.append([
            label, depth,
            f"{stats['prefetch_busy_seconds'] * 1e3:.1f}",
            f"{stats['exposed_wait_seconds'] * 1e3:.1f}",
            f"{stats['hidden_seconds'] * 1e3:.1f}",
            f"{stats['hidden_fraction']:.0%}",
            f"{elapsed:.2f}",
            "exact" if diff == 0.0 else f"{diff:.2e}",
        ])
    return table_rows, metrics, max_diff, worst_hidden


HEADER = ["variant", "depth", "catch-up busy ms", "exposed wait ms",
          "hidden ms", "hidden %", "total s", "vs serial"]


def overlap_sweep_with_retry(retries: int = 2, **kwargs):
    """Run the sweep, retrying if *no* time was hidden.

    Correctness (``max_diff``) is deterministic and never retried, but
    the hidden fraction is a wall-clock property: on a heavily loaded
    single-core runner the worker may only get scheduled while the
    trainer is already blocked, measuring 0% hidden.  One clean re-run
    distinguishes that scheduling artefact from a real pipeline bug
    (which would measure 0% every time).
    """
    table_rows, metrics, max_diff, worst_hidden = overlap_sweep(**kwargs)
    for _ in range(retries):
        if max_diff != 0.0 or worst_hidden > 0.0:
            break
        table_rows, metrics, max_diff, worst_hidden = overlap_sweep(**kwargs)
    return table_rows, metrics, max_diff, worst_hidden


def run_report(smoke: bool = False) -> int:
    import _jsonreport

    depths = (1, 2) if smoke else PREFETCH_DEPTHS
    iterations = 4 if smoke else 6
    rows = 2000 if smoke else 4000
    table_rows, metrics, max_diff, worst_hidden = overlap_sweep_with_retry(
        rows=rows, iterations=iterations, depths=depths
    )
    print(format_table(
        HEADER, table_rows,
        title=f"Noise catch-up: hidden vs exposed ({rows} rows/table; "
              "serial row shows critical-path catch-up cost)",
    ))
    if max_diff != 0.0:
        print(f"ERROR: pipelined model diverged from serial by {max_diff}",
              file=sys.stderr)
        return 1
    if worst_hidden <= 0.0:
        print("ERROR: no noise catch-up time was hidden behind gather",
              file=sys.stderr)
        return 1
    print("\nequivalence: pipelined == serial (bitwise) for every row; "
          f"worst hidden fraction {worst_hidden:.0%}")
    # Variants are named by their canonical ExecutionPlan spec, so the
    # JSON artifact identifies runs the way the session API does.
    from repro.configs import PipelineConfig, ShardConfig
    from repro.session import ExecutionPlan

    plans = {"serial": ExecutionPlan().canonical()}
    for depth in depths:
        plans[f"throughput_ratio_pipelined_depth{depth}"] = ExecutionPlan(
            pipeline=PipelineConfig(enabled=True, prefetch_depth=depth),
        ).canonical()
    plans["throughput_ratio_pipelined_sharded_depth2"] = ExecutionPlan(
        pipeline=PipelineConfig(enabled=True, prefetch_depth=2),
        shards=ShardConfig(num_shards=2, executor="threads"),
    ).canonical()
    return _jsonreport.gate(
        "pipeline_overlap", metrics,
        meta={"rows": rows, "iterations": iterations, "plans": plans,
              "smoke": smoke, "metrics": dict(_last_metrics)},
    )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_pipeline_overlap_measured(benchmark):
    from conftest import emit_report

    table_rows, _, max_diff, worst_hidden = benchmark.pedantic(
        overlap_sweep_with_retry,
        kwargs={"rows": 2000, "iterations": 4, "depths": (1, 2)},
        rounds=1, iterations=1,
    )
    emit_report("pipeline_overlap", format_table(
        HEADER, table_rows,
        title="Noise catch-up: hidden vs exposed (2000 rows/table)",
    ))
    assert max_diff == 0.0
    assert worst_hidden > 0.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI")
    raise SystemExit(run_report(smoke=parser.parse_args().smoke))
