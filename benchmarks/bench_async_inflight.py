"""Async in-flight benchmark: throughput vs ``max_in_flight`` depth.

The async engine keeps up to ``max_in_flight`` iteration applies
outstanding on a background worker while the trainer proceeds with the
next forward/backward.  This benchmark sweeps the in-flight depth for
the strict (bitwise-serial) and bounded-staleness policies, reports
throughput against the serial ``LazyDPTrainer`` reference, verifies the
strict runs release bitwise-identical parameters, and runs the
noise-ledger audit on every async run (noise applied exactly once per
row regardless of interleaving).

Runs two ways:

* under pytest-benchmark alongside the other figure benchmarks
  (``pytest benchmarks/bench_async_inflight.py``);
* as a plain script — ``python benchmarks/bench_async_inflight.py
  [--smoke]`` — for CI smoke coverage; writes a ``BENCH_async_inflight
  .json`` artifact and fails on a >25% throughput regression against
  ``benchmarks/reports/baseline.json``.

Set ``BENCH_ASYNC_INJECT_MS=<ms>`` to inject a per-iteration slowdown
into the async variants — the local way to prove the regression gate
actually trips (see docs/reproducing.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

import _jsonreport
from repro import configs
from repro.async_ import AsyncLazyDPTrainer, AsyncShardedLazyDPTrainer
from repro.bench.reporting import format_table
from repro.data import DataLoader, SyntheticClickDataset
from repro.lazydp import LazyDPTrainer
from repro.train import DPConfig

IN_FLIGHT_DEPTHS = (1, 2, 4)

#: Metrics snapshot of the most recent instrumented run — embedded into
#: the report's ``meta`` so BENCH_*.json carries the engine gauges
#: (in-flight depth, staleness lag, ...) alongside the gated relative
#: metrics.
_last_metrics: dict = {}


def _injected_slowdown_seconds() -> float:
    return float(os.environ.get("BENCH_ASYNC_INJECT_MS", "0")) / 1e3


def _train(config, *, variant="serial", max_in_flight=2, staleness="strict",
           num_shards=2, batch=64, iterations=6, seed=11):
    """Train one variant; returns (model, trainer, wall_seconds)."""
    from repro.configs import ObservabilityConfig
    from repro.nn import DLRM
    from repro.obs import Observability

    model = DLRM(config, seed=seed)
    dataset = SyntheticClickDataset(config, seed=seed + 1)
    loader = DataLoader(dataset, batch_size=batch, num_batches=iterations,
                        seed=seed + 2)
    if variant == "serial":
        trainer = LazyDPTrainer(model, DPConfig(), noise_seed=seed + 3)
    elif variant == "async":
        trainer = AsyncLazyDPTrainer(
            model, DPConfig(), noise_seed=seed + 3,
            max_in_flight=max_in_flight, staleness=staleness,
        )
    elif variant == "async_sharded":
        trainer = AsyncShardedLazyDPTrainer(
            model, DPConfig(), noise_seed=seed + 3,
            max_in_flight=max_in_flight, staleness=staleness,
            num_shards=num_shards, executor="threads",
        )
    else:
        raise ValueError(f"unknown variant: {variant}")
    slowdown = 0.0 if variant == "serial" else _injected_slowdown_seconds()
    if slowdown > 0.0:
        original_step = trainer.train_step

        def slowed_step(iteration, current, upcoming):
            time.sleep(slowdown)
            return original_step(iteration, current, upcoming)

        trainer.train_step = slowed_step
    obs = trainer.instrument(Observability(ObservabilityConfig(metrics=True)))
    start = time.perf_counter()
    trainer.fit(loader)
    elapsed = time.perf_counter() - start
    _last_metrics.clear()
    _last_metrics.update(obs.metrics.snapshot())
    if variant != "serial":
        trainer.close()
    return model, trainer, elapsed


def inflight_sweep(rows=4000, batch=64, iterations=6,
                   depths=IN_FLIGHT_DEPTHS, num_shards=2):
    """Throughput vs in-flight depth across staleness policies.

    Returns ``(table_rows, metrics, max_strict_diff, ledger_ok)``: one
    report row per variant, the gateable relative metrics, the worst
    strict-mode parameter difference against the serial reference
    (must be exactly 0.0), and whether every ledger audit passed.
    """
    config = configs.small_dlrm(rows=rows)
    serial_model, _, serial_wall = _train(
        config, variant="serial", batch=batch, iterations=iterations
    )
    reference = {
        name: param.data.copy()
        for name, param in serial_model.parameters().items()
    }
    serial_throughput = iterations / serial_wall
    table_rows = [[
        "serial", "-", "-", f"{serial_wall:.2f}",
        f"{serial_throughput:.1f}", "1.00x", "reference",
    ]]
    metrics = {"serial_iterations_per_second": serial_throughput}
    max_strict_diff = 0.0
    ledger_ok = True

    runs = [("async", depth, "strict") for depth in depths]
    runs.append(("async", max(depths), "bounded:2"))
    runs.append(("async_sharded", 2, "strict"))
    for variant, depth, staleness in runs:
        model, trainer, elapsed = _train(
            config, variant=variant, max_in_flight=depth,
            staleness=staleness, num_shards=num_shards, batch=batch,
            iterations=iterations,
        )
        throughput = iterations / elapsed
        ratio = throughput / serial_throughput
        strict = staleness == "strict"
        if strict:
            diff = max(
                float(np.max(np.abs(param.data - reference[name])))
                for name, param in model.parameters().items()
            )
            max_strict_diff = max(max_strict_diff, diff)
            verdict = "exact" if diff == 0.0 else f"{diff:.2e}"
        else:
            verdict = "diverges (by design)"
        try:
            trainer.audit_noise_ledger(iterations)
        except Exception as error:
            ledger_ok = False
            verdict = f"LEDGER: {error}"
        label = (variant if variant == "async"
                 else f"{variant} ({num_shards} shards)")
        key = (f"throughput_ratio_{variant}_inflight{depth}"
               + ("" if strict else "_bounded"))
        metrics[key] = ratio
        table_rows.append([
            label, depth, staleness, f"{elapsed:.2f}",
            f"{throughput:.1f}", f"{ratio:.2f}x", verdict,
        ])
    return table_rows, metrics, max_strict_diff, ledger_ok


HEADER = ["variant", "in flight", "staleness", "total s", "iters/s",
          "vs serial", "released model"]


def run_report(smoke: bool = False) -> int:
    depths = (1, 2) if smoke else IN_FLIGHT_DEPTHS
    iterations = 4 if smoke else 6
    rows = 2000 if smoke else 4000
    table_rows, metrics, max_strict_diff, ledger_ok = inflight_sweep(
        rows=rows, iterations=iterations, depths=depths
    )
    print(format_table(
        HEADER, table_rows,
        title=f"Async multi-in-flight training ({rows} rows/table)",
    ))
    if max_strict_diff != 0.0:
        print("ERROR: strict async model diverged from serial by "
              f"{max_strict_diff}", file=sys.stderr)
        return 1
    if not ledger_ok:
        print("ERROR: noise-ledger audit failed", file=sys.stderr)
        return 1
    print("\nequivalence: strict async == serial (bitwise) for every row; "
          "every ledger audit exact")
    # Variants are named by their canonical ExecutionPlan spec, so the
    # JSON artifact identifies runs the way the session API does.
    from repro.configs import AsyncConfig, ShardConfig
    from repro.session import ExecutionPlan

    def async_plan(max_in_flight, staleness, shards=None):
        return ExecutionPlan(
            async_=AsyncConfig(enabled=True, max_in_flight=max_in_flight,
                               staleness=staleness),
            shards=shards,
        ).canonical()

    plans = {"serial": ExecutionPlan().canonical()}
    for depth in depths:
        plans[f"throughput_ratio_async_inflight{depth}"] = \
            async_plan(depth, "strict")
    plans[f"throughput_ratio_async_inflight{max(depths)}_bounded"] = \
        async_plan(max(depths), "bounded:2")
    plans["throughput_ratio_async_sharded_inflight2"] = async_plan(
        2, "strict", shards=ShardConfig(num_shards=2, executor="threads"),
    )
    return _jsonreport.gate(
        "async_inflight", metrics,
        meta={"rows": rows, "iterations": iterations, "plans": plans,
              "smoke": smoke, "metrics": dict(_last_metrics),
              "injected_slowdown_ms":
                  _injected_slowdown_seconds() * 1e3},
    )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_async_inflight_measured(benchmark):
    from conftest import emit_report

    table_rows, metrics, max_strict_diff, ledger_ok = benchmark.pedantic(
        inflight_sweep,
        kwargs={"rows": 2000, "iterations": 4, "depths": (1, 2)},
        rounds=1, iterations=1,
    )
    emit_report("async_inflight", format_table(
        HEADER, table_rows,
        title="Async multi-in-flight training (2000 rows/table)",
    ))
    assert max_strict_diff == 0.0
    assert ledger_ok
    # Every variant reported against the serial reference.
    assert {row[0] for row in table_rows} == \
        {"serial", "async", "async_sharded (2 shards)"}


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI")
    raise SystemExit(run_report(smoke=parser.parse_args().smoke))
