"""Figure 10: end-to-end training time — the paper's headline result.

Measured mode times one real training step of SGD, LazyDP (with and
without ANS) and DP-SGD(F) on the same scaled model and asserts the
paper's ordering; model mode regenerates the full batch sweep at 96 GB
and checks the 85-155x speedup window.
"""

from repro.bench.experiments import figure10
from repro.bench.reporting import format_table

from conftest import SteppableRun, emit_report


def test_fig10_report_model_scale(benchmark):
    result = benchmark.pedantic(figure10, rounds=1, iterations=1)
    emit_report("fig10_end_to_end", result.table())
    assert 85 * 0.8 < result.extras["avg_speedup"] < 155 * 1.3
    for i in range(3):
        assert (result.reproduced["lazydp"][i]
                < result.reproduced["lazydp_no_ans"][i]
                < result.reproduced["dpsgd_f"][i])


def test_fig10_step_sgd(benchmark, bench_config):
    run = SteppableRun("sgd", bench_config)
    benchmark(run.step)


def test_fig10_step_lazydp(benchmark, bench_config):
    run = SteppableRun("lazydp", bench_config)
    benchmark(run.step)


def test_fig10_step_lazydp_no_ans(benchmark, bench_config):
    run = SteppableRun("lazydp_no_ans", bench_config)
    benchmark.pedantic(run.step, rounds=5, iterations=1)


def test_fig10_step_dpsgd_f(benchmark, bench_config):
    run = SteppableRun("dpsgd_f", bench_config)
    benchmark.pedantic(run.step, rounds=5, iterations=1)


def test_fig10_measured_ordering(benchmark, bench_config):
    """LazyDP's measured step must beat eager DP-SGD(F) decisively."""
    import time

    runs = {
        name: SteppableRun(name, bench_config)
        for name in ("sgd", "lazydp", "dpsgd_f")
    }

    def time_all():
        timings = {}
        for name, run in runs.items():
            start = time.perf_counter()
            run.step()
            timings[name] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(time_all, rounds=3, iterations=1)
    rows = [[name, seconds * 1e3, timings["dpsgd_f"] / seconds]
            for name, seconds in timings.items()]
    emit_report(
        "fig10_measured",
        format_table(["algorithm", "ms/step (numpy)", "dpsgd_f speedup"],
                     rows, title="Figure 10 measured mode (scaled geometry)"),
    )
    assert timings["dpsgd_f"] > 2 * timings["lazydp"]
    assert timings["sgd"] <= timings["lazydp"] * 1.5
