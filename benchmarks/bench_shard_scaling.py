"""Shard-scaling benchmark: the parallel model update, measured and modelled.

Measured mode trains the real numpy :class:`ShardedLazyDPTrainer` at a
scaled-down geometry across shard counts and execution backends —
the in-process serial and thread-pool schedules plus the
``backend=process`` worker-process engine (:mod:`repro.procshard`) —
reporting per-shard model-update timing and verifying the released
model stays bitwise identical to the flat trainer.  Model mode
projects the same sweep at paper scale with
:mod:`repro.perfmodel.shardmodel`.

Runs two ways:

* under pytest-benchmark alongside the other figure benchmarks
  (``pytest benchmarks/bench_shard_scaling.py``);
* as a plain script — ``python benchmarks/bench_shard_scaling.py
  [--smoke]`` — for CI smoke coverage without the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import configs
from repro.bench.reporting import format_table
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.perfmodel import shard_scaling_series
from repro.shard import ShardedLazyDPTrainer
from repro.lazydp import LazyDPTrainer
from repro.train import DPConfig

SHARD_COUNTS = (1, 2, 4)
EXECUTORS = ("serial", "threads")
#: Sweep variants: the two in-process executor schedules plus the
#: worker-process backend.  Variant names key the gated
#: ``throughput_ratio_{variant}_{n}shards`` metrics, so they are frozen
#: ("serial" is the numpy backend's serial schedule).
VARIANTS = EXECUTORS + ("process",)

#: Metrics snapshot of the most recent instrumented run — embedded into
#: the report's ``meta`` so BENCH_*.json carries the engine gauges
#: (arena hits, shard skew, ...) alongside the gated relative metrics.
_last_metrics: dict = {}


def _train(config, *, num_shards=None, variant="serial", batch=64,
           iterations=6, seed=11):
    """Train flat (num_shards=None) or sharded; return (model, trainer, s).

    ``variant`` is a sweep-variant name from :data:`VARIANTS`: an
    in-process executor schedule, or ``"process"`` for the
    worker-process backend.  Worker startup (and shutdown) happen
    outside the timed region, matching the in-process variants whose
    pools are also built at construction.
    """
    from repro.configs import ObservabilityConfig
    from repro.obs import Observability

    model = DLRM(config, seed=seed)
    dataset = SyntheticClickDataset(config, seed=seed + 1)
    loader = DataLoader(dataset, batch_size=batch, num_batches=iterations,
                        seed=seed + 2)
    if num_shards is None:
        trainer = LazyDPTrainer(model, DPConfig(), noise_seed=seed + 3)
    elif variant == "process":
        from repro.procshard import ProcessShardedLazyDPTrainer

        trainer = ProcessShardedLazyDPTrainer(
            model, DPConfig(), noise_seed=seed + 3, num_shards=num_shards,
        )
    else:
        trainer = ShardedLazyDPTrainer(
            model, DPConfig(), noise_seed=seed + 3,
            num_shards=num_shards, executor=variant,
        )
    obs = trainer.instrument(Observability(ObservabilityConfig(metrics=True)))
    start = time.perf_counter()
    trainer.fit(loader)
    elapsed = time.perf_counter() - start
    _last_metrics.clear()
    _last_metrics.update(obs.metrics.snapshot())
    if num_shards is not None:
        trainer.close()
    return model, trainer, elapsed


def measured_sweep(rows=4000, batch=64, iterations=6,
                   shard_counts=SHARD_COUNTS, variants=VARIANTS):
    """Per-shard model-update timing across shard counts and backends.

    Returns (table_rows, metrics, max_diff): one report row per
    (variant, num_shards) with per-shard update seconds, the gateable
    relative metrics (per-variant throughput against the flat trainer
    measured in the same process), and the worst parameter difference
    against the flat reference (must be exactly 0.0 — the process
    backend's cross-process updates included).
    """
    config = configs.small_dlrm(rows=rows)
    flat_model, flat_trainer, flat_elapsed = _train(
        config, batch=batch, iterations=iterations
    )
    reference = {
        name: param.data.copy()
        for name, param in flat_model.parameters().items()
    }

    table_rows = []
    metrics = {"flat_iterations_per_second": iterations / flat_elapsed}
    max_diff = 0.0
    for variant in variants:
        for num_shards in shard_counts:
            model, trainer, elapsed = _train(
                config, num_shards=num_shards, variant=variant,
                batch=batch, iterations=iterations,
            )
            config_diff = max(
                float(np.max(np.abs(param.data - reference[name])))
                for name, param in model.parameters().items()
            )
            max_diff = max(max_diff, config_diff)
            per_shard = trainer.shard_update_seconds()
            update_wall = trainer.timer.total(
                "shard_routing", "shard_model_update", "terminal_flush"
            )
            metrics[f"throughput_ratio_{variant}_{num_shards}shards"] = \
                flat_elapsed / elapsed
            table_rows.append([
                variant, num_shards,
                f"{update_wall * 1e3:.1f}",
                " / ".join(f"{seconds * 1e3:.1f}" for seconds in per_shard),
                f"{elapsed:.2f}",
                "exact" if config_diff == 0.0 else f"{config_diff:.2e}",
            ])
    return table_rows, metrics, max_diff


def model_sweep(batch=2048, shard_counts=(1, 2, 4, 8, 16)):
    """Paper-scale projection of the update across shard counts."""
    config = configs.mlperf_dlrm()
    series = shard_scaling_series(config, batch, shard_counts)
    return [
        [num_shards, f"{critical * 1e3:.1f}", f"{serial * 1e3:.1f}",
         f"{serial / critical:.2f}x"]
        for num_shards, (critical, serial) in series.items()
    ]


def run_report(smoke: bool = False) -> int:
    import _jsonreport

    shard_counts = (1, 2) if smoke else SHARD_COUNTS
    iterations = 3 if smoke else 6
    rows = 2000 if smoke else 4000
    table_rows, metrics, max_diff = measured_sweep(
        rows=rows, iterations=iterations, shard_counts=shard_counts
    )
    print(format_table(
        ["backend", "shards", "update wall ms", "per-shard ms",
         "total s", "vs flat"],
        table_rows,
        title=f"Sharded model update, measured ({rows} rows/table)",
    ))
    print()
    print(format_table(
        ["shards", "critical path ms", "serial ms", "speedup"],
        model_sweep(),
        title="Sharded model update, modelled (96 GB, batch 2048)",
    ))
    if max_diff != 0.0:
        print(f"ERROR: sharded model diverged from flat by {max_diff}",
              file=sys.stderr)
        return 1
    print("\nequivalence: sharded == flat (bitwise) for every row above")
    # Variants are named by their canonical ExecutionPlan spec, so the
    # JSON artifact identifies runs the way the session API does.
    from repro.configs import ShardConfig
    from repro.session import ExecutionPlan

    plans = {"flat": ExecutionPlan().canonical()}
    for variant in VARIANTS:
        for num_shards in shard_counts:
            plans[f"throughput_ratio_{variant}_{num_shards}shards"] = \
                ExecutionPlan(
                    shards=ShardConfig(num_shards=num_shards),
                    backend="numpy" if variant == "serial" else variant,
                ).canonical()
    return _jsonreport.gate(
        "shard_scaling", metrics,
        meta={"rows": rows, "iterations": iterations, "plans": plans,
              "smoke": smoke, "metrics": dict(_last_metrics)},
    )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_shard_scaling_measured(benchmark):
    from conftest import emit_report

    table_rows, _, max_diff = benchmark.pedantic(
        measured_sweep, kwargs={"rows": 2000, "iterations": 4},
        rounds=1, iterations=1,
    )
    emit_report("shard_scaling_measured", format_table(
        ["backend", "shards", "update wall ms", "per-shard ms",
         "total s", "vs flat"],
        table_rows,
        title="Sharded model update, measured (2000 rows/table)",
    ))
    assert max_diff == 0.0
    # Every backend variant reported, every shard count present.
    variants = {row[0] for row in table_rows}
    assert variants == set(VARIANTS)


def test_shard_scaling_model(benchmark):
    from conftest import emit_report

    rows = benchmark.pedantic(model_sweep, rounds=1, iterations=1)
    emit_report("shard_scaling_model", format_table(
        ["shards", "critical path ms", "serial ms", "speedup"],
        rows,
        title="Sharded model update, modelled (96 GB, batch 2048)",
    ))
    # Parallel speedup over the serial executor must grow with shards.
    speedups = [float(row[3].rstrip("x")) for row in rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep for CI")
    raise SystemExit(run_report(smoke=parser.parse_args().smoke))
