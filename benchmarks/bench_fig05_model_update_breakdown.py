"""Figure 5: latency breakdown of DP-SGD's model-update stage.

Measured mode times the three kernels separately on a dense table —
noise sampling (compute-bound), noisy gradient generation, and the noisy
gradient update (memory-bound) — and checks their latency ordering.
"""

import numpy as np

from repro.bench.experiments import figure5
from repro.rng import NoiseStream

from conftest import emit_report

ROWS, DIM = 40000, 64


def test_fig5_report_model_scale(benchmark):
    result = benchmark.pedantic(figure5, rounds=1, iterations=1)
    emit_report("fig05_model_update_breakdown", result.table())
    shares = result.reproduced["noise+update share"]
    # Share of the two bottleneck stages grows with table size -> 83%.
    assert all(b >= a for a, b in zip(shares, shares[1:]))
    assert shares[-1] > 0.8


def test_fig5_noise_sampling_kernel(benchmark):
    stream = NoiseStream(0)
    rows = np.arange(ROWS, dtype=np.int64)
    state = {"iteration": 0}

    def sample():
        state["iteration"] += 1
        return stream.row_noise(0, rows, state["iteration"], DIM, std=0.01)

    benchmark(sample)


def test_fig5_noisy_grad_generation_kernel(benchmark):
    rng = np.random.default_rng(0)
    noise = rng.normal(size=(ROWS, DIM))
    sparse_rows = rng.choice(ROWS, size=2048, replace=False)
    sparse_values = rng.normal(size=(2048, DIM))

    def generate():
        noisy = noise.copy()
        noisy[sparse_rows] += sparse_values
        return noisy

    benchmark(generate)


def test_fig5_noisy_grad_update_kernel(benchmark):
    rng = np.random.default_rng(1)
    table = rng.normal(size=(ROWS, DIM))
    noisy_grad = rng.normal(size=(ROWS, DIM))

    def update():
        table[...] -= 0.05 * noisy_grad

    benchmark(update)
