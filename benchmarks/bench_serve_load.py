"""Serving-tier load benchmark: reader scaling and hot-row caching.

Two claims, both load-bearing for ``repro.serve``:

* **Multi-reader scaling >= 2x** — on memo-hit steady-state traffic
  (every row already privatized by a warmup pass) lookups hold the
  engine's read lock *shared*, so a closed-loop fleet of N readers
  with per-request think time must push at least twice a single
  reader's throughput.  A serializing bug anywhere on the hit path —
  an exclusive lock, a stats mutex held across the gather — collapses
  the ratio toward 1 and fails the gate.
* **Skew-aware cache earns its keep** — under fig13d medium-skew
  point lookups, a :meth:`HotRowCache.for_skew`-sized cache (capacity
  = the hot set carrying 90% of the mass) must reach a hit rate well
  above half, proving the admission filter latches the hot set
  instead of thrashing on one-off rows.

Latency percentiles (p50/p99 over per-request ``perf_counter``
timestamps) ride along unpinned in the artifact for trend-watching.

Runs under pytest (``pytest benchmarks/bench_serve_load.py``) and as a
plain script (``python benchmarks/bench_serve_load.py [--smoke]``) for
the CI bench-regression step.
"""

from __future__ import annotations

import argparse
import sys

from repro import configs
from repro.bench.reporting import format_table
from repro.data import DataLoader, SyntheticClickDataset
from repro.nn import DLRM
from repro.serve import HotRowCache, run_load
from repro.session import ExecutionPlan, TrainSession
from repro.train import DPConfig

#: The acceptance bound: N readers on memo-hit traffic must at least
#: double a single reader's closed-loop throughput.
MIN_MULTI_READER_SCALING = 2.0

#: The cache must catch well over half the skewed point lookups.
MIN_CACHE_HIT_RATE = 0.55

#: Closed-loop think time (seconds).  Emulated per-request client
#: work; by the response-time law N/(Z+S) this is what lets N readers
#: offer ~N times one reader's load when the served path stays shared.
THINK_TIME = 2e-3


def _serve_session(rows, iterations, seed=17, cache=False):
    """Train a small model and return (session, serving engine)."""
    config = configs.small_dlrm(rows=rows)
    model = DLRM(config, seed=seed)
    dataset = SyntheticClickDataset(config, seed=seed + 1)
    loader = DataLoader(dataset, batch_size=64, num_batches=iterations,
                        seed=seed + 2)
    session = TrainSession.build(model, DPConfig(), ExecutionPlan(),
                                 noise_seed=seed + 3)
    session.fit(loader)
    return session, session.serve(cache=cache)


def scaling_sweep(rows=2048, iterations=4, readers=4,
                  requests_per_reader=150, seed=17):
    """Single-reader vs N-reader closed-loop throughput, memo-hit regime.

    Both legs run warmed (one full-table lookup first), batch 8,
    medium skew — the steady state where every request is answered
    from the memo under the shared read lock.
    """
    session, engine = _serve_session(rows, iterations, seed=seed)
    try:
        reports = {}
        for n in (1, readers):
            reports[n] = run_load(
                engine,
                readers=n,
                requests_per_reader=requests_per_reader,
                batch_size=8,
                skew="medium",
                think_time=THINK_TIME,
                seed=seed,
                warmup=True,
            )
            if reports[n].errors:
                raise reports[n].errors[0]
        single, multi = reports[1], reports[readers]
        metrics = {
            "multi_reader_scaling":
                multi.throughput_rps / single.throughput_rps,
            "single_reader_rps": single.throughput_rps,
            "multi_reader_rps": multi.throughput_rps,
            "single_p50_ms": single.latency_p50_ms,
            "multi_p50_ms": multi.latency_p50_ms,
            "single_p99_ms": single.latency_p99_ms,
            "multi_p99_ms": multi.latency_p99_ms,
        }
        stats = engine.stats()
        assert stats["rows_still_pending"] == 0  # warmup privatized all
        return metrics, stats
    finally:
        session.close()


def scaling_sweep_with_retry(retries: int = 2, **kwargs):
    """Run the scaling sweep, retrying below-bar ratios.

    The ratio is a scheduling property: a loaded runner can stall the
    reader fleet mid-measurement.  A clean re-run separates that noise
    from a real serialization regression (which fails every time).
    """
    metrics, stats = scaling_sweep(**kwargs)
    for _ in range(retries):
        if metrics["multi_reader_scaling"] >= MIN_MULTI_READER_SCALING:
            break
        metrics, stats = scaling_sweep(**kwargs)
    return metrics, stats


def cache_sweep(rows=512, iterations=4, requests=4000, seed=23):
    """Skewed point lookups, cache on vs off.

    Point lookups (batch 1) are the cache's regime: the all-or-nothing
    probe means a batch hits only when *every* row is resident, so
    single-row traffic is where the skew-sized capacity pays off.
    Traffic runs long enough (many sightings per hot row) that the
    admission filter's learning phase is a small fraction of the run.
    """
    cache = HotRowCache.for_skew("medium", rows)
    on_session, cached = _serve_session(rows, iterations, seed=seed,
                                        cache=cache)
    off_session, plain = _serve_session(rows, iterations, seed=seed,
                                        cache=False)
    try:
        legs = {}
        for name, engine in (("on", cached), ("off", plain)):
            legs[name] = run_load(
                engine,
                readers=1,
                requests_per_reader=requests,
                batch_size=1,
                skew="medium",
                think_time=0.0,
                seed=seed,
                warmup=True,
            )
            if legs[name].errors:
                raise legs[name].errors[0]
        cache_stats = cache.stats()
        return {
            "cache_hit_rate": cache_stats["hit_rate"],
            "cache_on_rps": legs["on"].throughput_rps,
            "cache_off_rps": legs["off"].throughput_rps,
            "cache_on_p50_ms": legs["on"].latency_p50_ms,
            "cache_on_p99_ms": legs["on"].latency_p99_ms,
            "cache_resident_rows": float(cache_stats["resident_rows"]),
        }
    finally:
        on_session.close()
        off_session.close()


def cache_sweep_with_retry(retries: int = 2, **kwargs):
    metrics = cache_sweep(**kwargs)
    for _ in range(retries):
        if metrics["cache_hit_rate"] >= MIN_CACHE_HIT_RATE:
            break
        metrics = cache_sweep(**kwargs)
    return metrics


def load_sweep(smoke: bool = False):
    """Both scenarios at one size; returns (metrics, meta)."""
    rows = 1024 if smoke else 4096
    requests = 100 if smoke else 250
    readers = 4
    scaling, stats = scaling_sweep_with_retry(
        rows=rows, readers=readers, requests_per_reader=requests
    )
    cache = cache_sweep_with_retry(
        rows=512, requests=4000 if smoke else 8000,
    )
    metrics = {**scaling, **cache}
    meta = {
        "rows": rows,
        "readers": readers,
        "requests_per_reader": requests,
        "think_time_ms": THINK_TIME * 1e3,
        "smoke": smoke,
        "serve_stats": {k: v for k, v in stats.items() if k != "cache"},
    }
    return metrics, meta


def run_report(smoke: bool = False) -> int:
    import _jsonreport

    metrics, meta = load_sweep(smoke=smoke)
    print(format_table(
        ["metric", "value"],
        [
            ["single reader", f"{metrics['single_reader_rps']:.0f} req/s"],
            [f"{meta['readers']} readers",
             f"{metrics['multi_reader_rps']:.0f} req/s"],
            ["scaling", f"{metrics['multi_reader_scaling']:.2f}x"],
            ["p50 (single / multi)",
             f"{metrics['single_p50_ms']:.3f} / "
             f"{metrics['multi_p50_ms']:.3f} ms"],
            ["p99 (single / multi)",
             f"{metrics['single_p99_ms']:.3f} / "
             f"{metrics['multi_p99_ms']:.3f} ms"],
            ["cache hit rate", f"{metrics['cache_hit_rate']:.1%}"],
            ["cache on / off",
             f"{metrics['cache_on_rps']:.0f} / "
             f"{metrics['cache_off_rps']:.0f} req/s"],
        ],
        title=f"serving load ({meta['rows']} rows, medium skew, "
              f"think {meta['think_time_ms']:.1f} ms)",
    ))
    if metrics["multi_reader_scaling"] < MIN_MULTI_READER_SCALING:
        print("ERROR: multi-reader scaling "
              f"{metrics['multi_reader_scaling']:.2f}x < "
              f"{MIN_MULTI_READER_SCALING:.1f}x — the memo-hit path is "
              "serializing readers", file=sys.stderr)
        return 1
    if metrics["cache_hit_rate"] < MIN_CACHE_HIT_RATE:
        print("ERROR: hot-row cache hit rate "
              f"{metrics['cache_hit_rate']:.1%} < "
              f"{MIN_CACHE_HIT_RATE:.0%} under medium skew",
              file=sys.stderr)
        return 1
    print(f"\nscaling {metrics['multi_reader_scaling']:.2f}x >= "
          f"{MIN_MULTI_READER_SCALING:.1f}x on memo-hit traffic; cache "
          f"hit rate {metrics['cache_hit_rate']:.1%}")
    return _jsonreport.gate("serve_load", metrics, meta=meta)


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_serve_load(benchmark):
    metrics, meta = benchmark.pedantic(
        load_sweep, kwargs={"smoke": True}, rounds=1, iterations=1,
    )
    assert metrics["multi_reader_scaling"] >= MIN_MULTI_READER_SCALING
    assert metrics["cache_hit_rate"] >= MIN_CACHE_HIT_RATE


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI")
    raise SystemExit(run_report(smoke=parser.parse_args().smoke))
