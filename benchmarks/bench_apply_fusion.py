"""Apply-fusion benchmark: fused vs unfused apply, batched vs looped sampling.

The noisy model-update is bandwidth-bound (paper Section 4.3: 85.5% of
DRAM bandwidth at 2 AVX ops/element), so the apply phase's cost scales
with how many passes — and how many allocations — feed the slab write.
This benchmark measures the two kernels of ``repro.kernels``:

* the fused single-pass scatter (``fused_noisy_update``) against the
  reference ``merge_sparse_updates`` + fancy-indexed read-modify-write
  two-step, verifying bitwise-identical slab bits while timing both;
* the batched no-ANS sampler (``batched_catchup_sum``) against the
  historical per-lag loop, on the tail-heavy delay profile LazyDP's
  catch-up actually sees, counting Philox invocations ("kernel
  launches") on both paths;
* the BufferArena steady state: after warm-up, further iterations must
  allocate nothing.

The ``--backend`` axis selects which kernel table is measured:

* ``--backend numpy`` (default) — the sweeps above, numpy vs its own
  unfused/looped references; writes ``BENCH_apply_fusion.json``.
* ``--backend numba`` — the compiled kernel table
  (``repro.kernels.njit``) vs the numpy fused kernels on identical
  data: fused apply (bitwise-checked) and no-ANS catch-up sampling
  (checked within the pinned ``NUMERIC_TOLERANCE``).  The warmup phase
  runs each compiled kernel once before any timed window, so JIT
  compile time is excluded from every measurement.  Writes
  ``BENCH_apply_fusion_numba.json`` with its own pinned floors
  (``fused_speedup_numba``, ``sampling_speedup_numba``) so the
  per-backend speedup is CI-gated separately from the numpy run.
  ``--allow-fallback`` runs the same equivalence checks interpreted
  when numba is missing (dev boxes); timings are then meaningless, so
  the baseline gate is skipped.

Runs two ways:

* under pytest-benchmark alongside the other figure benchmarks
  (``pytest benchmarks/bench_apply_fusion.py``);
* as a plain script — ``python benchmarks/bench_apply_fusion.py
  [--smoke] [--backend numpy|numba]`` — for CI smoke coverage; writes a
  ``BENCH_*.json`` artifact and fails on a regression against
  ``benchmarks/reports/baseline.json`` (the pinned speedups are
  relative, in-process ratios, so the gate is portable across runners).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

import _jsonreport
from repro.bench.reporting import format_table
from repro.kernels import (
    BufferArena,
    batched_catchup_sum,
    fused_noisy_update,
    merge_sparse_updates,
)
from repro.rng import NoiseStream, philox_invocations


def _make_updates(rng, num_rows, dim, touched, count):
    """Pre-generated (grad, noise) sparse update pairs (sorted unique)."""
    updates = []
    for _ in range(count):
        sides = []
        for _side in range(2):
            rows = np.sort(rng.choice(num_rows, size=touched, replace=False))
            sides.append((rows.astype(np.int64), rng.standard_normal((touched, dim))))
        updates.append(tuple(sides))
    return updates


def _best_of(repeats, fn):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def apply_fusion_sweep(
    num_rows=200_000, dim=16, touched=4096, iterations=60, repeats=3
):
    """Fused vs unfused apply on identical data; returns rows + metrics.

    Both variants replay the same pre-generated update stream against
    equal tables; afterwards the two tables must be bitwise identical
    (the equivalence the fused kernel promises).
    """
    rng = np.random.default_rng(7)
    updates = _make_updates(rng, num_rows, dim, touched, 8)
    base = rng.standard_normal((num_rows, dim))
    lr = 0.05

    unfused_table = base.copy()

    def run_unfused():
        for i in range(iterations):
            (grad_rows, grad_values), (noise_rows, noise_values) = updates[i % 8]
            rows, values = merge_sparse_updates(
                grad_rows, grad_values, noise_rows, noise_values
            )
            unfused_table[rows] -= lr * values

    fused_table = base.copy()
    arena = BufferArena()

    def run_fused():
        for i in range(iterations):
            (grad_rows, grad_values), (noise_rows, noise_values) = updates[i % 8]
            fused_noisy_update(
                fused_table,
                lr,
                grad_rows,
                grad_values,
                noise_rows,
                noise_values,
                arena=arena,
            )

    # Warm both paths once (first-touch page faults, arena allocation),
    # then measure from identical table states.
    run_unfused()
    run_fused()
    unfused_table[:] = base
    fused_table[:] = base
    warm_allocs = arena.allocs

    unfused_seconds = _best_of(repeats, run_unfused)
    fused_seconds = _best_of(repeats, run_fused)
    steady_allocs = arena.allocs - warm_allocs

    identical = unfused_table.tobytes() == fused_table.tobytes()
    speedup = unfused_seconds / fused_seconds
    table_rows = [
        ["unfused (merge + fancy RMW)", f"{unfused_seconds * 1e3:.1f}", "1.00x", "-"],
        [
            "fused single-pass scatter",
            f"{fused_seconds * 1e3:.1f}",
            f"{speedup:.2f}x",
            "bitwise equal" if identical else "MISMATCH",
        ],
    ]
    metrics = {
        "apply_speedup_fused": speedup,
        "arena_steady_state_allocs": float(steady_allocs),
    }
    return table_rows, metrics, identical


def _looped_exact_sum(stream, table_id, rows, delays, iteration, dim, std):
    """The historical per-lag no-ANS loop (one Philox launch per lag)."""
    total = np.zeros((rows.size, dim), dtype=np.float64)
    max_delay = int(delays.max()) if delays.size else 0
    order = np.argsort(-delays, kind="stable")
    ordered_rows = rows[order]
    ordered_delays = delays[order]
    for lag in range(1, max_delay + 1):
        active = int(np.searchsorted(-ordered_delays, -lag, side="right"))
        if active == 0:
            break
        total[order[:active]] += stream.row_noise(
            table_id, ordered_rows[:active], iteration - lag + 1, dim, std=std
        )
    return total


def sampling_sweep(rows_count=256, max_delay=512, dim=16, repeats=3):
    """Batched vs looped no-ANS catch-up on a tail-heavy delay profile."""
    rng = np.random.default_rng(11)
    stream = NoiseStream(seed=101)
    rows = np.sort(rng.choice(100_000, size=rows_count, replace=False))
    rows = rows.astype(np.int64)
    delays = rng.integers(0, max_delay, size=rows_count).astype(np.int64)
    iteration = max_delay + 1
    arena = BufferArena()

    result = {}

    def run_batched():
        result["batched"] = batched_catchup_sum(
            stream, 0, rows, delays, iteration, dim, std=0.5, arena=arena
        )

    def run_looped():
        result["looped"] = _looped_exact_sum(
            stream, 0, rows, delays, iteration, dim, 0.5
        )

    run_batched()  # warm the arena
    before = philox_invocations()
    run_batched()
    batched_launches = philox_invocations() - before
    before = philox_invocations()
    run_looped()
    looped_launches = philox_invocations() - before

    batched_seconds = _best_of(repeats, run_batched)
    looped_seconds = _best_of(repeats, run_looped)
    close = bool(np.allclose(result["batched"], result["looped"], atol=1e-10))

    speedup = looped_seconds / batched_seconds
    launch_ratio = batched_launches / max(looped_launches, 1)
    table_rows = [
        [
            "looped (one launch per lag)",
            f"{looped_seconds * 1e3:.1f}",
            str(looped_launches),
            "1.00x",
            "-",
        ],
        [
            "batched (flattened + segmented sum)",
            f"{batched_seconds * 1e3:.1f}",
            str(batched_launches),
            f"{speedup:.2f}x",
            "value equal" if close else "MISMATCH",
        ],
    ]
    metrics = {
        "sampling_speedup_batched": speedup,
        "philox_launch_ratio_batched": launch_ratio,
    }
    return table_rows, metrics, close


APPLY_HEADER = ["apply variant", "total ms", "vs unfused", "released slab"]
SAMPLING_HEADER = [
    "no-ANS sampler",
    "total ms",
    "philox launches",
    "vs looped",
    "catch-up sum",
]
NUMBA_APPLY_HEADER = ["apply backend", "total ms", "vs numpy", "slab"]
NUMBA_SAMPLING_HEADER = [
    "no-ANS sampler",
    "total ms",
    "philox launches",
    "vs numpy",
    "catch-up sum",
]


def numba_apply_sweep(
    num_rows=200_000, dim=16, touched=4096, iterations=60, repeats=3
):
    """Compiled vs numpy fused apply on identical data (bitwise-checked).

    Both backends replay the same pre-generated update stream against
    equal tables.  The warmup pass (which also triggers JIT
    compilation) runs before any timed window.
    """
    from repro.kernels import njit as njit_kernels
    from repro.kernels.fused import fused_noisy_update as numpy_fused

    rng = np.random.default_rng(7)
    updates = _make_updates(rng, num_rows, dim, touched, 8)
    base = rng.standard_normal((num_rows, dim))
    lr = 0.05

    numpy_table = base.copy()
    arena = BufferArena()

    def run_numpy():
        for i in range(iterations):
            (grad_rows, grad_values), (noise_rows, noise_values) = updates[i % 8]
            numpy_fused(
                numpy_table, lr, grad_rows, grad_values, noise_rows, noise_values,
                arena=arena,
            )

    numba_table = base.copy()

    def run_numba():
        for i in range(iterations):
            (grad_rows, grad_values), (noise_rows, noise_values) = updates[i % 8]
            njit_kernels.fused_noisy_update(
                numba_table, lr, grad_rows, grad_values, noise_rows, noise_values
            )

    # Warmup: numpy pays first-touch faults and arena growth, numba pays
    # JIT compilation — all excluded from the measured windows below.
    run_numpy()
    run_numba()
    numpy_table[:] = base
    numba_table[:] = base

    numpy_seconds = _best_of(repeats, run_numpy)
    numba_seconds = _best_of(repeats, run_numba)

    identical = numpy_table.tobytes() == numba_table.tobytes()
    speedup = numpy_seconds / numba_seconds
    table_rows = [
        ["numpy fused scatter", f"{numpy_seconds * 1e3:.1f}", "1.00x", "-"],
        [
            "numba fused @njit(parallel)",
            f"{numba_seconds * 1e3:.1f}",
            f"{speedup:.2f}x",
            "bitwise equal" if identical else "MISMATCH",
        ],
    ]
    metrics = {"fused_speedup_numba": speedup}
    return table_rows, metrics, identical


def numba_sampling_sweep(rows_count=256, max_delay=512, dim=16, repeats=3):
    """Compiled vs numpy no-ANS catch-up (checked within NUMERIC_TOLERANCE)."""
    from repro.kernels import njit as njit_kernels
    from repro.kernels.sampler import batched_catchup_sum as numpy_batched

    rng = np.random.default_rng(11)
    stream = NoiseStream(seed=101)
    rows = np.sort(rng.choice(100_000, size=rows_count, replace=False))
    rows = rows.astype(np.int64)
    delays = rng.integers(0, max_delay, size=rows_count).astype(np.int64)
    iteration = max_delay + 1
    arena = BufferArena()

    result = {}

    def run_numpy():
        result["numpy"] = numpy_batched(
            stream, 0, rows, delays, iteration, dim, std=0.5, arena=arena
        )

    def run_numba():
        result["numba"] = njit_kernels.batched_catchup_sum(
            stream, 0, rows, delays, iteration, dim, std=0.5
        )

    run_numpy()  # warm the arena
    run_numba()  # JIT compile
    before = philox_invocations()
    run_numpy()
    numpy_launches = philox_invocations() - before
    before = philox_invocations()
    run_numba()
    numba_launches = philox_invocations() - before

    numpy_seconds = _best_of(repeats, run_numpy)
    numba_seconds = _best_of(repeats, run_numba)
    close = bool(
        np.allclose(
            result["numpy"], result["numba"], **njit_kernels.NUMERIC_TOLERANCE
        )
    )

    speedup = numpy_seconds / numba_seconds
    table_rows = [
        [
            "numpy (flattened + segmented sum)",
            f"{numpy_seconds * 1e3:.1f}",
            str(numpy_launches),
            "1.00x",
            "-",
        ],
        [
            "numba (in-register prange)",
            f"{numba_seconds * 1e3:.1f}",
            str(numba_launches),
            f"{speedup:.2f}x",
            "within tolerance" if close else "MISMATCH",
        ],
    ]
    metrics = {"sampling_speedup_numba": speedup}
    return table_rows, metrics, close


def run_numba_report(smoke: bool, allow_fallback: bool = False) -> int:
    """The ``--backend numba`` report: compiled vs numpy, gated floors."""
    from repro.kernels import dispatch
    from repro.kernels.njit import NUMBA_AVAILABLE

    reason = dispatch.numba_missing_reason()
    if reason is not None and not allow_fallback:
        print(f"ERROR: {reason}", file=sys.stderr)
        print(
            "(--allow-fallback runs the equivalence checks interpreted, "
            "without the speedup gate)",
            file=sys.stderr,
        )
        return 2
    fallback = not NUMBA_AVAILABLE

    if fallback:
        # Interpreted kernels: keep the geometry tiny, skip the gate.
        apply_kwargs = dict(num_rows=2_000, dim=8, touched=96, iterations=4)
        sampling_kwargs = dict(rows_count=24, max_delay=24, dim=8)
    elif smoke:
        apply_kwargs = dict(num_rows=40_000, dim=16, touched=1024, iterations=40)
        sampling_kwargs = dict(rows_count=128, max_delay=256, dim=16)
    else:
        apply_kwargs = dict(num_rows=200_000, dim=16, touched=4096, iterations=60)
        sampling_kwargs = dict(rows_count=256, max_delay=512, dim=16)

    apply_rows, apply_metrics, identical = numba_apply_sweep(**apply_kwargs)
    title = "Fused apply, numba vs numpy ({num_rows} rows x dim {dim})".format(
        **apply_kwargs
    )
    print(format_table(NUMBA_APPLY_HEADER, apply_rows, title=title))
    sampling_rows, sampling_metrics, close = numba_sampling_sweep(
        **sampling_kwargs
    )
    title = (
        "No-ANS sampling, numba vs numpy "
        "({rows_count} rows, delays < {max_delay})".format(**sampling_kwargs)
    )
    print(format_table(NUMBA_SAMPLING_HEADER, sampling_rows, title=title))

    if not identical:
        print("ERROR: numba fused apply diverged from numpy bits", file=sys.stderr)
        return 1
    if not close:
        print(
            "ERROR: numba catch-up sums outside the pinned tolerance",
            file=sys.stderr,
        )
        return 1
    print(
        "\nequivalence: numba fused slab bitwise-equal to numpy; catch-up "
        "sums within the pinned tolerance (repro.kernels.njit"
        ".NUMERIC_TOLERANCE)"
    )
    if not fallback:
        # The plan-level route to these kernels: verify the dispatcher
        # actually swaps the package-level wrappers onto the numba table.
        import repro.kernels as kernel_api

        with kernel_api.use_kernel_backend("numba"):
            active = kernel_api.dispatch.active_kernel_table()
            assert active.fused_noisy_update is not None
            assert kernel_api.active_kernel_backend() == "numba"
    if fallback:
        print(
            "\ninterpreted fallback (numba not installed): timings are "
            "not meaningful, baseline gate skipped"
        )
        return 0
    metrics = dict(apply_metrics)
    metrics.update(sampling_metrics)
    return _jsonreport.gate(
        "apply_fusion_numba",
        metrics,
        meta={
            "smoke": smoke,
            "apply": apply_kwargs,
            "sampling": sampling_kwargs,
            "plan": "backend=numba",
        },
    )


def run_report(smoke: bool = False) -> int:
    if smoke:
        apply_kwargs = dict(num_rows=40_000, dim=16, touched=1024, iterations=40)
        sampling_kwargs = dict(rows_count=128, max_delay=256, dim=16)
    else:
        apply_kwargs = dict(num_rows=200_000, dim=16, touched=4096, iterations=60)
        sampling_kwargs = dict(rows_count=256, max_delay=512, dim=16)

    apply_rows, apply_metrics, identical = apply_fusion_sweep(**apply_kwargs)
    title = "Fused apply kernel ({num_rows} rows x dim {dim})".format(**apply_kwargs)
    print(format_table(APPLY_HEADER, apply_rows, title=title))
    sampling_rows, sampling_metrics, close = sampling_sweep(**sampling_kwargs)
    title = "No-ANS sampling ({rows_count} rows, delays < {max_delay})".format(
        **sampling_kwargs
    )
    print(format_table(SAMPLING_HEADER, sampling_rows, title=title))

    if not identical:
        print("ERROR: fused apply diverged from the reference", file=sys.stderr)
        return 1
    if not close:
        print("ERROR: batched sampler diverged from the lag loop", file=sys.stderr)
        return 1
    print(
        "\nequivalence: fused slab bitwise-equal to the reference; "
        "batched catch-up sums value-equal to the lag loop"
    )
    metrics = dict(apply_metrics)
    metrics.update(sampling_metrics)
    # The kernel surfaces map onto the session API's plan axes: the
    # fused apply serves every plan's apply phase, the batched sampler
    # is the ans=off plan's exact-replay path.
    from repro.session import ExecutionPlan

    plans = {
        "apply": ExecutionPlan().canonical(),
        "sampling": ExecutionPlan(ans=False).canonical(),
    }
    return _jsonreport.gate(
        "apply_fusion",
        metrics,
        meta={
            "smoke": smoke,
            "apply": apply_kwargs,
            "sampling": sampling_kwargs,
            "plans": plans,
        },
    )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def test_apply_fusion_measured(benchmark):
    from conftest import emit_report

    apply_rows, metrics, identical = benchmark.pedantic(
        apply_fusion_sweep,
        kwargs={"num_rows": 40_000, "dim": 16, "touched": 1024, "iterations": 40},
        rounds=1,
        iterations=1,
    )
    emit_report(
        "apply_fusion",
        format_table(
            APPLY_HEADER, apply_rows, title="Fused apply kernel (40000 rows x dim 16)"
        ),
    )
    assert identical
    assert metrics["arena_steady_state_allocs"] == 0.0


def test_sampling_batched_measured(benchmark):
    from conftest import emit_report

    sampling_rows, metrics, close = benchmark.pedantic(
        sampling_sweep,
        kwargs={"rows_count": 128, "max_delay": 256, "dim": 16},
        rounds=1,
        iterations=1,
    )
    emit_report(
        "apply_fusion_sampling",
        format_table(
            SAMPLING_HEADER,
            sampling_rows,
            title="No-ANS sampling (128 rows, delays < 256)",
        ),
    )
    assert close
    assert metrics["philox_launch_ratio_batched"] < 1.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast sweep for CI")
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba"),
        default="numpy",
        help="which kernel table to measure",
    )
    parser.add_argument(
        "--allow-fallback",
        action="store_true",
        help="with --backend numba but no numba installed: run the "
        "equivalence checks interpreted and skip the speedup gate",
    )
    args = parser.parse_args()
    if args.backend == "numba":
        raise SystemExit(
            run_numba_report(smoke=args.smoke, allow_fallback=args.allow_fallback)
        )
    raise SystemExit(run_report(smoke=args.smoke))
