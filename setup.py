"""Setup shim.

All metadata lives in pyproject.toml; this file exists so the package can
be installed editable (``pip install -e . --no-use-pep517``) in offline
environments that lack the ``wheel`` package required by PEP 517 builds.
"""

from setuptools import setup

setup()
