"""Calibrated access-skew models for embedding-table traces.

Paper Figure 13(d) builds three datasets from Criteo following [38] where
"90% of the embedding table accesses are concentrated on 36%, 10%, and 0.6%
of table entries" (low / medium / high skew).  Real RecSys traces follow a
power law [34, 35, 38, 41, 64], so we model popularity as Zipf with exponent
``s`` and *calibrate* ``s`` per table size to hit exactly those operating
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

# Fraction of rows that receives 90% of accesses, per skew level (Section 7.3).
PAPER_SKEW_TOP_FRACTIONS = {
    "low": 0.36,
    "medium": 0.10,
    "high": 0.006,
}
PAPER_SKEW_MASS = 0.90


@dataclass(frozen=True)
class SkewSpec:
    """How a table's accesses are distributed over its rows.

    ``kind`` is ``"uniform"`` (the paper's default trace, Section 6) or
    ``"zipf"`` with the given exponent.
    """

    kind: str = "uniform"
    exponent: float = 0.0

    def __post_init__(self):
        if self.kind not in ("uniform", "zipf"):
            raise ValueError(f"unknown skew kind: {self.kind}")
        if self.kind == "zipf" and self.exponent <= 0:
            raise ValueError("zipf skew requires a positive exponent")


def zipf_weights(num_rows: int, exponent: float) -> np.ndarray:
    """Unnormalised Zipf popularity for ranks 1..num_rows (descending)."""
    if num_rows < 1:
        raise ValueError("num_rows must be positive")
    ranks = np.arange(1, num_rows + 1, dtype=np.float64)
    return ranks ** (-float(exponent))


def mass_of_top_fraction(exponent: float, num_rows: int,
                         fraction: float) -> float:
    """Fraction of total access mass landing on the hottest ``fraction`` rows."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    weights = zipf_weights(num_rows, exponent)
    top_rows = max(1, int(round(fraction * num_rows)))
    return float(weights[:top_rows].sum() / weights.sum())


def calibrate_zipf_exponent(num_rows: int, top_fraction: float,
                            target_mass: float = PAPER_SKEW_MASS,
                            tolerance: float = 1e-4) -> float:
    """Find the Zipf exponent that puts ``target_mass`` on the top rows.

    Solves ``mass_of_top_fraction(s) == target_mass`` by bisection; the mass
    is monotonically increasing in ``s``, so the root is unique.
    """
    if not 0.0 < top_fraction < 1.0:
        raise ValueError("top_fraction must be in (0, 1)")
    if not 0.0 < target_mass < 1.0:
        raise ValueError("target_mass must be in (0, 1)")
    if mass_of_top_fraction(1e-9, num_rows, top_fraction) > target_mass:
        raise ValueError(
            "table too small: even uniform access exceeds the target mass"
        )
    low, high = 1e-9, 1.0
    while mass_of_top_fraction(high, num_rows, top_fraction) < target_mass:
        high *= 2.0
        if high > 64.0:
            raise RuntimeError("zipf calibration failed to bracket the root")
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if mass_of_top_fraction(mid, num_rows, top_fraction) < target_mass:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


@lru_cache(maxsize=1024)
def expected_unique_rows(num_rows: int, draws: int,
                         spec: SkewSpec | None = None) -> float:
    """Expected count of distinct rows hit by ``draws`` i.i.d. lookups.

    For a row hit with probability ``p_r`` per lookup, the chance it is
    touched at least once in ``draws`` lookups is ``1 - (1 - p_r)^draws``;
    summing over rows gives the expected unique footprint.  This is what
    sizes LazyDP's per-iteration catch-up set (and hence its cost), so the
    performance model leans on it for Figures 10, 13(b) and 13(d).
    """
    if draws < 0:
        raise ValueError("draws must be non-negative")
    if draws == 0:
        return 0.0
    if spec is None or spec.kind == "uniform":
        # All rows share p = 1/num_rows; use expm1/log1p for precision when
        # num_rows is huge and p is tiny.
        log_miss = draws * np.log1p(-1.0 / num_rows)
        return float(-num_rows * np.expm1(log_miss))
    weights = zipf_weights(num_rows, spec.exponent)
    probabilities = weights / weights.sum()
    log_miss = draws * np.log1p(-probabilities)
    return float(-np.expm1(log_miss).sum())


@lru_cache(maxsize=64)
def paper_skew_spec(level: str, num_rows: int) -> SkewSpec:
    """SkewSpec for the paper's named skew level, calibrated to ``num_rows``.

    ``level`` is ``"random"`` (uniform), ``"low"``, ``"medium"`` or
    ``"high"``.
    """
    if level == "random":
        return SkewSpec(kind="uniform")
    if level not in PAPER_SKEW_TOP_FRACTIONS:
        raise ValueError(f"unknown skew level: {level}")
    exponent = calibrate_zipf_exponent(
        num_rows, PAPER_SKEW_TOP_FRACTIONS[level]
    )
    return SkewSpec(kind="zipf", exponent=exponent)
