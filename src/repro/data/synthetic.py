"""Synthetic click-log generation (the Criteo / MLPerf trace substitute).

The paper trains on MLPerf DLRM with uniformly drawn table indices
(Section 6) and on Kaggle DAC re-skewed per [38] (Section 7.3).  Neither
raw dataset ships here, so ``SyntheticClickDataset`` generates equivalent
traces: every example is a pure function of ``(seed, example_id)`` via the
Philox generator, so datasets are unbounded, random-access and perfectly
reproducible — which is also what lets the LazyDP input queue "see the
future" the way a stored training set does (paper Section 5.1).

Labels carry a learnable logistic signal from the dense features plus
embedding-popularity effects, so end-to-end training measurably reduces the
loss (used by integration tests; the paper itself reports throughput only).
"""

from __future__ import annotations

import numpy as np

from ..configs import DLRMConfig
from ..rng import DOMAIN_DATA, derive_key, make_counters, philox4x32, uniform_from_uint32
from ..rng.philox import splitmix64
from .batch import Batch
from .skew import SkewSpec, zipf_weights

_U32 = np.uint64(0xFFFFFFFF)

# Sub-domains inside DOMAIN_DATA, encoded in counter word 2's high bits.
_FIELD_SPARSE = 0
_FIELD_DENSE = 1
_FIELD_LABEL = 2


def _field_uniforms(seed: int, stream: int, field: int,
                    example_ids: np.ndarray, count: int) -> np.ndarray:
    """``(len(example_ids), count)`` deterministic uniforms in (0, 1)."""
    example_ids = np.asarray(example_ids, dtype=np.uint64)
    key = derive_key(seed, DOMAIN_DATA, stream)
    blocks = (count + 3) // 4
    block_idx = np.arange(blocks, dtype=np.uint32)
    counters = make_counters(
        np.repeat((example_ids & _U32).astype(np.uint32), blocks),
        np.repeat((example_ids >> np.uint64(32)).astype(np.uint32), blocks),
        np.uint32(field),
        np.tile(block_idx, example_ids.shape[0]),
    )
    words = philox4x32(counters, key)
    uniforms = uniform_from_uint32(words).reshape(example_ids.shape[0], blocks * 4)
    return uniforms[:, :count]


class SyntheticClickDataset:
    """Deterministic, random-access CTR dataset for a given DLRM geometry.

    Parameters
    ----------
    config:
        The model geometry (tables, rows, lookups, dense width).
    seed:
        Master seed; identical seeds give identical datasets.
    skew:
        A single :class:`SkewSpec` applied to every table, or a sequence
        with one spec per table.  Default: uniform (the paper's Section 6
        configuration).
    num_examples:
        Nominal dataset size, used by samplers to bound example ids.
    """

    def __init__(self, config: DLRMConfig, seed: int = 0,
                 skew: SkewSpec | list | None = None,
                 num_examples: int = 1 << 20):
        self.config = config
        self.seed = int(seed)
        self.num_examples = int(num_examples)
        if skew is None:
            skew = SkewSpec(kind="uniform")
        if isinstance(skew, SkewSpec):
            self.skews = [skew] * config.num_tables
        else:
            self.skews = list(skew)
            if len(self.skews) != config.num_tables:
                raise ValueError("need one SkewSpec per table")
        self._cdfs = [self._build_cdf(t) for t in range(config.num_tables)]
        self._perms = [self._build_permutation(t) for t in range(config.num_tables)]
        # Fixed ground-truth weights for the learnable label signal.
        label_u = _field_uniforms(
            self.seed, stream=2**20 + 7, field=_FIELD_LABEL,
            example_ids=np.arange(1, dtype=np.uint64),
            count=config.dense_features,
        )[0]
        self._label_weights = 4.0 * (label_u - 0.5)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_cdf(self, table: int) -> np.ndarray | None:
        spec = self.skews[table]
        if spec.kind == "uniform":
            return None
        weights = zipf_weights(self.config.table_rows[table], spec.exponent)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        return cdf

    def _build_permutation(self, table: int) -> np.ndarray | None:
        """Scatter popularity ranks over row ids so hot rows aren't contiguous."""
        if self.skews[table].kind == "uniform":
            return None
        perm_seed = int(splitmix64(np.uint64(self.seed) ^ np.uint64(0xDA7A + table)))
        rng = np.random.default_rng(perm_seed)
        return rng.permutation(self.config.table_rows[table]).astype(np.int64)

    # ------------------------------------------------------------------
    # Example synthesis
    # ------------------------------------------------------------------
    def sparse_indices(self, example_ids: np.ndarray) -> np.ndarray:
        """``(n, num_tables, lookups)`` embedding indices for the examples."""
        example_ids = np.asarray(example_ids, dtype=np.uint64)
        n = example_ids.shape[0]
        lookups = self.config.lookups_per_table
        out = np.empty((n, self.config.num_tables, lookups), dtype=np.int64)
        for t in range(self.config.num_tables):
            uniforms = _field_uniforms(
                self.seed, stream=t, field=_FIELD_SPARSE,
                example_ids=example_ids, count=lookups,
            )
            rows = self.config.table_rows[t]
            if self._cdfs[t] is None:
                indices = np.minimum((uniforms * rows).astype(np.int64), rows - 1)
            else:
                ranks = np.searchsorted(self._cdfs[t], uniforms, side="left")
                ranks = np.minimum(ranks, rows - 1)
                indices = self._perms[t][ranks]
            out[:, t, :] = indices
        return out

    def dense_features(self, example_ids: np.ndarray) -> np.ndarray:
        """``(n, dense_features)`` continuous features in [-1, 1]."""
        uniforms = _field_uniforms(
            self.seed, stream=2**20 + 1, field=_FIELD_DENSE,
            example_ids=np.asarray(example_ids, dtype=np.uint64),
            count=self.config.dense_features,
        )
        return 2.0 * uniforms - 1.0

    def labels(self, example_ids: np.ndarray,
               dense: np.ndarray | None = None) -> np.ndarray:
        """Bernoulli labels with a logistic signal on the dense features."""
        example_ids = np.asarray(example_ids, dtype=np.uint64)
        if dense is None:
            dense = self.dense_features(example_ids)
        logits = dense @ self._label_weights
        probability = 1.0 / (1.0 + np.exp(-logits))
        coin = _field_uniforms(
            self.seed, stream=2**20 + 3, field=_FIELD_LABEL,
            example_ids=example_ids, count=1,
        )[:, 0]
        return (coin < probability).astype(np.float64)

    def batch(self, example_ids: np.ndarray) -> Batch:
        """Materialise a mini-batch for the given example ids."""
        example_ids = np.asarray(example_ids, dtype=np.uint64)
        dense = self.dense_features(example_ids)
        return Batch(
            dense=dense,
            sparse=self.sparse_indices(example_ids),
            labels=self.labels(example_ids, dense),
        )

    def __len__(self) -> int:
        return self.num_examples
