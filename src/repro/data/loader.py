"""Mini-batch sampling and the LazyDP lookahead queue.

Two samplers are provided:

* ``"fixed"`` — shuffled fixed-size batches, the configuration the paper's
  throughput study uses (batch is a constant 1024/2048/4096).
* ``"poisson"`` — Opacus-style Poisson sampling, where each example joins
  the batch independently with probability ``q = batch_size / num_examples``.
  This is the sampling the RDP accountant assumes (paper Section 5.3 keeps
  Opacus' Poisson sampler).

``InputQueue`` is the two-entry structure of Algorithm 1 (lines 3-5) and
Figure 9(b): LazyDP prefetches exactly one mini-batch of lookahead so it
knows which rows the *next* iteration will gather.  ``LookaheadLoader``
packages a loader plus queue into ``(iteration, current, upcoming)`` tuples.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..rng.philox import splitmix64
from .batch import Batch
from .synthetic import SyntheticClickDataset


class DataLoader:
    """Deterministic sampler over a :class:`SyntheticClickDataset`."""

    def __init__(self, dataset: SyntheticClickDataset, batch_size: int,
                 num_batches: int, sampling: str = "fixed", seed: int = 0):
        if sampling not in ("fixed", "poisson"):
            raise ValueError(f"unknown sampling mode: {sampling}")
        if batch_size < 1 or num_batches < 1:
            raise ValueError("batch_size and num_batches must be positive")
        if batch_size > len(dataset):
            raise ValueError("batch_size cannot exceed the dataset size")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.num_batches = int(num_batches)
        self.sampling = sampling
        self.seed = int(seed)

    @property
    def sample_rate(self) -> float:
        """The Poisson inclusion probability q used for DP accounting."""
        return self.batch_size / len(self.dataset)

    def example_ids_for(self, iteration: int) -> np.ndarray:
        """Deterministic example ids for a given iteration (0-based)."""
        iteration_seed = int(
            splitmix64(np.uint64(self.seed) ^ np.uint64(0xB47C * (iteration + 1)))
        )
        rng = np.random.default_rng(iteration_seed)
        population = len(self.dataset)
        if self.sampling == "fixed":
            return rng.choice(population, size=self.batch_size, replace=False)
        mask = rng.random(population) < self.sample_rate
        ids = np.nonzero(mask)[0]
        if ids.size == 0:
            # An empty Poisson batch is valid DP-wise but useless for
            # training; resample one element to keep the pipeline moving.
            ids = rng.choice(population, size=1)
        return ids

    def batch_for(self, iteration: int) -> Batch:
        return self.dataset.batch(self.example_ids_for(iteration))

    def __iter__(self):
        for iteration in range(self.num_batches):
            yield self.batch_for(iteration)

    def __len__(self) -> int:
        return self.num_batches


class InputQueue:
    """The two-entry mini-batch queue of Algorithm 1 (lines 3-5).

    ``head`` is the batch being trained on; ``tail`` is the prefetched next
    batch whose sparse indices identify the rows that need their deferred
    noise applied *this* iteration.
    """

    def __init__(self, size: int = 2):
        if size < 2:
            raise ValueError("LazyDP needs at least one batch of lookahead")
        self.size = size
        self._queue: deque = deque()

    def push(self, batch: Batch | None) -> None:
        if len(self._queue) >= self.size:
            raise RuntimeError("InputQueue overflow: pop before pushing")
        self._queue.append(batch)

    def pop(self) -> Batch | None:
        if not self._queue:
            raise RuntimeError("InputQueue underflow")
        return self._queue.popleft()

    def head(self) -> Batch | None:
        """The current iteration's mini-batch."""
        if not self._queue:
            raise RuntimeError("InputQueue is empty")
        return self._queue[0]

    def tail(self) -> Batch | None:
        """The next iteration's (prefetched) mini-batch."""
        if len(self._queue) < 2:
            raise RuntimeError("InputQueue has no lookahead entry")
        return self._queue[-1]

    def __len__(self) -> int:
        return len(self._queue)


class LookaheadLoader:
    """Iterate ``(iteration, current, upcoming)`` with one batch of lookahead.

    ``upcoming`` is ``None`` on the final iteration — there is no next batch,
    so LazyDP has nothing to catch up eagerly and relies on the terminal
    flush instead.
    """

    def __init__(self, loader: DataLoader):
        self.loader = loader

    def __iter__(self):
        queue = InputQueue(size=2)
        iterator = iter(self.loader)
        try:
            queue.push(next(iterator))  # bootstrap: load the first mini-batch
        except StopIteration:
            return
        iteration = 0
        while True:
            try:
                queue.push(next(iterator))
            except StopIteration:
                queue.push(None)
            current = queue.head()
            upcoming = queue.tail()
            yield iteration, current, upcoming
            queue.pop()
            if upcoming is None:
                return
            iteration += 1

    def __len__(self) -> int:
        return len(self.loader)
