"""Mini-batch sampling and the LazyDP lookahead queue.

Two samplers are provided:

* ``"fixed"`` — shuffled fixed-size batches, the configuration the paper's
  throughput study uses (batch is a constant 1024/2048/4096).
* ``"poisson"`` — Opacus-style Poisson sampling, where each example joins
  the batch independently with probability ``q = batch_size / num_examples``.
  This is the sampling the RDP accountant assumes (paper Section 5.3 keeps
  Opacus' Poisson sampler).

``InputQueue`` is the structure of Algorithm 1 (lines 3-5) and
Figure 9(b): LazyDP prefetches mini-batches of lookahead so it knows
which rows upcoming iterations will gather.  The paper's queue holds
exactly two entries (one batch of lookahead); ``LookaheadLoader``
generalises that to ``depth`` batches — the pipelined trainer
(``repro.pipeline``) uses the extra runway to precompute catch-up noise
in the background — and packages a loader plus queue into
``(iteration, current, upcoming)`` tuples.  The ``on_load`` hook fires
as each batch enters the queue, handing its row set to any prefetch
consumer before the batch is trained on.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..rng.philox import splitmix64
from .batch import Batch
from .synthetic import SyntheticClickDataset


class DataLoader:
    """Deterministic sampler over a :class:`SyntheticClickDataset`."""

    def __init__(self, dataset: SyntheticClickDataset, batch_size: int,
                 num_batches: int, sampling: str = "fixed", seed: int = 0):
        if sampling not in ("fixed", "poisson"):
            raise ValueError(f"unknown sampling mode: {sampling}")
        if batch_size < 1 or num_batches < 1:
            raise ValueError("batch_size and num_batches must be positive")
        if batch_size > len(dataset):
            raise ValueError("batch_size cannot exceed the dataset size")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.num_batches = int(num_batches)
        self.sampling = sampling
        self.seed = int(seed)

    @property
    def sample_rate(self) -> float:
        """The Poisson inclusion probability q used for DP accounting."""
        return self.batch_size / len(self.dataset)

    def example_ids_for(self, iteration: int) -> np.ndarray:
        """Deterministic example ids for a given iteration (0-based)."""
        iteration_seed = int(
            splitmix64(np.uint64(self.seed) ^ np.uint64(0xB47C * (iteration + 1)))
        )
        rng = np.random.default_rng(iteration_seed)
        population = len(self.dataset)
        if self.sampling == "fixed":
            return rng.choice(population, size=self.batch_size, replace=False)
        mask = rng.random(population) < self.sample_rate
        ids = np.nonzero(mask)[0]
        if ids.size == 0:
            # An empty Poisson batch is valid DP-wise but useless for
            # training; resample one element to keep the pipeline moving.
            ids = rng.choice(population, size=1)
        return ids

    def batch_for(self, iteration: int) -> Batch:
        return self.dataset.batch(self.example_ids_for(iteration))

    def __iter__(self):
        for iteration in range(self.num_batches):
            yield self.batch_for(iteration)

    def __len__(self) -> int:
        return self.num_batches


class InputQueue:
    """The mini-batch queue of Algorithm 1 (lines 3-5), generalised to depth k.

    ``head`` is the batch being trained on; ``peek(1)`` is the prefetched
    next batch whose sparse indices identify the rows that need their
    deferred noise applied *this* iteration.  The paper's structure is the
    two-entry special case (``size=2``); deeper queues give the pipelined
    trainer's noise-prefetch worker more runway (``repro.pipeline``).
    """

    def __init__(self, size: int = 2):
        if size < 2:
            raise ValueError("LazyDP needs at least one batch of lookahead")
        self.size = size
        self._queue: deque = deque()

    def push(self, batch: Batch | None) -> None:
        if len(self._queue) >= self.size:
            raise RuntimeError("InputQueue overflow: pop before pushing")
        self._queue.append(batch)

    def pop(self) -> Batch | None:
        if not self._queue:
            raise RuntimeError("InputQueue underflow")
        return self._queue.popleft()

    def head(self) -> Batch | None:
        """The current iteration's mini-batch."""
        if not self._queue:
            raise RuntimeError("InputQueue is empty")
        return self._queue[0]

    def peek(self, offset: int) -> Batch | None:
        """The batch ``offset`` positions behind the head (0 == head)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if offset >= len(self._queue):
            raise RuntimeError(
                f"InputQueue holds {len(self._queue)} entries, "
                f"cannot peek offset {offset}"
            )
        return self._queue[offset]

    def tail(self) -> Batch | None:
        """The deepest prefetched mini-batch (the next batch when size=2)."""
        if len(self._queue) < 2:
            raise RuntimeError("InputQueue has no lookahead entry")
        return self._queue[-1]

    def __len__(self) -> int:
        return len(self._queue)


class LookaheadLoader:
    """Iterate ``(iteration, current, upcoming)`` with ``depth`` batches of
    lookahead.

    ``upcoming`` is always the *immediately* next batch (what LazyDP's
    catch-up needs) and is ``None`` on the final iteration — there is no
    next batch, so LazyDP has nothing to catch up eagerly and relies on
    the terminal flush instead.

    ``depth`` controls how far ahead batches are loaded into the
    :class:`InputQueue` (``depth=1`` is the paper's two-entry queue).
    ``on_load`` — when given — is called as ``on_load(position, batch)``
    the moment a batch is loaded, with ``position`` the 0-based loader
    index, and once more as ``on_load(position, None)`` at end of stream.
    The pipelined trainer's noise-prefetch worker hangs off this hook:
    batch ``position`` arrives ``depth`` iterations before it is trained
    on, which is the runway that hides noise catch-up behind useful work.
    """

    def __init__(self, loader: DataLoader, depth: int = 1, on_load=None):
        if depth < 1:
            raise ValueError("lookahead depth must be at least 1")
        self.loader = loader
        self.depth = int(depth)
        self.on_load = on_load

    def _load_one(self, queue: InputQueue, iterator, position: int) -> int:
        """Advance the loader once; returns the next position (or -1 when
        the end-of-stream sentinel was pushed)."""
        try:
            batch = next(iterator)
        except StopIteration:
            batch = None
        if self.on_load is not None:
            self.on_load(position, batch)
        queue.push(batch)
        return -1 if batch is None else position + 1

    def __iter__(self):
        queue = InputQueue(size=self.depth + 1)
        iterator = iter(self.loader)
        position = self._load_one(queue, iterator, 0)  # bootstrap
        if queue.head() is None:
            return  # empty loader: sentinel only, nothing to train on
        iteration = 0
        while True:
            # Keep the queue topped up to its full lookahead depth until
            # the end-of-stream sentinel (None) has been enqueued.
            while position >= 0 and len(queue) < queue.size:
                position = self._load_one(queue, iterator, position)
            current = queue.head()
            upcoming = queue.peek(1)
            yield iteration, current, upcoming
            queue.pop()
            if upcoming is None:
                return
            iteration += 1

    def __len__(self) -> int:
        return len(self.loader)
