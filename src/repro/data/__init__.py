"""Data substrate: synthetic traces, skew calibration and loaders."""

from .batch import Batch
from .criteo import CriteoFileDataset, fnv1a_64, hash_to_row, write_synthetic_criteo
from .loader import DataLoader, InputQueue, LookaheadLoader
from .skew import (
    PAPER_SKEW_MASS,
    PAPER_SKEW_TOP_FRACTIONS,
    SkewSpec,
    calibrate_zipf_exponent,
    mass_of_top_fraction,
    paper_skew_spec,
    zipf_weights,
)
from .synthetic import SyntheticClickDataset
from .tracestats import TraceStats, analyze_trace, collect_trace, loader_stats

__all__ = [
    "Batch",
    "CriteoFileDataset",
    "fnv1a_64",
    "hash_to_row",
    "write_synthetic_criteo",
    "TraceStats",
    "analyze_trace",
    "collect_trace",
    "loader_stats",
    "DataLoader",
    "InputQueue",
    "LookaheadLoader",
    "PAPER_SKEW_MASS",
    "PAPER_SKEW_TOP_FRACTIONS",
    "SkewSpec",
    "calibrate_zipf_exponent",
    "mass_of_top_fraction",
    "paper_skew_spec",
    "zipf_weights",
    "SyntheticClickDataset",
]
