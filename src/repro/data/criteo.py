"""Criteo click-log file format: parsing, hashing, and synthesis.

The paper's Section 7.3 experiments use the Kaggle Display Advertising
Challenge (DAC) dataset [33]: tab-separated lines of

    label \t I1..I13 (integers, may be empty) \t C1..C26 (hex strings)

That dataset cannot ship here, so this module provides both halves of the
substitution (DESIGN.md):

* :func:`write_synthetic_criteo` emits files in the exact DAC format with
  configurable per-feature skew, so the ingestion path is exercised end
  to end;
* :class:`CriteoFileDataset` ingests any DAC-format file with the
  standard preprocessing — ``log(1+x)`` transform for integer features,
  hashing trick for categoricals — and exposes the same ``batch`` API as
  :class:`~repro.data.synthetic.SyntheticClickDataset`, so it plugs
  straight into :class:`~repro.data.loader.DataLoader`.
"""

from __future__ import annotations

import numpy as np

from ..configs import DLRMConfig
from .batch import Batch
from .skew import SkewSpec, zipf_weights

NUM_INTEGER_FEATURES = 13
NUM_CATEGORICAL_FEATURES = 26

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)


def fnv1a_64(token: str) -> int:
    """FNV-1a 64-bit hash of a string (the hashing-trick hash).

    Deterministic across runs and platforms, unlike Python's ``hash``.
    """
    value = _FNV_OFFSET
    with np.errstate(over="ignore"):
        for byte in token.encode("utf-8"):
            value = (value ^ np.uint64(byte)) * _FNV_PRIME
    return int(value)


def hash_to_row(token: str, num_rows: int) -> int:
    """Map a categorical token to a table row via the hashing trick."""
    if num_rows < 1:
        raise ValueError("num_rows must be positive")
    return fnv1a_64(token) % num_rows


class CriteoFileDataset:
    """A DAC-format file, preprocessed into model-ready arrays.

    Parameters
    ----------
    path:
        The TSV file.
    config:
        Target model geometry; the file's 26 categorical columns are
        hashed into ``config.num_tables`` tables (extra columns are
        dropped, missing ones error), and integer features are truncated
        or zero-padded to ``config.dense_features``.
    """

    def __init__(self, path, config: DLRMConfig):
        if config.lookups_per_table != 1:
            raise ValueError(
                "DAC files are single-valued per categorical feature; "
                "use lookups_per_table=1"
            )
        if config.num_tables > NUM_CATEGORICAL_FEATURES:
            raise ValueError(
                f"DAC provides {NUM_CATEGORICAL_FEATURES} categorical "
                f"features; config wants {config.num_tables} tables"
            )
        self.config = config
        labels, dense, sparse = self._parse(path)
        self.labels = labels
        self.dense = dense
        self.sparse = sparse

    def _parse(self, path):
        labels = []
        dense_rows = []
        sparse_rows = []
        config = self.config
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                fields = line.split("\t")
                expected = 1 + NUM_INTEGER_FEATURES + NUM_CATEGORICAL_FEATURES
                if len(fields) != expected:
                    raise ValueError(
                        f"{path}:{line_number}: expected {expected} fields, "
                        f"got {len(fields)}"
                    )
                labels.append(float(fields[0]))
                dense_rows.append(self._dense_features(
                    fields[1:1 + NUM_INTEGER_FEATURES]
                ))
                sparse_rows.append(self._sparse_indices(
                    fields[1 + NUM_INTEGER_FEATURES:]
                ))
        if not labels:
            raise ValueError(f"{path} contains no examples")
        return (
            np.asarray(labels, dtype=np.float64),
            np.asarray(dense_rows, dtype=np.float64),
            np.asarray(sparse_rows, dtype=np.int64)[:, :, None],
        )

    def _dense_features(self, tokens) -> list:
        """log(1 + max(x, 0)) transform; missing values become 0."""
        values = []
        for token in tokens[:self.config.dense_features]:
            if token == "":
                values.append(0.0)
            else:
                values.append(float(np.log1p(max(int(token), 0))))
        while len(values) < self.config.dense_features:
            values.append(0.0)
        return values

    def _sparse_indices(self, tokens) -> list:
        indices = []
        for table, token in enumerate(tokens[:self.config.num_tables]):
            rows = self.config.table_rows[table]
            if token == "":
                indices.append(0)  # conventional missing-value bucket
            else:
                indices.append(hash_to_row(token, rows))
        return indices

    # -- dataset protocol (mirrors SyntheticClickDataset) ---------------
    def __len__(self) -> int:
        return self.labels.shape[0]

    def batch(self, example_ids) -> Batch:
        ids = np.asarray(example_ids, dtype=np.int64)
        return Batch(
            dense=self.dense[ids],
            sparse=self.sparse[ids],
            labels=self.labels[ids],
        )


def write_synthetic_criteo(path, num_examples: int, seed: int = 0,
                           vocabulary_sizes=None,
                           skew: SkewSpec | None = None,
                           missing_rate: float = 0.05) -> None:
    """Write a synthetic click log in the exact DAC format.

    ``vocabulary_sizes`` gives the distinct-token count per categorical
    column (default 1000 each); ``skew`` shapes token popularity the same
    way the trace generators do, so re-skewed files reproduce the paper's
    Figure 13(d) methodology end to end.
    """
    if num_examples < 1:
        raise ValueError("num_examples must be positive")
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must be in [0, 1)")
    if vocabulary_sizes is None:
        vocabulary_sizes = [1000] * NUM_CATEGORICAL_FEATURES
    if len(vocabulary_sizes) != NUM_CATEGORICAL_FEATURES:
        raise ValueError(
            f"need {NUM_CATEGORICAL_FEATURES} vocabulary sizes"
        )

    rng = np.random.default_rng(seed)
    probabilities = []
    for size in vocabulary_sizes:
        if skew is None or skew.kind == "uniform":
            probabilities.append(None)
        else:
            weights = zipf_weights(size, skew.exponent)
            probabilities.append(weights / weights.sum())

    with open(path, "w", encoding="utf-8") as handle:
        for _ in range(num_examples):
            label = int(rng.random() < 0.25)
            fields = [str(label)]
            for _ in range(NUM_INTEGER_FEATURES):
                if rng.random() < missing_rate:
                    fields.append("")
                else:
                    fields.append(str(int(rng.poisson(30))))
            for column, size in enumerate(vocabulary_sizes):
                if rng.random() < missing_rate:
                    fields.append("")
                    continue
                if probabilities[column] is None:
                    token_id = int(rng.integers(size))
                else:
                    token_id = int(rng.choice(size, p=probabilities[column]))
                fields.append(f"{token_id:08x}")
            handle.write("\t".join(fields) + "\n")
