"""The mini-batch container shared by data loaders, models and trainers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Batch:
    """One training mini-batch for a DLRM-style model.

    Attributes
    ----------
    dense:
        ``(batch, dense_features)`` float array of continuous features.
    sparse:
        ``(batch, num_tables, lookups)`` int64 array of embedding indices —
        the "sparse feature input" of paper Figure 1.  ``lookups`` is the
        pooling factor the paper sweeps in Figure 13(b).
    labels:
        ``(batch,)`` float array of {0, 1} click labels.
    """

    dense: np.ndarray
    sparse: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        self.dense = np.asarray(self.dense, dtype=np.float64)
        self.sparse = np.asarray(self.sparse, dtype=np.int64)
        self.labels = np.asarray(self.labels, dtype=np.float64)
        if self.sparse.ndim != 3:
            raise ValueError("sparse must be (batch, num_tables, lookups)")
        if self.dense.ndim != 2:
            raise ValueError("dense must be (batch, dense_features)")
        if not (
            self.dense.shape[0] == self.sparse.shape[0] == self.labels.shape[0]
        ):
            raise ValueError("batch dimension mismatch across fields")

    @property
    def size(self) -> int:
        return self.dense.shape[0]

    @property
    def num_tables(self) -> int:
        return self.sparse.shape[1]

    @property
    def lookups(self) -> int:
        return self.sparse.shape[2]

    def accessed_rows(self, table: int) -> np.ndarray:
        """Unique rows of ``table`` this batch will gather (sorted)."""
        return np.unique(self.sparse[:, table, :])
