"""Empirical statistics of embedding access traces.

The performance model's LazyDP costs hinge on trace statistics — unique
rows per iteration, access-mass concentration, catch-up delay
distributions.  This module computes them from *generated* traces so the
analytic expectations (``expected_unique_rows``, the steady-state delay
argument behind LazyDP-without-ANS) can be validated empirically, and so
users can characterise their own workloads before choosing batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .loader import DataLoader


@dataclass(frozen=True)
class TraceStats:
    """Summary of one table's access trace over a training run."""

    num_rows: int
    iterations: int
    lookups_per_iteration: float      # raw lookups (with duplicates)
    unique_per_iteration: float       # mean deduped footprint
    coverage: float                   # fraction of rows touched at least once
    top_fraction_mass: dict           # {fraction: access-mass share}
    mean_catchup_delay: float         # mean LazyDP delay at catch-up time
    total_deferred_draws: float       # sum of delays = no-ANS draw count


def collect_trace(loader: DataLoader, table: int) -> list:
    """Materialise the per-iteration raw lookup streams for one table.

    Duplicates are preserved — access *mass* statistics need multiplicity;
    :func:`analyze_trace` dedupes internally where footprints are needed.
    """
    return [batch.sparse[:, table, :].ravel() for batch in loader]


def analyze_trace(per_iteration_rows: list, num_rows: int,
                  fractions=(0.006, 0.01, 0.1, 0.36)) -> TraceStats:
    """Compute :class:`TraceStats` from per-iteration accessed-row sets.

    ``mean_catchup_delay`` replays LazyDP's HistoryTable discipline: when
    a row is accessed at iteration ``i`` having last been caught up at
    ``h``, it contributes a delay of ``i - h``.  ``total_deferred_draws``
    (the sum of those delays plus the terminal flush) is exactly the
    number of Gaussian draws LazyDP-without-ANS performs — the quantity
    ANS collapses (paper Section 5.2.2).
    """
    iterations = len(per_iteration_rows)
    if iterations == 0:
        raise ValueError("trace must contain at least one iteration")

    lookup_counts = []
    unique_counts = []
    all_access_counts = np.zeros(num_rows, dtype=np.int64)
    last_caught_up = np.zeros(num_rows, dtype=np.int64)
    delays = []

    for index, rows in enumerate(per_iteration_rows):
        iteration = index + 1
        rows = np.asarray(rows, dtype=np.int64)
        unique_rows = np.unique(rows)
        lookup_counts.append(rows.size)
        unique_counts.append(unique_rows.size)
        np.add.at(all_access_counts, rows, 1)
        # LazyDP catches these rows up during iteration - 1; the delay is
        # measured against the previous catch-up.
        catchup_iteration = max(iteration - 1, 0)
        row_delays = catchup_iteration - last_caught_up[unique_rows]
        delays.extend(row_delays[row_delays > 0].tolist())
        last_caught_up[unique_rows] = catchup_iteration

    # Terminal flush: every row owes noise through the final iteration.
    flush_delays = iterations - last_caught_up
    total_draws = float(sum(delays) + flush_delays.sum())

    sorted_counts = np.sort(all_access_counts)[::-1]
    total_accesses = sorted_counts.sum()
    mass = {}
    for fraction in fractions:
        top = max(1, int(round(fraction * num_rows)))
        mass[fraction] = float(sorted_counts[:top].sum() / total_accesses)

    return TraceStats(
        num_rows=num_rows,
        iterations=iterations,
        lookups_per_iteration=float(np.mean(lookup_counts)),
        unique_per_iteration=float(np.mean(unique_counts)),
        coverage=float(np.count_nonzero(all_access_counts) / num_rows),
        top_fraction_mass=mass,
        mean_catchup_delay=float(np.mean(delays)) if delays else 0.0,
        total_deferred_draws=total_draws,
    )


def loader_stats(loader: DataLoader, table: int = 0) -> TraceStats:
    """Convenience: collect + analyze a loader's trace for one table."""
    num_rows = loader.dataset.config.table_rows[table]
    return analyze_trace(collect_trace(loader, table), num_rows)
