"""Reusable scratch buffers for the apply-phase hot path.

The noisy model-update is bandwidth-bound (paper Section 4.3): every
per-iteration allocation that feeds it — the union row buffer, the
merged value buffer, Philox counter blocks — costs a page-faulting
first-touch pass over memory the algorithm already has to stream once.
A :class:`BufferArena` keeps one named, geometrically-grown backing
buffer per scratch role so steady-state iterations reuse warm memory
and allocate nothing.

Ownership rules (what makes lock-free use legal):

* An arena is **single-threaded**: each concurrent consumer (a shard's
  apply task, the prefetch worker's sampler, the apply worker) owns its
  own arena.  Nothing here locks.
* A view returned by :meth:`BufferArena.request` is valid until the
  same ``key`` is requested again; distinct keys never alias.  Kernel
  outputs that outlive the call (e.g. staged noise crossing a thread
  boundary) must therefore be owned arrays, never arena views — the
  kernels in this package follow that rule.
"""

from __future__ import annotations

import numpy as np


class BufferArena:
    """Named scratch buffers, reused across iterations.

    Counters:

    ``hits``
        Requests served from an existing backing buffer (the
        steady-state case — no allocation happened).
    ``allocs``
        Requests that had to allocate or grow a backing buffer
        (start-up, or a batch larger than anything seen before).
    """

    #: Growth factor when a request outgrows its backing buffer.  Doubling
    #: amortises reallocation to O(log max_size) allocs per key.
    GROWTH = 2

    def __init__(self):
        self._buffers: dict = {}
        self.hits = 0
        self.allocs = 0

    def request(
        self, key: str, shape: tuple, dtype: np.dtype = np.float64
    ) -> np.ndarray:
        """A ``shape``-shaped view of the backing buffer for ``key``.

        Contents are unspecified (previous uses leak through) — callers
        must fully overwrite what they read.  The view stays valid until
        ``key`` is requested again.
        """
        shape = tuple(int(s) for s in shape)
        size = 1
        for extent in shape:
            if extent < 0:
                raise ValueError(f"negative extent in shape {shape}")
            size *= extent
        dtype = np.dtype(dtype)
        backing = self._buffers.get(key)
        if backing is None or backing.dtype != dtype or backing.size < size:
            capacity = size
            if backing is not None and backing.dtype == dtype:
                capacity = max(size, backing.size * self.GROWTH)
            self._buffers[key] = backing = np.empty(capacity, dtype=dtype)
            self.allocs += 1
        else:
            self.hits += 1
        return backing[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by backing buffers."""
        return int(sum(buf.nbytes for buf in self._buffers.values()))

    def stats(self) -> dict:
        """Hit/alloc counters plus resident footprint."""
        return {
            "hits": int(self.hits),
            "allocs": int(self.allocs),
            "nbytes": self.nbytes,
            "buffers": len(self._buffers),
        }

    def clear(self) -> None:
        """Drop every backing buffer (counters are kept)."""
        self._buffers.clear()
