"""Kernel-table indirection: swap the hot kernels without touching callers.

Every trainer, the serving engine and the rng facade call the three hot
kernels — ``fused_noisy_update``, ``batched_catchup_sum``,
``batched_row_noise_sum`` — through the :mod:`repro.kernels` package
top level.  Those package-level names are thin wrappers that consult
the process-global *active* :class:`KernelTable` at call time, so an
``ExecutionPlan(backend=...)`` can reroute the whole training stack to
a compiled implementation with zero call-site changes.

Two tables ship built in:

``numpy``
    The vectorised reference kernels (:mod:`repro.kernels.fused`,
    :mod:`repro.kernels.sampler`).  Always available; always the
    default.
``numba``
    The ``@njit(parallel=True)`` kernels (:mod:`repro.kernels.njit`),
    registered lazily on first selection.  Selection is refused with a
    clear error while numba is not importable — the interpreted
    fallback the njit package runs under without numba is for the
    equivalence test suite, never for trainers.

The active table is process-global and sticky: ``TrainSession.build``
sets it from the plan's backend, and it stays until the next build (or
an explicit :func:`set_kernel_backend`).  Running two trainers with
*different* kernel backends concurrently in one process is not
supported — the same limitation numba's own threading layer has — and
the serving engine simply reads whichever table the trainer installed.
"""

from __future__ import annotations

import importlib.util
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from .fused import fused_noisy_update as _numpy_fused_noisy_update
from .sampler import batched_catchup_sum as _numpy_batched_catchup_sum
from .sampler import batched_row_noise_sum as _numpy_batched_row_noise_sum


@dataclass(frozen=True)
class KernelTable:
    """One named implementation set for the three hot kernels."""

    name: str
    fused_noisy_update: object
    batched_catchup_sum: object
    batched_row_noise_sum: object
    description: str = ""


_TABLES: dict = {}
_LOCK = threading.Lock()


def register_kernel_table(
    name: str,
    *,
    fused_noisy_update,
    batched_catchup_sum,
    batched_row_noise_sum,
    description: str = "",
) -> KernelTable:
    """Register (or idempotently re-register) a kernel table."""
    table = KernelTable(
        name=name,
        fused_noisy_update=fused_noisy_update,
        batched_catchup_sum=batched_catchup_sum,
        batched_row_noise_sum=batched_row_noise_sum,
        description=description,
    )
    with _LOCK:
        _TABLES[name] = table
    return table


_ACTIVE = register_kernel_table(
    "numpy",
    fused_noisy_update=_numpy_fused_noisy_update,
    batched_catchup_sum=_numpy_batched_catchup_sum,
    batched_row_noise_sum=_numpy_batched_row_noise_sum,
    description="vectorised numpy reference kernels",
)


def numba_missing_reason() -> str | None:
    """Why the numba table cannot be selected, or ``None`` if it can.

    Probes importability without importing (no compiler warm-up at plan
    validation time).  Tests monkeypatch this single choke point to
    simulate a missing numba or to opt the interpreted fallback in.
    """
    if importlib.util.find_spec("numba") is None:
        return (
            "numba is not installed; the compiled kernel backend needs "
            "the optional extra — pip install 'repro[numba]'"
        )
    return None


def kernel_backends() -> tuple:
    """Registered kernel-table names, in registration order."""
    with _LOCK:
        return tuple(_TABLES)


def active_kernel_table() -> KernelTable:
    """The table the package-level kernel wrappers dispatch to."""
    return _ACTIVE


def active_kernel_backend() -> str:
    """Name of the active kernel table."""
    return _ACTIVE.name


def set_kernel_backend(name: str) -> str:
    """Make ``name`` the active kernel table; returns the previous name.

    Selecting ``"numba"`` imports :mod:`repro.kernels.njit` on first
    use (registering its table) and is refused while numba is missing.
    """
    global _ACTIVE
    if name == "numba":
        reason = numba_missing_reason()
        if reason is not None:
            raise RuntimeError(f"kernel backend 'numba' is unavailable: {reason}")
        if name not in kernel_backends():
            from . import njit  # noqa: F401 - import registers the table
    with _LOCK:
        table = _TABLES.get(name)
        if table is None:
            raise ValueError(
                f"unknown kernel backend: {name!r} "
                f"(registered: {', '.join(_TABLES)})"
            )
        previous = _ACTIVE.name
        _ACTIVE = table
    return previous


@contextmanager
def use_kernel_backend(name: str):
    """Context manager: activate ``name``, restore the previous table."""
    previous = set_kernel_backend(name)
    try:
        yield
    finally:
        set_kernel_backend(previous)
