"""Batched no-ANS sampling: one Philox invocation, a segmented sum.

LazyDP *without* ANS must replay, for every caught-up row, each deferred
per-iteration noise value individually (Algorithm 1 lines 31-35) — the
paper's ablation and the bridge that makes lazy-vs-eager equivalence
exactly testable.  The original implementation looped over lags,
launching one Philox + Box-Muller batch per lag: O(max_delay) kernel
launches, the very iteration structure the eager baselines suffer from.

:func:`batched_catchup_sum` flattens the whole catch-up into one
``(row, iteration)`` draw list, generates every Gaussian in a single
keyed invocation (:meth:`NoiseStream.row_iteration_noise
<repro.rng.noise.NoiseStream.row_iteration_noise>`), and reduces each
row's segment with ``np.add.reduceat``.  Each draw keeps its exact
per-coordinate Philox keying, so individual values are bit-identical to
the lag loop's; only the order the segment is *summed* in changes
(pairwise instead of sequential), which every consumer tolerates —
cross-trainer equivalence stays bitwise because all trainers share this
sampler, and a row's sum depends only on its own ``(row, delay,
iteration)`` segment, never on which other rows were batched alongside
it (the property sharded-vs-serial equality rests on).

Two budgets bound the flattened batch's memory:

* ``max_scalars`` splits a *catch-up* into row-aligned chunks — a row's
  segment is never split by it, so sums are chunk-invariant and
  launches stay O(total / budget), independent of ``max_delay``;
* ``max_row_scalars`` bounds a *single row* whose own delay exceeds the
  chunk budget (a rare cold row at terminal flush after a very long
  run): its draws are generated in fixed-size lag windows accumulated
  sequentially.  The window size is a function of ``dim`` only — never
  of ``max_scalars`` or of the other rows in the batch — so a row's sum
  remains a pure function of its own coordinates and the chunk-
  invariance above still holds bitwise.
"""

from __future__ import annotations

import numpy as np

from .arena import BufferArena

#: Cap on scalars (draws x dim) generated per Philox invocation.  Two
#: jobs: it bounds the flattened batch's memory, and it keeps each
#: chunk's working set (~512 KB of float64 Gaussians plus counter
#: blocks) cache-resident — measured faster than both one giant batch
#: (cache-thrashing) and the historical per-lag loop (launch-bound) on
#: every workload shape swept in ``benchmarks/bench_apply_fusion.py``.
#: Launches per catch-up are O(total_draws / budget): independent of
#: ``max_delay``, the loop's O(max_delay) structure this replaces.
DEFAULT_MAX_SCALARS = 1 << 16

#: Cap on scalars generated for ONE row's segment per invocation.  Rows
#: owing more (delay > budget/dim) are summed in sequential lag windows
#: of exactly this many scalars, so no single cold row can force an
#: unbounded flattened batch.  Deliberately independent of
#: ``max_scalars``: changing the chunk budget must not change any bits.
DEFAULT_MAX_ROW_SCALARS = 1 << 16


def _segment_sum_into(
    out: np.ndarray,
    stream,
    table_id: int,
    rows: np.ndarray,
    delays: np.ndarray,
    iteration: int,
    dim: int,
    std: float,
    arena: BufferArena | None,
) -> None:
    """One flattened draw + segmented sum for one chunk of rows."""
    ends = np.cumsum(delays)
    total = int(ends[-1])
    if total == 0:
        return
    starts = ends - delays
    draw_rows = np.repeat(rows, delays)
    # Draw k of a row covers lag k+1, i.e. iteration - k — the same
    # descending-iteration order the lag loop visited.
    draw_iters = np.arange(total, dtype=np.int64)
    draw_iters -= np.repeat(starts, delays)
    np.subtract(iteration, draw_iters, out=draw_iters)
    draws = stream.row_iteration_noise(
        table_id, draw_rows, draw_iters, dim, std=std, arena=arena
    )
    caught_up = delays > 0
    out[caught_up] = np.add.reduceat(draws, starts[caught_up], axis=0)


def _windowed_row_sum(
    stream,
    table_id: int,
    row: int,
    delay: int,
    iteration: int,
    dim: int,
    std: float,
    arena: BufferArena | None,
    window_draws: int,
) -> np.ndarray:
    """One oversized row's deferred sum, in fixed-size lag windows.

    Windows are generated and accumulated in ascending lag order, each
    one Philox invocation of at most ``window_draws`` draws, so memory
    stays bounded no matter how large ``delay`` is.  The window size
    never depends on the surrounding batch, keeping the row's sum pure.
    """
    acc = np.zeros(dim, dtype=np.float64)
    rows = np.full(window_draws, row, dtype=np.int64)
    for lag_start in range(0, delay, window_draws):
        count = min(window_draws, delay - lag_start)
        iters = np.arange(count, dtype=np.int64)
        np.subtract(iteration - lag_start, iters, out=iters)
        draws = stream.row_iteration_noise(
            table_id, rows[:count], iters, dim, std=std, arena=arena
        )
        acc += np.add.reduce(draws, axis=0)
    return acc


def batched_catchup_sum(
    stream,
    table_id: int,
    rows: np.ndarray,
    delays: np.ndarray,
    iteration: int,
    dim: int,
    std: float = 1.0,
    arena: BufferArena | None = None,
    max_scalars: int = DEFAULT_MAX_SCALARS,
    max_row_scalars: int = DEFAULT_MAX_ROW_SCALARS,
) -> np.ndarray:
    """Exact deferred-noise sum per row, batched over ``(row, iteration)``.

    Row ``k`` receives the sum of its individually-keyed draws for
    iterations ``iteration - delays[k] + 1 .. iteration``; rows with
    ``delays[k] == 0`` receive exactly zero.  Value-equal to the lag
    loop (same draws, commutative-and-associative-up-to-rounding sum)
    and a pure function of each row alone, so any partition of ``rows``
    across shards, chunks or serving lookups yields identical bits.
    """
    rows = np.asarray(rows, dtype=np.int64)
    delays = np.asarray(delays, dtype=np.int64)
    out = np.zeros((rows.size, dim), dtype=np.float64)
    if rows.size == 0:
        return out
    total = int(delays.sum())
    if total == 0:
        return out
    window_draws = max(1, int(max_row_scalars) // max(dim, 1))
    oversized = delays > window_draws
    if np.any(oversized):
        # Rare cold rows whose own delay exceeds the per-invocation
        # budget: windowed, memory-bounded accumulation row by row.
        for k in np.nonzero(oversized)[0]:
            out[k] = _windowed_row_sum(
                stream,
                table_id,
                int(rows[k]),
                int(delays[k]),
                iteration,
                dim,
                std,
                arena,
                window_draws,
            )
        rest = np.nonzero(~oversized)[0]
        if rest.size:
            out[rest] = batched_catchup_sum(
                stream,
                table_id,
                rows[rest],
                delays[rest],
                iteration,
                dim,
                std=std,
                arena=arena,
                max_scalars=max_scalars,
                max_row_scalars=max_row_scalars,
            )
        return out
    budget = max(1, int(max_scalars) // max(dim, 1))
    if total <= budget:
        _segment_sum_into(
            out, stream, table_id, rows, delays, iteration, dim, std, arena
        )
        return out
    # Row-aligned chunking: split where cumulative draws cross the
    # budget, never inside a row's segment.
    ends = np.cumsum(delays)
    start = 0
    while start < rows.size:
        drawn = 0 if start == 0 else int(ends[start - 1])
        stop = int(np.searchsorted(ends, drawn + budget, side="right"))
        stop = min(max(stop, start + 1), rows.size)
        _segment_sum_into(
            out[start:stop],
            stream,
            table_id,
            rows[start:stop],
            delays[start:stop],
            iteration,
            dim,
            std,
            arena,
        )
        start = stop
    return out


def batched_row_noise_sum(
    stream,
    table_id: int,
    rows: np.ndarray,
    first_iteration: int,
    last_iteration: int,
    dim: int,
    std: float = 1.0,
    arena: BufferArena | None = None,
    max_scalars: int = DEFAULT_MAX_SCALARS,
    max_row_scalars: int = DEFAULT_MAX_ROW_SCALARS,
) -> np.ndarray:
    """Sum of per-iteration row noise over an inclusive iteration range.

    The uniform-delay case of :func:`batched_catchup_sum`: every row
    sums the same ``first_iteration .. last_iteration`` window, in one
    flattened invocation instead of one per iteration.
    """
    rows = np.asarray(rows, dtype=np.int64)
    count = int(last_iteration) - int(first_iteration) + 1
    if count <= 0 or rows.size == 0:
        return np.zeros((rows.size, dim), dtype=np.float64)
    delays = np.full(rows.size, count, dtype=np.int64)
    return batched_catchup_sum(
        stream,
        table_id,
        rows,
        delays,
        int(last_iteration),
        dim,
        std=std,
        arena=arena,
        max_scalars=max_scalars,
        max_row_scalars=max_row_scalars,
    )
