"""Fused hot-path kernels for the noisy model-update (apply phase).

The paper's Figure 6/11 analysis shows the noisy embedding update is
*bandwidth-bound* (85.5% of DRAM bandwidth at 2 AVX ops/element), so the
apply phase's cost is dominated by how many times the update rows
traverse memory — and by per-iteration allocations feeding those
traversals.  This package is the shared kernel layer every trainer's
apply phase sits on:

* :class:`BufferArena <repro.kernels.arena.BufferArena>` — named,
  geometrically-grown scratch buffers reused across iterations, so the
  steady-state apply allocates nothing (hit/alloc counters surface
  through ``StageTimer.stats()``).
* :func:`fused_noisy_update` — merges the clipped gradient with the
  staged catch-up noise and writes the parameter slab in one traversal,
  bitwise-identical to the reference ``merge_sparse_updates`` +
  ``table[rows] -= lr * values`` two-step (shared rows still see
  exactly one summed write).
* :func:`batched_catchup_sum` — the no-ANS exact replay as ONE
  flattened ``(row, iteration)`` Philox invocation followed by a
  segmented sum, collapsing the O(max_delay) per-lag kernel launches of
  the eager-style loop to O(1).

The three hot kernels above are *dispatched*: the package-level names
are thin wrappers over the active :class:`KernelTable
<repro.kernels.dispatch.KernelTable>`, so an execution plan's
``backend=numba`` swaps in the compiled implementations
(:mod:`repro.kernels.njit`) for every consumer — serial / sharded /
pipelined / async trainers, the terminal flush, the private serving
engine — with zero call-site changes.  The default table is the
vectorised numpy reference; the bitwise-equivalence suites that pin
trainer-vs-trainer equality therefore also pin the kernels.
"""

from . import dispatch
from .arena import BufferArena
from .dispatch import (
    KernelTable,
    active_kernel_backend,
    active_kernel_table,
    kernel_backends,
    register_kernel_table,
    set_kernel_backend,
    use_kernel_backend,
)
from .fused import apply_sparse_update, fused_merge, merge_sparse_updates
from .sampler import DEFAULT_MAX_ROW_SCALARS, DEFAULT_MAX_SCALARS


def fused_noisy_update(
    table,
    learning_rate,
    grad_rows,
    grad_values,
    noise_rows,
    noise_values,
    arena=None,
    row_base=0,
    timer=None,
):
    """The fused apply phase, routed through the active kernel table.

    See :func:`repro.kernels.fused.fused_noisy_update` (the numpy
    reference and contract holder) and
    :func:`repro.kernels.njit.fused.fused_noisy_update` (the compiled
    table's entry).
    """
    return dispatch.active_kernel_table().fused_noisy_update(
        table,
        learning_rate,
        grad_rows,
        grad_values,
        noise_rows,
        noise_values,
        arena=arena,
        row_base=row_base,
        timer=timer,
    )


def batched_catchup_sum(
    stream,
    table_id,
    rows,
    delays,
    iteration,
    dim,
    std=1.0,
    arena=None,
    max_scalars=DEFAULT_MAX_SCALARS,
    max_row_scalars=DEFAULT_MAX_ROW_SCALARS,
):
    """Per-row deferred-noise sum, routed through the active kernel table.

    See :func:`repro.kernels.sampler.batched_catchup_sum` for the
    contract (exact per-row sums, chunk/shard-invariant bits).
    """
    return dispatch.active_kernel_table().batched_catchup_sum(
        stream,
        table_id,
        rows,
        delays,
        iteration,
        dim,
        std=std,
        arena=arena,
        max_scalars=max_scalars,
        max_row_scalars=max_row_scalars,
    )


def batched_row_noise_sum(
    stream,
    table_id,
    rows,
    first_iteration,
    last_iteration,
    dim,
    std=1.0,
    arena=None,
    max_scalars=DEFAULT_MAX_SCALARS,
    max_row_scalars=DEFAULT_MAX_ROW_SCALARS,
):
    """Uniform-window noise sum, routed through the active kernel table.

    See :func:`repro.kernels.sampler.batched_row_noise_sum`.
    """
    return dispatch.active_kernel_table().batched_row_noise_sum(
        stream,
        table_id,
        rows,
        first_iteration,
        last_iteration,
        dim,
        std=std,
        arena=arena,
        max_scalars=max_scalars,
        max_row_scalars=max_row_scalars,
    )


__all__ = [
    "BufferArena",
    "KernelTable",
    "active_kernel_backend",
    "active_kernel_table",
    "apply_sparse_update",
    "batched_catchup_sum",
    "batched_row_noise_sum",
    "fused_merge",
    "fused_noisy_update",
    "kernel_backends",
    "merge_sparse_updates",
    "register_kernel_table",
    "set_kernel_backend",
    "use_kernel_backend",
]
