"""Fused hot-path kernels for the noisy model-update (apply phase).

The paper's Figure 6/11 analysis shows the noisy embedding update is
*bandwidth-bound* (85.5% of DRAM bandwidth at 2 AVX ops/element), so the
apply phase's cost is dominated by how many times the update rows
traverse memory — and by per-iteration allocations feeding those
traversals.  This package is the shared kernel layer every trainer's
apply phase sits on:

* :class:`BufferArena <repro.kernels.arena.BufferArena>` — named,
  geometrically-grown scratch buffers reused across iterations, so the
  steady-state apply allocates nothing (hit/alloc counters surface
  through ``StageTimer.stats()``).
* :func:`fused_noisy_update <repro.kernels.fused.fused_noisy_update>` —
  merges the clipped gradient with the staged catch-up noise and writes
  the parameter slab in one traversal, bitwise-identical to the
  reference ``merge_sparse_updates`` + ``table[rows] -= lr * values``
  two-step (shared rows still see exactly one summed write).
* :func:`batched_catchup_sum <repro.kernels.sampler
  .batched_catchup_sum>` — the no-ANS exact replay as ONE flattened
  ``(row, iteration)`` Philox invocation followed by a segmented sum,
  collapsing the O(max_delay) per-lag kernel launches of the eager-style
  loop to O(1).

Every consumer (serial / sharded / pipelined / async trainers, the
terminal flush, the private serving engine) delegates here, so the
bitwise-equivalence suites that pin trainer-vs-trainer equality also
pin the kernels.
"""

from .arena import BufferArena
from .fused import (
    apply_sparse_update,
    fused_merge,
    fused_noisy_update,
    merge_sparse_updates,
)
from .sampler import batched_catchup_sum, batched_row_noise_sum

__all__ = [
    "BufferArena",
    "apply_sparse_update",
    "batched_catchup_sum",
    "batched_row_noise_sum",
    "fused_merge",
    "fused_noisy_update",
    "merge_sparse_updates",
]
