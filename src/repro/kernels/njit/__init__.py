"""Compiled (numba ``@njit``) implementations of the three hot kernels.

Importing this package registers the ``"numba"`` kernel table with
:mod:`repro.kernels.dispatch`; selecting it (``backend=numba`` on an
:class:`ExecutionPlan <repro.session.ExecutionPlan>`, or
``set_kernel_backend("numba")``) reroutes every trainer and serving
consumer to the kernels below with zero call-site changes.

Without numba installed the modules still import — every ``@njit``
degrades to a no-op decorator (see :mod:`._compat`) — so the
equivalence suite can execute the identical kernel logic interpreted.
Backend *selection* stays gated on real numba either way.

Numerics contract (enforced by ``tests/test_njit_kernels.py`` and the
``bench_apply_fusion --backend numba`` gate):

* **Bitwise**: the Philox cipher (pure integer) and the fused apply
  arithmetic (same ``value - lr * (grad + noise)`` per element) match
  the numpy kernels bit for bit; the no-ANS catch-up sum is bitwise
  *sequenced* — invariant under sharding/chunking/batching — and
  bitwise-equal to a per-lag replay of the same compiled draws.
* **Tolerance**: Gaussian values (and therefore catch-up sums compared
  *across* backends) may deviate by compiled-libm-vs-numpy-SIMD
  transcendental rounding.  :data:`NUMERIC_TOLERANCE` below is the one
  place that deviation is pinned; every cross-backend float comparison
  in tests and benches uses it.
"""

from __future__ import annotations

from ..dispatch import register_kernel_table
from ._compat import NUMBA_AVAILABLE
from .fused import fused_noisy_update
from .philox import gauss4, philox4x32_blocks, philox4x32_scalar
from .sampler import batched_catchup_sum, batched_row_noise_sum

#: The single pinned tolerance for numba-vs-numpy float comparisons.
#: Per-draw deviation is a few ulp of values |z| <~ 6 (about 1e-15);
#: catch-up sums accumulate at most ~2**16 draws per row at bench
#: scale, so 1e-9 absolute / 1e-9 relative leaves three orders of
#: magnitude of headroom while still failing loudly on any real defect
#: (a single wrong draw is an O(1) error).  Keyword form for
#: ``np.allclose(a, b, **NUMERIC_TOLERANCE)``.
NUMERIC_TOLERANCE = {"rtol": 1e-9, "atol": 1e-9}

register_kernel_table(
    "numba",
    fused_noisy_update=fused_noisy_update,
    batched_catchup_sum=batched_catchup_sum,
    batched_row_noise_sum=batched_row_noise_sum,
    description="numba @njit(parallel) fused apply + register-resident sampling",
)

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMERIC_TOLERANCE",
    "batched_catchup_sum",
    "batched_row_noise_sum",
    "fused_noisy_update",
    "gauss4",
    "philox4x32_blocks",
    "philox4x32_scalar",
]
