"""Scalar-in-register Philox4x32-10 and Box-Muller for the njit kernels.

The numpy cipher (:mod:`repro.rng.philox`) vectorises each round as
uint64 products followed by hi/lo splits — five array passes per round,
forty intermediate arrays per invocation.  Here the whole ten-round
cipher runs on six uint64 *registers* per counter block (the classic
``mulhilo`` formulation), so a compiled caller draws noise with zero
heap traffic and the per-block state never leaves the register file.

Bitwise contract (asserted in ``tests/test_njit_kernels.py``):

* :func:`philox4x32_scalar` / :func:`philox4x32_blocks` produce words
  bit-identical to ``repro.rng.philox.philox4x32`` — the cipher is pure
  integer arithmetic, so equality is exact in both compiled and
  interpreted modes.
* :func:`gauss4` matches the numpy Box-Muller *operation order*
  (``sqrt(-2 ln u) * cos/sin(2 pi u)`` with the identical uniform
  mapping), but compiled libm ``log``/``cos``/``sin`` may differ from
  numpy's SIMD transcendentals in the last ulp.  That deviation — the
  only one in the backend — is pinned by ``NUMERIC_TOLERANCE`` in the
  package root.
"""

from __future__ import annotations

import math

import numpy as np

from ._compat import njit, prange

# Philox4x32 round constants (Salmon et al., Table 2), held as uint64 so
# every product and key-schedule addition stays in one unsigned register
# (numba unifies mixed int64/uint64 arithmetic to float64 — keeping all
# operands uint64 sidesteps that trap in compiled mode and avoids numpy
# overflow warnings in interpreted mode).
_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint64(0x9E3779B9)
_W1 = np.uint64(0xBB67AE85)
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)

PHILOX_ROUNDS = 10

#: Uniform mapping constant: ``(word + 0.5) / 2**32`` keeps draws
#: strictly inside (0, 1) — same expression as
#: ``repro.rng.philox.uniform_from_uint32``.
_INV_2_32 = 1.0 / 4294967296.0

#: ``2 * pi`` exactly as the numpy Box-Muller computes it (``2.0 *
#: np.pi`` is a scalar float64 product, bit-equal to this constant).
_TWO_PI = 2.0 * np.pi


@njit(cache=True)
def philox4x32_scalar(c0, c1, c2, c3, k0, k1):
    """Ten Philox4x32 rounds on one counter block, all-scalar uint64.

    Every argument must already be ``np.uint64`` holding a 32-bit value.
    Returns the four output words as uint64 scalars (each < 2**32).
    The ``mulhilo`` of the reference implementation is a single 64-bit
    product here: the high half comes from a shift, the low half from a
    mask — no 32-bit splitting of inputs, no vector temporaries.
    """
    for _ in range(PHILOX_ROUNDS):
        p0 = c0 * _M0
        p1 = c2 * _M1
        n0 = ((p1 >> _SHIFT32) ^ c1 ^ k0) & _MASK32
        n1 = p1 & _MASK32
        n2 = ((p0 >> _SHIFT32) ^ c3 ^ k1) & _MASK32
        n3 = p0 & _MASK32
        c0, c1, c2, c3 = n0, n1, n2, n3
        k0 = (k0 + _W0) & _MASK32
        k1 = (k1 + _W1) & _MASK32
    return c0, c1, c2, c3


@njit(parallel=True, fastmath=False, cache=True)
def _philox4x32_blocks(counters, k0, k1, out):
    for i in prange(counters.shape[0]):
        c0, c1, c2, c3 = philox4x32_scalar(
            np.uint64(counters[i, 0]),
            np.uint64(counters[i, 1]),
            np.uint64(counters[i, 2]),
            np.uint64(counters[i, 3]),
            k0,
            k1,
        )
        out[i, 0] = np.uint32(c0)
        out[i, 1] = np.uint32(c1)
        out[i, 2] = np.uint32(c2)
        out[i, 3] = np.uint32(c3)


def philox4x32_blocks(counters: np.ndarray, key: np.ndarray) -> np.ndarray:
    """Batch cipher with the numpy ``philox4x32`` signature and bits.

    ``counters`` is ``(n, 4)`` uint32, ``key`` is ``(2,)`` uint32;
    returns ``(n, 4)`` uint32, bit-identical to
    :func:`repro.rng.philox.philox4x32` on the same inputs.  Exists for
    the equivalence suite and for callers that want the compiled cipher
    without the fused draw loops; the hot kernels inline
    :func:`philox4x32_scalar` instead and never materialise counters.
    """
    from ...rng.philox import record_invocations

    counters = np.ascontiguousarray(counters, dtype=np.uint32)
    if counters.ndim != 2 or counters.shape[1] != 4:
        raise ValueError(f"counters must have shape (n, 4), got {counters.shape}")
    key = np.asarray(key, dtype=np.uint32)
    if key.shape != (2,):
        raise ValueError(f"key must have shape (2,), got {key.shape}")
    record_invocations(1)
    out = np.empty_like(counters)
    _philox4x32_blocks(counters, np.uint64(key[0]), np.uint64(key[1]), out)
    return out


@njit(cache=True)
def uniform01(word):
    """One uint64 word (< 2**32) to a float64 uniform in (0, 1)."""
    return (np.float64(word) + 0.5) * _INV_2_32


@njit(cache=True)
def gauss4(c0, c1, c2, c3):
    """Four Philox output words to four N(0, 1) draws, Box-Muller.

    Words 0/1 feed one Box-Muller pair and words 2/3 the other — the
    same lane assignment as
    :func:`repro.rng.boxmuller.gaussians_from_uint32_block`, with the
    identical expression ``sqrt(-2 ln u1) * {cos,sin}(2 pi u2)``.
    """
    u0 = uniform01(c0)
    u1 = uniform01(c1)
    u2 = uniform01(c2)
    u3 = uniform01(c3)
    r0 = math.sqrt(-2.0 * math.log(u0))
    t0 = _TWO_PI * u1
    r1 = math.sqrt(-2.0 * math.log(u2))
    t1 = _TWO_PI * u3
    return (
        r0 * math.cos(t0),
        r0 * math.sin(t0),
        r1 * math.cos(t1),
        r1 * math.sin(t1),
    )
