"""Compiled no-ANS catch-up sampling: draw, transform, sum in registers.

The numpy sampler (:mod:`repro.kernels.sampler`) flattens a catch-up
into one big ``(row, iteration)`` draw list: it materialises a counter
block per draw, a uint32 word block, a float64 Gaussian block, then
segment-sums with ``np.add.reduceat`` — four full-size arrays streamed
through memory for values that are each consumed exactly once.  The
compiled kernel eliminates the materialisation wholesale: one ``prange``
loop over rows walks each row's deferred iterations in the same
descending order, runs the Philox cipher and Box-Muller transform on
scalars (:func:`philox4x32_scalar` / :func:`gauss4`), and accumulates
straight into the output row.  No counter blocks, no flattened batch,
no chunking budgets — memory is O(rows * dim) regardless of delay.

Equivalence contract:

* The *draws* are keyed identically (counter words ``(row_lo, row_hi,
  iteration, block)`` under the same derived key), so the uint32 words
  feeding Box-Muller are bit-identical to the numpy path's.
* The per-row *sum* runs sequentially in draw order — the same order
  ``np.add.reduceat`` reduces a segment — and is a pure function of the
  row's own coordinates, so results are invariant under sharding,
  chunking and batching (asserted bitwise against an njit per-lag
  reference in the tests).
* The Gaussian *values* may differ from numpy's in the last ulp
  (compiled libm vs numpy SIMD transcendentals); the deviation is
  bounded by ``NUMERIC_TOLERANCE`` in the package root.  The one numpy
  path with a different summation order (the oversized-row pairwise
  window reduction) falls inside the same tolerance.

``max_scalars`` / ``max_row_scalars`` are accepted for signature
compatibility and ignored: they bound the flattened batch the compiled
kernel never builds.
"""

from __future__ import annotations

import numpy as np

from ...rng.noise import DOMAIN_ROW_NOISE
from ...rng.philox import derive_key, record_invocations
from ..sampler import DEFAULT_MAX_ROW_SCALARS, DEFAULT_MAX_SCALARS
from ._compat import njit, prange
from .philox import gauss4, philox4x32_scalar

_MASK32 = 0xFFFFFFFF


@njit(parallel=True, fastmath=False, cache=True)
def _catchup_sum(k0, k1, rows, delays, iteration, dim, std, out):
    blocks_per_row = (dim + 3) // 4
    for i in prange(rows.shape[0]):
        row = rows[i]
        row_lo = np.uint64(row & _MASK32)
        row_hi = np.uint64((row >> 32) & _MASK32)
        for lag in range(delays[i]):
            # Draw k covers iteration - k: the descending-iteration
            # order the numpy flattening (and the original lag loop)
            # visits, masked to counter word width with two's-complement
            # wrap for negative iterations, same as the uint64 cast.
            word2 = np.uint64((iteration - lag) & _MASK32)
            for block in range(blocks_per_row):
                c0, c1, c2, c3 = philox4x32_scalar(
                    row_lo, row_hi, word2, np.uint64(block), k0, k1
                )
                z0, z1, z2, z3 = gauss4(c0, c1, c2, c3)
                base = 4 * block
                if base < dim:
                    out[i, base] += std * z0
                if base + 1 < dim:
                    out[i, base + 1] += std * z1
                if base + 2 < dim:
                    out[i, base + 2] += std * z2
                if base + 3 < dim:
                    out[i, base + 3] += std * z3


def batched_catchup_sum(
    stream,
    table_id: int,
    rows: np.ndarray,
    delays: np.ndarray,
    iteration: int,
    dim: int,
    std: float = 1.0,
    arena=None,
    max_scalars: int = DEFAULT_MAX_SCALARS,
    max_row_scalars: int = DEFAULT_MAX_ROW_SCALARS,
) -> np.ndarray:
    """Drop-in compiled replacement for the numpy ``batched_catchup_sum``.

    Row ``k`` receives the sum of its individually-keyed draws for
    iterations ``iteration - delays[k] + 1 .. iteration``; rows with
    ``delays[k] == 0`` receive exactly zero.  One compiled launch per
    catch-up, no flattened draw list (``arena`` and the two budget
    arguments are accepted and ignored — there is nothing to bound).
    """
    if dim <= 0:
        raise ValueError("dim must be positive")
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    delays = np.ascontiguousarray(delays, dtype=np.int64)
    if delays.shape != rows.shape:
        raise ValueError("delays must align with rows")
    out = np.zeros((rows.size, dim), dtype=np.float64)
    if rows.size == 0 or int(delays.sum()) == 0:
        return out
    key = derive_key(stream.seed, DOMAIN_ROW_NOISE, table_id)
    record_invocations(1)
    _catchup_sum(
        np.uint64(key[0]),
        np.uint64(key[1]),
        rows,
        delays,
        int(iteration),
        int(dim),
        float(std),
        out,
    )
    return out


def batched_row_noise_sum(
    stream,
    table_id: int,
    rows: np.ndarray,
    first_iteration: int,
    last_iteration: int,
    dim: int,
    std: float = 1.0,
    arena=None,
    max_scalars: int = DEFAULT_MAX_SCALARS,
    max_row_scalars: int = DEFAULT_MAX_ROW_SCALARS,
) -> np.ndarray:
    """Uniform-delay catch-up: every row sums the same iteration window."""
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    count = int(last_iteration) - int(first_iteration) + 1
    if count <= 0 or rows.size == 0:
        return np.zeros((rows.size, dim), dtype=np.float64)
    delays = np.full(rows.size, count, dtype=np.int64)
    return batched_catchup_sum(
        stream,
        table_id,
        rows,
        delays,
        int(last_iteration),
        dim,
        std=std,
        arena=arena,
    )
