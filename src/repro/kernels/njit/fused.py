"""Compiled fused apply: merge + noise-add + slab RMW in one traversal.

The numpy fast path (:func:`repro.kernels.fused.fused_noisy_update`)
already collapsed the reference's four passes into a merge pass plus a
gather/subtract/scatter pass — but it still materialises the merged
``(rows, values)`` set in arena scratch and re-streams it through the
slab.  The compiled kernel removes the intermediate entirely: one
``prange`` pass over the gradient rows and one over the noise-only rows
write the slab directly, computing ``table[r] - lr * (grad + noise)``
per element in registers.  Per paper Figure 6 this phase is
memory-bandwidth-bound at 2 AVX ops/element, so dropping the merge
buffer's extra stream is exactly the win the roofline predicts.

Bitwise contract: identical to the numpy fused path for sorted-unique
inputs — both compute ``value - lr * merged`` with one product and one
subtraction per element, and shared rows see the single sum
``grad + noise`` before scaling.  Parallel safety comes from the row
sets being unique: every slab row is written by exactly one loop
iteration (noise rows also present in the gradient set are skipped by
the second loop and folded into the first).

Unsorted or duplicate-bearing inputs delegate to the numpy reference
implementation, same as the numpy fast path does.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..fused import _sorted_unique
from ..fused import fused_noisy_update as _numpy_fused_noisy_update
from ._compat import njit, prange


@njit(cache=True)
def _bisect_left(arr, value):
    """Leftmost insertion point of ``value`` in sorted ``arr``."""
    lo = 0
    hi = arr.shape[0]
    while lo < hi:
        mid = (lo + hi) >> 1
        if arr[mid] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(parallel=True, fastmath=False, cache=True)
def _fused_apply(
    table, learning_rate, grad_rows, grad_values, noise_rows, noise_values, row_base
):
    na = grad_rows.shape[0]
    nb = noise_rows.shape[0]
    dim = table.shape[1]
    shared = 0
    for i in prange(na):
        row = grad_rows[i]
        t = row - row_base
        j = _bisect_left(noise_rows, row)
        if j < nb and noise_rows[j] == row:
            shared += 1
            for d in range(dim):
                table[t, d] = table[t, d] - learning_rate * (
                    grad_values[i, d] + noise_values[j, d]
                )
        else:
            for d in range(dim):
                table[t, d] = table[t, d] - learning_rate * grad_values[i, d]
    for i in prange(nb):
        row = noise_rows[i]
        j = _bisect_left(grad_rows, row)
        if j < na and grad_rows[j] == row:
            continue  # already folded into the gradient pass
        t = row - row_base
        for d in range(dim):
            table[t, d] = table[t, d] - learning_rate * noise_values[i, d]
    return na + nb - shared


def fused_noisy_update(
    table: np.ndarray,
    learning_rate: float,
    grad_rows: np.ndarray,
    grad_values: np.ndarray,
    noise_rows: np.ndarray,
    noise_values: np.ndarray,
    arena=None,
    row_base: int = 0,
    timer=None,
) -> int:
    """Drop-in compiled replacement for the numpy ``fused_noisy_update``.

    Same signature and return value (the number of union rows written).
    ``arena`` is accepted for interface compatibility but unused — the
    kernel has no intermediates to allocate.  The two stage timers are
    preserved: merge/noise bookkeeping would land in
    ``noisy_grad_generation`` (empty here — the merge is fused away)
    and the slab traversal in ``noisy_grad_update``.
    """
    sortable = _sorted_unique(grad_rows) and _sorted_unique(noise_rows)
    if not sortable:
        # Same fallback rule as the numpy fast path: correctness over
        # speed for inputs no hot path produces.
        return _numpy_fused_noisy_update(
            table,
            learning_rate,
            grad_rows,
            grad_values,
            noise_rows,
            noise_values,
            arena=arena,
            row_base=row_base,
            timer=timer,
        )

    generation = timer.time("noisy_grad_generation") if timer else nullcontext()
    with generation:
        grad_rows = np.ascontiguousarray(grad_rows, dtype=np.int64)
        noise_rows = np.ascontiguousarray(noise_rows, dtype=np.int64)
        grad_values = np.asarray(grad_values, dtype=np.float64)
        noise_values = np.asarray(noise_values, dtype=np.float64)

    update = timer.time("noisy_grad_update") if timer else nullcontext()
    with update:
        written = _fused_apply(
            table,
            float(learning_rate),
            grad_rows,
            grad_values,
            noise_rows,
            noise_values,
            row_base,
        )
    if timer is not None:
        # The compiled path allocates nothing, so the arena counters the
        # numpy path surfaces are identically zero here.
        timer.count("arena_hits", 0)
        timer.count("arena_allocs", 0)
    return int(written)
