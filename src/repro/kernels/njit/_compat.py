"""numba import shim: real ``@njit`` when available, identity otherwise.

The compiled kernels in this package are written to be *valid in both
modes*: under numba they compile to parallel machine code; without it
they run interpreted (every ``@njit`` becomes a no-op decorator and
``prange`` degrades to ``range``), exactly like running numba with
``NUMBA_DISABLE_JIT=1``.  The fallback exists for the equivalence test
suite — tiny inputs, where interpreted speed is irrelevant — so that a
numba-free environment (tier-1 CI, dev boxes) can still verify every
line of kernel logic against the numpy reference.

Backend *selection* is gated separately: ``repro.kernels.dispatch``
refuses ``set_kernel_backend("numba")`` while numba is missing, so the
interpreted fallback can never be picked up by a trainer accidentally
(tests monkeypatch ``numba_missing_reason`` to opt in deliberately).
"""

from __future__ import annotations

try:
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):
        """Identity decorator standing in for ``numba.njit``."""

        def decorate(func):
            return func

        if args and callable(args[0]) and not kwargs:
            return args[0]
        return decorate


__all__ = ["NUMBA_AVAILABLE", "njit", "prange"]
