"""Single-pass noisy-update scatter: merge + slab write in one traversal.

The reference apply phase (Algorithm 1 lines 19-25) ran four passes over
the update rows — a ``union1d`` sort, a scratch ``zeros`` fill, and two
``searchsorted`` scatter-adds — followed by a fancy-indexed
read-modify-write of the slab that allocates a gathered temporary and a
``lr * values`` product.  :func:`fused_noisy_update` produces the same
bits with one merge pass over the two (sorted, unique) row sets and one
gather/subtract/scatter traversal of the slab, with every intermediate
in :class:`BufferArena <repro.kernels.arena.BufferArena>` scratch.

Bitwise contract: for sorted unique inputs the result is identical to
``merge_sparse_updates`` + ``table[rows] -= lr * values`` — shared rows
see exactly one summed write ``grad + noise`` (IEEE addition is
commutative, so operand order cannot change the bits), and the slab
update computes ``value - lr * merged`` with the same two operations.
The single deliberate deviation: a row whose merged value is a signed
zero may carry the opposite zero sign than the reference's ``0.0 + x``
accumulation produced — indistinguishable under ``==`` and harmless to
the written slab unless the parameter itself is a negative zero.

Unsorted or duplicate-bearing inputs fall back to the reference path
(correct, just not allocation-free); the hot paths all feed sorted
unique rows (``np.unique`` batch dedup, sorted pending-row lists, and
the shard router preserves per-shard sortedness).
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from .arena import BufferArena


def merge_sparse_updates(
    rows_a: np.ndarray,
    values_a: np.ndarray,
    rows_b: np.ndarray,
    values_b: np.ndarray,
) -> tuple:
    """Union two sparse row-update sets, summing values on shared rows.

    This is Algorithm 1 line 20: ``noisy_gradient <- gradient + noise``,
    where the gradient covers the current batch's rows and the noise
    covers the next batch's rows.  The reference (allocating)
    implementation; :func:`fused_merge` is the arena-backed fast path
    and :mod:`tests.test_kernels` pins their equivalence.
    """
    if rows_a.size == 0:
        return rows_b, values_b
    if rows_b.size == 0:
        return rows_a, values_a
    rows = np.union1d(rows_a, rows_b)
    dim = values_a.shape[1]
    values = np.zeros((rows.shape[0], dim), dtype=np.float64)
    values[np.searchsorted(rows, rows_a)] += values_a
    values[np.searchsorted(rows, rows_b)] += values_b
    return rows, values


def _sorted_unique(rows: np.ndarray) -> bool:
    """Cheap strictly-increasing check (one vectorised compare)."""
    if rows.size < 2:
        return True
    return bool(np.all(rows[1:] > rows[:-1]))


def fused_merge(
    grad_rows: np.ndarray,
    grad_values: np.ndarray,
    noise_rows: np.ndarray,
    noise_values: np.ndarray,
    arena: BufferArena,
) -> tuple:
    """Merge two sorted-unique sparse update sets in one pass.

    Returns ``(rows, values)``.  When both sides are non-empty the
    arrays are arena views (valid until the next ``merge.*`` request);
    a one-sided merge returns the caller's arrays unchanged, exactly
    like :func:`merge_sparse_updates`'s early returns.

    Each union slot is written exactly once: gradient-only slots take
    the gradient value, noise-only slots the noise value, and shared
    slots the single sum ``grad + noise`` — the "one summed write"
    invariant double application of either operand would break.
    """
    na, nb = grad_rows.size, noise_rows.size
    if na == 0:
        return noise_rows, noise_values
    if nb == 0:
        return grad_rows, grad_values
    dim = grad_values.shape[1]

    # One binary-search pass positions every noise row among the grad
    # rows; equality at the insertion point marks a shared row.
    insert = np.searchsorted(grad_rows, noise_rows)
    shared = grad_rows[np.minimum(insert, na - 1)] == noise_rows
    shared &= insert < na
    n_shared = int(np.count_nonzero(shared))
    n_union = na + nb - n_shared

    rows = arena.request("merge.rows", (n_union,), np.int64)
    values = arena.request("merge.values", (n_union, dim), np.float64)

    if n_shared == 0:
        # Disjoint: standard merge arithmetic, direct scatters.
        pos_b = insert + np.arange(nb, dtype=np.int64)
        pos_a = np.arange(na, dtype=np.int64)
        pos_a += np.searchsorted(noise_rows, grad_rows)
        rows[pos_a] = grad_rows
        rows[pos_b] = noise_rows
        values[pos_a] = grad_values
        values[pos_b] = noise_values
        return rows, values

    # General case.  A noise row's union position is its insertion point
    # among grad rows plus the number of noise-only rows before it; a
    # grad row's is its own index plus the noise-only rows before it.
    keep = ~shared
    before = np.cumsum(keep)
    before -= keep  # exclusive cumsum: noise-only rows strictly earlier
    pos_b = insert + before
    only_b = np.nonzero(keep)[0]
    b_rows = noise_rows[only_b]
    pos_a = np.arange(na, dtype=np.int64)
    pos_a += np.searchsorted(b_rows, grad_rows)

    rows[pos_a] = grad_rows
    values[pos_a] = grad_values

    pos_only_b = pos_b[only_b]
    rows[pos_only_b] = b_rows
    gathered = arena.request("merge.gather", (only_b.size, dim), np.float64)
    np.take(noise_values, only_b, axis=0, out=gathered)
    values[pos_only_b] = gathered

    # Shared rows: one summed write (grad + noise), overwriting the
    # gradient value scattered above.
    in_b = np.nonzero(shared)[0]
    in_a = insert[in_b]
    acc = arena.request("merge.shared_a", (in_b.size, dim), np.float64)
    acc_b = arena.request("merge.shared_b", (in_b.size, dim), np.float64)
    np.take(grad_values, in_a, axis=0, out=acc)
    np.take(noise_values, in_b, axis=0, out=acc_b)
    acc += acc_b
    values[pos_b[in_b]] = acc
    return rows, values


def apply_sparse_update(
    table: np.ndarray,
    rows: np.ndarray,
    values: np.ndarray,
    learning_rate: float,
    arena: BufferArena | None = None,
    row_base: int = 0,
    out: np.ndarray | None = None,
    values_writable: bool = False,
) -> None:
    """``table[rows - row_base] -= lr * values`` in one slab traversal.

    Bitwise-identical to the fancy-indexed reference expression (the
    same ``value - lr * merged`` per element), but the gathered rows,
    the scaled product and the shifted index vector live in arena
    scratch, so a warm steady-state call allocates nothing.

    ``row_base`` shifts global row ids into a contiguous shard slab's
    local window.  ``out`` redirects the written rows into a different
    array of the same geometry (the serving engine's memo) instead of
    updating ``table`` in place.  ``values_writable=True`` lets the
    kernel scale ``values`` in place (legal only for scratch the caller
    does not reuse, e.g. a :func:`fused_merge` view).
    """
    n = rows.size
    if n == 0:
        return
    if arena is None:
        index = rows - row_base if row_base else rows
        if out is None:
            table[index] -= learning_rate * values
        else:
            out[index] = table[index] - learning_rate * values
        return

    if row_base:
        index = arena.request("apply.rows", (n,), np.int64)
        np.subtract(rows, row_base, out=index)
    else:
        index = rows
    if values_writable:
        scaled = values
        np.multiply(values, learning_rate, out=scaled)
    else:
        scaled = arena.request("apply.scaled", values.shape, np.float64)
        np.multiply(values, learning_rate, out=scaled)
    gathered = arena.request("apply.gathered", values.shape, np.float64)
    np.take(table, index, axis=0, out=gathered)
    np.subtract(gathered, scaled, out=gathered)
    (table if out is None else out)[index] = gathered


def fused_noisy_update(
    table: np.ndarray,
    learning_rate: float,
    grad_rows: np.ndarray,
    grad_values: np.ndarray,
    noise_rows: np.ndarray,
    noise_values: np.ndarray,
    arena: BufferArena | None = None,
    row_base: int = 0,
    timer=None,
) -> int:
    """The fused apply phase: merge gradient + staged noise, write the slab.

    Single-pass replacement for ``merge_sparse_updates`` followed by
    ``table[rows] -= lr * values`` (Algorithm 1 lines 19-25), preserving
    the phase's two stage timings (``noisy_grad_generation`` /
    ``noisy_grad_update``) and surfacing the arena's hit/alloc counters
    through ``timer.count`` so ``StageTimer.stats()`` reports whether
    the steady state really allocates nothing.  Returns the number of
    union rows written.
    """
    if arena is None:
        arena = BufferArena()
    hits0, allocs0 = arena.hits, arena.allocs
    sortable = _sorted_unique(grad_rows) and _sorted_unique(noise_rows)

    generation = timer.time("noisy_grad_generation") if timer else nullcontext()
    with generation:
        if sortable:
            rows, values = fused_merge(
                grad_rows, grad_values, noise_rows, noise_values, arena
            )
        else:
            # Fallback: correctness over allocation-freedom for inputs
            # no hot path produces.
            rows, values = merge_sparse_updates(
                grad_rows, grad_values, noise_rows, noise_values
            )

    # A one-sided merge aliases the caller's arrays; only kernel-owned
    # scratch may be scaled in place.
    writable = values is not grad_values and values is not noise_values
    update = timer.time("noisy_grad_update") if timer else nullcontext()
    with update:
        apply_sparse_update(
            table,
            rows,
            values,
            learning_rate,
            arena=arena,
            row_base=row_base,
            values_writable=writable,
        )
    if timer is not None:
        timer.count("arena_hits", arena.hits - hits0)
        timer.count("arena_allocs", arena.allocs - allocs0)
    return int(rows.size)
