"""The reproduction scoreboard: paper-vs-reproduced, as assertions.

EXPERIMENTS.md's headline table, made executable.  Each figure's
reproduced series is compared against the paper's numbers under a
declared tolerance — tight where the paper states exact values, looser
where bars were read off figures or hyper-parameters are unstated
(DESIGN.md documents each case).  ``evaluate_scoreboard`` returns a list
of row results; the test suite asserts every row passes, so a regression
in any model component that shifts a figure outside its band fails CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .experiments import ALL_FIGURES

#: (figure, series) -> relative tolerance.  Rationale per entry:
#:  - exact text-stated values and calibration anchors: 5-10 %
#:  - figure-read bar heights: 25-40 %
#:  - unstated hyper-parameters (RMC), secondary slopes: 40-80 %
TOLERANCES = {
    ("figure3", "dpsgd_b"): 0.40,
    ("figure3", "dpsgd_r"): 0.40,
    ("figure3", "dpsgd_f"): 0.40,
    ("figure6", "roofline"): 0.05,
    ("figure10", "sgd"): 0.15,
    ("figure10", "lazydp"): 0.25,
    ("figure10", "lazydp_no_ans"): 0.10,
    ("figure10", "dpsgd_f"): 0.10,
    ("figure11", "lazydp"): None,        # mixed metrics; checked specially
    ("figure12", "sgd"): 0.20,
    ("figure12", "lazydp"): 0.30,
    ("figure12", "dpsgd_f"): 0.15,
    ("figure13a", "sgd"): 0.15,
    ("figure13a", "lazydp"): 0.15,
    ("figure13a", "dpsgd_f"): 0.10,
    ("figure13b", "sgd"): 0.20,
    ("figure13b", "lazydp"): 0.30,
    ("figure13b", "dpsgd_f"): 0.10,
    ("figure13c", "sgd"): 0.01,
    ("figure13c", "lazydp"): 0.80,
    ("figure13c", "dpsgd_f"): 0.40,
    ("figure13d", "sgd"): 0.15,
    ("figure13d", "lazydp"): 0.20,
    ("figure13d", "dpsgd_f"): 0.10,
    ("figure14", "sgd"): 0.15,
    ("figure14", "eana"): 0.30,
    ("figure14", "lazydp"): 0.25,
    ("figure14", "dpsgd_f"): 0.10,
    ("section72", "overheads"): 0.01,
}

#: Points where the paper states a *bound*, not a value — asserted as
#: bounds in the unit tests instead (e.g. "HistoryTable < 1% of model").
SKIP_POINTS = {
    ("section72", "overheads", "history fraction"),
}


@dataclass(frozen=True)
class ScoreRow:
    figure: str
    series: str
    label: str
    paper: float
    reproduced: float
    tolerance: float
    passed: bool

    @property
    def relative_error(self) -> float:
        if math.isinf(self.paper) or self.paper == 0:
            return 0.0
        return abs(self.reproduced - self.paper) / abs(self.paper)


def _compare(paper, reproduced, tolerance) -> bool:
    """One data point: OOM must match OOM; finite values must be close."""
    if paper is None:
        return True  # the paper does not report this point
    paper_oom = isinstance(paper, float) and math.isinf(paper)
    ours_oom = isinstance(reproduced, float) and math.isinf(reproduced)
    if paper_oom or ours_oom:
        return paper_oom == ours_oom
    if paper == 0:
        return abs(reproduced) < 1e-9
    return abs(reproduced - paper) / abs(paper) <= tolerance


def evaluate_scoreboard(figures=None) -> list:
    """Compare every tracked (figure, series, point); return ScoreRows."""
    rows = []
    results = {}
    for (figure_name, series_name), tolerance in TOLERANCES.items():
        if figures is not None and figure_name not in figures:
            continue
        if tolerance is None:
            continue
        if figure_name not in results:
            results[figure_name] = ALL_FIGURES[figure_name]()
        result = results[figure_name]
        paper_series = result.paper.get(series_name)
        ours_series = result.reproduced[series_name]
        for index, label in enumerate(result.labels):
            if (figure_name, series_name, str(label)) in SKIP_POINTS:
                continue
            paper_value = (paper_series[index]
                           if paper_series is not None else None)
            if paper_value is None:
                continue
            reproduced_value = ours_series[index]
            rows.append(ScoreRow(
                figure=figure_name,
                series=series_name,
                label=str(label),
                paper=float(paper_value),
                reproduced=float(reproduced_value),
                tolerance=tolerance,
                passed=_compare(paper_value, reproduced_value, tolerance),
            ))
    return rows


def failures(rows) -> list:
    return [row for row in rows if not row.passed]
