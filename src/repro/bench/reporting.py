"""ASCII reporting helpers: the benches print paper-vs-reproduced tables."""

from __future__ import annotations

import math


def format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, float) and math.isinf(value):
        return "OOM"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: list, rows: list, title: str | None = None) -> str:
    """Render a list-of-lists as a fixed-width ASCII table."""
    cells = [[format_value(c) for c in row] for row in rows]
    header_cells = [str(h) for h in headers]
    widths = [len(h) for h in header_cells]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(row):
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(header_cells))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def comparison_rows(labels, paper_series: dict, ours_series: dict) -> list:
    """Interleave paper and reproduced series into table rows.

    ``paper_series`` / ``ours_series`` map a series name (e.g. algorithm)
    to a sequence aligned with ``labels``.
    """
    rows = []
    for name in ours_series:
        ours = ours_series[name]
        paper = paper_series.get(name)
        for i, label in enumerate(labels):
            paper_value = paper[i] if paper is not None else None
            rows.append([name, label, paper_value, ours[i]])
    return rows


def comparison_table(title: str, labels, paper_series: dict,
                     ours_series: dict, label_name: str = "point") -> str:
    return format_table(
        ["series", label_name, "paper", "reproduced"],
        comparison_rows(labels, paper_series, ours_series),
        title=title,
    )


def geometric_mean(values) -> float:
    values = [v for v in values if not math.isinf(v)]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bar_chart(labels, values, width: int = 48, log_scale: bool = False,
              title: str | None = None) -> str:
    """Horizontal ASCII bar chart; the terminal stand-in for the paper's
    figures.  ``log_scale`` keeps 260x-range series legible (OOM/inf
    values render as a marker instead of a bar).
    """
    labels = [str(label) for label in labels]
    values = list(values)
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if width < 4:
        raise ValueError("width must be at least 4")
    finite = [v for v in values if v is not None and not math.isinf(v)]
    if not finite:
        raise ValueError("need at least one finite value")
    peak = max(finite)
    if log_scale:
        floor = min(v for v in finite if v > 0) / 2.0

        def bar_length(value):
            if value <= floor:
                return 1
            return max(1, int(round(
                width * math.log(value / floor) / math.log(peak / floor)
            )))
    else:
        def bar_length(value):
            if peak == 0:
                return 0
            return int(round(width * value / peak))

    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if value is None:
            lines.append(f"{label.rjust(label_width)} | (missing)")
        elif math.isinf(value):
            lines.append(f"{label.rjust(label_width)} |{'!' * 3} OOM")
        else:
            bar = "#" * bar_length(value)
            lines.append(
                f"{label.rjust(label_width)} |{bar} {format_value(value)}"
            )
    return "\n".join(lines)


def series_chart(labels, series: dict, width: int = 48,
                 log_scale: bool = True, title: str | None = None) -> str:
    """One bar group per series entry, flattened with series prefixes."""
    flat_labels = []
    flat_values = []
    for name, values in series.items():
        for label, value in zip(labels, values):
            flat_labels.append(f"{name}@{label}")
            flat_values.append(value)
    return bar_chart(flat_labels, flat_values, width=width,
                     log_scale=log_scale, title=title)
