"""Every quantitative result the paper reports, keyed by figure/section.

Values quoted in the paper's text are exact; bar heights that the text does
not state are read off the figures (the preprint labels most bars with
their values) and marked accordingly in the comments.  These constants are
the "paper" column of every benchmark's comparison table and the reference
EXPERIMENTS.md is scored against.

All training-time series are normalised the way each figure normalises:
Figures 10/12/13(a,b,d)/14 to SGD at batch 2048 on the default 96 GB
model; Figure 13(c) to each model's own SGD; Figure 3 to SGD at the
default configuration.
"""

from __future__ import annotations

OOM = float("inf")

# Figure 3: end-to-end training time vs table size, normalised to SGD.
# 96 MB / 960 MB bar values are read from the figure (axis 0-15); the text
# states the structure: B slowest, F fastest, F 1.5x faster than R at 96 MB,
# <0.3% spread at 96 GB where all reach ~259x.
FIG3_TABLE_SIZES_BYTES = (96e6, 960e6, 9.6e9, 96e9)
FIG3 = {
    "dpsgd_b": (9.0, 13.0, 40.0, 261.0),
    "dpsgd_r": (2.8, 5.5, 31.0, 259.9),
    "dpsgd_f": (1.9, 4.3, 30.0, 259.2),
}
FIG3_F_OVER_R_SMALL = 1.5      # stated: F 1.5x faster than R at 96 MB
FIG3_F_R_GAP_LARGE = 0.003     # stated: <0.3% gap at 96 GB

# Figure 5: model-update latency breakdown. Stated: noise sampling + noisy
# gradient update = 83.1% of the model-update stage at 96 GB and 82.8% of
# end-to-end training time.
FIG5_NOISE_PLUS_UPDATE_OF_MODEL_UPDATE = 0.831
FIG5_NOISE_PLUS_UPDATE_OF_END_TO_END = 0.828
FIG5_MODEL_UPDATE_GROWTH_96GB_VS_96MB = 460.0   # right axis, read off figure

# Figure 6: AVX microbenchmark (all stated in Section 4.3).
FIG6_NOISE_SAMPLING_N = 101
FIG6_NOISE_SAMPLING_GFLOPS = 215.0
FIG6_NOISE_SAMPLING_PEAK_FRACTION = 0.81
FIG6_NOISY_UPDATE_N = 2
FIG6_NOISY_UPDATE_BW_FRACTION = 0.855
FIG6_NOISY_UPDATE_AVX_FRACTION = 0.998

# Figure 10: end-to-end time vs batch size, normalised to SGD @ 2048.
FIG10_BATCHES = (1024, 2048, 4096)
FIG10 = {
    "sgd": (0.7, 1.0, 1.5),
    "lazydp": (1.7, 2.2, 3.1),
    "lazydp_no_ans": (150.0, 151.0, 151.0),
    "dpsgd_f": (258.0, 259.0, 260.0),
}
FIG10_SLOWDOWN_VS_SGD = (1.96, 2.42)     # stated LazyDP range
FIG10_SPEEDUP_RANGE = (85.0, 155.0)      # stated LazyDP vs DP-SGD(F)
FIG10_NO_ANS_SPEEDUP_OVER_F = 1.72       # stated: "average 72% speedup"

# Figure 11: LazyDP latency breakdown at batch 2048 (stated).
FIG11_OVERHEAD_FRACTION = 0.15
FIG11_OVERHEAD_SPLIT = {          # fraction of the LazyDP-introduced overhead
    "lazydp_dedup": 0.61,
    "lazydp_history_read": 0.22,
    "lazydp_history_update": 0.17,
}
FIG11_NOISE_SAMPLING_REDUCTION = 1081.0   # stated, vs DP-SGD(F)
FIG11_NOISY_UPDATE_REDUCTION = 418.0      # stated, vs DP-SGD(F)

# Figure 12: energy, normalised to SGD @ 2048 (bar labels printed in figure).
FIG12 = {
    "sgd": (0.7, 1.0, 1.5),
    "lazydp": (1.8, 2.3, 3.0),
    "dpsgd_f": (353.1, 353.1, 355.7),
}
FIG12_AVG_ENERGY_SAVING = 155.0           # stated average vs DP-SGD(F)

# Figure 13(a): table-size sensitivity (bar labels printed in figure).
FIG13A_SIZES_BYTES = (24e9, 48e9, 96e9, 192e9)
FIG13A = {
    "sgd": (0.9, 0.9, 1.0, 1.0),
    "lazydp": (2.1, 2.1, 2.2, 2.3),
    "dpsgd_f": (68.3, 129.2, 259.2, OOM),
}

# Figure 13(b): pooling-factor sensitivity (bar labels printed in figure).
FIG13B_POOLING = (1, 10, 20, 30)
FIG13B = {
    "sgd": (1.0, 3.2, 5.0, 6.5),
    "lazydp": (2.2, 8.0, 13.5, 15.8),
    "dpsgd_f": (259.2, 259.2, 262.2, 262.8),
}
FIG13B_SPEEDUP_AT_30 = 16.7               # stated

# Figure 13(c): RMC model configs, normalised to each model's own SGD.
FIG13C_MODELS = ("rmc1", "rmc2", "rmc3")
FIG13C = {
    "sgd": (1.0, 1.0, 1.0),
    "lazydp": (3.8, 3.8, 2.6),
    "dpsgd_f": (98.0, 28.2, 329.1),
}
FIG13C_AVG_SPEEDUP = 52.7                 # stated average

# Figure 13(d): access-skew sensitivity (bar labels printed in figure).
FIG13D_LEVELS = ("random", "low", "medium", "high")
FIG13D = {
    "sgd": (1.0, 0.9, 0.9, 1.0),
    "lazydp": (2.2, 2.1, 2.1, 1.9),
    "dpsgd_f": (259.2, 260.3, 259.6, 261.9),
}
FIG13D_AVG_SPEEDUP = 129.03               # stated average
FIG13D_TOP_FRACTIONS = {"low": 0.36, "medium": 0.10, "high": 0.006}

# Figure 14: LazyDP vs EANA (bar labels printed in figure).
FIG14 = {
    "sgd": (0.7, 1.0, 1.5),
    "eana": (1.3, 1.6, 2.4),
    "lazydp": (1.7, 2.2, 3.1),
    "dpsgd_f": (257.6, 259.2, 260.0),
}
FIG14_OVERHEAD_RANGE = (1.27, 1.37)       # stated LazyDP/EANA ratio

# Section 4.2 / 6: hand-optimised model update vs built-in PyTorch.
SEC42_MODEL_UPDATE_SPEEDUP = 8.2
SEC6_OVERALL_KERNEL_SPEEDUP = 13.4

# Section 7.1 headline.
SEC71_AVG_SPEEDUP = 119.0

# Section 7.2: LazyDP implementation overheads at the default config.
SEC72_INPUT_QUEUE_BYTES = 213e3
SEC72_HISTORY_TABLE_BYTES = 751e6
SEC72_HISTORY_FRACTION_LIMIT = 0.01       # "<1% of the total model size"
