"""Experiment drivers: one function per paper figure.

Each ``figure_*`` function returns a :class:`FigureResult` whose
``reproduced`` series is computed by the calibrated performance model at
the paper's full scale (96 MB - 192 GB models), aligned against the
paper-reported series from :mod:`repro.bench.paper_data`.  The functions
are consumed by ``benchmarks/bench_fig*.py`` (which also run *measured*
numpy kernels under pytest-benchmark) and by the EXPERIMENTS.md generator
(``python -m repro.bench.report``).

``measured_series`` runs the real numpy trainers at a scaled-down geometry
and reports the same normalised numbers from wall-clock measurements — the
shape (who wins, by what order) reproduces even though absolute numpy
times are not comparable to the paper's AVX-tuned C++.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from .. import configs
from ..data import DataLoader, SkewSpec, SyntheticClickDataset, paper_skew_spec
from ..nn import DLRM
from ..perfmodel import (
    ALGORITHMS,
    iteration_breakdown,
    iteration_energy_joules,
    paper_system,
)
from ..perfmodel import memory as memmodel
from ..perfmodel import roofline
from ..train import (
    DPConfig,
    DPSGDBTrainer,
    DPSGDFTrainer,
    DPSGDRTrainer,
    EANATrainer,
    SGDTrainer,
)
from . import paper_data
from .reporting import comparison_table, geometric_mean

TRAINER_CLASSES = {
    "sgd": SGDTrainer,
    "dpsgd_b": DPSGDBTrainer,
    "dpsgd_r": DPSGDRTrainer,
    "dpsgd_f": DPSGDFTrainer,
    "eana": EANATrainer,
}


def build_lazydp_trainer(algorithm: str, model: DLRM, dp: DPConfig,
                         noise_seed: int = 1234, **trainer_kwargs):
    """Construct a lazydp-family trainer through the session API.

    The preferred spelling is an explicit plan —
    ``TrainSession.build(model, dp, plan)`` — but internal callers that
    still think in legacy algorithm strings (measured benchmarks, the
    testing helpers) route through here to get the same composed
    trainer without the deprecation warning ``make_trainer`` carries.
    """
    from ..session import TrainSession, plan_for_algorithm

    plan, extras = plan_for_algorithm(algorithm, trainer_kwargs)
    session = TrainSession.build(
        model, dp, plan, noise_seed=noise_seed, **extras
    )
    return session.trainer


def make_trainer(algorithm: str, model: DLRM, dp: DPConfig,
                 noise_seed: int = 1234, **trainer_kwargs):
    """Instantiate any of the algorithms by name.

    .. deprecated::
        For the lazydp family the algorithm *string* encodes an
        execution strategy (``pipelined_sharded_lazydp_no_ans``, ...).
        That cross-product is now expressed as a
        :class:`repro.session.ExecutionPlan`; build trainers with
        ``TrainSession.build(model, dp, plan)`` instead.  Legacy
        strings still work (mapped via
        :func:`repro.session.plan_for_algorithm`) but emit a
        ``DeprecationWarning``.  The baseline algorithms (``sgd``,
        ``dpsgd_b/r/f``, ``eana``) are genuinely different algorithms,
        not execution plans, and stay undeprecated.
    """
    from ..session import LEGACY_ALGORITHMS, plan_for_algorithm

    if algorithm in LEGACY_ALGORITHMS:
        import warnings

        equivalent = plan_for_algorithm(algorithm, trainer_kwargs)[0].canonical()
        warnings.warn(
            f"make_trainer({algorithm!r}) is deprecated: legacy algorithm "
            "strings encode an execution strategy; build an ExecutionPlan "
            "and use repro.session.TrainSession.build (equivalent plan "
            f"spec: {equivalent!r})",
            DeprecationWarning, stacklevel=2,
        )
        return build_lazydp_trainer(
            algorithm, model, dp, noise_seed=noise_seed, **trainer_kwargs
        )
    if algorithm in TRAINER_CLASSES:
        return TRAINER_CLASSES[algorithm](model, dp, noise_seed=noise_seed)
    raise ValueError(f"unknown algorithm: {algorithm}")


@dataclass
class FigureResult:
    """Paper-vs-reproduced series for one figure."""

    figure: str
    labels: tuple
    paper: dict
    reproduced: dict
    label_name: str = "point"
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def table(self) -> str:
        text = comparison_table(
            self.figure, self.labels, self.paper, self.reproduced,
            label_name=self.label_name,
        )
        if self.notes:
            text += f"\nnote: {self.notes}"
        return text

    def chart(self, width: int = 48) -> str:
        """ASCII bar rendering of the reproduced series (log scale)."""
        from .reporting import series_chart

        return series_chart(
            self.labels, self.reproduced, width=width, log_scale=True,
            title=self.figure,
        )


def _reference_seconds(hw=None) -> float:
    """The normalisation anchor every figure uses: SGD @ 2048, 96 GB."""
    config = configs.mlperf_dlrm()
    return iteration_breakdown("sgd", config, 2048, hw=hw).total


def _normalized(algorithm: str, config, batch: int, reference: float,
                hw=None, skew=None) -> float:
    breakdown = iteration_breakdown(
        algorithm, config, batch, hw=hw, skew=skew
    )
    if breakdown.oom:
        return float("inf")
    return breakdown.total / reference


# ---------------------------------------------------------------------------
# Characterisation figures (Section 4)
# ---------------------------------------------------------------------------

def figure3(hw=None) -> FigureResult:
    """DP-SGD(B/R/F) end-to-end time vs table size, normalised to SGD."""
    reference = _reference_seconds(hw)
    labels = tuple(f"{b/1e9:g}GB" if b >= 1e9 else f"{b/1e6:g}MB"
                   for b in paper_data.FIG3_TABLE_SIZES_BYTES)
    reproduced = {}
    for algorithm in ("dpsgd_b", "dpsgd_r", "dpsgd_f"):
        series = []
        for size in paper_data.FIG3_TABLE_SIZES_BYTES:
            config = configs.mlperf_dlrm(int(size))
            series.append(_normalized(algorithm, config, 2048, reference, hw))
        reproduced[algorithm] = tuple(series)
    return FigureResult(
        figure="Figure 3: training time vs table size (x SGD)",
        labels=labels,
        paper=paper_data.FIG3,
        reproduced=reproduced,
        label_name="table size",
        notes="96MB/960MB paper bars read off the figure; text pins "
              "F 1.5x faster than R at 96MB and <0.3% spread at 96GB.",
    )


def figure5(hw=None) -> FigureResult:
    """Model-update latency breakdown for DP-SGD(F) across table sizes."""
    labels = tuple(f"{b/1e9:g}GB" if b >= 1e9 else f"{b/1e6:g}MB"
                   for b in paper_data.FIG3_TABLE_SIZES_BYTES)
    share_series = []
    growth_series = []
    base_update = None
    for size in paper_data.FIG3_TABLE_SIZES_BYTES:
        config = configs.mlperf_dlrm(int(size))
        breakdown = iteration_breakdown("dpsgd_f", config, 2048, hw=hw)
        update_total = breakdown.model_update_total()
        noise_plus_update = (
            breakdown.stage("noise_sampling")
            + breakdown.stage("noisy_grad_update")
        )
        share_series.append(noise_plus_update / update_total)
        if base_update is None:
            base_update = update_total
        growth_series.append(update_total / base_update)
    paper = {
        "noise+update share": (None, None, None,
                               paper_data.FIG5_NOISE_PLUS_UPDATE_OF_MODEL_UPDATE),
        "model-update growth": (1.0, None, None,
                                paper_data.FIG5_MODEL_UPDATE_GROWTH_96GB_VS_96MB),
    }
    reproduced = {
        "noise+update share": tuple(share_series),
        "model-update growth": tuple(growth_series),
    }
    return FigureResult(
        figure="Figure 5: model-update breakdown (DP-SGD)",
        labels=labels,
        paper=paper,
        reproduced=reproduced,
        label_name="table size",
        notes="share = (noise sampling + noisy grad update) / model update; "
              "growth normalised to the 96MB model.",
    )


def figure6(hw=None) -> FigureResult:
    """AVX roofline microbenchmark: effective GFLOPS vs op count N."""
    hw = hw or paper_system()
    labels = ("N=2 (noisy update)", "N=101 (noise sampling)",
              "update BW fraction", "sampling peak fraction")
    update_gflops = roofline.noisy_update_throughput(hw)
    sampling_gflops = roofline.noise_sampling_throughput(hw)
    reproduced = {
        "roofline": (
            update_gflops,
            sampling_gflops,
            update_gflops * 1e9 * roofline.MICROBENCH_BYTES_PER_ELEMENT
            / paper_data.FIG6_NOISY_UPDATE_N / hw.cpu.dram_bandwidth,
            sampling_gflops / hw.cpu.avx_peak_gflops,
        ),
    }
    paper = {
        "roofline": (
            paper_data.FIG6_NOISY_UPDATE_N
            * paper_data.FIG6_NOISY_UPDATE_BW_FRACTION
            * hw.cpu.dram_bandwidth
            / roofline.MICROBENCH_BYTES_PER_ELEMENT / 1e9,
            paper_data.FIG6_NOISE_SAMPLING_GFLOPS,
            paper_data.FIG6_NOISY_UPDATE_BW_FRACTION,
            paper_data.FIG6_NOISE_SAMPLING_PEAK_FRACTION,
        ),
    }
    n_values, gflops = roofline.sweep(hw)
    return FigureResult(
        figure="Figure 6: effective AVX throughput roofline",
        labels=labels,
        paper=paper,
        reproduced=reproduced,
        label_name="operating point",
        extras={"sweep_n": n_values, "sweep_gflops": gflops},
        notes=f"ridge point at N={roofline.ridge_point(hw):.0f}; full sweep "
              "in extras.",
    )


# ---------------------------------------------------------------------------
# Evaluation figures (Section 7)
# ---------------------------------------------------------------------------

def figure10(hw=None) -> FigureResult:
    """End-to-end training time vs batch size (the headline figure)."""
    reference = _reference_seconds(hw)
    config = configs.mlperf_dlrm()
    reproduced = {}
    for algorithm in ("sgd", "lazydp", "lazydp_no_ans", "dpsgd_f"):
        reproduced[algorithm] = tuple(
            _normalized(algorithm, config, batch, reference, hw)
            for batch in paper_data.FIG10_BATCHES
        )
    speedups = [
        reproduced["dpsgd_f"][i] / reproduced["lazydp"][i]
        for i in range(len(paper_data.FIG10_BATCHES))
    ]
    return FigureResult(
        figure="Figure 10: end-to-end training time (x SGD@2048)",
        labels=paper_data.FIG10_BATCHES,
        paper=paper_data.FIG10,
        reproduced=reproduced,
        label_name="batch",
        extras={"lazydp_speedups": speedups,
                "avg_speedup": geometric_mean(speedups)},
        notes="LazyDP speedup over DP-SGD(F): "
              f"{min(speedups):.0f}-{max(speedups):.0f}x "
              "(paper: 85-155x, avg 119x).",
    )


def figure11(hw=None) -> FigureResult:
    """LazyDP's own latency breakdown and pure-overhead split."""
    config = configs.mlperf_dlrm()
    lazydp = iteration_breakdown("lazydp", config, 2048, hw=hw)
    dpsgd_f = iteration_breakdown("dpsgd_f", config, 2048, hw=hw)
    overhead = lazydp.lazydp_overhead_total()
    split = {
        stage: lazydp.stage(stage) / overhead
        for stage in paper_data.FIG11_OVERHEAD_SPLIT
    }
    noise_reduction = (
        dpsgd_f.stage("noise_sampling") / lazydp.stage("noise_sampling")
    )
    update_reduction = (
        dpsgd_f.stage("noisy_grad_update") / lazydp.stage("noisy_grad_update")
    )
    labels = ("overhead fraction", "dedup share", "history-read share",
              "history-update share", "noise reduction", "update reduction")
    paper = {
        "lazydp": (
            paper_data.FIG11_OVERHEAD_FRACTION,
            paper_data.FIG11_OVERHEAD_SPLIT["lazydp_dedup"],
            paper_data.FIG11_OVERHEAD_SPLIT["lazydp_history_read"],
            paper_data.FIG11_OVERHEAD_SPLIT["lazydp_history_update"],
            paper_data.FIG11_NOISE_SAMPLING_REDUCTION,
            paper_data.FIG11_NOISY_UPDATE_REDUCTION,
        ),
    }
    reproduced = {
        "lazydp": (
            overhead / lazydp.total,
            split["lazydp_dedup"],
            split["lazydp_history_read"],
            split["lazydp_history_update"],
            noise_reduction,
            update_reduction,
        ),
    }
    return FigureResult(
        figure="Figure 11: LazyDP latency breakdown",
        labels=labels,
        paper=paper,
        reproduced=reproduced,
        label_name="metric",
        extras={"stages": dict(lazydp.stages)},
    )


def figure12(hw=None) -> FigureResult:
    """Energy consumption, normalised to SGD @ 2048."""
    hw = hw or paper_system()
    config = configs.mlperf_dlrm()
    reference = iteration_energy_joules(
        iteration_breakdown("sgd", config, 2048, hw=hw), hw
    )
    reproduced = {}
    for algorithm in ("sgd", "lazydp", "dpsgd_f"):
        series = []
        for batch in paper_data.FIG10_BATCHES:
            breakdown = iteration_breakdown(algorithm, config, batch, hw=hw)
            series.append(iteration_energy_joules(breakdown, hw) / reference)
        reproduced[algorithm] = tuple(series)
    savings = [
        reproduced["dpsgd_f"][i] / reproduced["lazydp"][i]
        for i in range(len(paper_data.FIG10_BATCHES))
    ]
    return FigureResult(
        figure="Figure 12: energy consumption (x SGD@2048)",
        labels=paper_data.FIG10_BATCHES,
        paper=paper_data.FIG12,
        reproduced=reproduced,
        label_name="batch",
        extras={"avg_energy_saving": geometric_mean(savings)},
        notes=f"avg energy saving {geometric_mean(savings):.0f}x "
              "(paper: 155x).",
    )


def figure13a(hw=None) -> FigureResult:
    """Sensitivity to embedding-table size, incl. the 192 GB OOM."""
    reference = _reference_seconds(hw)
    labels = tuple(f"{int(b/1e9)}GB" for b in paper_data.FIG13A_SIZES_BYTES)
    reproduced = {}
    for algorithm in ("sgd", "lazydp", "dpsgd_f"):
        reproduced[algorithm] = tuple(
            _normalized(algorithm, configs.mlperf_dlrm(int(size)), 2048,
                        reference, hw)
            for size in paper_data.FIG13A_SIZES_BYTES
        )
    return FigureResult(
        figure="Figure 13a: table-size sensitivity (x SGD@2048)",
        labels=labels,
        paper=paper_data.FIG13A,
        reproduced=reproduced,
        label_name="table size",
    )


def figure13b(hw=None) -> FigureResult:
    """Sensitivity to the embedding pooling factor."""
    reference = _reference_seconds(hw)
    reproduced = {}
    for algorithm in ("sgd", "lazydp", "dpsgd_f"):
        series = []
        for pooling in paper_data.FIG13B_POOLING:
            config = configs.mlperf_dlrm(lookups_per_table=pooling)
            series.append(_normalized(algorithm, config, 2048, reference, hw))
        reproduced[algorithm] = tuple(series)
    return FigureResult(
        figure="Figure 13b: pooling-factor sensitivity (x SGD@2048)",
        labels=paper_data.FIG13B_POOLING,
        paper=paper_data.FIG13B,
        reproduced=reproduced,
        label_name="pooling",
    )


def figure13c(hw=None) -> FigureResult:
    """Alternative DLRM configurations RMC1-RMC3."""
    model_factories = {
        "rmc1": configs.rmc1, "rmc2": configs.rmc2, "rmc3": configs.rmc3,
    }
    reproduced = {"sgd": (), "lazydp": (), "dpsgd_f": ()}
    for name in paper_data.FIG13C_MODELS:
        config = model_factories[name]()
        own_sgd = iteration_breakdown("sgd", config, 2048, hw=hw).total
        for algorithm in reproduced:
            value = _normalized(algorithm, config, 2048, own_sgd, hw)
            reproduced[algorithm] = reproduced[algorithm] + (value,)
    return FigureResult(
        figure="Figure 13c: RMC model configs (x own SGD)",
        labels=paper_data.FIG13C_MODELS,
        paper=paper_data.FIG13C,
        reproduced=reproduced,
        label_name="model",
        notes="RMC hyper-parameters follow DeepRecSys shapes; exact sizes "
              "unstated in the paper (DESIGN.md deviations).",
    )


def figure13d(hw=None) -> FigureResult:
    """Sensitivity to embedding access skew (Criteo-style power law)."""
    reference = _reference_seconds(hw)
    config = configs.mlperf_dlrm()
    rows = config.table_rows[0]
    reproduced = {}
    for algorithm in ("sgd", "lazydp", "dpsgd_f"):
        series = []
        for level in paper_data.FIG13D_LEVELS:
            skew = None if level == "random" else paper_skew_spec(level, rows)
            series.append(
                _normalized(algorithm, config, 2048, reference, hw, skew=skew)
            )
        reproduced[algorithm] = tuple(series)
    return FigureResult(
        figure="Figure 13d: access-skew sensitivity (x SGD@2048)",
        labels=paper_data.FIG13D_LEVELS,
        paper=paper_data.FIG13D,
        reproduced=reproduced,
        label_name="skew",
        notes="skew levels calibrated so 90% of accesses hit 36%/10%/0.6% "
              "of rows, as in the paper.",
    )


def figure14(hw=None) -> FigureResult:
    """LazyDP vs EANA across batch sizes."""
    reference = _reference_seconds(hw)
    config = configs.mlperf_dlrm()
    reproduced = {}
    for algorithm in ("sgd", "eana", "lazydp", "dpsgd_f"):
        reproduced[algorithm] = tuple(
            _normalized(algorithm, config, batch, reference, hw)
            for batch in paper_data.FIG10_BATCHES
        )
    overheads = [
        reproduced["lazydp"][i] / reproduced["eana"][i]
        for i in range(len(paper_data.FIG10_BATCHES))
    ]
    return FigureResult(
        figure="Figure 14: LazyDP vs EANA (x SGD@2048)",
        labels=paper_data.FIG10_BATCHES,
        paper=paper_data.FIG14,
        reproduced=reproduced,
        label_name="batch",
        extras={"lazydp_over_eana": overheads},
        notes=f"LazyDP/EANA overhead {min(overheads):.2f}-"
              f"{max(overheads):.2f}x (paper: 1.27-1.37x).",
    )


def section72(batch: int = 2048) -> FigureResult:
    """LazyDP implementation overheads (input queue + HistoryTable)."""
    config = configs.mlperf_dlrm()
    queue_bytes = memmodel.input_queue_bytes(batch, config)
    history_bytes = memmodel.history_table_bytes(config)
    fraction = history_bytes / memmodel.table_bytes(config)
    labels = ("input queue bytes", "history table bytes", "history fraction")
    return FigureResult(
        figure="Section 7.2: LazyDP metadata overheads",
        labels=labels,
        paper={"overheads": (paper_data.SEC72_INPUT_QUEUE_BYTES,
                             paper_data.SEC72_HISTORY_TABLE_BYTES,
                             paper_data.SEC72_HISTORY_FRACTION_LIMIT)},
        reproduced={"overheads": (float(queue_bytes), float(history_bytes),
                                  fraction)},
        label_name="metric",
        notes="paper fraction entry is the stated '<1%' bound.",
    )


ALL_FIGURES = {
    "figure3": figure3,
    "figure5": figure5,
    "figure6": figure6,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13a": figure13a,
    "figure13b": figure13b,
    "figure13c": figure13c,
    "figure13d": figure13d,
    "figure14": figure14,
    "section72": section72,
}


# ---------------------------------------------------------------------------
# Measured mode: run the real numpy trainers at a scaled-down geometry.
# ---------------------------------------------------------------------------

def measured_series(algorithms, config=None, batch: int = 256,
                    iterations: int = 4, seed: int = 11,
                    skew: SkewSpec | None = None,
                    dp: DPConfig | None = None) -> dict:
    """Wall-clock per-iteration seconds for each algorithm (numpy, scaled).

    Every algorithm trains the *same* initial model on the *same* trace.
    Returns ``{algorithm: seconds_per_iteration}``.
    """
    config = config or configs.small_dlrm(rows=20000)
    dp = dp or DPConfig()
    results = {}
    for algorithm in algorithms:
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm: {algorithm}")
        model = DLRM(config, seed=seed)
        dataset = SyntheticClickDataset(config, seed=seed + 1, skew=skew)
        loader = DataLoader(dataset, batch_size=batch,
                            num_batches=iterations, seed=seed + 2)
        trainer = _measured_trainer(algorithm, model, dp, seed + 3)
        result = trainer.fit(loader)
        results[algorithm] = result.wall_time / max(result.iterations, 1)
    return results


def _measured_trainer(algorithm: str, model, dp, noise_seed: int):
    """Internal dispatch without the make_trainer deprecation warning."""
    from ..testing import trainer_for

    return trainer_for(algorithm, model, dp, noise_seed=noise_seed)


def measured_stage_breakdown(algorithm: str, config=None, batch: int = 256,
                             iterations: int = 4, seed: int = 11,
                             dp: DPConfig | None = None) -> dict:
    """Per-stage wall-clock totals from the instrumented trainer."""
    config = config or configs.small_dlrm(rows=20000)
    dp = dp or DPConfig()
    model = DLRM(config, seed=seed)
    dataset = SyntheticClickDataset(config, seed=seed + 1)
    loader = DataLoader(dataset, batch_size=batch, num_batches=iterations,
                        seed=seed + 2)
    trainer = _measured_trainer(algorithm, model, dp, seed + 3)
    trainer.fit(loader)
    return trainer.timer.as_dict()
