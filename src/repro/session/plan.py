"""ExecutionPlan: the orthogonal execution axes of a LazyDP training run.

The paper's contributions — lazy deferred noise, aggregated noise
sampling, prefetch pipelining — and the engines this repo grew around
them (sharded tables, async in-flight applies) are *orthogonal
execution concerns*: any combination trains the same model to the same
bits.  Historically every combination was its own trainer class and
algorithm string (``pipelined_sharded_lazydp_no_ans``, ...); an
:class:`ExecutionPlan` names the combination by its axes instead:

``ans``
    Aggregated noise sampling on/off (the algorithmic ablation axis).
``shards``
    ``None`` for flat tables, or a :class:`repro.configs.ShardConfig`
    for the partitioned embedding engine (``repro.shard``).
``pipeline``
    ``None`` for inline catch-up, or a
    :class:`repro.configs.PipelineConfig` for background noise prefetch
    (``repro.pipeline``).
``async_``
    ``None`` for synchronous applies, or a
    :class:`repro.configs.AsyncConfig` for multi-in-flight applies
    (``repro.async_``; implies the pipeline axis — when ``pipeline`` is
    ``None`` the prefetch depth defaults to ``max(2, max_in_flight)``).
``backend``
    Execution backend, as a ``"name[:workers]"`` spec resolved against
    the registry in :mod:`repro.session.registry` — ``"numpy"``
    (default, in-process serial schedule), ``"threads[:K]"`` (shard
    thread pool), ``"process"`` (one worker process per shard, slabs in
    shared memory; ``repro.procshard``), ``"numba"`` (compiled
    ``@njit`` kernels via the kernel-table dispatcher; needs the
    optional ``[numba]`` extra, else validation raises
    :class:`PlanError <repro.session.registry.PlanError>`).  New
    backends land as ``register_backend`` calls, not new trainer
    classes.  The pre-registry spelling
    ``ShardConfig(executor=..., max_workers=...)`` still canonicalizes
    onto this axis with one ``DeprecationWarning``.
``obs``
    ``None`` for an uninstrumented run, or a
    :class:`repro.configs.ObservabilityConfig` selecting tracing
    and/or metrics (``repro.obs``).  Unlike the other axes this is an
    *instance* concern — the session builder instruments the composed
    trainer rather than adding a class layer, so the trainer-class
    cache is untouched.
``serve``
    ``None`` for uncached serving handles, or a
    :class:`repro.configs.ServeConfig` sizing the skew-aware hot-row
    cache ``TrainSession.serve`` puts in front of each serving engine
    (``repro.serve``).  Like ``obs`` this is an instance concern: it
    configures the handles the session hands out, not the trainer.

Plans serialize three ways: :meth:`to_dict`/:meth:`from_dict` (nested
JSON, for configs and BENCH_*.json metadata), :meth:`to_spec`/
:meth:`from_spec` (the flat ``"shards=4,pipeline=2,async=bounded:2"``
mini-language the CLI's ``--plan`` flag speaks), and
:meth:`legacy_name` (the historical algorithm string, still accepted by
``make_trainer`` through a deprecation shim).  ``from_spec(to_spec(p))
== p`` and ``from_dict(to_dict(p)) == p`` hold for every valid plan.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..configs import (
    AsyncConfig,
    ObservabilityConfig,
    PipelineConfig,
    ServeConfig,
    ShardConfig,
)
from .registry import (
    PlanError,
    backend_info,
    canonical_backend_spec,
    parse_backend_spec,
)


def _backend_for_executor(executor: str, max_workers) -> str:
    """The backend-axis spelling of a deprecated ``ShardConfig``
    executor selection (``"serial"`` is the numpy backend's serial
    schedule; ``max_workers`` only ever bounded a thread pool)."""
    if executor == "serial":
        return "numpy"
    return canonical_backend_spec(executor, max_workers)

_SPEC_KEYS = (
    "ans",
    "shards",
    "partition",
    "executor",
    "workers",
    "pipeline",
    "async",
    "inflight",
    "obs",
    "serve",
    "admission",
    "backend",
)

_TRUE_WORDS = ("on", "true", "yes", "1")
_FALSE_WORDS = ("off", "false", "no", "0")


def _parse_bool(key: str, value: str) -> bool:
    word = value.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    raise ValueError(
        f"invalid plan spec: {key}={value!r} is not a boolean "
        f"(use one of {'/'.join(_TRUE_WORDS)} or {'/'.join(_FALSE_WORDS)})"
    )


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"invalid plan spec: {key}={value!r} is not an integer"
        ) from None


@dataclass(frozen=True)
class ExecutionPlan:
    """One training run's execution strategy, one field per axis."""

    ans: bool = True
    shards: ShardConfig | None = None
    pipeline: PipelineConfig | None = None
    async_: AsyncConfig | None = None
    backend: str = "numpy"
    obs: ObservabilityConfig | None = None
    serve: ServeConfig | None = None

    def __post_init__(self):
        if self.shards is not None and not isinstance(self.shards, ShardConfig):
            raise ValueError("shards must be a ShardConfig or None")
        if self.shards is not None and (
            self.shards.executor != "serial"
            or self.shards.max_workers is not None
        ):
            # Deprecated spelling: executor selection used to live on
            # ShardConfig.  Canonicalize onto the backend axis so every
            # spelling of the same plan compares (and serializes) equal.
            if self.backend != "numpy":
                raise ValueError(
                    "contradictory plan: ShardConfig selects executor "
                    f"{self.shards.executor!r} (max_workers="
                    f"{self.shards.max_workers}) but the plan also sets "
                    f"backend={self.backend!r}; the executor/max_workers "
                    "spelling is deprecated — set the backend axis alone"
                )
            backend = _backend_for_executor(
                self.shards.executor, self.shards.max_workers
            )
            warnings.warn(
                "ShardConfig.executor/max_workers are deprecated; select "
                "the execution backend on the plan's backend axis instead "
                f"(equivalent plan axis: backend={backend!r})",
                DeprecationWarning,
                stacklevel=2,
            )
            object.__setattr__(
                self,
                "shards",
                ShardConfig(
                    num_shards=self.shards.num_shards,
                    partition=self.shards.partition,
                ),
            )
            object.__setattr__(self, "backend", backend)
        if self.pipeline is not None:
            if not isinstance(self.pipeline, PipelineConfig):
                raise ValueError("pipeline must be a PipelineConfig or None")
            if not self.pipeline.enabled:
                raise ValueError(
                    "pipeline axis is present but disabled; use pipeline=None "
                    "for the inline catch-up path"
                )
        if self.async_ is not None:
            if not isinstance(self.async_, AsyncConfig):
                raise ValueError("async_ must be an AsyncConfig or None")
            if not self.async_.enabled:
                raise ValueError(
                    "async axis is present but disabled; use async_=None "
                    "for synchronous applies"
                )
        if self.obs is not None and not isinstance(
            self.obs, ObservabilityConfig
        ):
            raise ValueError("obs must be an ObservabilityConfig or None")
        if self.serve is not None and not isinstance(
            self.serve, ServeConfig
        ):
            raise ValueError("serve must be a ServeConfig or None")
        # Registry validation runs on the canonical form: the backend
        # must be registered and must declare a capability for every
        # axis this plan switches on.
        name, workers = parse_backend_spec(self.backend)
        info = backend_info(name)
        if self.shards is None:
            if not info.supports("flat"):
                raise ValueError(
                    f"backend {name!r} requires the shards axis "
                    f"(plan spec: shards=N,backend={name})"
                )
        elif not info.supports("shards"):
            raise ValueError(
                f"backend {name!r} does not compose with the shards axis"
            )
        if self.pipeline is not None and not info.supports("pipeline"):
            raise ValueError(
                f"backend {name!r} does not compose with the pipeline "
                "axis: its workers already overlap noise preparation "
                "with the model update"
            )
        if self.async_ is not None and not info.supports("async"):
            raise ValueError(
                f"backend {name!r} does not compose with the async axis"
            )
        # Environmental availability last: a well-formed plan naming a
        # backend whose optional dependency is missing gets a
        # PlanError spelling out the extra to install.
        ok, reason = info.available()
        if not ok:
            raise PlanError(
                f"backend {name!r} is unavailable: {reason}"
            )
        if (
            name == "process"
            and workers is not None
            and self.shards is not None
            and workers != self.shards.num_shards
        ):
            raise ValueError(
                f"invalid backend spec: process:{workers} pins one worker "
                f"process per shard, but the plan has "
                f"{self.shards.num_shards} shard(s) (use backend=process "
                f"or backend=process:{self.shards.num_shards})"
            )

    # -- derived shape -----------------------------------------------------
    @property
    def is_sharded(self) -> bool:
        """Partitioned embedding engine (any shard count, including 1)."""
        return self.shards is not None

    @property
    def is_async(self) -> bool:
        return self.async_ is not None

    @property
    def is_pipelined(self) -> bool:
        """Background noise prefetch (explicit, or implied by async)."""
        return self.pipeline is not None or self.is_async

    def legacy_name(self) -> str:
        """The historical algorithm string for this combination."""
        prefix = "async_" if self.is_async else (
            "pipelined_" if self.is_pipelined else ""
        )
        sharded = "sharded_" if self.is_sharded else ""
        suffix = "" if self.ans else "_no_ans"
        return f"{prefix}{sharded}lazydp{suffix}"

    # -- dict round trip ---------------------------------------------------
    def to_dict(self) -> dict:
        """Nested JSON-serializable form; ``from_dict`` inverts it."""
        return {
            "ans": self.ans,
            "shards": None if self.shards is None else self.shards.to_dict(),
            "pipeline": (
                None if self.pipeline is None else self.pipeline.to_dict()
            ),
            "async": None if self.async_ is None else self.async_.to_dict(),
            "backend": self.backend,
            "obs": None if self.obs is None else self.obs.to_dict(),
            "serve": None if self.serve is None else self.serve.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionPlan":
        if not isinstance(data, dict):
            raise ValueError(
                f"ExecutionPlan expects a mapping, got {type(data).__name__}"
            )
        known = {"ans", "shards", "pipeline", "async", "backend", "obs",
                 "serve"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ExecutionPlan keys: {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(known))})"
            )
        shards = data.get("shards")
        pipeline = data.get("pipeline")
        async_ = data.get("async")
        obs = data.get("obs")
        serve = data.get("serve")
        return cls(
            ans=bool(data.get("ans", True)),
            shards=None if shards is None else ShardConfig.from_dict(shards),
            pipeline=(
                None if pipeline is None else PipelineConfig.from_dict(pipeline)
            ),
            async_=None if async_ is None else AsyncConfig.from_dict(async_),
            backend=data.get("backend", "numpy"),
            obs=None if obs is None else ObservabilityConfig.from_dict(obs),
            serve=None if serve is None else ServeConfig.from_dict(serve),
        )

    # -- spec round trip (the CLI's --plan mini-language) -------------------
    @classmethod
    def from_spec(cls, spec: str) -> "ExecutionPlan":
        """Parse ``"shards=4,pipeline=2,async=bounded:2,ans=off"``.

        Every key is optional (an empty spec is the serial flat plan);
        axis value ``0`` (or ``async=off``) switches an axis off
        explicitly.  Contradictory combinations — sub-keys without
        their axis, or ``async`` with ``pipeline=0`` — are rejected
        with a message naming the contradiction.
        """
        values: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, separator, value = item.partition("=")
            key = key.strip().lower()
            if not separator:
                raise ValueError(
                    f"invalid plan spec: {item!r} is not key=value "
                    f"(known keys: {', '.join(_SPEC_KEYS)})"
                )
            if key not in _SPEC_KEYS:
                raise ValueError(
                    f"invalid plan spec: unknown key {key!r} "
                    f"(known keys: {', '.join(_SPEC_KEYS)})"
                )
            if key in values:
                raise ValueError(f"invalid plan spec: duplicate key {key!r}")
            values[key] = value.strip()

        ans = _parse_bool("ans", values["ans"]) if "ans" in values else True
        backend = values.get("backend", "numpy")
        deprecated_executor_keys = [
            key for key in ("executor", "workers") if key in values
        ]
        if "backend" in values and deprecated_executor_keys:
            raise ValueError(
                "contradictory plan spec: "
                f"{', '.join(deprecated_executor_keys)} and backend= both "
                "select an execution backend; executor=/workers= are the "
                "deprecated spelling — use backend=name[:workers] alone"
            )

        num_shards = (
            _parse_int("shards", values["shards"]) if "shards" in values else 0
        )
        if num_shards < 0:
            raise ValueError("invalid plan spec: shards must be >= 0")
        shard_subkeys = [
            key for key in ("partition", "executor", "workers") if key in values
        ]
        if num_shards == 0:
            if shard_subkeys:
                raise ValueError(
                    "contradictory plan spec: "
                    f"{', '.join(shard_subkeys)} require(s) shards>=1, but "
                    "the shards axis is off"
                )
            shards = None
        else:
            shards = ShardConfig(
                num_shards=num_shards,
                partition=values.get("partition", "row_range"),
                executor=values.get("executor", "serial"),
                max_workers=(
                    _parse_int("workers", values["workers"])
                    if "workers" in values
                    else None
                ),
            )

        depth = (
            _parse_int("pipeline", values["pipeline"])
            if "pipeline" in values
            else None
        )
        if depth is not None and depth < 0:
            raise ValueError("invalid plan spec: pipeline must be >= 0")
        pipeline = (
            PipelineConfig(enabled=True, prefetch_depth=depth)
            if depth
            else None
        )

        async_word = values.get("async", "off").lower()
        # Accept the same off-spellings the boolean keys do (plus
        # "none"), so "async=false" switches the axis off instead of
        # parsing as a staleness mode.
        async_off = async_word in _FALSE_WORDS + ("none",)
        if async_off:
            if "inflight" in values:
                raise ValueError(
                    "contradictory plan spec: inflight requires the async "
                    "axis (async=strict or async=bounded[:k])"
                )
            async_ = None
        else:
            if depth == 0:
                raise ValueError(
                    f"contradictory plan spec: async={async_word} needs the "
                    "noise-prefetch pipeline, but pipeline=0 disables it "
                    "(drop pipeline=0 or set a depth >= 1)"
                )
            async_ = AsyncConfig(
                enabled=True,
                max_in_flight=(
                    _parse_int("inflight", values["inflight"])
                    if "inflight" in values
                    else 2
                ),
                staleness=async_word,
            )

        obs_word = values.get("obs", "off").lower()
        if obs_word in _FALSE_WORDS + ("none",):
            obs = None
        else:
            modes = {"trace": False, "metrics": False}
            for token in obs_word.split("+"):
                token = token.strip()
                if token in ("all", "full"):
                    modes["trace"] = modes["metrics"] = True
                elif token in modes:
                    modes[token] = True
                else:
                    raise ValueError(
                        f"invalid plan spec: obs={obs_word!r} — unknown "
                        f"mode {token!r} (use trace, metrics, "
                        "trace+metrics, or off)"
                    )
            obs = ObservabilityConfig(**modes)

        serve_word = values.get("serve", "off").lower()
        if serve_word in _FALSE_WORDS + ("none",):
            # "serve=0" lands here too — the zero spelling every other
            # axis uses to switch off explicitly.
            if "admission" in values:
                raise ValueError(
                    "contradictory plan spec: admission requires the serve "
                    "axis (serve=<cache_rows>)"
                )
            serve = None
        else:
            serve = ServeConfig(
                cache_rows=_parse_int("serve", serve_word),
                admission=(
                    _parse_int("admission", values["admission"])
                    if "admission" in values
                    else 2
                ),
            )

        return cls(
            ans=ans,
            shards=shards,
            pipeline=pipeline,
            async_=async_,
            backend=backend,
            obs=obs,
            serve=serve,
        )

    def to_spec(self) -> str:
        """The canonical flat spec string; ``from_spec`` inverts it.

        Canonical form: ``ans`` always present, axis sub-keys spelled
        out whenever the axis is on, the default numpy backend
        omitted.  This is the string benchmarks put in
        BENCH_*.json metadata, so plan identity is comparable across
        reports.
        """
        parts = [f"ans={'on' if self.ans else 'off'}"]
        if self.shards is not None:
            # Executor selection lives on the backend axis (emitted
            # last); canonical ShardConfigs carry only the partition
            # geometry.
            parts.append(f"shards={self.shards.num_shards}")
            parts.append(f"partition={self.shards.partition}")
        if self.pipeline is not None:
            parts.append(f"pipeline={self.pipeline.prefetch_depth}")
        if self.async_ is not None:
            parts.append(f"async={self.async_.staleness}")
            parts.append(f"inflight={self.async_.max_in_flight}")
        if self.obs is not None:
            parts.append(f"obs={'+'.join(self.obs.modes())}")
        if self.serve is not None:
            parts.append(f"serve={self.serve.cache_rows}")
            parts.append(f"admission={self.serve.admission}")
        if self.backend != "numpy":
            parts.append(f"backend={self.backend}")
        return ",".join(parts)

    def canonical(self) -> str:
        """Alias for :meth:`to_spec` (the canonical plan string)."""
        return self.to_spec()


# ---------------------------------------------------------------------------
# Legacy algorithm strings -> plans (the make_trainer shim's mapping).
# ---------------------------------------------------------------------------

#: Every algorithm string the trainer-class cross-product used to
#: enumerate.  ``make_trainer`` still accepts them (with a
#: DeprecationWarning); each maps onto exactly one ExecutionPlan shape.
LEGACY_ALGORITHMS = tuple(
    f"{prefix}{sharded}lazydp{suffix}"
    for prefix in ("", "pipelined_", "async_")
    for sharded in ("", "sharded_")
    for suffix in ("", "_no_ans")
)


def plan_for_algorithm(algorithm: str, trainer_kwargs: dict | None = None):
    """Map a legacy algorithm string (+ its trainer kwargs) to a plan.

    Returns ``(plan, extras)`` where ``extras`` carries the kwargs a
    plan cannot express because they are live objects rather than
    configuration — ``skew`` (trace skew for the frequency
    partitioner), ``partition_plan`` (a prebuilt
    :class:`repro.shard.PartitionPlan`) and ``executor`` (a
    :class:`repro.shard.ShardExecutor` *instance*).  Pass both to
    :meth:`repro.session.TrainSession.build`.
    """
    if algorithm not in LEGACY_ALGORITHMS:
        raise ValueError(
            f"unknown lazydp algorithm: {algorithm!r} "
            f"(legacy names: {', '.join(LEGACY_ALGORITHMS)})"
        )
    kwargs = dict(trainer_kwargs or {})
    ans = not algorithm.endswith("_no_ans")
    is_sharded = "sharded" in algorithm
    is_async = algorithm.startswith("async_")
    is_pipelined = algorithm.startswith("pipelined_")

    extras: dict = {}
    shards = None
    backend = "numpy"
    if is_sharded:
        executor = kwargs.pop("executor", "serial")
        max_workers = kwargs.pop("max_workers", None)
        if not isinstance(executor, str):
            # A live executor instance travels in extras; the plan
            # records its backend name (or numpy for custom ones).
            extras["executor"] = executor
            name = getattr(executor, "name", "serial")
            executor = name if name in ("serial", "threads") else "serial"
        # Construct the canonical backend-axis form directly — the
        # legacy *algorithm* shim already warned once; the deprecated
        # ShardConfig.executor spelling must not warn again.
        backend = _backend_for_executor(executor, max_workers)
        shards = ShardConfig(
            num_shards=kwargs.pop("num_shards", 2),
            partition=kwargs.pop("partition", "row_range"),
        )
        if "plan" in kwargs:
            extras["partition_plan"] = kwargs.pop("plan")
        if "skew" in kwargs:
            extras["skew"] = kwargs.pop("skew")

    pipeline = None
    if is_pipelined:
        pipeline = PipelineConfig(
            enabled=True, prefetch_depth=kwargs.pop("prefetch_depth", 2)
        )

    async_ = None
    if is_async:
        async_ = AsyncConfig(
            enabled=True,
            max_in_flight=kwargs.pop("max_in_flight", 2),
            staleness=kwargs.pop("staleness", "strict"),
        )
        depth = kwargs.pop("prefetch_depth", None)
        if depth is not None:
            pipeline = PipelineConfig(enabled=True, prefetch_depth=depth)

    if kwargs:
        raise TypeError(
            f"unexpected trainer kwargs for {algorithm!r}: "
            f"{', '.join(sorted(kwargs))}"
        )
    plan = ExecutionPlan(
        ans=ans, shards=shards, pipeline=pipeline, async_=async_,
        backend=backend,
    )
    return plan, extras
