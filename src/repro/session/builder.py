"""TrainSession: compose engines from an ExecutionPlan, no class picking.

``compose_trainer_class`` assembles a trainer class from capability
layers instead of selecting among hand-enumerated cross-product
classes:

* base — :class:`repro.lazydp.trainer.LazyDPTrainer` (flat tables) or
  :class:`repro.shard.trainer.ShardedLazyDPTrainer` (partitioned
  slabs), chosen by the plan's ``shards`` axis;
* pipeline layer — :class:`repro.pipeline.trainer._PipelineHost` plus
  the layout-matching prefetch half
  (:class:`~repro.pipeline.trainer._FlatNoisePrefetch` /
  :class:`~repro.pipeline.trainer._ShardedNoisePrefetch`);
* async layer — :class:`repro.async_.trainer._AsyncHost` plus the
  layout-matching apply half
  (:class:`~repro.async_.trainer._FlatAsyncApply` /
  :class:`~repro.async_.trainer._ShardedAsyncApply`).

The composed MROs are exactly the stacks the legacy concrete classes
(``PipelinedShardedLazyDPTrainer`` & co.) are built from, so a
plan-built trainer is *bitwise identical* in behaviour to its legacy
counterpart — ``tests/test_session_equivalence.py`` pins this across
the whole historical matrix.  The *base* of the stack comes from the
execution-backend registry (:mod:`repro.session.registry`): the plan's
``backend`` axis names a registered factory that resolves the plan
shape to a base class — ``numpy`` / ``threads`` resolve to the
in-process trainers, ``process`` to
:class:`repro.procshard.ProcessShardedLazyDPTrainer` — so a new
backend (the ROADMAP's numba kernels) lands as one ``register_backend``
call, not as 2^n new classes.

:class:`TrainSession` is the facade over a built trainer: ``fit``,
privacy accounting, private release, and :meth:`serve` — which hands
out a :class:`repro.serve.PrivateServingEngine` *attached* to the live
trainer, so the serving memo refreshes when training resumes instead
of freezing at construction.
"""

from __future__ import annotations

from ..async_.trainer import _AsyncHost, _FlatAsyncApply, _ShardedAsyncApply
from ..pipeline.trainer import (
    _FlatNoisePrefetch,
    _PipelineHost,
    _ShardedNoisePrefetch,
)
from ..train.common import DPConfig, TrainResult
from .plan import ExecutionPlan
from .registry import backend_info, parse_backend_spec

#: Composed classes are cached per axis tuple: composition is
#: deterministic, and a stable class identity keeps ``isinstance``
#: checks meaningful across builds.
_CLASS_CACHE: dict = {}


def _layered_init(base, async_enabled):
    """__init__ for a composed class: base construction, then one
    ``_init_*`` call per stacked capability (mirroring how the legacy
    concrete classes sequence their construction)."""

    def __init__(
        self,
        model,
        config,
        noise_seed: int = 1234,
        use_ans: bool = True,
        prefetch_depth: int | None = None,
        max_in_flight: int = 2,
        staleness="strict",
        **base_kwargs,
    ):
        base.__init__(
            self,
            model,
            config,
            noise_seed=noise_seed,
            use_ans=use_ans,
            **base_kwargs,
        )
        if prefetch_depth is None:
            # Async runs need enough noise runway for the in-flight
            # window; plain pipelining double-buffers.
            prefetch_depth = max(2, max_in_flight) if async_enabled else 2
        self._init_pipeline(prefetch_depth)
        if async_enabled:
            self._init_async(max_in_flight, staleness)

    return __init__


def compose_trainer_class(
    *,
    sharded: bool = False,
    pipelined: bool = False,
    async_: bool = False,
    backend: str = "numpy",
):
    """The trainer class for one combination of capability axes.

    ``backend`` is a registry spec (``"name[:workers]"``); the worker
    count shapes trainer *kwargs* (see :meth:`TrainSession.build`), not
    the class, so the cache keys on the backend name alone.
    """
    name, _ = parse_backend_spec(backend)
    pipelined = pipelined or async_  # async rides on the prefetch pipeline
    key = (sharded, pipelined, async_, name)
    cached = _CLASS_CACHE.get(key)
    if cached is not None:
        return cached

    base = backend_info(name).factory(
        sharded=sharded, pipelined=pipelined, async_=async_
    )
    if not pipelined:
        cls = base  # no layers: the core trainer is the composition
    else:
        layers: tuple = ()
        tags = []
        if async_:
            layers += (
                _ShardedAsyncApply if sharded else _FlatAsyncApply,
                _AsyncHost,
            )
            tags.append("Async")
        layers += (
            _ShardedNoisePrefetch if sharded else _FlatNoisePrefetch,
            _PipelineHost,
        )
        tags.append("Pipelined")
        if sharded:
            tags.append("Sharded")
        cls = type(
            f"Composed{''.join(tags)}LazyDPTrainer",
            layers + (base,),
            {
                "__init__": _layered_init(base, async_),
                "__module__": __name__,
                "__doc__": (
                    "Plan-composed LazyDP trainer "
                    f"(layers: {' + '.join(tags).lower()}); built by "
                    "repro.session.compose_trainer_class."
                ),
            },
        )
    _CLASS_CACHE[key] = cls
    return cls


class TrainSession:
    """A model + DP config + ExecutionPlan, composed and ready to run.

    Build one with :meth:`build`; afterwards the session owns the
    trainer's lifecycle (``fit`` ... ``close``) and is the hub the
    serving engine attaches to.  The underlying trainer stays reachable
    as ``session.trainer`` for instrumentation
    (``pipeline_stats`` / ``async_stats`` / ``kernel_stats``).
    """

    def __init__(self, model, dp: DPConfig, plan: ExecutionPlan, trainer):
        self.model = model
        self.dp = dp
        self.plan = plan
        self.trainer = trainer
        self._serving: list = []
        self._tenant_servers: list = []
        #: The run's Observability hub when the plan's ``obs`` axis is
        #: on (``build`` instruments the trainer); None otherwise.
        self.observability = None

    @classmethod
    def build(
        cls,
        model,
        dp: DPConfig,
        plan: ExecutionPlan | None = None,
        *,
        noise_seed: int = 1234,
        skew=None,
        partition_plan=None,
        executor=None,
    ) -> "TrainSession":
        """Compose a trainer for ``plan`` (default: serial flat LazyDP).

        ``skew`` (trace skew for the frequency partitioner),
        ``partition_plan`` (a prebuilt
        :class:`repro.shard.PartitionPlan`) and ``executor`` (a live
        :class:`repro.shard.ShardExecutor` instance overriding the
        plan's backend name) are live-object escape hatches that only
        make sense for sharded plans.
        """
        plan = plan if plan is not None else ExecutionPlan()
        # Activate the backend's kernel table before any trainer code
        # runs: the hot kernels (repro.kernels top level) dispatch on
        # the process-global active table at call time, which is what
        # lets backend=numba reroute every consumer with zero call-site
        # changes.  The setting is sticky until the next build; running
        # trainers with different kernel backends concurrently in one
        # process is unsupported.
        backend_name, _ = parse_backend_spec(plan.backend)
        from ..kernels import set_kernel_backend

        set_kernel_backend(backend_info(backend_name).kernels)
        trainer_cls = compose_trainer_class(
            sharded=plan.is_sharded,
            pipelined=plan.is_pipelined,
            async_=plan.is_async,
            backend=plan.backend,
        )
        kwargs: dict = {}
        if plan.is_sharded:
            kwargs.update(plan.shards.trainer_kwargs())
            # The backend axis owns executor selection: map the parsed
            # spec onto the sharded trainer's executor kwargs (the
            # canonical ShardConfig always says serial).
            name, workers = parse_backend_spec(plan.backend)
            if name == "threads":
                kwargs["executor"] = "threads"
                if workers is not None:
                    kwargs["max_workers"] = workers
            if executor is not None:
                if name == "process":
                    raise ValueError(
                        "a live executor instance cannot override the "
                        "process backend: its per-shard workers are "
                        "processes owned by the trainer, not a "
                        "ShardExecutor"
                    )
                kwargs["executor"] = executor
            if partition_plan is not None:
                kwargs["plan"] = partition_plan
            if skew is not None:
                kwargs["skew"] = skew
        elif skew is not None or partition_plan is not None or executor is not None:
            raise ValueError(
                "skew / partition_plan / executor only apply to sharded "
                "plans (set plan.shards)"
            )
        if plan.pipeline is not None:
            kwargs["prefetch_depth"] = plan.pipeline.prefetch_depth
        if plan.is_async:
            kwargs.update(plan.async_.trainer_kwargs())
        trainer = trainer_cls(
            model, dp, noise_seed=noise_seed, use_ans=plan.ans, **kwargs
        )
        # Plan-built trainers report under the canonical legacy name,
        # so TrainResult.algorithm stays comparable across the old and
        # new construction paths.
        trainer.name = plan.legacy_name()
        trainer.execution_plan = plan
        session = cls(model, dp, plan, trainer)
        if plan.obs is not None:
            from ..obs import Observability

            session.observability = trainer.instrument(
                Observability(plan.obs)
            )
        return session

    # -- training ----------------------------------------------------------
    def fit(self, loader) -> TrainResult:
        return self.trainer.fit(loader)

    def train_step(self, iteration: int, batch, next_batch) -> float:
        """Manual stepping passthrough (benchmark harnesses)."""
        return self.trainer.train_step(iteration, batch, next_batch)

    def finalize(self, final_iteration: int) -> None:
        self.trainer.finalize(final_iteration)

    def epsilon(self, delta: float | None = None) -> float:
        """Privacy spent so far at the given (or configured) delta."""
        accountant = self.trainer.accountant
        if accountant is None or accountant.steps == 0:
            raise RuntimeError("no private steps have been taken yet")
        return accountant.get_epsilon(
            self.dp.delta if delta is None else delta
        )

    def current_iteration(self) -> int:
        """The iteration the model stands at (see
        :meth:`repro.lazydp.trainer.LazyDPTrainer.current_iteration` —
        the one definition release and serving share)."""
        return self.trainer.current_iteration()

    # -- release and serving -----------------------------------------------
    def export_private_model(self, iteration: int | None = None) -> dict:
        """A flushed copy of all parameters, safe to release."""
        from ..lazydp.checkpoint import export_private_model

        if iteration is None:
            iteration = self.current_iteration()
        return export_private_model(self.trainer, iteration)

    def _serve_cache(self, cache):
        """Resolve a ``serve(cache=...)`` argument against the plan axis.

        ``None`` defers to the plan's ``serve`` axis (a
        :class:`repro.configs.ServeConfig` sizes a fresh hot-row cache
        per handle — caches hold privatized bits, so they are never
        shared between engines); ``False`` forces an uncached handle;
        anything else is used as the cache instance directly.
        """
        if cache is False:
            return None
        if cache is not None:
            return cache
        if self.plan.serve is None:
            return None
        from ..serve.cache import HotRowCache

        return HotRowCache(
            self.plan.serve.cache_rows,
            admission_threshold=self.plan.serve.admission,
        )

    def serve(
        self,
        iteration: int | None = None,
        noise_std: float | None = None,
        snapshot: bool = False,
        follow: bool = True,
        cache=None,
    ):
        """A :class:`repro.serve.PrivateServingEngine` over this session.

        With ``follow=True`` (default) the engine is *attached*: when
        the (quiescent) trainer steps again, the engine notices at the
        next lookup, re-snapshots the histories and invalidates its
        read-through memo, so served rows always agree with
        ``export_private_model`` at the trainer's current iteration.
        ``follow=False`` freezes the engine at construction, the
        pre-session behaviour.  Handles are detached automatically by
        :meth:`close`.

        ``cache`` fronts the handle with a hot-row cache: by default
        the plan's ``serve`` axis decides (``serve=<cache_rows>`` in
        the spec language), ``False`` forces uncached, or pass a
        :class:`repro.serve.HotRowCache` to control admission and
        sizing (e.g. ``HotRowCache.for_skew``).
        """
        from ..serve.engine import PrivateServingEngine

        engine = PrivateServingEngine.from_trainer(
            self.trainer,
            iteration=(
                self.current_iteration() if iteration is None else iteration
            ),
            noise_std=noise_std,
            snapshot=snapshot,
            cache=self._serve_cache(cache),
        )
        if self.observability is not None:
            engine.instrument(self.observability)
        if follow:
            engine.attach(self.trainer)
            self._serving.append(engine)
        return engine

    def serve_tenants(self):
        """A :class:`repro.serve.MultiTenantServer` over this session.

        Tenants registered on it share the trainer's base table slabs
        zero-copy and differ only in their private memo / noise std
        (the epsilon axis); the server is closed (all tenants
        detached) with the session.
        """
        from ..serve.tenant import MultiTenantServer

        server = MultiTenantServer(
            self.trainer, observability=self.observability
        )
        self._tenant_servers.append(server)
        return server

    def detach_serving(self) -> None:
        """Freeze every attached serving handle at its current state."""
        for engine in self._serving:
            engine.detach()
        self._serving.clear()
        for server in self._tenant_servers:
            server.close()
        self._tenant_servers.clear()

    # -- lifecycle and reporting -------------------------------------------
    def stats(self) -> dict:
        """Every engine-stats surface the plan's layers expose."""
        stats = {
            "plan": self.plan.canonical(),
            "algorithm": self.trainer.name,
            "kernel": self.trainer.kernel_stats(),
        }
        if self.plan.is_sharded:
            stats["shard_update_seconds"] = self.trainer.shard_update_seconds()
        if self.plan.is_pipelined:
            stats["pipeline"] = self.trainer.pipeline_stats()
        if self.plan.is_async:
            stats["async"] = self.trainer.async_stats()
        if self.observability is not None and self.observability.metrics_enabled:
            stats["metrics"] = self.observability.metrics.snapshot()
        if self._serving:
            stats["serving"] = [
                engine.stats() for engine in self._serving
            ]
        return stats

    def save_trace(self, path) -> int:
        """Write the run's Chrome trace-event JSON (requires a plan with
        ``obs=trace``); returns the number of events written."""
        if self.observability is None or not self.observability.tracing:
            raise RuntimeError(
                "tracing is not enabled for this session; build with an "
                "ExecutionPlan whose obs axis has trace=True "
                "(plan spec: obs=trace)"
            )
        return self.observability.save_trace(path)

    def close(self) -> None:
        """Detach serving handles and release engine resources."""
        self.detach_serving()
        close = getattr(self.trainer, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "TrainSession":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
