"""The session API: ExecutionPlan axes composed into one trainer.

This package replaces the trainer-class cross-product
(``PipelinedShardedLazyDPTrainer``-style names, one class and algorithm
string per combination) with three pieces:

* :class:`ExecutionPlan` — orthogonal execution axes (``ans``,
  ``shards``, ``pipeline``, ``async_``, ``backend``) with dict/spec
  round-trip serialization and the legacy-name mapping;
* the execution-backend registry — :func:`register_backend` /
  :func:`available_backends` / :func:`backend_info` — resolving the
  plan's ``backend`` axis (``numpy``, ``threads[:K]``, ``process``) to
  a base trainer class; the extension point new kernels plug into;
* :class:`TrainSession` — ``TrainSession.build(model, dp, plan)``
  composes the shard/pipeline/async capability layers over the
  backend's base trainer and owns the resulting trainer's lifecycle,
  private release, and serving attachment.

Quickstart::

    from repro import DLRM, DPConfig, configs
    from repro.session import ExecutionPlan, TrainSession

    plan = ExecutionPlan.from_spec("shards=4,pipeline=2,ans=on")
    session = TrainSession.build(DLRM(configs.tiny_dlrm(), seed=0),
                                 DPConfig(), plan)
    result = session.fit(loader)
    handle = session.serve()          # tracks the live trainer
    session.close()
"""

from .builder import TrainSession, compose_trainer_class
from .plan import (
    ExecutionPlan,
    LEGACY_ALGORITHMS,
    plan_for_algorithm,
)
from .registry import (
    BACKEND_CAPABILITIES,
    BackendInfo,
    PlanError,
    available_backends,
    backend_info,
    parse_backend_spec,
    register_backend,
)

__all__ = [
    "BACKEND_CAPABILITIES",
    "BackendInfo",
    "ExecutionPlan",
    "LEGACY_ALGORITHMS",
    "PlanError",
    "TrainSession",
    "available_backends",
    "backend_info",
    "compose_trainer_class",
    "parse_backend_spec",
    "plan_for_algorithm",
    "register_backend",
]
