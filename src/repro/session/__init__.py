"""The session API: ExecutionPlan axes composed into one trainer.

This package replaces the trainer-class cross-product
(``PipelinedShardedLazyDPTrainer``-style names, one class and algorithm
string per combination) with two pieces:

* :class:`ExecutionPlan` — orthogonal execution axes (``ans``,
  ``shards``, ``pipeline``, ``async_``, ``backend``) with dict/spec
  round-trip serialization and the legacy-name mapping;
* :class:`TrainSession` — ``TrainSession.build(model, dp, plan)``
  composes the shard/pipeline/async capability layers over the core
  :class:`repro.lazydp.trainer.LazyDPTrainer` and owns the resulting
  trainer's lifecycle, private release, and serving attachment.

Quickstart::

    from repro import DLRM, DPConfig, configs
    from repro.session import ExecutionPlan, TrainSession

    plan = ExecutionPlan.from_spec("shards=4,pipeline=2,ans=on")
    session = TrainSession.build(DLRM(configs.tiny_dlrm(), seed=0),
                                 DPConfig(), plan)
    result = session.fit(loader)
    handle = session.serve()          # tracks the live trainer
    session.close()
"""

from .builder import TrainSession, compose_trainer_class
from .plan import (
    BACKENDS,
    ExecutionPlan,
    LEGACY_ALGORITHMS,
    plan_for_algorithm,
)

__all__ = [
    "BACKENDS",
    "ExecutionPlan",
    "LEGACY_ALGORITHMS",
    "TrainSession",
    "compose_trainer_class",
    "plan_for_algorithm",
]
