"""The execution-backend registry: named, discoverable trainer bases.

PR 5 left ``ExecutionPlan.backend`` validated against a static
``BACKENDS = ("numpy",)`` tuple — a placeholder axis nothing could
extend.  This module turns it into a first-class registry:

* :func:`register_backend` — add a backend under a name, with the
  factory that resolves a plan shape to a base trainer class and the
  set of plan axes the backend composes with;
* :func:`available_backends` — the registered names, in registration
  order (validation errors quote this list);
* :func:`backend_info` / :func:`parse_backend_spec` — lookup and the
  ``"name[:workers]"`` spec grammar the plan language uses
  (``backend=threads:4``, ``backend=process``).

Four backends ship built in:

``numpy``
    The default: in-process numpy kernels, serial per-shard schedule.
    The only backend that supports *flat* (unsharded) plans.
``threads``
    The former ``ShardConfig.executor="threads"`` spelling: the same
    in-process kernels fanned out over a persistent shard thread pool
    (``repro.shard.executor``).  ``:K`` caps the pool.
``process``
    One long-lived worker process per shard, each owning its embedding
    slab and history table in ``multiprocessing.shared_memory``
    (``repro.procshard``).  ``:K`` must equal the shard count — the
    backend pins one worker per shard.
``numba``
    The same trainer classes as ``numpy``, with the three hot kernels
    rerouted to compiled ``@njit(parallel=True)`` implementations
    (``repro.kernels.njit``) through the kernel-table dispatcher.
    Conditionally available: plan validation raises :class:`PlanError`
    naming the missing ``[numba]`` extra when numba is not importable.

A backend is more than a trainer base class: :class:`BackendInfo` also
names the *kernel table* (``repro.kernels.dispatch``) the build
activates, and an optional *availability* probe — the hook that lets a
backend depend on an optional extra without tier-1 ever importing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every capability a backend may declare.  ``flat`` — supports
#: unsharded plans; ``shards``/``pipeline``/``async`` — composes with
#: that plan axis; ``workers`` — accepts a ``:K`` worker count in the
#: backend spec.
BACKEND_CAPABILITIES = ("flat", "shards", "pipeline", "async", "workers")


class PlanError(ValueError):
    """An execution plan that cannot run in this environment.

    Subclass of ``ValueError`` so existing ``except ValueError``
    call sites keep working; raised distinctly for *environmental*
    rejections (an unavailable backend) as opposed to malformed plans.
    """


@dataclass(frozen=True)
class BackendInfo:
    """One registered execution backend."""

    name: str
    #: ``factory(*, sharded, pipelined, async_) -> type`` — resolves a
    #: plan shape to the base trainer class; raises ``ValueError``
    #: (naming the backend and the offending axis) for shapes the
    #: backend does not support.
    factory: object
    capabilities: frozenset = field(default_factory=frozenset)
    description: str = ""
    #: Name of the kernel table (``repro.kernels.dispatch``) the build
    #: activates for this backend.  Most backends run the numpy
    #: reference kernels; ``numba`` swaps in the compiled table.
    kernels: str = "numpy"
    #: Optional availability probe: ``None`` (always available) or a
    #: zero-argument callable returning ``None`` when available, else a
    #: human-readable reason.  Checked at plan validation, so a
    #: rejected plan names the missing extra instead of failing deep in
    #: the build.
    availability: object = None

    def supports(self, capability: str) -> bool:
        return capability in self.capabilities

    def available(self) -> tuple:
        """``(ok, reason)`` — whether the backend can run here."""
        if self.availability is None:
            return True, ""
        reason = self.availability()
        return reason is None, (reason or "")


_REGISTRY: dict = {}


def register_backend(
    name: str,
    factory,
    capabilities=(),
    description: str = "",
    kernels: str = "numpy",
    availability=None,
) -> BackendInfo:
    """Register an execution backend under ``name``.

    ``factory`` is called by ``compose_trainer_class`` with the plan
    shape (keyword-only ``sharded``/``pipelined``/``async_`` booleans)
    and must return the base trainer class for that shape.
    ``capabilities`` declares which plan axes the backend composes
    with (subset of :data:`BACKEND_CAPABILITIES`); plan validation
    rejects combinations outside it with a named reason.  ``kernels``
    names the kernel table the build activates; ``availability`` is an
    optional probe (``None`` reason = available) letting the backend
    gate on an optional dependency.
    """
    if not name or not name.replace("_", "").isalnum():
        raise ValueError(
            f"backend name must be alphanumeric (got {name!r}); the "
            "spec grammar reserves ':' for the worker count"
        )
    if name in _REGISTRY:
        raise ValueError(
            f"backend {name!r} is already registered "
            f"(registered: {', '.join(available_backends())})"
        )
    if not callable(factory):
        raise ValueError(f"backend factory must be callable, got {factory!r}")
    capabilities = frozenset(capabilities)
    unknown = sorted(capabilities - set(BACKEND_CAPABILITIES))
    if unknown:
        raise ValueError(
            f"unknown backend capabilities: {', '.join(unknown)} "
            f"(choose from {', '.join(BACKEND_CAPABILITIES)})"
        )
    if availability is not None and not callable(availability):
        raise ValueError(
            f"backend availability probe must be callable, got {availability!r}"
        )
    info = BackendInfo(
        name=name,
        factory=factory,
        capabilities=capabilities,
        description=description,
        kernels=str(kernels),
        availability=availability,
    )
    _REGISTRY[name] = info
    return info


def available_backends() -> tuple:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def backend_info(name: str) -> BackendInfo:
    """The :class:`BackendInfo` for ``name`` (raises with the list of
    registered names otherwise — the extension point's discoverable
    error surface)."""
    info = _REGISTRY.get(name)
    if info is None:
        raise ValueError(
            f"unknown backend: {name!r} (registered: "
            f"{', '.join(available_backends())}; add one with "
            "repro.session.register_backend)"
        )
    return info


def parse_backend_spec(spec: str) -> tuple:
    """Split a ``"name[:workers]"`` backend spec into ``(name, workers)``.

    Validates that ``name`` is registered and that a ``:workers``
    suffix is only used with backends declaring the ``workers``
    capability (``numpy:4`` is rejected — the serial backend admits no
    worker count).
    """
    if not isinstance(spec, str):
        raise ValueError(f"backend must be a string, got {type(spec).__name__}")
    name, separator, suffix = spec.partition(":")
    info = backend_info(name)
    if not separator:
        return name, None
    try:
        workers = int(suffix)
    except ValueError:
        raise ValueError(
            f"invalid backend spec: {spec!r} — the worker count after "
            "':' must be an integer"
        ) from None
    if workers < 1:
        raise ValueError(
            f"invalid backend spec: {spec!r} — the worker count must be "
            "positive"
        )
    if not info.supports("workers"):
        counted = ", ".join(
            n for n in available_backends() if _REGISTRY[n].supports("workers")
        )
        raise ValueError(
            f"invalid backend spec: {spec!r} — backend {name!r} admits "
            f"no worker count (only {counted} do)"
        )
    return name, workers


def canonical_backend_spec(name: str, workers=None) -> str:
    """The canonical spec string for ``(name, workers)``."""
    return name if workers is None else f"{name}:{workers}"


# ---------------------------------------------------------------------------
# Built-in backends.
# ---------------------------------------------------------------------------


def _numpy_factory(*, sharded: bool, pipelined: bool, async_: bool):
    from ..lazydp.trainer import LazyDPTrainer
    from ..shard.trainer import ShardedLazyDPTrainer

    return ShardedLazyDPTrainer if sharded else LazyDPTrainer


def _threads_factory(*, sharded: bool, pipelined: bool, async_: bool):
    if not sharded:
        raise ValueError(
            "backend 'threads' requires the shards axis "
            "(plan spec: shards=N,backend=threads[:K])"
        )
    from ..shard.trainer import ShardedLazyDPTrainer

    return ShardedLazyDPTrainer


def _process_factory(*, sharded: bool, pipelined: bool, async_: bool):
    if not sharded:
        raise ValueError(
            "backend 'process' requires the shards axis "
            "(plan spec: shards=N,backend=process)"
        )
    if pipelined or async_:
        raise ValueError(
            "backend 'process' composes with neither the pipeline nor "
            "the async axis: each shard's worker process already "
            "overlaps plan/sample/apply with the other shards"
        )
    from ..procshard.trainer import ProcessShardedLazyDPTrainer

    return ProcessShardedLazyDPTrainer


register_backend(
    "numpy",
    _numpy_factory,
    capabilities=("flat", "shards", "pipeline", "async"),
    description="in-process numpy kernels, serial per-shard schedule",
)
register_backend(
    "threads",
    _threads_factory,
    capabilities=("shards", "pipeline", "async", "workers"),
    description="in-process numpy kernels on a persistent shard thread pool",
)
def _numba_availability():
    from ..kernels import dispatch

    return dispatch.numba_missing_reason()


def _numba_factory(*, sharded: bool, pipelined: bool, async_: bool):
    reason = _numba_availability()
    if reason is not None:
        raise PlanError(f"backend 'numba' is unavailable: {reason}")
    from ..lazydp.trainer import LazyDPTrainer
    from ..shard.trainer import ShardedLazyDPTrainer

    return ShardedLazyDPTrainer if sharded else LazyDPTrainer


register_backend(
    "process",
    _process_factory,
    capabilities=("shards", "workers"),
    description=(
        "one worker process per shard, slab and history in shared memory"
    ),
)
register_backend(
    "numba",
    _numba_factory,
    capabilities=("flat", "shards", "pipeline", "async"),
    description=(
        "compiled @njit(parallel) kernels: fused apply + in-register sampling"
    ),
    kernels="numba",
    availability=_numba_availability,
)
