"""Deterministic, coordinate-keyed Gaussian noise streams.

``NoiseStream`` gives every DP noise value a *name*: the Gaussian destined
for row ``r`` of table ``t`` at iteration ``i`` is a pure function of
``(seed, t, r, i)``.  Eager DP-SGD applies that value at iteration ``i``;
LazyDP applies the sum of several of them years (well, iterations) later.
Because both consume the same named values, the two training schedules can
be compared for *exact* equality, which is how we verify the paper's
equivalence claim (Section 5.1) rather than taking it on faith.

Domains keep unrelated consumers of randomness on disjoint key spaces:

* ``DOMAIN_ROW_NOISE``   - per-(table, row, iteration) embedding noise
* ``DOMAIN_ANS_NOISE``   - aggregated noise draws (one per deferred span)
* ``DOMAIN_DENSE_NOISE`` - per-iteration MLP weight noise
* ``DOMAIN_INIT``        - model weight initialisation
* ``DOMAIN_DATA``        - synthetic trace generation
"""

from __future__ import annotations

import numpy as np

from .boxmuller import gaussians_from_uint32_block
from .philox import derive_key, make_counters, philox4x32

DOMAIN_ROW_NOISE = 1
DOMAIN_ANS_NOISE = 2
DOMAIN_DENSE_NOISE = 3
DOMAIN_INIT = 4
DOMAIN_DATA = 5

_U32 = np.uint64(0xFFFFFFFF)


class NoiseStream:
    """Factory for deterministic Gaussian noise, keyed by coordinates.

    Parameters
    ----------
    seed:
        Master seed.  Two streams with the same seed produce identical
        values for identical coordinates; different seeds are independent.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # Per-row embedding noise (the values LazyDP defers).
    # ------------------------------------------------------------------
    def row_noise(
        self,
        table_id: int,
        rows: np.ndarray,
        iteration: int,
        dim: int,
        std: float = 1.0,
    ) -> np.ndarray:
        """N(0, std^2) noise for ``rows`` of ``table_id`` at ``iteration``.

        Returns a ``(len(rows), dim)`` float64 array.  The value for a given
        (table, row, iteration, lane) never depends on which other rows are
        requested alongside it.
        """
        rows = np.asarray(rows, dtype=np.uint64)
        if rows.ndim != 1:
            raise ValueError("rows must be a 1-D array of row indices")
        key = derive_key(self.seed, DOMAIN_ROW_NOISE, table_id)
        gaussians = self._keyed_gaussians(key, rows, int(iteration), dim)
        if std != 1.0:
            gaussians *= std
        return gaussians

    def row_iteration_noise(
        self,
        table_id: int,
        rows: np.ndarray,
        iterations: np.ndarray,
        dim: int,
        std: float = 1.0,
        arena=None,
    ) -> np.ndarray:
        """Per-draw keyed noise: draw ``k`` is the ``(table_id, rows[k],
        iterations[k])`` value — the batched generalisation of
        :meth:`row_noise`.

        One Philox invocation covers the whole ``(row, iteration)`` draw
        list, which is how the batched no-ANS sampler
        (``repro.kernels.sampler``) collapses its per-lag launch loop.
        Each draw is bit-identical to the :meth:`row_noise` value of the
        same coordinates.  ``arena`` optionally supplies scratch for the
        Philox counter blocks.
        """
        rows = np.asarray(rows, dtype=np.uint64)
        iterations = np.asarray(iterations, dtype=np.int64)
        if rows.ndim != 1:
            raise ValueError("rows must be a 1-D array of row indices")
        if iterations.shape != rows.shape:
            raise ValueError("iterations must align with rows")
        key = derive_key(self.seed, DOMAIN_ROW_NOISE, table_id)
        gaussians = self._keyed_gaussians(key, rows, iterations, dim, arena=arena)
        if std != 1.0:
            gaussians *= std
        return gaussians

    def row_noise_sum(
        self,
        table_id: int,
        rows: np.ndarray,
        first_iteration: int,
        last_iteration: int,
        dim: int,
        std: float = 1.0,
    ) -> np.ndarray:
        """Exact sum of per-iteration row noise over an inclusive range.

        This is what LazyDP *without* ANS applies when it catches a row up:
        the same values eager DP-SGD would have applied one at a time
        (paper Algorithm 1, lines 31-35), generated in a single flattened
        invocation and segment-summed (value-equal to the one-at-a-time
        loop; only the accumulation order differs, within float rounding).
        """
        # Through the package-level dispatcher, so backend=numba routes
        # this facade onto the compiled sampler too.
        from ..kernels import batched_row_noise_sum

        return batched_row_noise_sum(
            self, table_id, rows, first_iteration, last_iteration, dim, std=std
        )

    def aggregated_row_noise(
        self,
        table_id: int,
        rows: np.ndarray,
        delays: np.ndarray,
        iteration: int,
        dim: int,
        std: float = 1.0,
    ) -> np.ndarray:
        """One ANS draw per row: N(0, delays * std^2) (paper Theorem 5.1).

        ``delays`` holds, per row, how many per-iteration noise values the
        single draw replaces.  Rows with ``delays == 0`` get exactly zero.
        The draw is keyed by the iteration at which the catch-up happens, so
        repeated catch-ups of the same row use fresh randomness.
        """
        rows = np.asarray(rows, dtype=np.uint64)
        delays = np.asarray(delays, dtype=np.float64)
        if delays.shape != rows.shape:
            raise ValueError("delays must align with rows")
        if np.any(delays < 0):
            raise ValueError("delays must be non-negative")
        key = derive_key(self.seed, DOMAIN_ANS_NOISE, table_id)
        gaussians = self._keyed_gaussians(key, rows, int(iteration), dim)
        scale = std * np.sqrt(delays)
        # The freshly generated block is scaled in place — no second
        # full-size array per call on this bandwidth-bound path.
        gaussians *= scale[:, None]
        return gaussians

    # ------------------------------------------------------------------
    # Dense (MLP) noise and generic draws.
    # ------------------------------------------------------------------
    def dense_noise(
        self, param_id: int, iteration: int, shape: tuple, std: float = 1.0
    ) -> np.ndarray:
        """Per-iteration N(0, std^2) noise for a dense parameter tensor."""
        count = int(np.prod(shape)) if shape else 1
        key = derive_key(self.seed, DOMAIN_DENSE_NOISE, param_id)
        flat = self._keyed_gaussians(
            key, np.arange(1, dtype=np.uint64), int(iteration), count
        )[0]
        if std != 1.0:
            flat *= std
        return flat.reshape(shape)

    def init_values(self, param_id: int, shape: tuple, std: float = 1.0) -> np.ndarray:
        """Deterministic Gaussian weight-initialisation values."""
        count = int(np.prod(shape)) if shape else 1
        key = derive_key(self.seed, DOMAIN_INIT, param_id)
        flat = self._keyed_gaussians(key, np.arange(1, dtype=np.uint64), 0, count)[0]
        if std != 1.0:
            flat *= std
        return flat.reshape(shape)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _keyed_gaussians(
        key: np.ndarray, rows: np.ndarray, iteration, dim: int, arena=None
    ) -> np.ndarray:
        """Produce ``(len(rows), dim)`` Gaussians for one key.

        ``iteration`` is a scalar (every row drawn at the same iteration,
        the :meth:`row_noise` case) or a per-row int64 array (the batched
        :meth:`row_iteration_noise` case).  Each Philox block yields 4
        Gaussians, so a row of width ``dim`` consumes ``ceil(dim / 4)``
        counter blocks distinguished by counter word 3.  ``arena``
        optionally provides the counter-block scratch.
        """
        if dim <= 0:
            raise ValueError("dim must be positive")
        n_rows = rows.shape[0]
        if n_rows == 0:
            return np.zeros((0, dim), dtype=np.float64)
        blocks_per_row = (dim + 3) // 4
        row_lo = (rows & _U32).astype(np.uint32)
        row_hi = (rows >> np.uint64(32)).astype(np.uint32)
        block_idx = np.arange(blocks_per_row, dtype=np.uint32)
        if np.ndim(iteration) == 0:
            word2 = np.uint32(int(iteration) & 0xFFFFFFFF)
        else:
            iters = np.asarray(iteration, dtype=np.uint64)
            word2 = np.repeat((iters & _U32).astype(np.uint32), blocks_per_row)
        out = None
        if arena is not None:
            out = arena.request(
                "rng.counters", (n_rows * blocks_per_row, 4), np.uint32
            )
        counters = make_counters(
            np.repeat(row_lo, blocks_per_row),
            np.repeat(row_hi, blocks_per_row),
            word2,
            np.tile(block_idx, n_rows),
            out=out,
        )
        words = philox4x32(counters, key)
        gaussians = gaussians_from_uint32_block(words)
        gaussians = gaussians.reshape(n_rows, blocks_per_row * 4)
        return np.ascontiguousarray(gaussians[:, :dim])
