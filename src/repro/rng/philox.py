"""Philox4x32-10: a counter-based pseudo-random number generator.

The generator follows Salmon et al., "Parallel Random Numbers: As Easy as
1, 2, 3" (SC'11), the same family PyTorch uses for GPU noise generation.

Why counter-based?  LazyDP's correctness argument (paper Section 5.1,
Figure 7) is that *when* a noise value is applied does not matter as long as
every deferred value is applied before the row is read.  A counter-based
generator makes the noise destined for ``(table, row, iteration)`` a pure
function of those coordinates, so an eager DP-SGD run and a lazy run consume
bit-identical noise regardless of evaluation order.  That converts the
paper's "mathematically equivalent" claim into an exactly testable property
(see ``tests/test_lazydp_equivalence.py``).

All functions are vectorised over numpy arrays of counters.
"""

from __future__ import annotations

import threading

import numpy as np

# Philox4x32 round constants (Salmon et al., Table 2).
PHILOX_M0 = np.uint64(0xD2511F53)
PHILOX_M1 = np.uint64(0xCD9E8D57)
PHILOX_W0 = np.uint32(0x9E3779B9)  # golden ratio
PHILOX_W1 = np.uint32(0xBB67AE85)  # sqrt(3) - 1

PHILOX_ROUNDS = 10

_U32_MASK = np.uint64(0xFFFFFFFF)
_SHIFT_32 = np.uint64(32)

#: Cumulative count of :func:`philox4x32` invocations ("kernel launches").
#: Each invocation processes an arbitrarily large counter batch, so this
#: counts launch *overheads*, not work — the number the batched no-ANS
#: sampler collapses from O(max_delay) to O(1) per catch-up (see
#: ``repro.kernels.sampler`` and ``benchmarks/bench_apply_fusion.py``).
#: Guarded by a lock: shard executors, the prefetch worker and the async
#: apply worker all invoke Philox concurrently, and a bare ``+=`` on a
#: global drops increments under preemption.  One lock acquisition per
#: *batch* (not per element) is noise next to the cipher itself.
_INVOCATIONS = 0
_INVOCATIONS_LOCK = threading.Lock()


def philox_invocations() -> int:
    """Total :func:`philox4x32` calls so far (diagnostics only)."""
    with _INVOCATIONS_LOCK:
        return _INVOCATIONS


def record_invocations(count: int = 1) -> None:
    """Fold externally-performed cipher launches into the counter.

    The compiled njit kernels (``repro.kernels.njit``) run the Philox
    rounds in-register inside their own loops rather than calling
    :func:`philox4x32`; they record one launch per compiled call so the
    O(launches) diagnostics stay comparable across backends.
    """
    global _INVOCATIONS
    with _INVOCATIONS_LOCK:
        _INVOCATIONS += int(count)


def _mulhilo(a: np.ndarray, m: np.uint64) -> tuple[np.ndarray, np.ndarray]:
    """Return the (high, low) 32-bit halves of the 64-bit product ``a * m``.

    ``a`` is a uint32 array; the product is formed in uint64 so no precision
    is lost.
    """
    product = a.astype(np.uint64) * m
    hi = (product >> _SHIFT_32).astype(np.uint32)
    lo = (product & _U32_MASK).astype(np.uint32)
    return hi, lo


def philox4x32(
    counters: np.ndarray, key: np.ndarray, rounds: int = PHILOX_ROUNDS
) -> np.ndarray:
    """Run the Philox4x32 block cipher over a batch of counters.

    Parameters
    ----------
    counters:
        ``(n, 4)`` uint32 array; each row is one 128-bit counter block.
    key:
        ``(2,)`` uint32 array, the 64-bit key shared by all blocks.
    rounds:
        Number of S-P rounds; 10 is the standard, cryptographically vetted
        choice.

    Returns
    -------
    ``(n, 4)`` uint32 array of pseudo-random words.
    """
    record_invocations(1)
    counters = np.ascontiguousarray(counters, dtype=np.uint32)
    if counters.ndim != 2 or counters.shape[1] != 4:
        raise ValueError(f"counters must have shape (n, 4), got {counters.shape}")
    key = np.asarray(key, dtype=np.uint32)
    if key.shape != (2,):
        raise ValueError(f"key must have shape (2,), got {key.shape}")

    c0 = counters[:, 0].copy()
    c1 = counters[:, 1].copy()
    c2 = counters[:, 2].copy()
    c3 = counters[:, 3].copy()
    k0 = np.uint32(key[0])
    k1 = np.uint32(key[1])

    with np.errstate(over="ignore"):  # the key schedule wraps mod 2^32
        for _ in range(rounds):
            hi0, lo0 = _mulhilo(c0, PHILOX_M0)
            hi1, lo1 = _mulhilo(c2, PHILOX_M1)
            # The Feistel-like shuffle from the reference implementation.
            new_c0 = hi1 ^ c1 ^ k0
            new_c1 = lo1
            new_c2 = hi0 ^ c3 ^ k1
            new_c3 = lo0
            c0, c1, c2, c3 = new_c0, new_c1, new_c2, new_c3
            k0 = np.uint32(k0 + PHILOX_W0)
            k1 = np.uint32(k1 + PHILOX_W1)

    return np.stack([c0, c1, c2, c3], axis=1)


def splitmix64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """SplitMix64 finaliser: a high-quality 64-bit mixing function.

    Used to derive statistically independent Philox keys for each
    (seed, domain, table) combination.  Vectorised over uint64 arrays.
    """
    with np.errstate(over="ignore"):
        z = np.asarray(x, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    if np.ndim(x) == 0:
        return np.uint64(z)
    return z


def derive_key(seed: int, domain: int = 0, stream: int = 0) -> np.ndarray:
    """Derive a ``(2,)`` uint32 Philox key for a (seed, domain, stream) tuple.

    ``domain`` separates unrelated uses of randomness (weight init, row
    noise, ANS noise, ...) so that no two subsystems ever share a key, and
    ``stream`` separates instances within a domain (e.g. embedding tables).
    """
    mixed = splitmix64(
        splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF) ^ np.uint64(domain))
        + np.uint64(stream)
    )
    key = np.empty(2, dtype=np.uint32)
    key[0] = np.uint32(int(mixed) & 0xFFFFFFFF)
    key[1] = np.uint32((int(mixed) >> 32) & 0xFFFFFFFF)
    return key


def make_counters(
    word0: np.ndarray,
    word1: np.ndarray,
    word2: np.ndarray,
    word3: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Assemble a ``(n, 4)`` uint32 counter array from four word arrays.

    Inputs broadcast against each other; each must fit in 32 bits.
    ``out`` optionally supplies the destination (an arena scratch block
    in the hot path) — it must be ``(n, 4)`` uint32 and is returned.
    """
    broadcast = np.broadcast(word0, word1, word2, word3)
    if out is None:
        counters = np.empty((broadcast.size, 4), dtype=np.uint32)
    else:
        if out.shape != (broadcast.size, 4) or out.dtype != np.uint32:
            raise ValueError(
                f"out must be ({broadcast.size}, 4) uint32, "
                f"got {out.shape} {out.dtype}"
            )
        counters = out
    counters[:, 0] = np.broadcast_to(word0, broadcast.shape).ravel()
    counters[:, 1] = np.broadcast_to(word1, broadcast.shape).ravel()
    counters[:, 2] = np.broadcast_to(word2, broadcast.shape).ravel()
    counters[:, 3] = np.broadcast_to(word3, broadcast.shape).ravel()
    return counters


def uniform_from_uint32(words: np.ndarray) -> np.ndarray:
    """Map uint32 words to float64 uniforms in the open interval (0, 1).

    The +0.5 offset keeps the result strictly inside (0, 1), which protects
    the Box-Muller ``log`` and keeps ``2*pi*u`` away from exact phase wraps.
    """
    return (words.astype(np.float64) + 0.5) * (1.0 / 4294967296.0)
