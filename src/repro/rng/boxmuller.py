"""Box-Muller transform: uniforms -> independent standard Gaussians.

The paper (Section 4.3) identifies PyTorch's ``torch.normal`` as a
Box-Muller implementation whose AVX code path executes ~101 vector compute
instructions per loaded vector (trigonometric + logarithmic series), making
noise sampling compute-bound at 81% of peak AVX throughput.  We implement
the same transform in numpy and export the instruction-count constants the
performance model uses to place noise sampling on the roofline (Figure 6).
"""

from __future__ import annotations

import numpy as np

# Per-element AVX compute-instruction counts measured by the paper for the
# two bottleneck kernels (Section 4.3, Figure 6).  These calibrate the
# roofline model; they are workload constants, not tunables.
BOX_MULLER_AVX_OPS = 101   # noise sampling: trig/log series per element
NOISY_UPDATE_AVX_OPS = 2   # noisy gradient update: multiply + add per element

# Measured efficiency ceilings from the paper's microbenchmark (Section 4.3).
NOISE_SAMPLING_PEAK_FRACTION = 0.81      # fraction of peak AVX GFLOPS reached
NOISY_UPDATE_BANDWIDTH_FRACTION = 0.855  # fraction of DRAM bandwidth reached


def box_muller(u1: np.ndarray, u2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Transform two uniform arrays in (0, 1) into two standard normal arrays.

    Implements the basic (non-polar) Box-Muller transform:

        z0 = sqrt(-2 ln u1) * cos(2 pi u2)
        z1 = sqrt(-2 ln u1) * sin(2 pi u2)

    The polar variant avoids trig at the cost of rejection sampling; the
    paper's kernel (and ours) uses the basic form because it vectorises
    without divergence.
    """
    u1 = np.asarray(u1, dtype=np.float64)
    u2 = np.asarray(u2, dtype=np.float64)
    if np.any(u1 <= 0.0) or np.any(u1 > 1.0):
        raise ValueError("u1 must lie in (0, 1]")
    radius = np.sqrt(-2.0 * np.log(u1))
    theta = 2.0 * np.pi * u2
    return radius * np.cos(theta), radius * np.sin(theta)


def gaussians_from_uint32_block(words: np.ndarray) -> np.ndarray:
    """Turn a ``(n, 4)`` uint32 Philox output block into ``(n, 4)`` Gaussians.

    Words 0/1 feed one Box-Muller pair and words 2/3 feed another, so each
    128-bit Philox block yields four independent N(0, 1) samples.
    """
    from .philox import uniform_from_uint32

    if words.ndim != 2 or words.shape[1] != 4:
        raise ValueError(f"expected shape (n, 4), got {words.shape}")
    u = uniform_from_uint32(words)
    z0, z1 = box_muller(u[:, 0], u[:, 1])
    z2, z3 = box_muller(u[:, 2], u[:, 3])
    return np.stack([z0, z1, z2, z3], axis=1)
