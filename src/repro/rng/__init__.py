"""Counter-based random number generation substrate.

Provides the deterministic, coordinate-addressable Gaussian noise that makes
LazyDP's lazy-vs-eager equivalence exactly testable, plus the Box-Muller
kernel whose cost model mirrors the paper's characterisation (Section 4.3).
"""

from .boxmuller import (
    BOX_MULLER_AVX_OPS,
    NOISE_SAMPLING_PEAK_FRACTION,
    NOISY_UPDATE_AVX_OPS,
    NOISY_UPDATE_BANDWIDTH_FRACTION,
    box_muller,
    gaussians_from_uint32_block,
)
from .noise import (
    DOMAIN_ANS_NOISE,
    DOMAIN_DATA,
    DOMAIN_DENSE_NOISE,
    DOMAIN_INIT,
    DOMAIN_ROW_NOISE,
    NoiseStream,
)
from .philox import (
    PHILOX_ROUNDS,
    derive_key,
    make_counters,
    philox4x32,
    philox_invocations,
    splitmix64,
    uniform_from_uint32,
)

__all__ = [
    "BOX_MULLER_AVX_OPS",
    "NOISE_SAMPLING_PEAK_FRACTION",
    "NOISY_UPDATE_AVX_OPS",
    "NOISY_UPDATE_BANDWIDTH_FRACTION",
    "box_muller",
    "gaussians_from_uint32_block",
    "DOMAIN_ANS_NOISE",
    "DOMAIN_DATA",
    "DOMAIN_DENSE_NOISE",
    "DOMAIN_INIT",
    "DOMAIN_ROW_NOISE",
    "NoiseStream",
    "PHILOX_ROUNDS",
    "derive_key",
    "make_counters",
    "philox4x32",
    "philox_invocations",
    "splitmix64",
    "uniform_from_uint32",
]
