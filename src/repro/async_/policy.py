"""Gradient-staleness policies for the async trainer.

With multiple iterations in flight, the question is how stale the
embedding slabs a forward pass reads may be relative to the applies
still outstanding.  Two policies:

* ``strict`` — a forward pass never reads a slab with an outstanding
  apply: before step ``t`` begins, every apply through ``t - 1`` must
  have landed.  Training is bitwise-equal to the serial schedule; the
  async engine still overlaps the apply of iteration ``t - 1`` with the
  inter-step bookkeeping of ``t`` and keeps the plan/sample prefetch
  runway of ``repro.pipeline``.
* ``bounded:k`` — forward passes may read slabs missing up to ``k``
  trailing applies: before step ``t``, only applies through
  ``t - 1 - k`` are awaited.  Losses and gradients may differ from the
  serial schedule (that is the point — EANA-style systems make the same
  trade), but the deferred-noise ledger stays exact: the per-row
  :class:`VersionVector <repro.lazydp.ledger.VersionVector>` proves
  every noise span is applied exactly once regardless of interleaving.

``bounded:0`` is, by construction, the same wait schedule as
``strict``; the spelling exists so sweeps over ``k`` include the
synchronous endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Recognised policy modes (mirrored by ``repro.configs.AsyncConfig``'s
#: validation so config errors surface before a trainer is built).
STALENESS_MODES = ("strict", "bounded")


@dataclass(frozen=True)
class StalenessPolicy:
    """How far embedding reads may trail outstanding applies."""

    mode: str
    bound: int = 0

    def __post_init__(self):
        if self.mode not in STALENESS_MODES:
            raise ValueError(
                f"unknown staleness mode: {self.mode!r} "
                f"(choose from {STALENESS_MODES})"
            )
        if self.bound < 0:
            raise ValueError("staleness bound must be non-negative")
        if self.mode == "strict" and self.bound != 0:
            raise ValueError("strict staleness admits no bound")

    @property
    def allowed_lag(self) -> int:
        """How many trailing applies a forward pass may miss."""
        return self.bound if self.mode == "bounded" else 0

    @property
    def is_strict(self) -> bool:
        """True when reads are never stale (bitwise-serial schedules)."""
        return self.allowed_lag == 0

    def describe(self) -> str:
        if self.mode == "strict":
            return "strict"
        return f"bounded:{self.bound}"

    @classmethod
    def parse(cls, spec) -> "StalenessPolicy":
        """Build a policy from ``"strict"`` / ``"bounded"`` /
        ``"bounded:<k>"`` (or pass an instance through)."""
        if isinstance(spec, cls):
            return spec
        mode, _, bound = str(spec).partition(":")
        if not bound:
            return cls(mode, 1 if mode == "bounded" else 0)
        try:
            parsed = int(bound)
        except ValueError:
            raise ValueError(
                f"staleness bound must be an integer, got {bound!r}"
            ) from None
        return cls(mode, parsed)
