"""The background apply worker: bounded-depth, in-order model updates.

One daemon thread executes apply tasks strictly in submission
(iteration) order.  FIFO execution is what keeps per-row arithmetic
ordered without locks — reordering applies of overlapping rows would
change the floating-point result even when the ledger stays exact — so
the *only* concurrency the async engine adds over the pipelined one is
between the apply of iteration ``t`` and everything the trainer thread
does afterwards (forward/backward of ``t+1``..``t+k``, input gather,
dense updates).

Invariants:

* **Bounded in-flight depth.**  A counting semaphore caps outstanding
  applies (queued + executing) at ``max_in_flight``; ``submit`` blocks
  once the cap is reached, which is the natural backpressure that keeps
  the trainer from running unboundedly ahead of the writes.
* **Monotone completion watermark.**  Tasks complete in submission
  order, so "applies through iteration ``t`` have landed" is a single
  integer (``applied_through``); :meth:`wait_for` is how the staleness
  policy expresses both the strict and the bounded schedule.
* **Failure transparency.**  A task exception is recorded and re-raised
  on the trainer thread's next ``submit``/``wait_for``; after a failure
  the worker drains (without executing) whatever is still queued so no
  producer can deadlock on the semaphore.
"""

from __future__ import annotations

import queue
import threading
import time


class ApplyWorker:
    """Single background thread applying iteration updates FIFO."""

    def __init__(
        self, max_in_flight: int, name: str = "lazydp-apply", tracer=None
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        #: Optional repro.obs.Tracer.  Each apply task is reported as an
        #: ``apply_iteration`` span from the same perf_counter pair that
        #: feeds ``busy_seconds``, so trace and accounting agree.
        self._tracer = tracer
        self.max_in_flight = int(max_in_flight)
        self._slots = threading.Semaphore(self.max_in_flight)
        self._inbox: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._applied_through = 0
        self._error: BaseException | None = None
        self._stopping = False
        #: Seconds spent inside apply tasks (work hidden behind fwd/bwd).
        self.busy_seconds = 0.0
        #: Seconds the trainer blocked in :meth:`submit` on the
        #: in-flight cap (backpressure: applies slower than planning).
        self.submit_stall_seconds = 0.0
        #: Seconds the trainer blocked in :meth:`wait_for` (the
        #: staleness policy's exposed synchronisation cost).
        self.wait_seconds = 0.0
        #: Iteration apply tasks completed.
        self.applies_completed = 0
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    @property
    def is_alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def applied_through(self) -> int:
        """Highest iteration whose apply has completed (all earlier
        iterations have too — completion is FIFO)."""
        with self._lock:
            return self._applied_through

    def _raise_if_failed_locked(self) -> None:
        if self._error is not None:
            raise RuntimeError("async apply worker failed") from self._error

    def _raise_if_failed(self) -> None:
        with self._lock:
            self._raise_if_failed_locked()

    def submit(self, iteration: int, task) -> None:
        """Queue the apply for ``iteration``; blocks at the in-flight cap.

        Iterations must be submitted in increasing order (the trainer
        loop guarantees it); the completion watermark relies on that.
        """
        self._raise_if_failed()
        start = time.perf_counter()
        self._slots.acquire()
        self.submit_stall_seconds += time.perf_counter() - start
        # The error may have landed while we blocked on the semaphore;
        # the slot is intentionally not returned — the session is dead.
        self._raise_if_failed()
        self._inbox.put((int(iteration), task))

    def wait_for(self, iteration: int, timeout: float = 120.0) -> None:
        """Block until applies through ``iteration`` have landed."""
        with self._done:
            start = time.perf_counter()
            deadline = start + timeout
            while self._applied_through < iteration and self._error is None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0 or not self._done.wait(remaining):
                    raise RuntimeError(
                        f"apply worker did not reach iteration {iteration} "
                        f"within {timeout:g}s (applied through "
                        f"{self._applied_through})"
                    )
            self.wait_seconds += time.perf_counter() - start
            self._raise_if_failed_locked()

    def _run(self) -> None:
        while True:
            item = self._inbox.get()
            if item is None:
                return
            iteration, task = item
            if self._error is None and not self._stopping:
                start = time.perf_counter()
                try:
                    task()
                except BaseException as error:  # noqa: BLE001 - forwarded
                    with self._done:
                        self._error = error
                        self._done.notify_all()
                else:
                    end = time.perf_counter()
                    self.busy_seconds += end - start
                    if self._tracer is not None:
                        self._tracer.add_complete(
                            "apply_iteration", start, end,
                            {"iteration": iteration},
                        )
                    with self._done:
                        self._applied_through = iteration
                        self.applies_completed += 1
                        self._done.notify_all()
            # Always free the slot — after a failure this is what keeps
            # a blocked producer from deadlocking on the semaphore.
            self._slots.release()

    def close(self) -> None:
        """Stop the worker; pending tasks are drained, not executed
        (error paths and restarts).  Idempotent."""
        self._stopping = True
        self._inbox.put(None)
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)
            if self._thread.is_alive():
                raise RuntimeError("async apply worker failed to stop")

    def drain(self, last_iteration: int) -> None:
        """Graceful end-of-training: wait for every submitted apply,
        then stop the thread."""
        if self._thread.is_alive() and last_iteration > 0:
            self.wait_for(last_iteration)
        self.close()
