"""Async LazyDP trainers: up to ``max_in_flight`` iterations in flight.

The pipelined trainers (``repro.pipeline``) moved the catch-up's
plan + sample phases onto a background prefetch worker but still ran
the *apply* phase — gradient merge and the sparse slab write — inline,
so iteration ``t + 1`` could not start until iteration ``t`` had fully
written.  The trainers here cut that last dependency: the apply phase
is packaged per iteration and handed to a background
:class:`ApplyWorker <repro.async_.apply.ApplyWorker>`, so the trainer
thread proceeds to forward/backward of ``t + 1`` (and the prefetch
worker to plan/sample of ``t + k``) while the apply of ``t`` is still
writing.

Three mechanisms keep this honest:

* **In-flight cap.**  At most ``max_in_flight`` iteration applies may
  be outstanding (queued or writing); the cap is the backpressure that
  bounds how far the trainer runs ahead.
* **Staleness policy** (:class:`StalenessPolicy
  <repro.async_.policy.StalenessPolicy>`).  ``strict`` waits, before
  each step, for every prior apply — forward passes never read a stale
  slab and training is *bitwise-equal* to the serial ``LazyDPTrainer``
  (``tests/test_async_equivalence.py`` pins this across sampling
  schemes, ANS modes, shard counts and in-flight depths).
  ``bounded:k`` waits only for applies through ``t - 1 - k``, trading
  read freshness for throughput the way EANA-style systems do.
* **Noise ledger** (:class:`VersionVector
  <repro.lazydp.ledger.VersionVector>`).  Every apply advances a
  per-row applied-through version and verifies the span it is applying
  starts exactly where the row stands; after the terminal flush,
  :meth:`audit_noise_ledger` proves every per-iteration noise value
  was applied exactly once — the privacy bookkeeping stays exact even
  when bounded staleness reorders reads around writes.

Thread roles (three threads, disjoint state): the *prefetch worker*
owns HistoryTables and ANS counters, the *apply worker* owns parameter
slabs and the ledger, the *trainer thread* owns activations, dense
parameters and the staging handoffs.  Dense (MLP) updates stay
synchronous on the trainer thread — staleness applies to embedding
slabs only.

**Layering.**  Like the pipelining capability, the async capability is
split into mixins the session builder (:mod:`repro.session`) composes
onto either base trainer: :class:`_AsyncHost` owns the layout-agnostic
apply session (worker + ledger + staleness policy), while
:class:`_FlatAsyncApply` / :class:`_ShardedAsyncApply` package the
layout-specific per-iteration apply.  ``AsyncLazyDPTrainer`` and
``AsyncShardedLazyDPTrainer`` remain as the named compositions.
"""

from __future__ import annotations

import numpy as np

from ..lazydp.ledger import VersionVector
from ..pipeline.trainer import (
    PipelinedLazyDPTrainer,
    PipelinedShardedLazyDPTrainer,
)
from .apply import ApplyWorker
from .policy import StalenessPolicy


class _AsyncHost:
    """Mixin owning the async apply session: worker + ledger + policy.

    Subclasses provide ``_apply_iteration(iteration, payloads)`` (runs
    on the apply worker thread) and record per-table payloads from
    ``_apply_embedding_dense_noisy_update`` while a step is executing.
    Outside ``fit`` the pipeline (and with it the apply worker) is
    inactive and the trainers fall back to their pipelined parents'
    inline path.
    """

    def _init_async(self, max_in_flight: int, staleness) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = int(max_in_flight)
        self.staleness = StalenessPolicy.parse(staleness)
        #: One applied-through version vector per embedding table — the
        #: deferred-noise ledger's exactness witness under reordering.
        self.ledger = [
            VersionVector(bag.num_rows) for bag in self.model.embeddings
        ]
        self._apply_worker: ApplyWorker | None = None
        self._apply_running = False
        self._last_submitted = 0
        self._collected: list | None = None
        #: Apply-thread stage breakdown (merge + slab write), kept apart
        #: from ``self.timer`` so two threads never share a StageTimer.
        self.apply_timer = self._make_timer()

    # -- session lifecycle -------------------------------------------------
    def _start_pipeline(self, loader) -> None:
        super()._start_pipeline(loader)
        self._shutdown_apply()
        self.apply_timer = self._make_timer()
        self._last_submitted = 0
        self._apply_worker = ApplyWorker(
            self.max_in_flight, tracer=self.obs.timer_tracer()
        )
        self._apply_worker.start()
        self._apply_running = True

    def _auxiliary_timers(self) -> tuple:
        return super()._auxiliary_timers() + (self.apply_timer,)

    def _shutdown_apply(self) -> None:
        if self._apply_worker is not None and self._apply_worker.is_alive:
            self._apply_worker.close()
        self._apply_running = False

    def _shutdown_pipeline(self) -> None:
        super()._shutdown_pipeline()
        self._shutdown_apply()

    def _drain_applies(self) -> None:
        """Wait for every submitted apply to land, then stop the worker
        (re-raising any apply failure on the trainer thread)."""
        if self._apply_running and self._apply_worker is not None:
            self._apply_worker.drain(self._last_submitted)
            self._apply_running = False

    # -- the async step ----------------------------------------------------
    def train_step(self, iteration: int, batch, next_batch) -> float:
        if self._apply_running:
            obs = self.obs
            if obs.enabled:
                # In-flight depth and staleness lag at step entry (i.e.
                # before the policy wait below narrows them).
                applied = self._apply_worker.applied_through
                obs.observe_inflight(
                    self._last_submitted - applied,
                    max(iteration - 1 - applied, 0),
                )
            # The staleness policy's wait: strict -> all prior applies;
            # bounded(k) -> allow the k most recent to still be in
            # flight when forward reads the slabs.
            horizon = iteration - 1 - self.staleness.allowed_lag
            if horizon >= 1:
                with self.timer.time("staleness_wait"):
                    self._apply_worker.wait_for(horizon)
            self._collected = []
        loss = super().train_step(iteration, batch, next_batch)
        if self._apply_running:
            payloads, self._collected = self._collected, None
            self._apply_worker.submit(
                iteration,
                lambda: self._apply_iteration(iteration, payloads),
            )
            self._last_submitted = iteration
        return loss

    def finalize(self, final_iteration: int) -> None:
        # Quiesce in dependency order: the prefetch worker stops
        # touching histories, then every in-flight apply lands, then the
        # terminal flush may read histories and write slabs.
        self._finish_pipeline()
        self._drain_applies()
        # The ledger mirrors applies made *through the worker*; outside
        # an async session (manual stepping falls back to the inline
        # path) there is nothing to reconcile and the vectors stay at
        # their baseline.
        flush_plans = []
        if final_iteration > 0 and self._apply_worker is not None:
            for table_index, _ in enumerate(self.model.embeddings):
                history = self.engine.histories[table_index]
                pending = history.pending_rows(final_iteration)
                delays = (
                    history.delays(pending, final_iteration)
                    if pending.size
                    else np.empty(0, dtype=np.int64)
                )
                flush_plans.append((table_index, pending, delays))
        super().finalize(final_iteration)
        # The flush caught those rows up; the ledger must agree.
        for table_index, pending, delays in flush_plans:
            self.ledger[table_index].advance(
                pending, delays, final_iteration
            )

    # -- auditing and reporting --------------------------------------------
    def audit_noise_ledger(self, final_iteration: int) -> None:
        """Prove noise was applied exactly once per (row, iteration)
        through ``final_iteration`` (raises ``LedgerError`` otherwise).

        This is the bounded-staleness acceptance check: released
        parameters legitimately differ from the serial schedule, but
        the deferred-noise accounting may not.
        """
        for vector in self.ledger:
            vector.audit_complete(final_iteration)

    def async_stats(self) -> dict:
        """Apply-side accounting for the last ``fit`` run."""
        worker = self._apply_worker
        return {
            "max_in_flight": self.max_in_flight,
            "staleness": self.staleness.describe(),
            "applies_completed": worker.applies_completed if worker else 0,
            "apply_busy_seconds": worker.busy_seconds if worker else 0.0,
            "submit_stall_seconds":
                worker.submit_stall_seconds if worker else 0.0,
            "staleness_wait_seconds":
                self.timer.totals.get("staleness_wait", 0.0),
            "apply_stage_seconds": self.apply_timer.as_dict(),
            # Fused-kernel instrumentation for work done on the apply
            # thread (arena_hits / arena_allocs land here, not in
            # self.timer, because the apply timer owns that thread).
            "apply_counters": dict(self.apply_timer.counters),
        }

    def pipeline_stats(self) -> dict:
        stats = super().pipeline_stats()
        stats["async"] = self.async_stats()
        return stats


class _FlatAsyncApply:
    """Flat-table half of the async capability: per-table payloads are
    the staged ``(rows, delays, values)`` triples plus the clipped
    gradient; the apply worker replays the serial trainer's fused
    merge+write per table and advances the ledger."""

    def _apply_embedding_dense_noisy_update(self, table_index: int, bag,
                                            sparse_grad, iteration: int,
                                            noise_std: float) -> None:
        if not self._apply_running:
            # Manual stepping outside fit(): pipelined/serial fallback.
            return super()._apply_embedding_dense_noisy_update(
                table_index, bag, sparse_grad, iteration, noise_std
            )
        self._last_noise_std = noise_std
        if self._next_batch is None:
            rows = np.empty(0, dtype=np.int64)
            delays = np.empty(0, dtype=np.int64)
            values = np.zeros((0, bag.dim), dtype=np.float64)
        else:
            staged = self._staged_for(iteration, noise_std)
            rows, delays, values = staged.tables[table_index]
        self._collected.append(
            (table_index, bag, sparse_grad, rows, delays, values)
        )

    # Runs on the apply worker thread.
    def _apply_iteration(self, iteration: int, payloads: list) -> None:
        for table_index, bag, sparse_grad, rows, delays, values in payloads:
            self._apply_staged_noise(
                bag, sparse_grad, rows, values, timer=self.apply_timer
            )
            # Advance only after the write landed: a failed write must
            # leave the ledger behind so the audit reports the lost
            # noise instead of vouching for it.
            self.ledger[table_index].advance(rows, delays, iteration)


class _ShardedAsyncApply:
    """Partitioned-slab half of the async capability.

    The apply worker routes the gradient and fans the per-shard apply
    out on the trainer's shard executor; during a ``fit`` the worker is
    that executor's only client (the trainer thread no longer applies
    inline, and the terminal flush runs only after the worker drained),
    so slab ownership stays single-writer.
    """

    def _apply_embedding_dense_noisy_update(self, table_index: int, bag,
                                            sparse_grad, iteration: int,
                                            noise_std: float) -> None:
        if not self._apply_running:
            return super()._apply_embedding_dense_noisy_update(
                table_index, bag, sparse_grad, iteration, noise_std
            )
        self._last_noise_std = noise_std
        if self._next_batch is None:
            per_shard = [
                (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.zeros((0, bag.dim), dtype=np.float64),
                )
                for _ in range(self.num_shards)
            ]
        else:
            staged = self._staged_for(iteration, noise_std)
            per_shard = staged.tables[table_index]
        self._collected.append((table_index, bag, sparse_grad, per_shard))

    # Runs on the apply worker thread.
    def _apply_iteration(self, iteration: int, payloads: list) -> None:
        lr = self.config.learning_rate
        for table_index, bag, sparse_grad, per_shard in payloads:
            with self.apply_timer.time("shard_routing"):
                routed_grad = self.router.scatter(
                    table_index, sparse_grad.rows
                )
                grad_values = [
                    sparse_grad.values[routed_grad.origin[s]]
                    for s in range(self.num_shards)
                ]
            tasks = [
                (lambda s=s: self._shard_apply(
                    bag, s, per_shard[s][0], per_shard[s][2],
                    routed_grad.global_rows[s], grad_values[s], lr,
                    self.shard_timers[s],
                ))
                for s in range(self.num_shards)
            ]
            with self.apply_timer.time("shard_model_update"):
                self.executor.run(tasks)
            # Advance only after every shard's write landed; a partial
            # failure leaves the ledger behind (the safe direction —
            # the audit then reports rows still owing noise).
            for s in range(self.num_shards):
                self.ledger[table_index].advance(
                    per_shard[s][0], per_shard[s][1], iteration
                )


class AsyncLazyDPTrainer(_FlatAsyncApply, _AsyncHost, PipelinedLazyDPTrainer):
    """LazyDP with async in-flight iterations (flat tables).

    ``prefetch_depth`` defaults to ``max(2, max_in_flight)`` so the
    noise-prefetch runway never becomes the in-flight bottleneck.
    """

    name = "async_lazydp"

    def __init__(
        self,
        model,
        config,
        noise_seed: int = 1234,
        use_ans: bool = True,
        max_in_flight: int = 2,
        staleness="strict",
        prefetch_depth: int | None = None,
    ):
        super().__init__(
            model,
            config,
            noise_seed=noise_seed,
            use_ans=use_ans,
            prefetch_depth=prefetch_depth or max(2, max_in_flight),
        )
        self.name = "async_lazydp" if use_ans else "async_lazydp_no_ans"
        self._init_async(max_in_flight, staleness)


class AsyncShardedLazyDPTrainer(
    _ShardedAsyncApply, _AsyncHost, PipelinedShardedLazyDPTrainer
):
    """Sharded LazyDP with async in-flight iterations."""

    name = "async_sharded_lazydp"

    def __init__(
        self,
        model,
        config,
        noise_seed: int = 1234,
        use_ans: bool = True,
        num_shards: int = 2,
        partition: str = "row_range",
        executor="serial",
        plan=None,
        max_workers: int | None = None,
        skew=None,
        max_in_flight: int = 2,
        staleness="strict",
        prefetch_depth: int | None = None,
    ):
        super().__init__(
            model,
            config,
            noise_seed=noise_seed,
            use_ans=use_ans,
            num_shards=num_shards,
            partition=partition,
            executor=executor,
            plan=plan,
            max_workers=max_workers,
            skew=skew,
            prefetch_depth=prefetch_depth or max(2, max_in_flight),
        )
        self.name = (
            "async_sharded_lazydp" if use_ans else "async_sharded_lazydp_no_ans"
        )
        self._init_async(max_in_flight, staleness)
