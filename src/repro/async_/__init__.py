"""Async training engine: multiple LazyDP iterations in flight.

Builds the third stage of the plan → sample → apply decomposition into
a fully asynchronous engine:

* :mod:`policy <repro.async_.policy>` — :class:`StalenessPolicy`
  (``strict`` = bitwise-serial reads, ``bounded:k`` = slab reads may
  trail up to ``k`` outstanding applies).
* :mod:`apply <repro.async_.apply>` — :class:`ApplyWorker`, the
  bounded-depth FIFO apply thread whose completion watermark the
  policy waits on.
* :mod:`trainer <repro.async_.trainer>` — :class:`AsyncLazyDPTrainer`
  and :class:`AsyncShardedLazyDPTrainer`, keeping up to
  ``max_in_flight`` iteration applies outstanding while the per-row
  :class:`VersionVector <repro.lazydp.ledger.VersionVector>` ledger
  proves deferred noise is applied exactly once under any
  interleaving.

Configuration flows through :class:`repro.configs.AsyncConfig` and the
CLI's ``--async`` / ``--max-in-flight`` / ``--staleness``;
``benchmarks/bench_async_inflight.py`` measures throughput against
in-flight depth.  The same exactly-once ledger powers query-time
read-through catch-up in :mod:`repro.serve`.
"""

from .apply import ApplyWorker
from .policy import STALENESS_MODES, StalenessPolicy
from .trainer import AsyncLazyDPTrainer, AsyncShardedLazyDPTrainer

__all__ = [
    "ApplyWorker",
    "STALENESS_MODES",
    "StalenessPolicy",
    "AsyncLazyDPTrainer",
    "AsyncShardedLazyDPTrainer",
]
