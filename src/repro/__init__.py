"""LazyDP reproduction: scalable DP training of recommendation models.

Reimplements Lim et al., "LazyDP: Co-Designing Algorithm-Software for
Scalable Training of Differentially Private Recommendation Models"
(ASPLOS 2024) as a self-contained numpy library: the DLRM model, the
DP-SGD baseline family (B/R/F), EANA, LazyDP itself (lazy noise update +
aggregated noise sampling), RDP privacy accounting, synthetic trace
generation, and a calibrated performance model of the paper's CPU-GPU
testbed that regenerates every evaluation figure at full 96 GB-192 GB
scale.

Quickstart::

    from repro import configs, make_private
    from repro.data import DataLoader, SyntheticClickDataset
    from repro.nn import DLRM

    config = configs.tiny_dlrm()
    model = DLRM(config, seed=0)
    dataset = SyntheticClickDataset(config, seed=0)
    loader = DataLoader(dataset, batch_size=64, num_batches=20)
    session = make_private(model, loader, noise_multiplier=1.1,
                           max_gradient_norm=1.0)
    result = session.fit()
    print(result.final_loss, session.epsilon())
"""

from . import configs
from .async_ import AsyncLazyDPTrainer, AsyncShardedLazyDPTrainer
from .configs import DLRMConfig
from .kernels import BufferArena, fused_noisy_update
from .data import Batch, DataLoader, SyntheticClickDataset
from .lazydp import LazyDPTrainer, PrivateTrainingSession, make_private
from .nn import DLRM
from .pipeline import PipelinedLazyDPTrainer, PipelinedShardedLazyDPTrainer
from .privacy import RDPAccountant
from .serve import PrivateServingEngine
from .session import ExecutionPlan, TrainSession
from .shard import ShardedLazyDPTrainer
from .train import (
    DPConfig,
    DPSGDBTrainer,
    DPSGDFTrainer,
    DPSGDRTrainer,
    EANATrainer,
    SGDTrainer,
    TrainResult,
)

__version__ = "1.0.0"

__all__ = [
    "configs",
    "DLRMConfig",
    "Batch",
    "DataLoader",
    "SyntheticClickDataset",
    "LazyDPTrainer",
    "ShardedLazyDPTrainer",
    "PipelinedLazyDPTrainer",
    "PipelinedShardedLazyDPTrainer",
    "AsyncLazyDPTrainer",
    "AsyncShardedLazyDPTrainer",
    "BufferArena",
    "fused_noisy_update",
    "ExecutionPlan",
    "TrainSession",
    "PrivateServingEngine",
    "PrivateTrainingSession",
    "make_private",
    "DLRM",
    "RDPAccountant",
    "DPConfig",
    "DPSGDBTrainer",
    "DPSGDFTrainer",
    "DPSGDRTrainer",
    "EANATrainer",
    "SGDTrainer",
    "TrainResult",
    "__version__",
]
