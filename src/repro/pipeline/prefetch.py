"""The background noise-prefetch worker.

One daemon thread that turns upcoming-batch row sets into staged
catch-up noise.  The worker is deliberately *dumb*: it owns no LazyDP
state of its own, just a FIFO inbox fed by :class:`LookaheadLoader
<repro.data.loader.LookaheadLoader>`'s ``on_load`` hook and a ``compute``
callback supplied by the pipelined trainer.  All noise semantics —
history reads and advances, ANS draws, sharded fan-out — live in that
callback, which is the *same code path* the serial trainers run inline;
the worker only changes *when and where* it runs.

Invariants:

* **Exclusive history ownership.**  While the worker is running, it is
  the only thread touching the engine's HistoryTables (the trainer's
  inline path is bypassed, and the terminal flush only runs after the
  worker has been joined).  Plans are computed strictly in iteration
  order, so the history evolves exactly as under serial training.
* **Batch positions map to plan iterations.**  The batch at loader
  position ``j`` (0-based) is the *next* batch of training iteration
  ``j`` (1-based), so it produces the catch-up plan for iteration ``j``.
  Position 0 is the bootstrap batch — trained on, never planned against
  — and a ``None`` batch is the end-of-stream sentinel.
* **Failure transparency.**  Any exception in ``compute`` is forwarded
  to the staging buffer and re-raised on the trainer thread.

``busy_seconds`` accumulates time actually spent computing (excluding
waits), which the overlap benchmark compares against the trainer's
``pipeline_wait`` to report how much noise time was hidden.
"""

from __future__ import annotations

import queue
import threading
import time


class NoisePrefetchWorker:
    """Single background thread precomputing catch-up noise plans."""

    def __init__(
        self, compute, buffer, name: str = "noise-prefetch", tracer=None
    ):
        self._compute = compute      # (iteration, batch) -> StagedNoise
        self._buffer = buffer
        self._inbox: queue.Queue = queue.Queue()
        self._stopping = False
        #: Optional repro.obs.Tracer.  The worker reports each compute
        #: as a ``prefetch_compute`` span from the same perf_counter
        #: pair that feeds ``busy_seconds``, so the trace's worker-track
        #: busy time and the benchmark's overlap accounting agree.
        self._tracer = tracer
        #: Seconds spent inside ``compute`` (the work available to hide).
        self.busy_seconds = 0.0
        #: Number of iteration plans staged.
        self.plans_computed = 0
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    @property
    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def submit(self, position: int, batch) -> None:
        """``LookaheadLoader`` ``on_load`` hook.

        ``batch is None`` is the end-of-stream sentinel; position 0 is
        the bootstrap batch and produces no plan (there is no iteration
        0 to catch rows up for).
        """
        if batch is None:
            self._inbox.put(None)
        elif position >= 1:
            self._inbox.put((position, batch))

    def _run(self) -> None:
        try:
            while True:
                item = self._inbox.get()
                if item is None or self._stopping:
                    return
                iteration, batch = item
                start = time.perf_counter()
                staged = self._compute(iteration, batch)
                end = time.perf_counter()
                self.busy_seconds += end - start
                if self._tracer is not None:
                    self._tracer.add_complete(
                        "prefetch_compute", start, end,
                        {"iteration": iteration},
                    )
                self._buffer.put(staged)
                self.plans_computed += 1
        except BaseException as error:  # noqa: BLE001 - forwarded to trainer
            if not self._stopping:
                self._buffer.fail(error)

    def join(self, timeout: float | None = None) -> None:
        """Wait for the worker to drain its inbox and exit.

        Only meaningful after the end-of-stream sentinel was submitted
        (the normal path: the LookaheadLoader always submits it).
        """
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("noise-prefetch worker failed to stop")

    def close(self) -> None:
        """Force shutdown (error paths): unblock and join the thread."""
        self._stopping = True
        self._inbox.put(None)        # unblock a worker waiting on the inbox
        self._buffer.close()         # unblock a worker waiting on a full buffer
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)
