"""Pipelined LazyDP trainers: plan → prefetch → apply.

The serial :class:`repro.lazydp.trainer.LazyDPTrainer` runs the whole
noise catch-up (dedup, history read/advance, ANS draw) inline between
backward propagation and the sparse write — on the critical path.  The
paper's co-design observation (Section 5; FlashDP makes the same
argument for LLM-scale DP-SGD) is that the catch-up for iteration ``i``
depends only on the *next* batch's row set, which the input pipeline
knows one full iteration earlier, so the work can overlap forward/
backward propagation and input gather.

The trainers here restructure the hot path accordingly:

* a :class:`NoisePrefetchWorker <repro.pipeline.prefetch.
  NoisePrefetchWorker>` consumes upcoming-batch row sets straight from
  the :class:`InputQueue <repro.data.loader.InputQueue>` (via the
  ``LookaheadLoader``'s ``on_load`` hook, with configurable depth),
  runs the *plan* (history read/advance) and *sample* (ANS draw) phases
  in the background, and stages the result in a double-buffered
  :class:`StagingBuffer <repro.pipeline.staging.StagingBuffer>`;
* ``train_step`` keeps only the *apply* phase — merge the staged noise
  with the clipped gradient and perform the one sparse write — and
  blocks (``pipeline_wait``) only when the worker has not finished yet.

**Equivalence invariant.**  The released parameters are bitwise
identical to the serial trainer's for fixed and Poisson sampling, ANS
on/off, and any shard count: every noise value is a pure function of
``(seed, table, row, iteration)`` and the row's delay, the worker
computes plans strictly in iteration order against exclusively-owned
HistoryTables, and the apply phase reuses the serial trainer's own
merge/write methods.  Prefetching changes *when* noise is computed,
never *what* is computed.  ``tests/test_pipeline_equivalence.py`` pins
this, and ``benchmarks/bench_pipeline_overlap.py`` measures how much
catch-up time the overlap hides.

**Layering.**  The pipelining capability is split into mixins so the
session builder (:mod:`repro.session`) can compose it onto either base
trainer instead of selecting among hand-enumerated cross-product
classes:

* :class:`_PipelineHost` — the execution-strategy lifecycle (worker +
  staging buffer + stats), independent of table layout;
* :class:`_FlatNoisePrefetch` / :class:`_ShardedNoisePrefetch` — the
  layout-specific halves (what the worker computes and how the trainer
  consumes it) for flat tables and partitioned slabs respectively.

``PipelinedLazyDPTrainer`` and ``PipelinedShardedLazyDPTrainer`` remain
as the named compositions for direct construction and back-compat;
``repro.session.compose_trainer_class`` builds the same stacks (plus
the async layer) from an :class:`repro.session.ExecutionPlan`.
"""

from __future__ import annotations

import numpy as np

from ..data.loader import DataLoader, LookaheadLoader
from ..lazydp.trainer import LazyDPTrainer
from ..shard.executor import EXECUTOR_BACKENDS, make_executor
from ..shard.trainer import ShardedLazyDPTrainer
from .prefetch import NoisePrefetchWorker
from .staging import StagedNoise, StagingBuffer


class _PipelineHost:
    """Mixin owning the pipeline session: worker + buffer lifecycle.

    Subclasses provide ``_prefetch_noise(iteration, batch)`` (runs on
    the worker thread, returns a :class:`StagedNoise`) and consume
    staged entries through ``_staged_for(iteration)`` on the trainer
    thread.  Outside a ``fit`` call the pipeline is inactive and the
    trainers fall back to their serial parents' inline path, so manual
    ``train_step`` driving (benchmark harnesses) keeps working.
    """

    def _init_pipeline(self, prefetch_depth: int) -> None:
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be at least 1")
        self.prefetch_depth = int(prefetch_depth)
        self._pipeline_running = False
        self._pipeline_noise_std: float | None = None
        self._buffer: StagingBuffer | None = None
        self._worker: NoisePrefetchWorker | None = None
        self._staged: StagedNoise | None = None
        #: ``worker_timer``: stage breakdown of work done on the worker
        #: thread (dedup, history read/update, noise sampling, shard
        #: routing).  Reset per fit() so stats stay per-run.
        self._reset_prefetch_timers()

    # -- session lifecycle -------------------------------------------------
    def _make_lookahead(self, loader: DataLoader) -> LookaheadLoader:
        """Hook from ``TrainerBase.fit``: deepen the input queue and hang
        the prefetch worker off its ``on_load`` hook."""
        self._start_pipeline(loader)
        return LookaheadLoader(
            loader, depth=self.prefetch_depth, on_load=self._worker.submit
        )

    def _reset_prefetch_timers(self) -> None:
        """Fresh worker-side timers, so ``pipeline_stats`` stays per-fit
        (the buffer/worker counters it reads are per-fit too)."""
        self.worker_timer = self._make_timer()

    def _start_pipeline(self, loader: DataLoader) -> None:
        self._shutdown_pipeline()
        self._reset_prefetch_timers()
        # The catch-up std is the per-iteration noise std at the expected
        # (lot-size) batch — constant across iterations even under
        # Poisson sampling, so the worker can draw ahead of time.
        self._pipeline_noise_std = self.config.noise_std(loader.batch_size)
        self._buffer = StagingBuffer(capacity=self.prefetch_depth)
        self._worker = NoisePrefetchWorker(
            self._prefetch_noise, self._buffer,
            tracer=self.obs.timer_tracer(),
        )
        self._staged = None
        self._pipeline_running = True
        self._worker.start()

    def _finish_pipeline(self) -> None:
        """Graceful end-of-training: join the worker so the histories are
        quiescent before the terminal flush reads them."""
        if self._pipeline_running:
            self._worker.join(timeout=60.0)
            self._pipeline_running = False

    def _shutdown_pipeline(self) -> None:
        """Force shutdown (error paths and restarts).  Idempotent."""
        if self._worker is not None and self._worker.is_alive:
            self._worker.close()
        self._pipeline_running = False

    def fit(self, loader: DataLoader):
        try:
            return super().fit(loader)
        finally:
            self._shutdown_pipeline()

    def finalize(self, final_iteration: int) -> None:
        self._finish_pipeline()
        super().finalize(final_iteration)

    def close(self) -> None:
        self._shutdown_pipeline()
        parent_close = getattr(super(), "close", None)
        if parent_close is not None:
            parent_close()

    # -- trainer-thread consumption ---------------------------------------
    def _staged_for(self, iteration: int, noise_std: float) -> StagedNoise:
        """The staged entry for ``iteration`` (pops once per iteration;
        the wait, if any, is the exposed noise time)."""
        if self._staged is None or self._staged.iteration != iteration:
            if noise_std != self._pipeline_noise_std:
                raise RuntimeError(
                    "noise std drifted from the prefetched value "
                    f"({noise_std} != {self._pipeline_noise_std}); "
                    "staged noise would be wrong"
                )
            obs = self.obs
            if obs.enabled:
                # Occupancy > 0 means the plan is already staged — the
                # pop below returns without a meaningful wait (a
                # prefetch hit).
                obs.observe_staging(len(self._buffer))
            with self.timer.time("pipeline_wait"):
                self._staged = self._buffer.pop(iteration)
        return self._staged

    # -- reporting ---------------------------------------------------------
    def pipeline_stats(self) -> dict:
        """Hidden-vs-exposed accounting for the last ``fit`` run.

        ``prefetch_busy_seconds`` is background compute; the share of it
        the trainer did *not* wait for (``hidden_seconds``) ran behind
        forward/backward and input gather.
        """
        busy = self._worker.busy_seconds if self._worker else 0.0
        wait = self._buffer.wait_seconds if self._buffer else 0.0
        hidden = max(busy - wait, 0.0)
        return {
            "prefetch_busy_seconds": busy,
            "exposed_wait_seconds": wait,
            "hidden_seconds": hidden,
            "hidden_fraction": (hidden / busy) if busy > 0.0 else 0.0,
            "producer_stall_seconds":
                self._buffer.stall_seconds if self._buffer else 0.0,
            "plans_computed":
                self._worker.plans_computed if self._worker else 0,
            "worker_stage_seconds": self.worker_timer.as_dict(),
            # Fused-kernel instrumentation (arena reuse on the apply
            # side, sampler scratch on the worker side) — the apply
            # phase delegates to repro.kernels, so its zero-allocation
            # steady state is observable from here too.
            "kernel": self.kernel_stats(),
        }

    def _auxiliary_timers(self) -> tuple:
        return super()._auxiliary_timers() + (self.worker_timer,)


class _FlatNoisePrefetch:
    """Flat-table half of the pipelining capability.

    Pairs with :class:`_PipelineHost` over :class:`LazyDPTrainer`: the
    worker runs the serial trainer's plan+sample phases per table, the
    trainer thread consumes the staged ``(rows, delays, values)``
    triples in its apply phase.
    """

    # Runs on the worker thread.
    def _prefetch_noise(self, iteration: int, batch) -> StagedNoise:
        std = self._pipeline_noise_std
        tables = []
        for table_index, bag in enumerate(self.model.embeddings):
            with self.worker_timer.time("lazydp_dedup"):
                next_rows = batch.accessed_rows(table_index)
            plan = self._plan_catchup(
                table_index, next_rows, iteration, self.worker_timer
            )
            values = self._sample_catchup(
                plan, bag.dim, std, self.worker_timer
            )
            # Delays travel with the noise so deferred consumers (the
            # async trainer's apply stage) can advance the noise ledger.
            tables.append((plan.rows, plan.delays, values))
        return StagedNoise(iteration, tables)

    def _apply_embedding_dense_noisy_update(self, table_index: int, bag,
                                            sparse_grad, iteration: int,
                                            noise_std: float) -> None:
        if not self._pipeline_running:
            # Manual stepping outside fit(): serial inline path.
            return super()._apply_embedding_dense_noisy_update(
                table_index, bag, sparse_grad, iteration, noise_std
            )
        self._last_noise_std = noise_std
        if self._next_batch is None:
            # Final iteration: nothing was prefetched; the terminal
            # flush performs every remaining catch-up.
            noise_rows = np.empty(0, dtype=np.int64)
            noise_values = np.zeros((0, bag.dim), dtype=np.float64)
        else:
            staged = self._staged_for(iteration, noise_std)
            noise_rows, _, noise_values = staged.tables[table_index]
        self._apply_staged_noise(bag, sparse_grad, noise_rows, noise_values)


class _ShardedNoisePrefetch:
    """Partitioned-slab half of the pipelining capability.

    Pairs with :class:`_PipelineHost` over
    :class:`repro.shard.trainer.ShardedLazyDPTrainer`: the worker fans
    the plan+sample phase out per shard on its own executor (same
    backend as the trainer's apply executor), so shard prefetch for
    iteration ``i+1`` overlaps the trainer's dense-layer and apply work
    for iteration ``i``.  Thread-safety rests on strict state
    partitioning: the worker owns HistoryTables and ANS counters, the
    trainer thread owns parameter slabs, and the partition plan and
    router are immutable.
    """

    def _init_pipeline(self, prefetch_depth: int) -> None:
        super()._init_pipeline(prefetch_depth)
        # The worker gets its own executor (same backend) so its shard
        # fan-out never queues behind the trainer's apply tasks.  The
        # trainer's executor *instance* is mirrored through its backend
        # name; unknown custom backends fall back to serial prefetch.
        spec = (self.executor.name
                if self.executor.name in EXECUTOR_BACKENDS else "serial")
        self.prefetch_executor = make_executor(
            spec, self.plan.num_shards,
            getattr(self.executor, "max_workers", None),
        )

    def _reset_prefetch_timers(self) -> None:
        super()._reset_prefetch_timers()
        #: Per-shard stage timers for work done on the worker thread
        #: (kept apart from ``shard_timers`` — the apply side — so the
        #: two threads never write the same StageTimer concurrently).
        self.prefetch_shard_timers = [
            self._make_timer() for _ in range(self.plan.num_shards)
        ]

    def _auxiliary_timers(self) -> tuple:
        return super()._auxiliary_timers() + tuple(
            self.prefetch_shard_timers
        )

    # Runs on the worker thread.
    def _prefetch_noise(self, iteration: int, batch) -> StagedNoise:
        std = self._pipeline_noise_std
        tables = []
        for table_index, bag in enumerate(self.model.embeddings):
            with self.worker_timer.time("lazydp_dedup"):
                next_rows = batch.accessed_rows(table_index)
            with self.worker_timer.time("shard_routing"):
                routed = self.router.scatter(table_index, next_rows)
            tasks = [
                (
                    lambda s=s: (routed.global_rows[s],)
                    + self._shard_plan_and_sample(
                        table_index,
                        s,
                        routed.global_rows[s],
                        routed.local[s],
                        iteration,
                        bag.dim,
                        std,
                        self.prefetch_shard_timers[s],
                    )
                )
                for s in range(self.num_shards)
            ]
            # Wall-clock of the per-shard fan-out; the history-vs-
            # sampling split inside it lives in prefetch_shard_timers
            # (surfaced via pipeline_stats), mirroring how the apply
            # side reports shard_model_update vs shard_timers.
            with self.worker_timer.time("shard_prefetch"):
                tables.append(self.prefetch_executor.run(tasks))
        return StagedNoise(iteration, tables)

    def _apply_embedding_dense_noisy_update(self, table_index: int, bag,
                                            sparse_grad, iteration: int,
                                            noise_std: float) -> None:
        if not self._pipeline_running:
            return super()._apply_embedding_dense_noisy_update(
                table_index, bag, sparse_grad, iteration, noise_std
            )
        self._last_noise_std = noise_std
        lr = self.config.learning_rate

        if self._next_batch is None:
            per_shard_noise = [
                (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.zeros((0, bag.dim), dtype=np.float64),
                )
                for _ in range(self.num_shards)
            ]
        else:
            staged = self._staged_for(iteration, noise_std)
            per_shard_noise = staged.tables[table_index]

        with self.timer.time("shard_routing"):
            routed_grad = self.router.scatter(table_index, sparse_grad.rows)
            grad_values = [
                sparse_grad.values[routed_grad.origin[s]]
                for s in range(self.num_shards)
            ]

        tasks = [
            (lambda s=s: self._shard_apply(
                bag, s, per_shard_noise[s][0], per_shard_noise[s][2],
                routed_grad.global_rows[s], grad_values[s], lr,
                self.shard_timers[s],
            ))
            for s in range(self.num_shards)
        ]
        with self.timer.time("shard_model_update"):
            self.executor.run(tasks)

    def pipeline_stats(self) -> dict:
        """Adds the per-shard stage split of the prefetch work (the
        Figure-11-style dedup/history/sampling attribution), which the
        wall-clock ``shard_prefetch`` entry in ``worker_stage_seconds``
        deliberately lumps together."""
        stats = super().pipeline_stats()
        stats["prefetch_shard_stage_seconds"] = [
            dict(timer.totals) for timer in self.prefetch_shard_timers
        ]
        return stats

    def close(self) -> None:
        super().close()                    # pipeline + apply executor
        self.prefetch_executor.shutdown()


class PipelinedLazyDPTrainer(_FlatNoisePrefetch, _PipelineHost, LazyDPTrainer):
    """LazyDP with background noise prefetch (flat tables).

    ``prefetch_depth`` sets both the input-queue lookahead and the
    staging-buffer capacity: depth 1 overlaps the catch-up with the
    *current* step's forward/backward; depth ≥ 2 (double buffering, the
    default) adds a full iteration of runway.
    """

    name = "pipelined_lazydp"

    def __init__(
        self,
        model,
        config,
        noise_seed: int = 1234,
        use_ans: bool = True,
        prefetch_depth: int = 2,
    ):
        super().__init__(model, config, noise_seed=noise_seed, use_ans=use_ans)
        self.name = "pipelined_lazydp" if use_ans else "pipelined_lazydp_no_ans"
        self._init_pipeline(prefetch_depth)


class PipelinedShardedLazyDPTrainer(
    _ShardedNoisePrefetch, _PipelineHost, ShardedLazyDPTrainer
):
    """Sharded LazyDP with background per-shard noise prefetch."""

    name = "pipelined_sharded_lazydp"

    def __init__(
        self,
        model,
        config,
        noise_seed: int = 1234,
        use_ans: bool = True,
        num_shards: int = 2,
        partition: str = "row_range",
        executor="serial",
        plan=None,
        max_workers: int | None = None,
        skew=None,
        prefetch_depth: int = 2,
    ):
        super().__init__(
            model,
            config,
            noise_seed=noise_seed,
            use_ans=use_ans,
            num_shards=num_shards,
            partition=partition,
            executor=executor,
            plan=plan,
            max_workers=max_workers,
            skew=skew,
        )
        self.name = (
            "pipelined_sharded_lazydp"
            if use_ans
            else "pipelined_sharded_lazydp_no_ans"
        )
        self._init_pipeline(prefetch_depth)
