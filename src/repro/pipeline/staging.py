"""Double-buffered staging of precomputed catch-up noise.

The staging buffer is the handoff point between the noise-prefetch
worker (producer) and the trainer thread (consumer).  It holds up to
``capacity`` iterations' worth of :class:`StagedNoise` — ``capacity=2``
is classic double buffering: one entry being applied by the trainer
while the worker fills the next.

Invariants the pipeline rests on:

* **Iteration order.**  Entries are staged and popped strictly in
  iteration order; ``pop`` verifies the head entry matches the requested
  iteration, so a scheduling bug surfaces as a loud error instead of
  silently applying another iteration's noise.
* **Single producer / single consumer.**  Exactly one worker stages and
  exactly one trainer pops; the buffer's condition variables provide the
  only synchronisation the pipeline needs, because noise *values* are
  pure functions of ``(seed, table, row, iteration)`` and carry no
  shared mutable state.
* **Buffer handoff.**  Once an entry is staged the worker never touches
  its arrays again, and the trainer only reads them — ownership
  transfers wholesale at ``put``/``pop``, so no copy is needed.
* **Failure transparency.**  A worker exception is recorded with
  :meth:`fail` and re-raised from the trainer's next ``pop`` — a dead
  worker can never silently stall or corrupt training.

The buffer also keeps the two numbers the overlap benchmark reports:
``wait_seconds`` (consumer blocked — the *exposed* share of noise cost)
and ``stall_seconds`` (producer blocked on a full buffer — prefetch
runway exceeding demand, which is free).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass


@dataclass
class StagedNoise:
    """Precomputed catch-up noise for one iteration, covering all tables.

    ``tables[t]`` is the payload for embedding table ``t``: the flat
    trainer stages one ``(rows, delays, values)`` triple per table; the
    sharded trainer stages a list of per-shard ``(global_rows, delays,
    values)`` triples.  The delays ride along so a deferred apply stage
    (the async trainer) can advance the per-row noise ledger
    (:class:`repro.lazydp.ledger.VersionVector`) when the noise lands.
    """

    iteration: int
    tables: list


class StagingBuffer:
    """Bounded, iteration-ordered queue between prefetch worker and trainer."""

    def __init__(self, capacity: int = 2):
        if capacity < 1:
            raise ValueError("staging capacity must be at least 1")
        self.capacity = int(capacity)
        self._entries: deque = deque()
        self._lock = threading.Lock()
        self._state_changed = threading.Condition(self._lock)
        self._error: BaseException | None = None
        self._closed = False
        #: Seconds the consumer spent blocked in :meth:`pop` — the noise
        #: catch-up time the pipeline failed to hide.
        self.wait_seconds = 0.0
        #: Seconds the producer spent blocked in :meth:`put` — the worker
        #: running ahead of demand (harmless).
        self.stall_seconds = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def put(self, staged: StagedNoise) -> None:
        """Stage one iteration's noise; blocks while the buffer is full."""
        with self._state_changed:
            start = time.perf_counter()
            while (
                len(self._entries) >= self.capacity
                and not self._closed
                and self._error is None
            ):
                self._state_changed.wait()
            self.stall_seconds += time.perf_counter() - start
            if self._closed:
                raise RuntimeError("staging buffer is closed")
            self._entries.append(staged)
            self._state_changed.notify_all()

    def pop(self, iteration: int) -> StagedNoise:
        """Take the staged noise for ``iteration``; blocks until ready.

        Raises the worker's exception if the producer failed, and
        ``RuntimeError`` on a closed-empty buffer or an out-of-order
        entry (both indicate pipeline bugs, not recoverable states).
        """
        with self._state_changed:
            start = time.perf_counter()
            while (
                not self._entries and self._error is None and not self._closed
            ):
                self._state_changed.wait()
            self.wait_seconds += time.perf_counter() - start
            if self._error is not None:
                raise RuntimeError(
                    "noise-prefetch worker failed"
                ) from self._error
            if not self._entries:
                raise RuntimeError(
                    "staging buffer closed before iteration "
                    f"{iteration} was staged"
                )
            staged = self._entries.popleft()
            if staged.iteration != iteration:
                raise RuntimeError(
                    f"staged noise for iteration {staged.iteration}, "
                    f"trainer expected {iteration}"
                )
            self._state_changed.notify_all()
            return staged

    def fail(self, error: BaseException) -> None:
        """Record a producer-side failure; wakes both sides."""
        with self._state_changed:
            if self._error is None:
                self._error = error
            self._state_changed.notify_all()

    def close(self) -> None:
        """Shut the buffer down; blocked producers/consumers wake and
        raise.  Idempotent."""
        with self._state_changed:
            self._closed = True
            self._state_changed.notify_all()
