"""Pipelined training engine: background noise prefetch for LazyDP.

The serial LazyDP trainer pays for every noise catch-up on the critical
path.  This package restructures the hot path into an explicit
**plan → prefetch → apply** pipeline that hides the catch-up behind
forward/backward propagation and input gather:

* :mod:`staging <repro.pipeline.staging>` — :class:`StagedNoise` and the
  double-buffered :class:`StagingBuffer` handing precomputed noise from
  the worker to the trainer (iteration-ordered, failure-transparent).
* :mod:`prefetch <repro.pipeline.prefetch>` —
  :class:`NoisePrefetchWorker`, the background thread consuming
  upcoming-batch row sets from the deepened :class:`InputQueue
  <repro.data.loader.InputQueue>` and computing catch-up plans + ANS
  draws ahead of time.
* :mod:`trainer <repro.pipeline.trainer>` —
  :class:`PipelinedLazyDPTrainer` (flat tables) and
  :class:`PipelinedShardedLazyDPTrainer` (per-shard prefetch through the
  ``repro.shard`` executor), both verified bitwise-identical to their
  serial counterparts.

Configuration flows through :class:`repro.configs.PipelineConfig` and
the CLI's ``--pipeline`` / ``--prefetch-depth``;
``benchmarks/bench_pipeline_overlap.py`` measures how much catch-up time
the overlap hides.
"""

from .prefetch import NoisePrefetchWorker
from .staging import StagedNoise, StagingBuffer
from .trainer import PipelinedLazyDPTrainer, PipelinedShardedLazyDPTrainer

__all__ = [
    "NoisePrefetchWorker",
    "StagedNoise",
    "StagingBuffer",
    "PipelinedLazyDPTrainer",
    "PipelinedShardedLazyDPTrainer",
]
