"""Importable test helpers shared by the test suite and benchmarks.

Historically these lived in ``tests/conftest.py``, but ``from conftest
import ...`` is fragile: pytest inserts every conftest-bearing directory
onto ``sys.path``, so whichever ``conftest.py`` is found first wins
(``benchmarks/conftest.py`` shadowed the test helpers at the repo root).
Keeping the helpers inside the installed package makes them importable
from anywhere — tests, benchmarks, examples, notebooks — with no path
games.
"""

from __future__ import annotations

import numpy as np

from . import configs  # noqa: F401  (re-exported convenience)
from .data import DataLoader, SyntheticClickDataset
from .nn import DLRM
from .train import DPConfig


def make_loader(config, batch_size=16, num_batches=8, seed=5,
                sampling="fixed", skew=None, data_seed=3,
                num_examples=1 << 12):
    """A deterministic loader over a synthetic trace for ``config``."""
    dataset = SyntheticClickDataset(
        config, seed=data_seed, skew=skew, num_examples=num_examples
    )
    return DataLoader(dataset, batch_size=batch_size,
                      num_batches=num_batches, sampling=sampling, seed=seed)


def trainer_for(algorithm, model, dp=None, noise_seed=1234,
                **trainer_kwargs):
    """String-keyed trainer construction without the deprecation warning.

    Lazydp-family names build through ``TrainSession`` (same composed
    trainer ``make_trainer`` would hand back), baseline names through
    their classes.  Test/benchmark helper — new code should spell the
    execution strategy as an :class:`repro.session.ExecutionPlan`.
    """
    from .bench.experiments import TRAINER_CLASSES, build_lazydp_trainer
    from .session import LEGACY_ALGORITHMS

    dp = dp or DPConfig()
    if algorithm in LEGACY_ALGORITHMS:
        return build_lazydp_trainer(algorithm, model, dp,
                                    noise_seed=noise_seed, **trainer_kwargs)
    if algorithm in TRAINER_CLASSES:
        return TRAINER_CLASSES[algorithm](model, dp, noise_seed=noise_seed)
    raise ValueError(f"unknown algorithm: {algorithm}")


def train_algorithm(algorithm, config, *, batch_size=16, num_batches=8,
                    model_seed=7, noise_seed=99, dp=None, sampling="fixed",
                    skew=None, trainer_kwargs=None, **loader_kwargs):
    """Train one algorithm from a fixed initial state; return (model, result, trainer).

    Every call with the same seeds sees the same model init, the same
    trace, and the same noise stream — the setup all equivalence tests
    build on.  ``algorithm`` accepts a legacy algorithm string, a
    :class:`repro.session.ExecutionPlan`, or a ``--plan``-style spec
    string (anything containing ``=``); plans and lazydp-family strings
    construct the trainer through ``TrainSession.build``.
    """
    from .bench.experiments import make_trainer
    from .session import (
        ExecutionPlan,
        LEGACY_ALGORITHMS,
        TrainSession,
        plan_for_algorithm,
    )

    dp = dp or DPConfig(noise_multiplier=1.1, max_grad_norm=1.0,
                        learning_rate=0.05)
    model = DLRM(config, seed=model_seed)
    loader = make_loader(config, batch_size=batch_size,
                         num_batches=num_batches, sampling=sampling,
                         skew=skew, **loader_kwargs)
    if isinstance(algorithm, str) and "=" in algorithm:
        algorithm = ExecutionPlan.from_spec(algorithm)
    if isinstance(algorithm, ExecutionPlan):
        session = TrainSession.build(model, dp, algorithm,
                                     noise_seed=noise_seed,
                                     **(trainer_kwargs or {}))
        trainer = session.trainer
    elif algorithm in LEGACY_ALGORITHMS:
        plan, extras = plan_for_algorithm(algorithm, trainer_kwargs)
        session = TrainSession.build(model, dp, plan, noise_seed=noise_seed,
                                     **extras)
        trainer = session.trainer
    else:
        trainer = make_trainer(algorithm, model, dp, noise_seed=noise_seed,
                               **(trainer_kwargs or {}))
    result = trainer.fit(loader)
    return model, result, trainer


def max_param_diff(model_a, model_b):
    """Largest absolute difference across all parameters of two models."""
    params_a = model_a.parameters()
    params_b = model_b.parameters()
    assert params_a.keys() == params_b.keys()
    worst = 0.0
    for name in params_a:
        diff = np.max(np.abs(params_a[name].data - params_b[name].data))
        worst = max(worst, float(diff))
    return worst


def numeric_gradient(func, x, eps=1e-6):
    """Central-difference gradient of a scalar function of array ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat_x = x.ravel()
    flat_grad = grad.ravel()
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        upper = func(x)
        flat_x[i] = original - eps
        lower = func(x)
        flat_x[i] = original
        flat_grad[i] = (upper - lower) / (2.0 * eps)
    return grad
