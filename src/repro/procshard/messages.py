"""The process backend's IPC message schema.

Everything crossing the router <-> worker pipes is defined here, so the
wire contract is one module.  Two principles keep the pipe small:

* **State crosses once.**  The :class:`WorkerInit` handshake carries
  the pickled-once :class:`repro.shard.plan.PartitionPlan` and the
  shared-memory segment names; after that, parameters, histories and
  ledger segments move through shared memory, never the pipe.
* **Commands mirror the phase split.**  Per (iteration, table) the
  router sends a ``plan`` command (stages 2-4: history read/advance +
  noise draw, the ``_shard_plan_and_sample`` half) then an ``apply``
  command (stages 5-6: gradient merge + slab write + ledger advance,
  the ``_shard_apply`` half).  ``flush`` is the terminal catch-up,
  ``stats`` a diagnostics round trip, ``close`` the shutdown request.

Router -> worker commands (tuples, first element the command name):

========  =============================================================
command   payload
========  =============================================================
plan      ``(iteration, table_index, next_global, next_local,
          noise_std)`` — stage the catch-up for rows the *next* batch
          touches (global ids key the noise draw; local ids address the
          shard's history/ledger windows)
apply     ``(iteration, table_index, grad_global, grad_values,
          learning_rate)`` — merge the staged noise with this gradient
          slice, write the slab, advance the ledger segment
flush     ``(final_iteration, learning_rate, noise_std)`` — terminal
          catch-up of every pending row, chunked exactly like the
          in-process ``_flush_shard``
stats     ``()`` — report samples drawn, arena stats, message count
close     ``()`` — drop shared-memory views and exit
========  =============================================================

Worker -> router replies:

* ``("ready", worker_index, pid)`` — handshake: segments attached; the
  router unlinks segment names once every worker is ready.
* ``("ok", command, payload)`` — one per ``apply``/``flush``/``stats``;
  the payload dict carries ``timings``/``counters`` deltas (folded into
  the router's per-shard StageTimers), ``spans`` (``(name, start,
  end)`` perf-counter tuples for the worker's trace track), and
  command-specific fields (``flushed`` row count, stats).
* ``("error", worker_index, message, traceback)`` — any exception; the
  router raises :class:`repro.procshard.trainer.ShardWorkerError`.

``plan`` sends no reply of its own — its failure (or success timing)
travels with the paired ``apply`` ack, keeping one round trip per
(iteration, table) per shard.
"""

from __future__ import annotations

from dataclasses import dataclass

CMD_PLAN = "plan"
CMD_APPLY = "apply"
CMD_FLUSH = "flush"
CMD_STATS = "stats"
CMD_CLOSE = "close"

REPLY_READY = "ready"
REPLY_OK = "ok"
REPLY_ERROR = "error"


@dataclass(frozen=True)
class TableHandle:
    """Everything a worker needs to reconstruct one table's state."""

    table_index: int
    name: str
    param_id: int
    num_rows: int
    dim: int
    segments: tuple  # (slab, history, ledger) shared-memory names
    shard_sizes: tuple


@dataclass(frozen=True)
class WorkerInit:
    """The pickled-once startup handshake for one shard worker."""

    worker_index: int
    plan: object  # repro.shard.plan.PartitionPlan
    noise_seed: int
    use_ans: bool
    flush_chunk_rows: int
    tables: tuple  # of TableHandle
    #: The multiprocessing start method the router chose (diagnostics;
    #: surfaced by ``procshard_stats``).
    start_method: str = "fork"
