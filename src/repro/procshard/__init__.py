"""Process-backed shard execution: one worker process per shard.

The thread-pool executor (``repro.shard.executor``) fans the per-shard
model update across threads, but every slab write still serializes on
the GIL — the memory-bandwidth-bound update the paper scales never sees
truly parallel writes.  This package is the ``backend="process"`` entry
in the execution-backend registry (:mod:`repro.session.registry`): each
shard's worker is a long-lived **process** owning its embedding slab
and history table in ``multiprocessing.shared_memory``, so slab writes
proceed GIL-free while the router reads the same bytes zero-copy.

The cross-process contract is deterministic state plus a tiny command
pipe:

* the :class:`repro.shard.plan.PartitionPlan` is pickled **once** at
  worker startup (row ownership never changes mid-run);
* per step the router sends ``plan`` → ``apply`` messages mirroring the
  in-process phase split (``_shard_plan_and_sample`` /
  ``_shard_apply``), so the worker executes bitwise the same kernel
  calls the serial trainer would;
* every worker advances a per-process :class:`repro.lazydp.ledger.
  VersionVector` *segment* in shared memory, and the router's
  ``audit_noise_ledger`` proves exactly-once noise application across
  the process boundary.

Worker death mid-step surfaces as a named :class:`ShardWorkerError` in
``train_step``, after the router has terminated the remaining workers
and freed every shared-memory segment (segments are unlinked at
startup, once all workers are attached, so no names can leak even on a
hard crash).
"""

from .trainer import ProcessShardedLazyDPTrainer, ShardWorkerError

__all__ = ["ProcessShardedLazyDPTrainer", "ShardWorkerError"]
