"""Shared-memory layout of one table's cross-process training state.

Per embedding table the router allocates three
``multiprocessing.shared_memory`` segments:

``slab``
    The full ``(num_rows, dim)`` float64 parameter table.  The router
    re-points the model's :class:`repro.nn.parameter.Parameter` at this
    mapping, so forward/backward reads and worker slab writes touch the
    same physical pages — the zero-copy contract of the process
    backend.
``history``
    One int32 entry per row, laid out as the concatenation of the
    shards' *local* windows (shard 0's rows first, then shard 1's, ...,
    matching :class:`repro.shard.tables.ShardedHistoryTable`'s local
    addressing).  Worker ``s`` wraps its window with
    :meth:`repro.lazydp.history.HistoryTable.attach`; the router
    attaches the same windows so the flat facade APIs (export,
    checkpointing) keep reading live state.
``ledger``
    One int64 entry per row, same shard-window layout: the per-process
    :class:`repro.lazydp.ledger.VersionVector` segments.  Workers
    advance their segment at apply time; the router attaches all of
    them for ``audit_noise_ledger``.

Lifecycle: the router creates the segments, workers attach by name
during their startup handshake, and once every worker has acked the
router **unlinks** all names.  From then on the memory lives exactly as
long as a mapping does — a crashed run leaks nothing and the
``resource_tracker`` (one process, shared by router and workers alike)
has nothing left to warn about.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np


def _windows(shard_sizes) -> tuple:
    """Per-shard ``(offset_rows, size_rows)`` of the concatenated layout."""
    offsets = []
    start = 0
    for size in shard_sizes:
        offsets.append((start, int(size)))
        start += int(size)
    return tuple(offsets)


def attach_array(segment, shape, dtype, offset_bytes: int = 0) -> np.ndarray:
    """A writable ndarray view over (part of) a shared-memory segment."""
    count = int(np.prod(shape)) if shape else 0
    flat = np.frombuffer(segment.buf, dtype=dtype, count=count, offset=offset_bytes)
    return flat.reshape(shape)


def release_segment(segment) -> None:
    """Close a segment's mapping, tolerating still-exported views.

    On the emergency path (a worker died mid-step) the
    ``ShardWorkerError`` being raised holds traceback frames whose
    locals still view the buffer, so ``close()`` raises ``BufferError``.
    In that case drop our handles instead: the fd closes now, the
    mapping is freed the moment the last view dies (the name is already
    unlinked, so nothing can outlive the process), and neutralizing the
    object stops ``SharedMemory.__del__`` from retrying the close and
    printing the ``BufferError`` at interpreter exit.
    """
    try:
        segment.close()
    except BufferError:
        if getattr(segment, "_fd", -1) >= 0:
            try:
                os.close(segment._fd)
            except OSError:  # pragma: no cover - already closed
                pass
            segment._fd = -1
        segment._buf = None
        segment._mmap = None


def unregister_attachment(segment) -> None:
    """Drop a freshly *attached* segment from the resource tracker.

    On the Python versions this repo supports, ``SharedMemory(name=...)``
    registers the mapping with the ``resource_tracker`` as if this
    process owned it; a tracker that outlives the owner would then try
    to unlink the (already unlinked) segment and print leak warnings.

    Shard workers must NOT call this: both fork and spawn children
    inherit the router's tracker process, so every registration lands in
    one shared per-name *set* — duplicates collapse, the router's
    ``unlink`` removes the single entry, and an extra worker-side
    unregister would underflow the set and make the tracker print
    ``KeyError`` tracebacks.  This hook exists for attachers that run
    their own tracker (a process not descended from the router).
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout changed
        pass


class TableSegments:
    """Creator-side handle on one table's three shared segments."""

    def __init__(
        self,
        table_index: int,
        num_rows: int,
        dim: int,
        shard_sizes,
    ):
        self.table_index = int(table_index)
        self.num_rows = int(num_rows)
        self.dim = int(dim)
        self.shard_sizes = tuple(int(s) for s in shard_sizes)
        self.shard_windows = _windows(self.shard_sizes)
        self.slab = shared_memory.SharedMemory(
            create=True, size=max(1, num_rows * dim * 8)
        )
        self.history = shared_memory.SharedMemory(
            create=True, size=max(1, num_rows * 4)
        )
        self.ledger = shared_memory.SharedMemory(
            create=True, size=max(1, num_rows * 8)
        )
        # Fresh state: zero mirrors the "noise through iteration 0
        # applied" convention of HistoryTable and VersionVector.
        attach_array(self.history, (num_rows,), np.int32)[...] = 0
        attach_array(self.ledger, (num_rows,), np.int64)[...] = 0
        self._unlinked = False

    # -- router-side views --------------------------------------------------
    def slab_array(self) -> np.ndarray:
        return attach_array(self.slab, (self.num_rows, self.dim), np.float64)

    def history_window(self, shard: int) -> np.ndarray | None:
        offset, size = self.shard_windows[shard]
        if size == 0:
            return None
        return attach_array(self.history, (size,), np.int32, offset * 4)

    def ledger_window(self, shard: int) -> np.ndarray | None:
        offset, size = self.shard_windows[shard]
        if size == 0:
            return None
        return attach_array(self.ledger, (size,), np.int64, offset * 8)

    def names(self) -> tuple:
        return (self.slab.name, self.history.name, self.ledger.name)

    # -- lifecycle -----------------------------------------------------------
    def unlink(self) -> None:
        """Remove the segment names (mappings stay valid); idempotent."""
        if self._unlinked:
            return
        self._unlinked = True
        for segment in (self.slab, self.history, self.ledger):
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Release this process's mappings.

        Callers drop their ndarray views first on the orderly path; on
        the emergency path (worker death mid-step) straggler views in
        live traceback frames are tolerated — see ``release_segment``.
        """
        for segment in (self.slab, self.history, self.ledger):
            release_segment(segment)


class AttachedSegments:
    """Worker-side handle on one table's segments (attach by name)."""

    def __init__(
        self,
        names,
        num_rows: int,
        dim: int,
        shard_sizes,
        unregister: bool = False,
    ):
        slab_name, history_name, ledger_name = names
        self.num_rows = int(num_rows)
        self.dim = int(dim)
        self.shard_windows = _windows(shard_sizes)
        self.slab = shared_memory.SharedMemory(name=slab_name)
        self.history = shared_memory.SharedMemory(name=history_name)
        self.ledger = shared_memory.SharedMemory(name=ledger_name)
        if unregister:
            for segment in (self.slab, self.history, self.ledger):
                unregister_attachment(segment)

    def slab_array(self) -> np.ndarray:
        return attach_array(self.slab, (self.num_rows, self.dim), np.float64)

    def history_window(self, shard: int) -> np.ndarray | None:
        offset, size = self.shard_windows[shard]
        if size == 0:
            return None
        return attach_array(self.history, (size,), np.int32, offset * 4)

    def ledger_window(self, shard: int) -> np.ndarray | None:
        offset, size = self.shard_windows[shard]
        if size == 0:
            return None
        return attach_array(self.ledger, (size,), np.int64, offset * 8)

    def close(self) -> None:
        for segment in (self.slab, self.history, self.ledger):
            release_segment(segment)
