"""The process-backend router: ShardedLazyDPTrainer over worker processes.

:class:`ProcessShardedLazyDPTrainer` keeps the entire routing half of
the sharded trainer — dedup, :class:`repro.shard.router.ShardRouter`
scatter, stage accounting — and replaces only the *execution* of the
per-shard tasks: instead of lambdas on a thread pool, each shard's
plan/apply pair is a message to that shard's long-lived worker process
(:mod:`repro.procshard.worker`), which runs the identical kernel calls
against the same slab bytes through shared memory.

Construction sequence:

1. ``super().__init__`` builds the partition plan, router and sharded
   engine exactly as the in-process backends do;
2. every table's parameters are *moved* into shared memory (one copy,
   at startup) and the model re-adopted over the mapping, so
   forward/backward and worker writes share pages zero-copy;
3. the engine's per-shard HistoryTables are re-attached over
   shared-memory windows, and per-shard
   :class:`repro.lazydp.ledger.VersionVector` segments allocated beside
   them (:meth:`audit_noise_ledger` audits these after the flush);
4. workers start, attach, ack ``ready`` — then the router **unlinks**
   every segment name, so even a SIGKILLed run leaks no ``/dev/shm``
   entries.

Any worker failure — an exception reply, a vanished process, a stuck
pipe — triggers :meth:`_abort`: remaining workers are terminated, the
model/history/ledger state is rematerialized as private copies, every
mapping is closed, and a :class:`ShardWorkerError` naming the worker
propagates out of ``train_step``/``finalize``.
"""

from __future__ import annotations

import gc
import multiprocessing
import time
import weakref

import numpy as np

from ..lazydp.history import HistoryTable
from ..lazydp.ledger import VersionVector
from ..nn.dlrm import DLRM
from ..shard.plan import PartitionPlan
from ..shard.tables import ShardedEmbeddingBag
from ..shard.trainer import ShardedLazyDPTrainer
from ..train.common import DPConfig
from .messages import (
    CMD_APPLY,
    CMD_CLOSE,
    CMD_FLUSH,
    CMD_PLAN,
    CMD_STATS,
    REPLY_ERROR,
    REPLY_OK,
    REPLY_READY,
    TableHandle,
    WorkerInit,
)
from .shm import TableSegments
from .worker import worker_main


class ShardWorkerError(RuntimeError):
    """A shard worker process failed, died, or stopped responding.

    By the time this propagates out of ``train_step`` the router has
    terminated the surviving workers and released every shared-memory
    mapping — the error is fatal to the trainer but leaks nothing.
    """


class _WorkerHandle:
    """Router-side connection to one shard worker."""

    __slots__ = ("shard", "process", "conn", "pid")

    def __init__(self, shard: int, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.pid: int | None = None


def _finalize_backstop(processes, segments) -> None:
    """GC/exit safety net: no orphan workers, no leaked segments.

    Runs only if the trainer is dropped without ``close()``; captures
    the process and segment lists (never the trainer, which would make
    the finalizer keep it alive).
    """
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - stuck in a syscall
            process.kill()
            process.join(timeout=1.0)
    for segment_group in segments:
        segment_group.unlink()
        segment_group.close()


class ProcessShardedLazyDPTrainer(ShardedLazyDPTrainer):
    """LazyDP with one worker process per shard (``backend="process"``)."""

    #: Seconds to wait for a worker's startup ``ready`` ack (spawn-start
    #: children import numpy from cold).
    STARTUP_TIMEOUT = 60.0
    #: Seconds to wait for any single step/flush ack before declaring
    #: the worker hung.
    STEP_TIMEOUT = 120.0

    def __init__(
        self,
        model: DLRM,
        config: DPConfig,
        noise_seed: int = 1234,
        use_ans: bool = True,
        num_shards: int = 2,
        partition: str = "row_range",
        executor="serial",
        plan: PartitionPlan | None = None,
        max_workers: int | None = None,
        skew=None,
    ):
        if not (isinstance(executor, str) and executor == "serial"):
            raise ValueError(
                "the process backend owns its per-shard worker processes; "
                f"executor={executor!r} cannot override them (plan axis "
                "backend=process replaces executor selection)"
            )
        if max_workers is not None:
            raise ValueError(
                "the process backend pins one worker process per shard; "
                "max_workers does not apply (use backend=process:K with "
                "K equal to the shard count, or plain backend=process)"
            )
        super().__init__(
            model,
            config,
            noise_seed=noise_seed,
            use_ans=use_ans,
            num_shards=num_shards,
            partition=partition,
            executor="serial",
            plan=plan,
            skew=skew,
        )
        self._closed = False
        self._segments: list = []
        self._workers: list = []
        self._procs: list = []
        self._stats_cache: dict | None = None
        methods = multiprocessing.get_all_start_methods()
        self._start_method = "fork" if "fork" in methods else "spawn"
        #: Per-(table, shard) VersionVector segments; ``ledger`` flattens
        #: the non-empty ones for audit_noise_ledger.
        self._ledger_segments: list = []

        self._share_tables()
        try:
            self._spawn_workers()
        finally:
            # Names must not outlive startup: once every worker holds a
            # mapping (or startup failed), nothing may attach by name
            # again, and a crashed run must leak no /dev/shm entries.
            for segments in self._segments:
                segments.unlink()
        self._finalizer = weakref.finalize(
            self, _finalize_backstop, self._procs, self._segments
        )

    # -- startup -------------------------------------------------------------
    def _share_tables(self) -> None:
        """Move every table (+ history, + ledger) into shared memory."""
        for t, bag in enumerate(self.model.embeddings):
            part = self.plan.table(t)
            segments = TableSegments(
                t,
                bag.num_rows,
                bag.dim,
                [rows.size for rows in part.shard_rows],
            )
            self._segments.append(segments)
            slab = segments.slab_array()
            np.copyto(slab, bag.table.data)
            bag.table.data = slab
            # Re-adopt so the per-shard slab views window the shared
            # mapping (same re-adoption the sharded base does at init).
            self.model.embeddings[t] = ShardedEmbeddingBag(bag.table, part)
            history = self.engine.histories[t]
            vectors = []
            for s in range(self.num_shards):
                window = segments.history_window(s)
                if window is None:
                    vectors.append(None)
                    continue
                history.shards[s] = HistoryTable.attach(window)
                vectors.append(VersionVector.attach(segments.ledger_window(s)))
            self._ledger_segments.append(vectors)

    def _worker_init(self, shard: int) -> WorkerInit:
        tables = tuple(
            TableHandle(
                table_index=t,
                name=bag.table.name,
                param_id=bag.table.param_id,
                num_rows=bag.num_rows,
                dim=bag.dim,
                segments=self._segments[t].names(),
                shard_sizes=self._segments[t].shard_sizes,
            )
            for t, bag in enumerate(self.model.embeddings)
        )
        return WorkerInit(
            worker_index=shard,
            plan=self.plan,
            noise_seed=self.noise_stream.seed,
            use_ans=self.use_ans,
            flush_chunk_rows=self.engine.flush_chunk_rows,
            tables=tables,
            start_method=self._start_method,
        )

    def _spawn_workers(self) -> None:
        context = multiprocessing.get_context(self._start_method)
        for s in range(self.num_shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(child_conn, self._worker_init(s)),
                name=f"repro-shard-{s}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            handle = _WorkerHandle(s, process, parent_conn)
            self._workers.append(handle)
            self._procs.append(process)
        for handle in self._workers:
            reply = self._recv(handle, timeout=self.STARTUP_TIMEOUT)
            if reply[0] == REPLY_ERROR:
                self._abort()
                raise ShardWorkerError(
                    f"shard worker {handle.shard} failed during startup: "
                    f"{reply[2]}\n{reply[3]}"
                )
            if reply[0] != REPLY_READY:
                self._abort()
                raise ShardWorkerError(
                    f"shard worker {handle.shard} broke the startup "
                    f"handshake (got {reply[0]!r})"
                )
            handle.pid = int(reply[2])

    # -- messaging -----------------------------------------------------------
    def _require_workers(self) -> None:
        if self._closed:
            raise ShardWorkerError(
                "the process backend is closed (a worker died or close() "
                "ran); build a new trainer to continue training"
            )

    def _send(self, handle: _WorkerHandle, message) -> None:
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            self._worker_died(handle)

    def _worker_died(self, handle: _WorkerHandle):
        exitcode = handle.process.exitcode
        self._abort()
        raise ShardWorkerError(
            f"shard worker {handle.shard} (pid {handle.pid}) died mid-step "
            f"(exit code {exitcode}); remaining workers terminated and all "
            "shared-memory segments released"
        )

    def _recv(self, handle: _WorkerHandle, timeout: float):
        deadline = time.monotonic() + timeout
        while True:
            try:
                if handle.conn.poll(0.05):
                    return handle.conn.recv()
            except (EOFError, OSError):
                self._worker_died(handle)
            if not handle.process.is_alive():
                # Drain a final reply the worker managed to flush before
                # exiting (e.g. an error report), then declare death.
                try:
                    if handle.conn.poll(0):
                        return handle.conn.recv()
                except (EOFError, OSError):
                    pass
                self._worker_died(handle)
            if time.monotonic() > deadline:
                pid = handle.pid
                self._abort()
                raise ShardWorkerError(
                    f"shard worker {handle.shard} (pid {pid}) stopped "
                    f"responding (no ack within {timeout:.0f}s); workers "
                    "terminated and all shared-memory segments released"
                )

    def _collect_ok(self, handle: _WorkerHandle, command: str) -> dict:
        reply = self._recv(handle, timeout=self.STEP_TIMEOUT)
        if reply[0] == REPLY_ERROR:
            message, worker_traceback = reply[2], reply[3]
            self._abort()
            raise ShardWorkerError(
                f"shard worker {handle.shard} (pid {handle.pid}) failed: "
                f"{message}\n--- worker traceback ---\n{worker_traceback}"
            )
        if reply[0] != REPLY_OK or reply[1] != command:
            self._abort()
            raise ShardWorkerError(
                f"shard worker {handle.shard} broke protocol: expected an "
                f"{command!r} ack, got {reply[:2]!r}"
            )
        payload = reply[2]
        self._fold_instrumentation(handle, payload)
        return payload

    def _fold_instrumentation(self, handle: _WorkerHandle, payload) -> None:
        """Merge a worker ack's timing deltas and trace spans into the
        router's reporting surfaces, so ``shard_time_summary`` and the
        skew gauges describe the worker processes exactly as they
        describe executor threads."""
        timer = self.shard_timers[handle.shard]
        for stage, seconds in payload.get("timings", {}).items():
            timer.totals[stage] = timer.totals.get(stage, 0.0) + seconds
        for name, value in payload.get("counters", {}).items():
            timer.count(name, value)
        tracer = self.timer.tracer
        if tracer is not None and payload.get("spans"):
            key = f"shard-proc-{handle.shard}"
            track_name = f"shard-proc-{handle.shard} (pid {handle.pid})"
            for name, start, end in payload["spans"]:
                tracer.add_external_complete(
                    key, name, start, end, track_name=track_name
                )

    # -- the process-sharded model update ------------------------------------
    def _apply_embedding_dense_noisy_update(
        self, table_index: int, bag, sparse_grad, iteration: int, noise_std: float
    ) -> None:
        self._require_workers()
        self._last_noise_std = noise_std
        lr = self.config.learning_rate

        if self._next_batch is not None:
            with self.timer.time("lazydp_dedup"):
                next_rows = self._next_batch.accessed_rows(table_index)
        else:
            # Final iteration: the terminal flush performs every
            # remaining catch-up, worker by worker.
            next_rows = np.empty(0, dtype=np.int64)

        with self.timer.time("shard_routing"):
            routed_next = self.router.scatter(table_index, next_rows)
            routed_grad = self.router.scatter(table_index, sparse_grad.rows)
            grad_values = [
                sparse_grad.values[routed_grad.origin[s]]
                for s in range(self.num_shards)
            ]

        with self.timer.time("shard_model_update"):
            # Fan the full plan+apply pair out to every worker before
            # collecting any ack: all shards run their kernels
            # concurrently, in separate processes, GIL-free.
            for handle in self._workers:
                s = handle.shard
                self._send(
                    handle,
                    (
                        CMD_PLAN,
                        iteration,
                        table_index,
                        routed_next.global_rows[s],
                        routed_next.local[s],
                        noise_std,
                    ),
                )
                self._send(
                    handle,
                    (
                        CMD_APPLY,
                        iteration,
                        table_index,
                        routed_grad.global_rows[s],
                        grad_values[s],
                        lr,
                    ),
                )
            for handle in self._workers:
                self._collect_ok(handle, CMD_APPLY)

    def finalize(self, final_iteration: int) -> None:
        """Terminal flush, one worker per shard (same bytes as flat)."""
        if final_iteration == 0:
            return
        self._require_workers()
        noise_std = self._flush_noise_std()
        lr = self.config.learning_rate
        with self.timer.time("terminal_flush"):
            for handle in self._workers:
                self._send(handle, (CMD_FLUSH, final_iteration, lr, noise_std))
            for handle in self._workers:
                self._collect_ok(handle, CMD_FLUSH)
        self.engine.flushed_through = int(final_iteration)

    # -- the cross-process noise ledger --------------------------------------
    @property
    def ledger(self) -> tuple:
        """Every per-(table, shard) VersionVector segment, flattened."""
        return tuple(
            vector
            for vectors in self._ledger_segments
            for vector in vectors
            if vector is not None
        )

    def audit_noise_ledger(self, final_iteration: int) -> None:
        """Prove exactly-once noise application across process boundaries.

        Workers advanced their shared-memory ledger segments at every
        apply and flush; the router audits those same bytes.  Mirrors
        the async trainer's method of the same name, so callers audit
        either engine identically.
        """
        for vector in self.ledger:
            vector.audit_complete(final_iteration)

    # -- reporting -----------------------------------------------------------
    def procshard_stats(self) -> dict:
        """Per-worker diagnostics (pid, draws, messages, arena reuse)."""
        if self._closed:
            return self._stats_cache or {
                "start_method": self._start_method,
                "workers": [],
            }
        for handle in self._workers:
            self._send(handle, (CMD_STATS,))
        workers = []
        for handle in self._workers:
            payload = self._collect_ok(handle, CMD_STATS)
            payload = dict(payload)
            payload["shard"] = handle.shard
            workers.append(payload)
        self._stats_cache = {
            "start_method": self._start_method,
            "workers": workers,
        }
        return self._stats_cache

    def kernel_stats(self) -> dict:
        stats = super().kernel_stats()
        stats["procshard"] = self.procshard_stats()
        return stats

    # -- lifecycle -----------------------------------------------------------
    def _release_shared_state(self) -> None:
        """Rematerialize tables/histories/ledgers as private copies and
        close every shared-memory mapping.

        Post-release the trainer cannot train (workers are gone) but
        every read surface — export_private_model, serving snapshots,
        ledger audits, checkpoint save — keeps working on the copies.
        """
        if not self._segments:
            return
        # The rebind runs in its own frame: its loop variables are the
        # last references to the old shared-memory views, and they must
        # die (frame exit + collect) before close() can release buffers.
        self._materialize_private_copies()
        gc.collect()
        segments, self._segments = self._segments, []
        for segment_group in segments:
            segment_group.unlink()  # idempotent; normally done at startup
            segment_group.close()

    def _materialize_private_copies(self) -> None:
        for t, bag in enumerate(self.model.embeddings):
            table = bag.table
            table.data = np.array(table.data, copy=True)
            self.model.embeddings[t] = ShardedEmbeddingBag(table, self.plan.table(t))
        for history in self.engine.histories:
            for s, shard_history in enumerate(history.shards):
                if shard_history is not None:
                    history.shards[s] = HistoryTable.attach(shard_history.snapshot())
        self._ledger_segments = [
            [
                None if vector is None else VersionVector.attach(vector.snapshot())
                for vector in vectors
            ]
            for vectors in self._ledger_segments
        ]

    def _abort(self) -> None:
        """Hard teardown after a worker failure (reentrancy-safe)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self._workers:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - stuck
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._release_shared_state()

    def close(self) -> None:
        """Orderly shutdown: close workers, release shared memory."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle.process.is_alive():
                try:
                    handle.conn.send((CMD_CLOSE,))
                except (BrokenPipeError, OSError):
                    pass
        for handle in self._workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - stuck
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._release_shared_state()
        if hasattr(self, "_finalizer"):
            self._finalizer.detach()
        super().close()
