"""The long-lived shard worker process.

One worker owns one shard: its slab windows of every table, its history
windows and its ledger segments, all attached from the router's shared
memory at startup (:class:`repro.procshard.messages.WorkerInit`).  The
command loop then mirrors the in-process trainer's phase split *call
for call* — the same ``HistoryTable.delays`` / ``mark_updated``, the
same ``ANSEngine.catchup_noise`` keyed by global row ids, the same
``fused_noisy_update`` / ``apply_sparse_update`` kernels in the same
operand order — which is what makes the process backend bitwise
identical to the serial trainer: noise is a pure function of
``(seed, table, global row, iteration)`` and each row's arithmetic
happens exactly once, in one process, in the flat trainer's order.

Every ``apply`` additionally advances the shard's
:class:`repro.lazydp.ledger.VersionVector` segment with the delays
staged by the paired ``plan`` command, so the router can prove
exactly-once noise application across the process boundary after the
terminal flush.

Instrumentation rides on the acks: the worker times stages with its own
:class:`repro.train.common.StageTimer` (same stage names as the
in-process shard tasks) and ships per-ack *deltas* plus raw
``perf_counter`` span tuples; the router folds the deltas into its
per-shard timers and replays the spans onto a per-worker trace track.
"""

from __future__ import annotations

import gc
import os
import traceback

import numpy as np

from ..kernels import BufferArena, apply_sparse_update, fused_noisy_update
from ..lazydp.ans import ANSEngine
from ..lazydp.history import HistoryTable
from ..lazydp.ledger import VersionVector
from ..nn.parameter import Parameter
from ..rng import NoiseStream
from ..shard.tables import ShardSlab
from ..train.common import StageTimer
from .messages import (
    CMD_APPLY,
    CMD_CLOSE,
    CMD_FLUSH,
    CMD_PLAN,
    CMD_STATS,
    REPLY_ERROR,
    REPLY_OK,
    REPLY_READY,
    WorkerInit,
)
from .shm import AttachedSegments


class _SpanRecorder:
    """StageTimer tracer sink collecting ``(name, start, end)`` tuples.

    ``time.perf_counter()`` is the system-wide CLOCK_MONOTONIC on
    Linux, so these tuples are directly comparable with the router
    tracer's epoch — the router just replays them onto this worker's
    external track.
    """

    __slots__ = ("spans",)

    def __init__(self):
        self.spans: list = []

    def add_complete(self, name, start, end, args=None) -> None:
        self.spans.append((name, float(start), float(end)))

    def drain(self) -> list:
        spans, self.spans = self.spans, []
        return spans


class _TableContext:
    """One table's shard-local state, reconstructed over shared memory."""

    __slots__ = ("segments", "slab", "history", "ledger", "dim")

    def __init__(self, handle, shard_index: int, partition):
        self.segments = AttachedSegments(
            handle.segments, handle.num_rows, handle.dim, handle.shard_sizes
        )
        param = Parameter(
            handle.name,
            self.segments.slab_array(),
            handle.param_id,
            is_embedding=True,
        )
        self.slab = ShardSlab(param, partition, shard_index)
        window = self.segments.history_window(shard_index)
        self.history = None if window is None else HistoryTable.attach(window)
        window = self.segments.ledger_window(shard_index)
        self.ledger = None if window is None else VersionVector.attach(window)
        self.dim = int(handle.dim)

    def release(self) -> None:
        """Drop every ndarray view, then the segment mappings."""
        segments = self.segments
        self.slab = None
        self.history = None
        self.ledger = None
        self.segments = None
        if segments is not None:
            segments.close()


def _drain_instrumentation(timer, recorder, shipped_totals, shipped_counters):
    """Per-ack deltas of the worker's stage seconds / counters + spans."""
    timings = {}
    for stage, seconds in timer.totals.items():
        delta = seconds - shipped_totals.get(stage, 0.0)
        if delta:
            timings[stage] = delta
        shipped_totals[stage] = seconds
    counters = {}
    for name, value in timer.counters.items():
        delta = value - shipped_counters.get(name, 0)
        if delta:
            counters[name] = delta
        shipped_counters[name] = value
    return {
        "timings": timings,
        "counters": counters,
        "spans": recorder.drain(),
    }


def _flush_table(
    context,
    table_index: int,
    final_iteration: int,
    learning_rate: float,
    std: float,
    ans: ANSEngine,
    arena: BufferArena,
    timer: StageTimer,
    chunk_rows: int,
) -> int:
    """Terminal catch-up for this shard's window of one table.

    Chunked exactly like ``ShardedLazyNoiseEngine._flush_shard`` —
    same chunk size, same delays/noise/apply/mark order — so the flush
    bytes match the in-process backends bit for bit.  The only addition
    is the ledger advance, recording that each pending span was applied
    exactly once.
    """
    history = context.history
    if history is None:
        return 0
    pending_local = history.pending_rows(final_iteration)
    if pending_local.size == 0:
        return 0
    slab = context.slab
    with timer.time("terminal_flush"):
        for start in range(0, pending_local.size, chunk_rows):
            local = pending_local[start : start + chunk_rows]
            global_rows = slab.rows[local]
            delays = history.delays(local, final_iteration)
            noise = ans.catchup_noise(
                table_index,
                global_rows,
                delays,
                final_iteration,
                context.dim,
                std,
            )
            target, row_base = slab.update_target()
            apply_sparse_update(
                target,
                global_rows,
                noise,
                learning_rate,
                arena=arena,
                row_base=row_base,
                values_writable=True,
            )
            context.ledger.advance(local, delays, final_iteration)
            history.mark_updated(local, final_iteration)
    return int(pending_local.size)


def _handle_plan(contexts, ans: ANSEngine, timer: StageTimer, staged, message):
    """Stage the catch-up for the rows the next batch touches.

    A function (not inline in the loop) so its slab/history views die
    on return instead of lingering as ``worker_main`` frame locals past
    shutdown — a stale view would keep the segment buffer exported.
    """
    _, iteration, t, next_global, next_local, noise_std = message
    context = contexts[t]
    with timer.time("lazydp_history_read"):
        if context.history is not None and next_local.size:
            delays = context.history.delays(next_local, iteration)
        else:
            delays = np.zeros(next_local.size, dtype=np.int64)
    with timer.time("lazydp_history_update"):
        if context.history is not None and next_local.size:
            context.history.mark_updated(next_local, iteration)
    with timer.time("noise_sampling"):
        noise_values = ans.catchup_noise(
            t, next_global, delays, iteration, context.dim, noise_std
        )
    staged[(int(iteration), int(t))] = (
        next_local,
        delays,
        next_global,
        noise_values,
    )


def _handle_apply(contexts, timer: StageTimer, staged, arena, message) -> None:
    _, iteration, t, grad_global, grad_values, lr = message
    context = contexts[t]
    next_local, delays, next_global, noise_values = staged.pop(
        (int(iteration), int(t))
    )
    target, row_base = context.slab.update_target()
    fused_noisy_update(
        target,
        lr,
        grad_global,
        grad_values,
        next_global,
        noise_values,
        arena=arena,
        row_base=row_base,
        timer=timer,
    )
    if context.ledger is not None and next_local.size:
        context.ledger.advance(next_local, delays, iteration)


def worker_main(conn, init: WorkerInit) -> None:
    """Entry point of one shard worker process (module-level: picklable
    under the spawn start method)."""
    shard = init.worker_index
    contexts: list = []
    try:
        for handle in init.tables:
            contexts.append(
                _TableContext(handle, shard, init.plan.table(handle.table_index))
            )
        ans = ANSEngine(NoiseStream(init.noise_seed), enabled=init.use_ans)
        apply_arena = BufferArena()
        flush_arena = BufferArena()
    except Exception as exc:
        conn.send(
            (
                REPLY_ERROR,
                shard,
                f"worker {shard} failed to attach shared state: "
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        )
        conn.close()
        return

    recorder = _SpanRecorder()
    timer = StageTimer(tracer=recorder)
    shipped_totals: dict = {}
    shipped_counters: dict = {}
    #: (iteration, table_index) -> staged (local, delays, global, noise);
    #: written by ``plan``, consumed by the paired ``apply``.
    staged: dict = {}
    messages = 0
    conn.send((REPLY_READY, shard, os.getpid()))

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # router vanished; nothing to report to
        messages += 1
        command = message[0]
        try:
            if command == CMD_PLAN:
                _handle_plan(contexts, ans, timer, staged, message)
                # No reply: plan outcomes travel with the paired apply's
                # ack (or surface as an error reply above it).
            elif command == CMD_APPLY:
                _handle_apply(contexts, timer, staged, apply_arena, message)
                payload = _drain_instrumentation(
                    timer, recorder, shipped_totals, shipped_counters
                )
                conn.send((REPLY_OK, CMD_APPLY, payload))
            elif command == CMD_FLUSH:
                _, final_iteration, lr, std = message
                flushed = 0
                for t, context in enumerate(contexts):
                    flushed += _flush_table(
                        context,
                        t,
                        final_iteration,
                        lr,
                        std,
                        ans,
                        flush_arena,
                        timer,
                        init.flush_chunk_rows,
                    )
                payload = _drain_instrumentation(
                    timer, recorder, shipped_totals, shipped_counters
                )
                payload["flushed"] = flushed
                conn.send((REPLY_OK, CMD_FLUSH, payload))
            elif command == CMD_STATS:
                conn.send(
                    (
                        REPLY_OK,
                        CMD_STATS,
                        {
                            "pid": os.getpid(),
                            "messages": messages,
                            "samples_drawn": int(ans.samples_drawn),
                            "staged": len(staged),
                            "apply_arena": apply_arena.stats(),
                            "sampler_arena": ans.arena.stats(),
                            "stage_seconds": dict(timer.totals),
                        },
                    )
                )
            elif command == CMD_CLOSE:
                break
            else:
                raise ValueError(f"unknown procshard command: {command!r}")
        except Exception as exc:
            try:
                conn.send(
                    (
                        REPLY_ERROR,
                        shard,
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(),
                    )
                )
            except (BrokenPipeError, OSError):
                break

    staged.clear()
    for context in contexts:
        context.release()
    contexts.clear()
    gc.collect()
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass
