"""Shared trainer machinery: hyper-parameters, stage timing, update kernels.

Stage names deliberately mirror the paper's figure legends so benchmark
output maps one-to-one onto Figures 3, 5, 10 and 11:

* ``fwd``                    - forward propagation
* ``bwd_per_example``        - per-example gradient / norm derivation
* ``bwd_per_batch``          - per-batch (reweighted) gradient derivation
* ``grad_coalescing``        - building sparse row gradients
* ``noise_sampling``         - Gaussian sampling (the compute-bound stage)
* ``noisy_grad_generation``  - merging gradient with noise
* ``noisy_grad_update``      - applying updates to weights (memory-bound)
* ``lazydp_dedup`` / ``lazydp_history_read`` / ``lazydp_history_update``
                             - the pure LazyDP overheads of Figure 11
* ``shard_routing`` / ``shard_model_update``
                             - sharded-engine index routing and the
                               (wall-clock) parallel per-shard update
* ``pipeline_wait``          - time the pipelined trainer spent blocked
                               on the noise-prefetch worker (the
                               *exposed* part of catch-up noise cost;
                               everything the worker finished early is
                               hidden behind fwd/bwd and input gather)
* ``staleness_wait``         - time the async trainer spent blocked on
                               outstanding applies (the staleness
                               policy's synchronisation cost: all prior
                               applies under ``strict``, all but the k
                               newest under ``bounded:k``)
* ``else``                   - everything not attributed above
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..data.loader import DataLoader, LookaheadLoader
# The reference merge kernel lives beside its fused single-pass
# replacement in repro.kernels; re-exported here because every eager
# trainer and historical import path spells it this way.
from ..kernels.fused import merge_sparse_updates  # noqa: F401
from ..nn.dlrm import DLRM
from ..obs import NULL_OBS
from ..privacy.accountant import RDPAccountant
from ..privacy.mechanisms import gradient_noise_std
from ..rng import NoiseStream, philox_invocations
from .optimizers import DenseOptimizer, DenseSGD

MODEL_UPDATE_STAGES = (
    "grad_coalescing",
    "noise_sampling",
    "noisy_grad_generation",
    "noisy_grad_update",
    "lazydp_dedup",
    "lazydp_history_read",
    "lazydp_history_update",
    "shard_routing",
    "shard_model_update",
    "pipeline_wait",
    "staleness_wait",
)

LAZYDP_OVERHEAD_STAGES = (
    "lazydp_dedup",
    "lazydp_history_read",
    "lazydp_history_update",
)


class StageTimer:
    """Accumulates wall-clock time per named pipeline stage.

    Besides stage *times*, a timer carries event *counters* — e.g. the
    fused apply kernel's BufferArena hit/alloc counts — kept in a
    separate namespace so ``as_dict`` (consumed as seconds everywhere)
    stays time-only; ``stats`` reports both.  Like the stage times,
    counters are single-writer: each thread owns its own StageTimer.

    A timer is also the adapter into the observability layer: when
    ``tracer`` holds a :class:`repro.obs.Tracer`, every timed stage is
    forwarded as a span *reusing the same perf_counter pair*, so the
    trace and the accumulated seconds describe identical intervals and
    the untraced arithmetic is bit-for-bit what it always was.
    """

    def __init__(self, tracer=None):
        self.totals: dict = {}
        self.counters: dict = {}
        #: Optional span sink (``repro.obs.Tracer``).  ``None`` — the
        #: default, and what instrumentation rebinds when tracing is
        #: off — keeps the stage accounting untouched.
        self.tracer = tracer

    @contextmanager
    def time(self, stage: str):
        tracer = self.tracer
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.totals[stage] = self.totals.get(stage, 0.0) + (end - start)
            if tracer is not None:
                tracer.add_complete(stage, start, end)

    def count(self, name: str, value: int = 1) -> None:
        """Accumulate an event counter (kernel/arena instrumentation)."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def total(self, *stages: str) -> float:
        if not stages:
            return sum(self.totals.values())
        return sum(self.totals.get(stage, 0.0) for stage in stages)

    def model_update_total(self) -> float:
        return self.total(*MODEL_UPDATE_STAGES)

    def lazydp_overhead_total(self) -> float:
        return self.total(*LAZYDP_OVERHEAD_STAGES)

    def as_dict(self) -> dict:
        return dict(self.totals)

    def stats(self) -> dict:
        """Stage seconds plus event counters, for reporting surfaces."""
        return {
            "stage_seconds": dict(self.totals),
            "counters": dict(self.counters),
        }


@dataclass(frozen=True)
class DPConfig:
    """DP-SGD hyper-parameters (paper Figure 9a's wrapper arguments)."""

    noise_multiplier: float = 1.1
    max_grad_norm: float = 1.0
    learning_rate: float = 0.05
    delta: float = 1e-5

    def noise_std(self, batch_size: int) -> float:
        """Per-coordinate std of noise on the averaged clipped gradient."""
        return gradient_noise_std(self.noise_multiplier, self.max_grad_norm, batch_size)


@dataclass
class TrainResult:
    """Everything a ``fit`` run produced."""

    algorithm: str
    iterations: int
    mean_losses: list = field(default_factory=list)
    stage_times: dict = field(default_factory=dict)
    epsilon: float | None = None
    wall_time: float = 0.0
    #: Event counters merged across every StageTimer the run owned
    #: (trainer + shard/prefetch/apply timers) — arena hits/allocs and
    #: friends survive ``fit`` instead of dying with the trainer.
    counters: dict = field(default_factory=dict)
    #: Sharded runs only: the per-shard stage breakdown plus the
    #: summed-per-stage view and max/min skew (None on flat runs).
    shard_times: dict | None = None

    @property
    def final_loss(self) -> float:
        return self.mean_losses[-1] if self.mean_losses else float("nan")


class TrainerBase:
    """Common training loop; subclasses implement one DP-SGD variant each.

    The loop walks a :class:`LookaheadLoader`, so every step sees the
    current batch *and* the prefetched next batch.  Eager algorithms ignore
    the lookahead; LazyDP uses it to schedule deferred noise.  Iterations
    are 1-based to match Algorithm 1 (a ``HistoryTable`` value of 0 means
    "all noise up to iteration 0", i.e. none).
    """

    name = "base"
    is_private = True

    def __init__(
        self,
        model: DLRM,
        config: DPConfig,
        noise_seed: int = 1234,
        dense_optimizer: DenseOptimizer | None = None,
    ):
        self.model = model
        self.config = config
        self.noise_stream = NoiseStream(noise_seed)
        self.timer = StageTimer()
        self.accountant = RDPAccountant() if self.is_private else None
        # Dense (MLP) parameters may use any update rule — the noise for
        # them is applied eagerly every iteration, so statefulness is
        # fine.  Embedding tables are pinned to the linear sparse update
        # inside each trainer (LazyDP's deferral requires it; see
        # repro.train.optimizers).
        self.dense_optimizer = dense_optimizer or DenseSGD(config.learning_rate)
        # With Poisson sampling the realised batch size fluctuates, but the
        # DP convention (Opacus) averages and scales noise by the expected
        # lot size; ``fit`` pins this from the loader.
        self.expected_batch_size: int | None = None
        # Highest iteration trained so far (0 = untrained).  ``fit``
        # maintains it; LazyDP's ``train_step`` also records it so
        # manually-stepped trainers stay trackable — attached serving
        # engines (``repro.serve``) watch it to detect resumed training.
        self.last_iteration: int = 0
        # Observability hub (repro.obs).  NULL_OBS is the shared null
        # object: every instrumentation site in the engines gates on
        # one attribute check, so an uninstrumented trainer pays
        # nothing.  ``instrument()`` swaps in a live hub.
        self.obs = NULL_OBS
        # Optional learning-rate schedule.  Plain trainers leave this None
        # (constant lr from config); the scheduled trainers in
        # ``repro.train.schedules`` install one.  LazyDP must NOT be given
        # a schedule through this attribute — deferred noise needs
        # origin-iteration scaling, which only ScheduledLazyDPTrainer
        # implements.
        self.schedule = None

    def _batch_denominator(self, batch) -> int:
        return self.expected_batch_size or batch.size

    def _learning_rate(self, iteration: int) -> float:
        if self.schedule is not None:
            return self.schedule.rate(iteration)
        return self.config.learning_rate

    # -- observability ----------------------------------------------------
    def instrument(self, obs=None):
        """Attach an :class:`repro.obs.Observability` hub (default: a
        metrics-only one) and rebind every timer's span sink to it.
        Returns the hub so callers can read it back after the run."""
        from ..obs import Observability

        if obs is None:
            obs = Observability()
        self.obs = obs
        tracer = obs.timer_tracer()
        self.timer.tracer = tracer
        for timer in self._auxiliary_timers():
            timer.tracer = tracer
        return obs

    def _auxiliary_timers(self) -> tuple:
        """Every StageTimer the trainer owns besides ``self.timer`` —
        the per-shard, prefetch-worker and apply-worker timers the
        engine mixins contribute.  Feeds both ``instrument`` (tracer
        rebinding) and the merged ``TrainResult.counters``."""
        return ()

    def _make_timer(self) -> StageTimer:
        """A StageTimer bound to the current observability hub; engine
        mixins use this wherever they (re)create their own timers."""
        return StageTimer(tracer=self.obs.timer_tracer())

    def _fit_counters(self) -> dict:
        """Merged event counters across all the run's timers."""
        counters = dict(self.timer.counters)
        for timer in self._auxiliary_timers():
            for name, value in timer.counters.items():
                counters[name] = counters.get(name, 0) + value
        return counters

    def _fit_shard_times(self):
        """Per-shard breakdown for ``TrainResult.shard_times``
        (``None`` for unsharded trainers; the shard mixin overrides)."""
        return None

    # -- subclass hooks --------------------------------------------------
    def train_step(self, iteration: int, batch, next_batch) -> float:
        raise NotImplementedError

    def finalize(self, final_iteration: int) -> None:
        """Hook run once after the last iteration (LazyDP flushes here)."""

    def _make_lookahead(self, loader: DataLoader) -> LookaheadLoader:
        """How ``fit`` wraps the loader.  The default is the paper's
        one-batch lookahead; the pipelined trainer overrides this to
        request a deeper queue and attach its noise-prefetch worker to
        the ``on_load`` hook."""
        return LookaheadLoader(loader)

    # -- main loop --------------------------------------------------------
    def fit(self, loader: DataLoader) -> TrainResult:
        obs = self.obs
        tracer = obs.tracer
        philox_start = philox_invocations() if obs.enabled else 0
        start = time.perf_counter()
        self.expected_batch_size = loader.batch_size
        final_iteration = 0
        losses = []
        for index, batch, next_batch in self._make_lookahead(loader):
            iteration = index + 1
            with tracer.span("train_step", iteration=iteration):
                loss = self.train_step(iteration, batch, next_batch)
            losses.append(loss)
            if self.accountant is not None:
                self.accountant.step(self.config.noise_multiplier, loader.sample_rate)
            final_iteration = iteration
            self.last_iteration = iteration
        with tracer.span("finalize", iteration=final_iteration):
            self.finalize(final_iteration)
        epsilon = None
        if self.accountant is not None and final_iteration > 0:
            epsilon = self.accountant.get_epsilon(self.config.delta)
        result = TrainResult(
            algorithm=self.name,
            iterations=final_iteration,
            mean_losses=losses,
            stage_times=self.timer.as_dict(),
            epsilon=epsilon,
            wall_time=time.perf_counter() - start,
            counters=self._fit_counters(),
            shard_times=self._fit_shard_times(),
        )
        if obs.enabled:
            obs.collect(self, philox_launches=philox_invocations() - philox_start)
        return result

    # -- shared update kernels ---------------------------------------------
    def _apply_dense_noisy_updates(
        self, grads: dict, iteration: int, noise_std: float
    ) -> None:
        """Noisy update for every dense (MLP) parameter.

        All private variants treat the MLPs identically (paper Section
        5.2.1: "both DP-SGD(F) and LazyDP apply the identical DP protection
        for MLP layers").
        """
        if self.schedule is not None:
            self.dense_optimizer.learning_rate = self._learning_rate(iteration)
        for name, param in self.model.dense_parameters().items():
            grad = grads[name]
            with self.timer.time("noise_sampling"):
                noise = self.noise_stream.dense_noise(
                    param.param_id, iteration, param.shape, std=noise_std
                )
            with self.timer.time("noisy_grad_generation"):
                noisy_grad = grad + noise
            with self.timer.time("noisy_grad_update"):
                self.dense_optimizer.update(param, noisy_grad)

    def _apply_dense_plain_updates(self, grads: dict, iteration: int) -> None:
        if self.schedule is not None:
            self.dense_optimizer.learning_rate = self._learning_rate(iteration)
        with self.timer.time("noisy_grad_update"):
            for name, param in self.model.dense_parameters().items():
                self.dense_optimizer.update(param, grads[name])
