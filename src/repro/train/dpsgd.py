"""Eager DP-SGD: the baseline family DP-SGD(B) / (R) / (F).

All three variants compute the *same* clipped averaged gradient and apply
the *same* dense noisy update to every embedding row, every iteration
(paper Figure 4b) — they differ only in how per-example gradient norms are
obtained, which changes their compute/memory profile but not the trained
model (Section 2.5).  ``EagerDPSGDBase`` holds the shared pipeline;
subclasses provide the norm derivation and gradient reduction.

The embedding update here is the paper's bottleneck in its full glory:
``noise_sampling`` draws a Gaussian for every row of every table and
``noisy_grad_update`` streams the whole table through memory.
"""

from __future__ import annotations

import numpy as np

from ..privacy.clipping import clipped_average_weights, global_norms
from .common import TrainerBase


class EagerDPSGDBase(TrainerBase):
    """Pipeline shared by DP-SGD(B), (R), (F): eager dense noise."""

    def train_step(self, iteration: int, batch, next_batch) -> float:
        with self.timer.time("fwd"):
            losses = self.model.loss(batch)
            mean_loss = float(losses.mean())

        # Per-example output grads: d loss_b / d logit_b, NOT averaged —
        # clipping must see each example's own gradient.
        with self.timer.time("bwd_per_example"):
            dlogits = self.model.loss_grad_per_example(batch)
            self.model.backward(dlogits)

        denominator = self._batch_denominator(batch)
        norms = self._per_example_norms(batch)
        weights = clipped_average_weights(norms, self.config.max_grad_norm, denominator)
        grads = self._reduced_grads(weights)

        noise_std = self.config.noise_std(denominator)
        self._apply_dense_noisy_updates(grads, iteration, noise_std)
        for table_index, bag in enumerate(self.model.embeddings):
            self._apply_embedding_dense_noisy_update(
                table_index, bag, grads[bag.table.name], iteration, noise_std
            )
        return mean_loss

    # -- variant hooks ---------------------------------------------------
    def _per_example_norms(self, batch) -> np.ndarray:
        raise NotImplementedError

    def _reduced_grads(self, weights: np.ndarray) -> dict:
        """Clipped averaged gradient for every parameter (dense + sparse)."""
        with self.timer.time("bwd_per_batch"):
            return self.model.weighted_grads(weights)

    # -- the dense noisy embedding update (paper Figure 4b) ---------------
    def _apply_embedding_dense_noisy_update(
        self, table_index: int, bag, sparse_grad, iteration: int, noise_std: float
    ) -> None:
        num_rows = bag.num_rows
        lr = self._learning_rate(iteration)
        with self.timer.time("noise_sampling"):
            noise = self.noise_stream.row_noise(
                table_index,
                np.arange(num_rows, dtype=np.int64),
                iteration,
                bag.dim,
                std=noise_std,
            )
        with self.timer.time("noisy_grad_generation"):
            # Scatter the sparse clipped gradient into the dense noise
            # tensor: the "noisy gradient" is dense, sized like the table.
            noise[sparse_grad.rows] += sparse_grad.values
        with self.timer.time("noisy_grad_update"):
            bag.table.data -= lr * noise


class DPSGDBTrainer(EagerDPSGDBase):
    """DP-SGD(B): the original algorithm of Abadi et al. [1].

    Materialises one full gradient per example for every dense layer — the
    memory-capacity bottleneck that motivated DP-SGD(R).  (Per-example
    *embedding* gradients stay in factored pair form; materialising a
    (batch, rows, dim) tensor per table is exactly the infeasibility the
    paper describes, and the factored form is value-identical.)
    """

    name = "dpsgd_b"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._per_example_dense: dict | None = None

    def _per_example_norms(self, batch) -> np.ndarray:
        with self.timer.time("bwd_per_example"):
            self._per_example_dense = self.model.per_example_dense_grads()
            contributions = []
            for grad in self._per_example_dense.values():
                flat = grad.reshape(grad.shape[0], -1)
                contributions.append(np.einsum("bi,bi->b", flat, flat))
            for pairs in self.model.per_example_embedding_pairs().values():
                contributions.append(pairs.norm_sq_per_example())
        return global_norms(contributions)

    def _reduced_grads(self, weights: np.ndarray) -> dict:
        """Reduce the already-materialised per-example gradients."""
        with self.timer.time("bwd_per_batch"):
            grads: dict = {}
            for name, grad in self._per_example_dense.items():
                grads[name] = np.einsum("b...,b->...", grad, weights)
            for name, pairs in self.model.per_example_embedding_pairs().items():
                grads[name] = pairs.weighted_row_grad(weights)
        return grads


class DPSGDRTrainer(EagerDPSGDBase):
    """DP-SGD(R): reweighted DP-SGD (Lee & Kifer [40]).

    First pass derives per-example norms (materialising gradients only
    transiently, layer by layer); second pass computes the clipped averaged
    gradient as a reweighted per-batch backward.  Output is identical to
    DP-SGD(B) with lower peak memory.
    """

    name = "dpsgd_r"

    def _per_example_norms(self, batch) -> np.ndarray:
        with self.timer.time("bwd_per_example"):
            contributions = []
            all_linears = self.model.bottom_mlp.linears + self.model.top_mlp.linears
            for linear in all_linears:
                per_example = linear.per_example_grads()
                for grad in per_example.values():
                    flat = grad.reshape(grad.shape[0], -1)
                    contributions.append(np.einsum("bi,bi->b", flat, flat))
            for pairs in self.model.per_example_embedding_pairs().values():
                contributions.append(pairs.norm_sq_per_example())
        return global_norms(contributions)


class DPSGDFTrainer(EagerDPSGDBase):
    """DP-SGD(F): fast ghost-norm clipping (Denison et al. [13]).

    Per-example norms come from the closed-form ghost norms of linear and
    embedding layers — no per-example gradient is ever materialised.  The
    paper uses this as its strongest baseline (Section 6).
    """

    name = "dpsgd_f"

    def _per_example_norms(self, batch) -> np.ndarray:
        with self.timer.time("bwd_per_example"):
            norm_sq = self.model.ghost_norm_sq()
        return np.sqrt(np.maximum(norm_sq, 0.0))
