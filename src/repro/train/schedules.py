"""Learning-rate schedules, and how they interact with lazy noise.

The paper's Algorithm 1 assumes a constant learning rate.  Under a
schedule, eager DP-SGD applies ``- eta_k * n_k`` at every iteration
``k`` — so a *deferred* noise value must be scaled by the learning rate
of its **origin** iteration, not of the iteration where the catch-up
happens.  Getting this wrong breaks the paper's equivalence claim
silently: the trained model would drift from DP-SGD's even though the
privacy accounting (which only counts mechanism applications) looks
unchanged.

The correct generalisations of LazyDP's two ideas:

* **Lazy update (exact)** — the catch-up for a window of iterations
  ``[f..l]`` applies ``sum_k eta_k * n_k``, each draw scaled individually.
* **ANS** — since ``sum_k eta_k N(0, s^2) = N(0, s^2 * sum_k eta_k^2)``,
  one draw scaled by ``s * sqrt(sum eta_k^2)`` suffices; the prefix sums
  of ``eta^2`` make the per-row window sum O(1).

``ScheduledDPSGDFTrainer`` / ``ScheduledLazyDPTrainer`` implement the
eager and lazy sides; their exact equivalence (ANS off) is tested in
``tests/test_schedules.py``, quantified over schedules.  Plain
``LazyDPTrainer`` deliberately has no schedule hook.
"""

from __future__ import annotations

import numpy as np

from ..lazydp.trainer import LazyDPTrainer
from ..train.common import DPConfig, merge_sparse_updates
from ..train.dpsgd import DPSGDFTrainer


class LRSchedule:
    """Base class: a learning rate per (1-based) iteration."""

    def rate(self, iteration: int) -> float:
        raise NotImplementedError

    # -- prefix machinery for lazy windows -------------------------------
    def __init__(self):
        self._prefix_sq = [0.0]  # prefix_sq[i] = sum_{k<=i} rate(k)^2

    def _extend_prefix(self, iteration: int) -> None:
        while len(self._prefix_sq) <= iteration:
            k = len(self._prefix_sq)
            self._prefix_sq.append(self._prefix_sq[-1] + self.rate(k) ** 2)

    def sum_squares_window(self, last_iteration: int, delays: np.ndarray) -> np.ndarray:
        """Per-row ``sum of rate(k)^2`` over ``[last-delay+1 .. last]``."""
        delays = np.asarray(delays, dtype=np.int64)
        if np.any(delays < 0):
            raise ValueError("delays must be non-negative")
        if np.any(delays > last_iteration):
            raise ValueError("delay reaches before iteration 1")
        self._extend_prefix(int(last_iteration))
        prefix = np.asarray(self._prefix_sq)
        return prefix[last_iteration] - prefix[last_iteration - delays]


class ConstantLR(LRSchedule):
    def __init__(self, learning_rate: float):
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def rate(self, iteration: int) -> float:
        return self.learning_rate


class StepDecayLR(LRSchedule):
    """lr = base * factor^(floor((iteration-1) / step_size))."""

    def __init__(self, base: float, factor: float = 0.5, step_size: int = 10):
        super().__init__()
        if base <= 0 or not 0 < factor <= 1 or step_size < 1:
            raise ValueError("invalid step-decay parameters")
        self.base = float(base)
        self.factor = float(factor)
        self.step_size = int(step_size)

    def rate(self, iteration: int) -> float:
        if iteration < 1:
            raise ValueError("iterations are 1-based")
        return self.base * self.factor ** ((iteration - 1) // self.step_size)


class LinearWarmupLR(LRSchedule):
    """Linear ramp to ``base`` over ``warmup`` iterations, then constant."""

    def __init__(self, base: float, warmup: int = 5):
        super().__init__()
        if base <= 0 or warmup < 1:
            raise ValueError("invalid warmup parameters")
        self.base = float(base)
        self.warmup = int(warmup)

    def rate(self, iteration: int) -> float:
        if iteration < 1:
            raise ValueError("iterations are 1-based")
        return self.base * min(1.0, iteration / self.warmup)


class ScheduledDPSGDFTrainer(DPSGDFTrainer):
    """Eager DP-SGD(F) under a learning-rate schedule.

    Eager noise needs no special treatment: iteration ``k`` applies
    ``- eta_k * (grad + n_k)`` and the base-class hooks already consult
    ``_learning_rate(iteration)``.
    """

    name = "dpsgd_f_scheduled"

    def __init__(
        self, model, config: DPConfig, schedule: LRSchedule, noise_seed: int = 1234
    ):
        super().__init__(model, config, noise_seed)
        self.schedule = schedule


class ScheduledLazyDPTrainer(LazyDPTrainer):
    """LazyDP under a learning-rate schedule, with origin-scaled noise."""

    name = "lazydp_scheduled"

    def __init__(
        self,
        model,
        config: DPConfig,
        schedule: LRSchedule,
        noise_seed: int = 1234,
        use_ans: bool = True,
    ):
        super().__init__(model, config, noise_seed=noise_seed, use_ans=use_ans)
        self.schedule = schedule
        if not use_ans:
            self.name = "lazydp_scheduled_no_ans"

    # -- origin-scaled catch-up noise, already in theta-units --------------
    def _weighted_catchup(
        self,
        table_index: int,
        rows: np.ndarray,
        delays: np.ndarray,
        iteration: int,
        dim: int,
        noise_std: float,
    ) -> np.ndarray:
        engine = self.engine.ans
        if engine.enabled:
            raw = self.noise_stream.aggregated_row_noise(
                table_index,
                rows,
                np.ones_like(delays),
                iteration,
                dim,
                std=1.0,
            )
            window = self.schedule.sum_squares_window(iteration, delays)
            engine.samples_drawn += rows.size * dim
            return raw * (noise_std * np.sqrt(window))[:, None]
        total = np.zeros((rows.size, dim), dtype=np.float64)
        max_delay = int(delays.max()) if delays.size else 0
        order = np.argsort(-delays, kind="stable")
        ordered_rows = rows[order]
        ordered_delays = delays[order]
        for lag in range(1, max_delay + 1):
            active = int(np.searchsorted(-ordered_delays, -lag, side="right"))
            if active == 0:
                break
            origin = iteration - lag + 1
            chunk = self.noise_stream.row_noise(
                table_index,
                ordered_rows[:active],
                origin,
                dim,
                std=noise_std,
            )
            total[order[:active]] += self.schedule.rate(origin) * chunk
            engine.samples_drawn += active * dim
        return total

    def _apply_embedding_dense_noisy_update(
        self, table_index: int, bag, sparse_grad, iteration: int, noise_std: float
    ) -> None:
        self._last_noise_std = noise_std
        lr_now = self._learning_rate(iteration)

        if self._next_batch is not None:
            with self.timer.time("lazydp_dedup"):
                next_rows = self._next_batch.accessed_rows(table_index)
            with self.timer.time("lazydp_history_read"):
                history = self.engine.histories[table_index]
                delays = history.delays(next_rows, iteration)
            with self.timer.time("lazydp_history_update"):
                history.mark_updated(next_rows, iteration)
            with self.timer.time("noise_sampling"):
                noise_values = self._weighted_catchup(
                    table_index,
                    next_rows,
                    delays,
                    iteration,
                    bag.dim,
                    noise_std,
                )
        else:
            next_rows = np.empty(0, dtype=np.int64)
            noise_values = np.zeros((0, bag.dim), dtype=np.float64)

        with self.timer.time("noisy_grad_generation"):
            # Gradient scaled by the current rate; catch-up noise already
            # carries its origin rates — merge in theta-units.
            rows, values = merge_sparse_updates(
                sparse_grad.rows,
                lr_now * sparse_grad.values,
                next_rows,
                noise_values,
            )
        with self.timer.time("noisy_grad_update"):
            bag.table.data[rows] -= values

    def finalize(self, final_iteration: int) -> None:
        if final_iteration == 0:
            return
        noise_std = self._flush_noise_std()
        with self.timer.time("terminal_flush"):
            for table_index, bag in enumerate(self.model.embeddings):
                history = self.engine.histories[table_index]
                pending = history.pending_rows(final_iteration)
                chunk_size = self.engine.flush_chunk_rows
                for start in range(0, pending.size, chunk_size):
                    rows = pending[start : start + chunk_size]
                    delays = history.delays(rows, final_iteration)
                    noise = self._weighted_catchup(
                        table_index,
                        rows,
                        delays,
                        final_iteration,
                        bag.dim,
                        noise_std,
                    )
                    bag.table.data[rows] -= noise
                    history.mark_updated(rows, final_iteration)
            self.engine.flushed_through = int(final_iteration)
